#!/usr/bin/env python
"""Regenerate docs/api.md from the live package's __all__ exports."""

import importlib
import inspect
import io
import pathlib

MODULES = [
    "repro", "repro.core", "repro.kernels", "repro.kernels.launcher",
    "repro.gpu", "repro.cluster", "repro.cluster.fabric",
    "repro.compress", "repro.parallel", "repro.io", "repro.io.scrub",
    "repro.service",
    "repro.faults", "repro.workloads", "repro.analysis", "repro.experiments",
    "tools.reprolint",
]

# hand-written context emitted after a module's docstring line
NOTES = {
    "repro.parallel": """\
Backend selection (`get_executor(spec)` / `REPRO_EXECUTOR` /
`repro-bench --executor`); every backend emits byte-identical
containers:

| spec | backend | concurrency |
|---|---|---|
| `serial` | `SerialExecutor` | none — the byte-for-byte reference |
| `thread[:N]` (alias `parallel`) | `ThreadExecutor` | shared thread pool; overlaps GIL-releasing kernels |
| `process[:N]` | `ProcessExecutor` | process pool; shared-memory staging unlocks GIL-bound decode |
| `auto` | thread when >1 core, else serial | — |
""",
    "tools.reprolint": """\
The `repro-lint` console script (`tools.reprolint.cli:main`).  Seven
rules: `fault-site`, `crash-swallow`, `atomic-publish`, `shm-lifetime`,
`import-boundary`, `lock-order`, `determinism` — see the "Static
invariants" section of DESIGN.md.  Stdlib-only; never imports `repro`.
""",
}


def main() -> None:
    out = io.StringIO()
    out.write("# Public API index\n\n")
    out.write("Generated from the live package (every name in each module's\n")
    out.write("`__all__`, with its docstring's first line).  Regenerate with\n")
    out.write("`python scripts/gen_api_docs.py`.\n")
    for modname in MODULES:
        mod = importlib.import_module(modname)
        out.write(f"\n## `{modname}`\n\n")
        doc = (inspect.getdoc(mod) or "").split("\n")[0]
        if doc:
            out.write(doc + "\n\n")
        if modname in NOTES:
            out.write(NOTES[modname] + "\n")
        out.write("| name | kind | summary |\n|---|---|---|\n")
        for name in sorted(getattr(mod, "__all__", []), key=str.lower):
            obj = getattr(mod, name)
            if inspect.isclass(obj):
                kind = "class"
            elif inspect.isfunction(obj):
                kind = "function"
            elif callable(obj):
                kind = "callable"
            else:
                kind = type(obj).__name__
            summary = (inspect.getdoc(obj) or "").split("\n")[0].replace("|", "\\|")
            out.write(f"| `{name}` | {kind} | {summary} |\n")
    target = pathlib.Path(__file__).resolve().parent.parent / "docs" / "api.md"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(out.getvalue())
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
