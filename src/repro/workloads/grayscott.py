"""Gray–Scott reaction–diffusion workload generator (paper §IV).

The paper's evaluation data comes from the ADIOS Gray–Scott tutorial
simulation (Pearson's model): two species U, V reacting on a periodic
grid::

    du/dt = Du ∇²u - u v² + F (1 - u)
    dv/dt = Dv ∇²v + u v² - (F + k) v

integrated with explicit Euler and a nearest-neighbour Laplacian.  The
patterns (spots/stripes/waves depending on F, k) produce fields with
genuine multiscale structure, which is what makes them a meaningful
refactoring workload — unlike white noise, their coefficient classes
decay, and unlike polynomials they are not trivially compressible.

``simulate`` works in 2D and 3D; sizes need not be ``2^L + 1`` (the
refactoring hierarchy accepts anything), but :func:`paper_grid` returns
the paper's dyadic-plus-one shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GrayScottParams", "simulate", "paper_grid", "PRESETS"]


@dataclass(frozen=True)
class GrayScottParams:
    """Reaction/diffusion parameters of the Gray–Scott model."""

    F: float = 0.04
    k: float = 0.06075
    Du: float = 0.2
    Dv: float = 0.1
    dt: float = 1.0

    def stable(self, ndim: int) -> bool:
        """Explicit-Euler diffusion stability (unit grid spacing)."""
        return max(self.Du, self.Dv) * self.dt * 2 * ndim <= 1.0


#: Named parameter sets producing distinct pattern families.
PRESETS = {
    "spots": GrayScottParams(F=0.0367, k=0.0649),
    "stripes": GrayScottParams(F=0.04, k=0.06075),
    "waves": GrayScottParams(F=0.014, k=0.045),
    "maze": GrayScottParams(F=0.029, k=0.057),
}


def _laplacian(a: np.ndarray) -> np.ndarray:
    """Nearest-neighbour Laplacian with periodic wrap (unit spacing)."""
    out = -2.0 * a.ndim * a
    for axis in range(a.ndim):
        out += np.roll(a, 1, axis=axis) + np.roll(a, -1, axis=axis)
    return out


def simulate(
    shape: tuple[int, ...],
    steps: int = 500,
    params: GrayScottParams | str = "stripes",
    seed: int = 7,
    species: str = "v",
    snapshot_every: int | None = None,
) -> np.ndarray | list[np.ndarray]:
    """Run Gray–Scott and return the final field (or periodic snapshots).

    Parameters
    ----------
    shape:
        Grid shape, 2D or 3D.
    steps:
        Euler steps to integrate.
    params:
        A :class:`GrayScottParams` or a preset name.
    species:
        ``"u"`` or ``"v"`` — which field to return.
    snapshot_every:
        If set, return a list of copies taken every that-many steps
        (for time-series experiments).
    """
    if isinstance(params, str):
        try:
            params = PRESETS[params]
        except KeyError:
            raise ValueError(f"unknown preset {params!r}; choose from {sorted(PRESETS)}")
    if len(shape) not in (2, 3):
        raise ValueError("Gray-Scott workload supports 2D and 3D grids")
    if species not in ("u", "v"):
        raise ValueError("species must be 'u' or 'v'")
    if not params.stable(len(shape)):
        # Presets are tuned for 2D; in 3D the explicit-Euler diffusion
        # limit tightens, so shrink the step to 90 % of the stable bound
        # (same dynamics, more steps per unit time).
        dt_stable = 0.9 / (2 * len(shape) * max(params.Du, params.Dv))
        params = GrayScottParams(
            F=params.F, k=params.k, Du=params.Du, Dv=params.Dv, dt=dt_stable
        )

    rng = np.random.default_rng(seed)
    u = np.ones(shape)
    v = np.zeros(shape)
    # seed a few random blobs of V in the U sea
    n_seeds = max(3, int(np.prod(shape) ** (1.0 / len(shape)) / 16))
    radius = max(2, min(shape) // 16)
    for _ in range(n_seeds):
        center = [rng.integers(0, s) for s in shape]
        slices = tuple(
            slice(max(c - radius, 0), min(c + radius, s))
            for c, s in zip(center, shape)
        )
        u[slices] = 0.5
        v[slices] = 0.25
    u += 0.02 * rng.standard_normal(shape)
    v += 0.02 * rng.standard_normal(shape)
    np.clip(u, 0.0, 1.2, out=u)
    np.clip(v, 0.0, 1.0, out=v)

    snaps: list[np.ndarray] = []
    for step in range(1, steps + 1):
        uvv = u * v * v
        u += params.dt * (params.Du * _laplacian(u) - uvv + params.F * (1.0 - u))
        v += params.dt * (params.Dv * _laplacian(v) + uvv - (params.F + params.k) * v)
        if snapshot_every and step % snapshot_every == 0:
            snaps.append((u if species == "u" else v).copy())
    if snapshot_every:
        return snaps
    return u if species == "u" else v


def paper_grid(L: int, ndim: int = 3) -> tuple[int, ...]:
    """The paper's grid shape: ``(2^L + 1)`` per dimension."""
    side = (1 << L) + 1
    return tuple(side for _ in range(ndim))
