"""Workload generators: Gray–Scott (the paper's dataset) and synthetic fields."""

from .grayscott import GrayScottParams, PRESETS, paper_grid, simulate
from .synthetic import (
    anisotropic,
    discontinuous,
    mesh,
    multilinear,
    multiscale,
    skewed_bins,
    smooth,
    turbulence,
    white_noise,
)

__all__ = [
    "GrayScottParams",
    "PRESETS",
    "anisotropic",
    "discontinuous",
    "mesh",
    "multilinear",
    "multiscale",
    "paper_grid",
    "simulate",
    "skewed_bins",
    "smooth",
    "turbulence",
    "white_noise",
]
