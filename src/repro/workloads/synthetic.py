"""Synthetic field generators for tests and property checks.

Each generator produces fields with a known analytic character so tests
can assert the refactoring behaviours theory predicts: multilinear
fields have zero detail coefficients, smooth fields show ~4x per-level
coefficient decay, discontinuous fields concentrate energy in fine
classes near the jump, and white noise does not decay at all.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mesh",
    "multilinear",
    "smooth",
    "multiscale",
    "discontinuous",
    "white_noise",
    "anisotropic",
    "skewed_bins",
]


def skewed_bins(n: int, seed: int = 2021, p: float = 0.3) -> np.ndarray:
    """Skewed signed int64 symbol stream mimicking quantizer output.

    Geometric magnitudes (most symbols at or near zero) with random
    signs — the distribution MGARD's entropy stage sees on smooth data.
    The canonical workload for the entropy benchmarks and the CLI
    ``entropy`` experiment, kept here so both measure the same stream.
    """
    rng = np.random.default_rng(seed)
    return (rng.geometric(p, n).astype(np.int64) - 1) * rng.choice([-1, 1], n)


def mesh(shape: tuple[int, ...]) -> list[np.ndarray]:
    """Unit-cube coordinate grids (ij indexing) for the given shape."""
    axes = [np.linspace(0.0, 1.0, n) if n > 1 else np.zeros(1) for n in shape]
    return list(np.meshgrid(*axes, indexing="ij"))


def multilinear(shape: tuple[int, ...], coeffs: tuple[float, ...] | None = None) -> np.ndarray:
    """An exactly multilinear field: ``a0 + Σ a_k x_k + Σ a_jk x_j x_k …``.

    Piecewise-linear interpolation reproduces it exactly, so every
    detail coefficient is (up to fp) zero — the sharpest correctness
    probe for the coefficient kernels.
    """
    grids = mesh(shape)
    if coeffs is None:
        coeffs = tuple(1.0 + 0.5 * k for k in range(len(shape)))
    out = np.full(shape, 0.75)
    prod = np.ones(shape)
    for g, a in zip(grids, coeffs):
        out = out + a * g
        prod = prod * (1.0 + g)
    return out + 0.25 * prod  # the cross terms stay multilinear


def smooth(shape: tuple[int, ...], frequency: float = 3.0, seed: int = 0) -> np.ndarray:
    """A smooth band-limited field (sums of low-frequency sinusoids)."""
    rng = np.random.default_rng(seed)
    grids = mesh(shape)
    out = np.zeros(shape)
    for _ in range(4):
        phase = rng.uniform(0, 2 * np.pi)
        freqs = rng.uniform(0.5, frequency, size=len(shape))
        arg = phase
        for g, f in zip(grids, freqs):
            arg = arg + 2 * np.pi * f * g
        out += rng.uniform(0.2, 1.0) * np.sin(arg)
    return out


def multiscale(shape: tuple[int, ...], octaves: int = 5, seed: int = 1) -> np.ndarray:
    """A 1/f-style multiscale field: energy at every level of the hierarchy."""
    rng = np.random.default_rng(seed)
    grids = mesh(shape)
    out = np.zeros(shape)
    for o in range(octaves):
        f = 2.0**o
        amp = 0.5**o
        phase = rng.uniform(0, 2 * np.pi, size=len(shape))
        term = np.ones(shape)
        for g, p in zip(grids, phase):
            term = term * np.cos(2 * np.pi * f * g + p)
        out += amp * term
    return out


def discontinuous(shape: tuple[int, ...], seed: int = 2) -> np.ndarray:
    """A smooth background with an embedded sharp spherical jump."""
    rng = np.random.default_rng(seed)
    grids = mesh(shape)
    center = rng.uniform(0.3, 0.7, size=len(shape))
    r2 = np.zeros(shape)
    for g, c in zip(grids, center):
        r2 = r2 + (g - c) ** 2
    return smooth(shape, seed=seed) + 2.0 * (r2 < 0.09)


def white_noise(shape: tuple[int, ...], seed: int = 3) -> np.ndarray:
    """IID Gaussian noise: the incompressible control case."""
    return np.random.default_rng(seed).standard_normal(shape)


def anisotropic(shape: tuple[int, ...], ratio: float = 16.0, seed: int = 4) -> np.ndarray:
    """Smooth along the first axis, oscillatory along the last."""
    grids = mesh(shape)
    return np.sin(2 * np.pi * grids[0]) + 0.5 * np.sin(2 * np.pi * ratio * grids[-1])


def turbulence(
    shape: tuple[int, ...], slope: float = -5.0 / 3.0, seed: int = 5
) -> np.ndarray:
    """A random field with a power-law (Kolmogorov-like) spectrum.

    Gaussian white noise shaped in Fourier space so the radial power
    spectrum decays as ``k^slope`` — the canonical stand-in for
    turbulent scientific data.  Unlike :func:`smooth` it has energy at
    *every* scale (classes decay slowly but steadily), and unlike
    :func:`white_noise` it is genuinely compressible; it sits exactly in
    the regime the paper's Gray-Scott data occupies.
    """
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(shape)
    spec = np.fft.fftn(noise)
    freqs = np.meshgrid(*[np.fft.fftfreq(n) * n for n in shape], indexing="ij")
    k = np.sqrt(sum(f**2 for f in freqs))
    k[tuple(0 for _ in shape)] = 1.0  # keep the mean mode finite
    spec *= k ** (slope / 2.0)  # power ~ amplitude^2
    out = np.real(np.fft.ifftn(spec))
    out -= out.mean()
    std = out.std()
    return out / std if std > 0 else out
