"""Deterministic, seedable fault injection for the streaming stack.

A stream written by a long-running producer meets every failure mode a
real deployment has: the producer is killed mid-commit, a pool worker
dies under the executor, a step file is truncated or bit-flipped by the
storage layer, a stage stalls.  This module makes those failures
*reproducible*: the I/O and executor layers are instrumented with named
**sites** (cheap no-ops when no faults are armed), and a
:class:`FaultInjector` — armed explicitly or through the
``REPRO_FAULTS`` environment variable — decides deterministically which
site hits fire which faults.

Fault kinds
-----------

``crash``
    Raise :class:`InjectedCrash` at a crash point — the moral
    equivalent of ``kill -9`` on the producer between two instructions.
    ``InjectedCrash`` derives from :class:`BaseException` so recovery
    code catching ``Exception`` cannot accidentally "survive" a death
    it is supposed to simulate.

``error``
    Raise :class:`InjectedFault` (an ordinary ``RuntimeError``) — a
    failing-but-catchable stage.

``truncate`` / ``bitflip``
    Corrupt a byte payload or an on-disk file: keep only ``frac`` of
    the bytes, or flip ``flips`` single bits at seeded positions.  The
    write-side sites model non-durable renames and media corruption;
    the read-side sites model corruption on the wire.

``kill``
    Mark executor work units whose worker should die (``os._exit``)
    mid-batch — the decision is made *in the parent*, so it is
    deterministic across process pools.

``delay``
    Sleep ``seconds`` at a site — a slow stage.

Spec grammar
------------

A plan is a comma-separated list of clauses::

    kind@site-pattern[:key=value]...

``site-pattern`` is an :mod:`fnmatch` glob over site names (e.g.
``stream.step.*``, ``executor.process.map``).  Keys: ``p`` (per-hit
probability, default 1), ``count`` (max firings, default unlimited),
``after`` (skip the first N matching hits), and the kind-specific
``frac``/``flips``/``seconds``.  Example::

    REPRO_FAULTS="kill@executor.process.map:p=0.2:count=4,truncate@stream.step.file:after=3:count=1:frac=0.5"

``REPRO_FAULTS_SEED`` seeds the ambient injector (default 0); the
explicit API (:func:`install`, :func:`inject`) takes a ``seed=``
argument.  Same plan + same seed ⇒ same firing sequence.

Instrumented sites live in :data:`SITES` — the canonical registry.  A
plan clause whose site glob matches no registered site can never fire;
:func:`install` (and ambient ``REPRO_FAULTS`` resolution) warns about
such clauses with :class:`UnknownFaultSiteWarning` instead of letting a
typo silently no-op.  The static side of the same contract is enforced
by ``repro-lint``'s ``fault-site`` rule: every site string passed to a
helper in this module must be registered here, every registered site
must be instrumented, and every registered site must be exercised by at
least one fault plan in the test/benchmark tree.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

__all__ = [
    "SITES",
    "FaultSpec",
    "FaultInjector",
    "InjectedCrash",
    "InjectedFault",
    "UnknownFaultSiteWarning",
    "active",
    "clear",
    "corrupt_bytes",
    "corrupt_file",
    "crash_point",
    "delay_point",
    "error_point",
    "inject",
    "install",
    "kill_indices",
    "parse_plan",
    "site_registered",
    "validate_plan",
]

_ENV_KNOB = "REPRO_FAULTS"
_ENV_SEED = "REPRO_FAULTS_SEED"

KINDS = ("crash", "error", "truncate", "bitflip", "kill", "delay")

#: The canonical fault-site registry: every name an instrumented layer
#: passes to the helpers below, mapped to what failing there simulates.
#: Entries may be patterns (``container.read.*``) for families whose
#: suffix is data-dependent (per-shard read extents).  Checked both
#: ways by ``repro-lint`` (rule ``fault-site``): an instrumented site
#: missing here fails lint, and so does a registered site that is never
#: instrumented or never exercised by a fault plan in the test tree.
SITES = {
    "stream.step.pre_tmp": "crash before the step tmp file exists",
    "stream.step.post_tmp": "crash after tmp write, before rename",
    "stream.step.file": "corrupt the committed step file",
    "stream.commit.post_rename": "crash after rename, before manifest",
    "stream.manifest.pre_flush": "crash before the manifest tmp write",
    "stream.manifest.pre_tmp": "crash before the manifest tmp exists",
    "stream.manifest.post_tmp": "crash after manifest tmp, pre rename",
    "stream.manifest.file": "corrupt the committed manifest",
    "container.write.pre_tmp": "crash before a container tmp exists",
    "container.write.post_tmp": "crash after container tmp, pre rename",
    "container.write.file": "corrupt a committed container file",
    "container.read.*": "corrupt/delay a ranged container read",
    "fileio.read.payload": "corrupt a compressed-payload read",
    "sharded.encode.shard": "error/delay inside one shard encode",
    "executor.process.map": "kill pool workers mid-batch",
    "spmd.rank.run": "error at SPMD rank entry (both fabrics)",
    "spmd.rank.shm": "kill a process rank inside shm staging",
    "storage.tier.put": "error/delay one tier-backend object put",
}


class UnknownFaultSiteWarning(UserWarning):
    """A plan clause's site glob matches no registered fault site."""


def site_registered(site: str) -> bool:
    """Is ``site`` (a concrete name) covered by the registry?"""
    return site in SITES or any(
        "*" in pat and fnmatch.fnmatchcase(site, pat) for pat in SITES
    )


def _glob_matches_registry(glob: str) -> bool:
    """Can a plan clause's site glob ever match a registered site?

    Either the glob covers a registered concrete site, or it falls
    inside (or equals) a registered family pattern — both directions
    matter because the registry and the plan may each use wildcards.
    """
    return any(
        glob == pat
        or fnmatch.fnmatchcase(pat, glob)
        or fnmatch.fnmatchcase(glob, pat)
        for pat in SITES
    )


def validate_plan(specs) -> list[str]:
    """Site globs in ``specs`` that can never match a registered site.

    Used by :func:`install` / ambient ``REPRO_FAULTS`` resolution to
    warn about typo'd plans that would otherwise silently no-op.
    Returns the offending globs (empty = plan is satisfiable).
    """
    return sorted(
        {s.site for s in specs if not _glob_matches_registry(s.site)}
    )

#: kind-specific argument: (key name, parser, default)
_ARG_KEYS = {
    "truncate": ("frac", float, 0.5),
    "bitflip": ("flips", int, 1),
    "delay": ("seconds", float, 0.01),
}


class InjectedFault(RuntimeError):
    """An injected, *catchable* failure (fault kind ``error``)."""


class InjectedCrash(BaseException):
    """Simulated process death at a crash point.

    Deliberately **not** an :class:`Exception`: code that catches
    ``Exception`` to recover must not be able to swallow a simulated
    ``kill -9`` — only the test/benchmark harness that armed the fault
    should catch it (like ``KeyboardInterrupt``).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: what fires, where, and how often."""

    kind: str
    site: str
    p: float = 1.0
    count: int | None = None
    after: int = 0
    arg: float | None = None  # kind-specific: frac / flips / seconds

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.p}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be >= 0, got {self.after}")

    @classmethod
    def parse(cls, clause: str) -> "FaultSpec":
        """Parse one ``kind@site[:key=value]...`` clause."""
        head, _, tail = clause.strip().partition(":")
        kind, sep, site = head.partition("@")
        if not sep or not kind or not site:
            raise ValueError(
                f"bad fault clause {clause!r}: expected 'kind@site[:key=value]...'"
            )
        kwargs: dict = {}
        arg_key = _ARG_KEYS.get(kind, (None, None, None))[0]
        for item in filter(None, tail.split(":")):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"bad fault option {item!r} in {clause!r}")
            if key == "p":
                kwargs["p"] = float(value)
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "after":
                kwargs["after"] = int(value)
            elif key == arg_key:
                kwargs["arg"] = _ARG_KEYS[kind][1](value)
            else:
                raise ValueError(
                    f"unknown fault option {key!r} for kind {kind!r} in {clause!r}"
                )
        return cls(kind=kind, site=site, **kwargs)

    def argument(self) -> float:
        """The kind-specific argument, defaulted per kind."""
        if self.arg is not None:
            return self.arg
        default = _ARG_KEYS.get(self.kind, (None, None, None))[2]
        return 0.0 if default is None else default


def parse_plan(spec: str) -> list[FaultSpec]:
    """Parse a comma-separated fault plan into its specs."""
    clauses = [c for c in (s.strip() for s in spec.split(",")) if c]
    if not clauses:
        raise ValueError("empty fault plan")
    return [FaultSpec.parse(c) for c in clauses]


@dataclass
class FaultEvent:
    """One fired fault, recorded for reporting and assertions."""

    site: str
    kind: str
    hit: int  # the matching-hit ordinal that fired (1-based)


class FaultInjector:
    """Deterministic firing engine over a list of :class:`FaultSpec`.

    Thread-safe: site hits from pipeline stages and pool coordinators
    serialize on one lock, and every probabilistic decision draws from
    one seeded :class:`random.Random` — the firing *sequence* is a pure
    function of (plan, seed, site-hit order).
    """

    def __init__(self, specs, seed: int = 0):
        if isinstance(specs, str):
            specs = parse_plan(specs)
        self.specs = list(specs)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._hits = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)
        self._lock = threading.Lock()
        self.log: list[FaultEvent] = []

    def fire(self, site: str, kinds) -> FaultSpec | None:
        """First armed spec of one of ``kinds`` matching ``site``, or None.

        A returned spec has *fired*: its budget is consumed and the
        event logged.  Specs are consulted in plan order.
        """
        with self._lock:
            for i, spec in enumerate(self.specs):
                if spec.kind not in kinds:
                    continue
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                self._hits[i] += 1
                if self._hits[i] <= spec.after:
                    continue
                if spec.count is not None and self._fired[i] >= spec.count:
                    continue
                if spec.p < 1.0 and self._rng.random() >= spec.p:
                    continue
                self._fired[i] += 1
                self.log.append(FaultEvent(site=site, kind=spec.kind, hit=self._hits[i]))
                return spec
        return None

    def randrange(self, n: int) -> int:
        """A draw from the injector's seeded stream (corruption offsets)."""
        with self._lock:
            return self._rng.randrange(n)

    def fired(self, kind: str | None = None) -> int:
        """How many faults (of ``kind``, or any) have fired so far."""
        with self._lock:
            if kind is None:
                return len(self.log)
            return sum(1 for e in self.log if e.kind == kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector({len(self.specs)} specs, seed={self.seed}, fired={len(self.log)})"


# ----------------------------------------------------------------------
# ambient injector: explicit install() > REPRO_FAULTS environment

_state_lock = threading.Lock()
_installed: FaultInjector | None = None
_env_resolved = False


def _warn_unknown_sites(specs, origin: str) -> None:
    for glob in validate_plan(specs):
        warnings.warn(
            f"fault plan clause targets site {glob!r} which matches no "
            f"registered site ({origin}) — it will never fire; see "
            "repro.faults.SITES for the registry",
            UnknownFaultSiteWarning,
            stacklevel=3,
        )


def _from_env() -> FaultInjector | None:
    spec = os.environ.get(_ENV_KNOB, "").strip()
    if not spec:
        return None
    seed = int(os.environ.get(_ENV_SEED, "0"))
    inj = FaultInjector(parse_plan(spec), seed=seed)
    _warn_unknown_sites(inj.specs, origin=f"from ${_ENV_KNOB}")
    return inj


def active() -> FaultInjector | None:
    """The currently armed injector (``None`` when faults are off).

    Resolves ``REPRO_FAULTS`` lazily on first call; an explicit
    :func:`install` always wins over the environment.
    """
    global _installed, _env_resolved
    if _env_resolved:
        return _installed
    with _state_lock:
        if not _env_resolved:
            if _installed is None:
                _installed = _from_env()
            _env_resolved = True
    return _installed


def install(plan, seed: int = 0) -> FaultInjector:
    """Arm an injector process-wide (replacing any previous one).

    ``plan`` is a spec string, a list of :class:`FaultSpec`, or a
    ready-made :class:`FaultInjector`.
    """
    global _installed, _env_resolved
    inj = plan if isinstance(plan, FaultInjector) else FaultInjector(plan, seed=seed)
    _warn_unknown_sites(inj.specs, origin="installed plan")
    with _state_lock:
        _installed = inj
        _env_resolved = True
    return inj


def clear() -> None:
    """Disarm fault injection (``REPRO_FAULTS`` is re-read next time)."""
    global _installed, _env_resolved
    with _state_lock:
        _installed = None
        _env_resolved = False


@contextmanager
def inject(plan, seed: int = 0):
    """Arm ``plan`` for the duration of a ``with`` block.

    Restores whatever injector (including the ambient environment one)
    was active before — the explicit counterpart of ``REPRO_FAULTS``
    for tests and benchmarks.
    """
    global _installed
    prev = active()
    inj = install(plan, seed=seed)
    try:
        yield inj
    finally:
        with _state_lock:
            _installed = prev


# ----------------------------------------------------------------------
# site helpers — the seam the instrumented layers call.  All are cheap
# no-ops (one None check) when no injector is armed.


def crash_point(site: str) -> None:
    """Die here (raise :class:`InjectedCrash`) if a ``crash`` fault fires."""
    inj = active()
    if inj is not None and inj.fire(site, ("crash",)) is not None:
        raise InjectedCrash(site)


def error_point(site: str) -> None:
    """Raise :class:`InjectedFault` if an ``error`` fault fires."""
    inj = active()
    if inj is not None and inj.fire(site, ("error",)) is not None:
        raise InjectedFault(f"injected fault at {site}")


def delay_point(site: str) -> None:
    """Sleep if a ``delay`` fault fires (a slow stage)."""
    inj = active()
    if inj is None:
        return
    spec = inj.fire(site, ("delay",))
    if spec is not None:
        time.sleep(spec.argument())


def corrupt_bytes(site: str, data: bytes) -> bytes:
    """Apply a ``truncate``/``bitflip`` fault to an in-memory payload.

    Returns ``data`` unchanged when nothing fires.  Truncation keeps
    the leading ``frac`` of the bytes; a bit flip inverts ``flips``
    single bits at seeded offsets.
    """
    inj = active()
    if inj is None or not data:
        return data
    spec = inj.fire(site, ("truncate", "bitflip"))
    if spec is None:
        return data
    if spec.kind == "truncate":
        return data[: int(len(data) * spec.argument())]
    out = bytearray(data)
    for _ in range(max(int(spec.argument()), 1)):
        pos = inj.randrange(len(out))
        out[pos] ^= 1 << inj.randrange(8)
    return bytes(out)


def corrupt_file(site: str, path: str | Path) -> bool:
    """Apply a ``truncate``/``bitflip`` fault to an on-disk file.

    Models a non-durable rename (page cache lost at power-off) or media
    corruption of a committed file.  Returns True when a fault fired.
    """
    inj = active()
    if inj is None:
        return False
    spec = inj.fire(site, ("truncate", "bitflip"))
    if spec is None:
        return False
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        return True
    if spec.kind == "truncate":
        os.truncate(path, int(size * spec.argument()))
        return True
    with open(path, "r+b") as f:
        for _ in range(max(int(spec.argument()), 1)):
            pos = inj.randrange(size)
            f.seek(pos)
            byte = f.read(1)
            f.seek(pos)
            f.write(bytes([byte[0] ^ (1 << inj.randrange(8))]))
    return True


def kill_indices(site: str, n: int) -> frozenset[int]:
    """Which of ``n`` pool work units should kill their worker.

    Evaluated *in the parent* (one ``kill``-fault draw per unit), so
    the decision is deterministic regardless of worker scheduling; the
    executor ships only the marked indices to the pool.
    """
    inj = active()
    if inj is None:
        return frozenset()
    return frozenset(
        i for i in range(n) if inj.fire(site, ("kill",)) is not None
    )
