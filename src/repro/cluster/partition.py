"""Block partitioning: refactoring datasets larger than device memory.

The paper's large-scale runs "assign each GPU an equal sized data
partition and do decomposition and recomposition independently",
noting this "brings great large-scale performance with negligible
impact on decomposition and recomposition results" (each block gets its
own hierarchy; no halo exchange).  This module provides that
partitioning for a *single* device too: a grid that exceeds the GPU's
memory is split into blocks along its slowest axis, each block is
refactored independently, and the classes are tracked per block.

``BlockRefactorer`` is fully functional (lossless reassembly is tested)
and degrades gracefully to a single block when the data fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.classes import CoefficientClasses, extract_classes
from ..core.decompose import decompose, recompose
from ..core.engine import Engine, NumpyEngine
from ..core.grid import hierarchy_for
from ..gpu.memory import refactoring_footprint

__all__ = ["BlockPlan", "BlockRefactorer", "plan_blocks"]


@dataclass(frozen=True)
class BlockPlan:
    """How a large grid is split along axis 0."""

    shape: tuple[int, ...]
    starts: tuple[int, ...]  # block start rows
    stops: tuple[int, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.starts)

    def block_shape(self, i: int) -> tuple[int, ...]:
        return (self.stops[i] - self.starts[i],) + tuple(self.shape[1:])

    def slices(self, i: int) -> tuple[slice, ...]:
        return (slice(self.starts[i], self.stops[i]),) + tuple(
            slice(None) for _ in self.shape[1:]
        )


def plan_blocks(
    shape: tuple[int, ...], memory_bytes: float, itemsize: int = 8
) -> BlockPlan:
    """Split ``shape`` along axis 0 so each block's footprint fits.

    Uses the same footprint model as the engines (data + working buffer
    + solver vectors).  The row budget is snapped down to the nearest
    ``2^k + 1`` when that costs less than 25 % of it, so most blocks get
    multigrid-friendly row counts; correctness never depends on the
    snap.  No block has fewer than 2 rows unless that is arithmetically
    unavoidable (``n0`` odd with a 2-row budget); such 1-row blocks
    still round-trip losslessly — a 1-row hierarchy simply cannot
    coarsen along axis 0.
    """
    if memory_bytes <= 0:
        raise ValueError("memory budget must be positive")
    n0 = shape[0]
    rest = 1
    for s in shape[1:]:
        rest *= s
    # footprint ≈ 2 * rows * rest * itemsize (+ small solver vectors)
    max_rows = int(memory_bytes // max(1, 2 * rest * itemsize))
    if max_rows < 2 and n0 >= 2:
        raise MemoryError(
            f"cannot fit even a 2-row block of {shape} in {memory_bytes:.3g} bytes"
        )
    max_rows = max(1, min(max_rows, n0))
    if 3 <= max_rows < n0:
        # prefer 2^k+1-friendly row counts: deeper per-block hierarchies
        # for nearly the same footprint.  Only when blocking is needed
        # at all — a grid that fits whole stays a single block.
        snapped = 2 ** int(math.floor(math.log2(max_rows - 1))) + 1
        if snapped > 0.75 * max_rows:
            max_rows = snapped
    starts, stops = [], []
    pos = 0
    while pos < n0:
        take = min(max_rows, n0 - pos)
        if n0 - pos - take == 1 and take >= 3:
            # donate a row so the tail block gets 2 rows instead of 1;
            # with take == 2 the donation would just move the 1-row
            # block here, so the (unavoidable) 1-row tail is kept
            take -= 1
        starts.append(pos)
        stops.append(pos + take)
        pos += take
    return BlockPlan(shape=tuple(shape), starts=tuple(starts), stops=tuple(stops))


class BlockRefactorer:
    """Refactor arbitrarily large grids block-by-block.

    Parameters
    ----------
    shape:
        Full grid shape.
    memory_bytes:
        Per-block memory budget (e.g. ``device.memory_gb * 1e9``).
    engine:
        Execution engine used for every block (a metered engine
        accumulates modeled time across blocks).
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        memory_bytes: float,
        engine: Engine | None = None,
    ):
        self.plan = plan_blocks(shape, memory_bytes)
        self.engine = engine if engine is not None else NumpyEngine()
        self.hiers = [
            hierarchy_for(self.plan.block_shape(i))
            for i in range(self.plan.n_blocks)
        ]

    @property
    def n_blocks(self) -> int:
        return self.plan.n_blocks

    def decompose(self, data: np.ndarray) -> np.ndarray:
        """Blockwise decomposition; output layout matches the input grid."""
        if data.shape != self.plan.shape:
            raise ValueError(f"expected shape {self.plan.shape}, got {data.shape}")
        out = np.empty_like(data, dtype=np.float64)
        for i, hier in enumerate(self.hiers):
            sl = self.plan.slices(i)
            out[sl] = decompose(np.ascontiguousarray(data[sl]), hier, self.engine)
        return out

    def recompose(self, refactored: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`decompose`."""
        if refactored.shape != self.plan.shape:
            raise ValueError(
                f"expected shape {self.plan.shape}, got {refactored.shape}"
            )
        out = np.empty_like(refactored, dtype=np.float64)
        for i, hier in enumerate(self.hiers):
            sl = self.plan.slices(i)
            out[sl] = recompose(np.ascontiguousarray(refactored[sl]), hier, self.engine)
        return out

    def refactor(self, data: np.ndarray) -> list[CoefficientClasses]:
        """Per-block coefficient classes (each block is independent)."""
        refactored = self.decompose(data)
        out = []
        for i, hier in enumerate(self.hiers):
            block = np.ascontiguousarray(refactored[self.plan.slices(i)])
            out.append(CoefficientClasses(hier, extract_classes(block, hier)))
        return out

    def peak_block_footprint(self) -> int:
        """Largest single-block footprint in bytes (capacity check)."""
        return max(
            refactoring_footprint(h).gpu_total for h in self.hiers
        )
