"""Producer→consumer pipeline overlap model.

The paper's workflow showcase treats refactor and I/O as sequential
stages; in a steady-state simulation campaign they *pipeline*: while
step ``t`` writes, step ``t+1`` refactors, and (with GPUDirect-style
paths, paper §I) the transfer stage overlaps too.  This module models
that: a chain of stages with per-step durations, executed over ``n``
steps with unlimited buffering between stages, has makespan

    T = Σ_s d_s  +  (n − 1) · max_s d_s

(fill the pipe once, then the bottleneck stage paces every further
step).  :func:`steady_state_throughput` turns that into sustained
bytes/s, and :func:`workflow_pipeline` builds the stage durations for
the refactor→transfer→write chain from the same models as Fig. 10 —
showing how much of the refactoring cost disappears behind I/O once
the workflow streams.

:func:`run_pipeline` *executes* such a chain for real: arbitrary stage
callables over a step sequence, scheduled through the same executor
layer as the encode path (:mod:`repro.compress.executor`).  Each stage
is serialized by its own lock — the software analogue of one device per
stage — so with a parallel executor, step ``t`` can write while step
``t+1`` refactors, exactly the overlap the makespan formula models;
with the serial executor it degenerates to the no-overlap baseline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..compress.executor import get_executor
from ..core.grid import hierarchy_for
from ..gpu.analytic import model_pass
from ..gpu.device import DeviceSpec, V100
from ..io.storage import ALPINE_PFS, StorageTier

__all__ = ["PipelineModel", "PipelineRun", "run_pipeline", "workflow_pipeline"]


@dataclass
class PipelineModel:
    """A linear pipeline of stages with fixed per-step durations."""

    stage_names: tuple[str, ...]
    stage_seconds: tuple[float, ...]

    def __post_init__(self):
        if len(self.stage_names) != len(self.stage_seconds):
            raise ValueError("one duration per stage required")
        if not self.stage_seconds:
            raise ValueError("need at least one stage")
        if any(d < 0 for d in self.stage_seconds):
            raise ValueError("durations must be non-negative")

    @property
    def bottleneck(self) -> str:
        return self.stage_names[int(np.argmax(self.stage_seconds))]

    def makespan(self, n_steps: int) -> float:
        """Total time to push ``n_steps`` items through the pipeline."""
        if n_steps < 1:
            raise ValueError("need at least one step")
        return sum(self.stage_seconds) + (n_steps - 1) * max(self.stage_seconds)

    def sequential_time(self, n_steps: int) -> float:
        """The no-overlap baseline (every stage serialized per step)."""
        if n_steps < 1:
            raise ValueError("need at least one step")
        return n_steps * sum(self.stage_seconds)

    def overlap_gain(self, n_steps: int) -> float:
        """Speedup of pipelining over fully sequential execution."""
        return self.sequential_time(n_steps) / self.makespan(n_steps)

    def steady_state_throughput(self, bytes_per_step: int) -> float:
        """Sustained bytes/second once the pipe is full."""
        return bytes_per_step / max(self.stage_seconds)


@dataclass
class PipelineRun:
    """Measured outcome of one :func:`run_pipeline` execution."""

    results: list
    stage_names: tuple[str, ...]
    stage_busy_seconds: tuple[float, ...]
    wall_seconds: float

    @property
    def bottleneck(self) -> str:
        return self.stage_names[int(np.argmax(self.stage_busy_seconds))]

    def overlap_gain(self) -> float:
        """Measured speedup over running every stage back to back."""
        return sum(self.stage_busy_seconds) / max(self.wall_seconds, 1e-12)


def run_pipeline(
    stages,
    items,
    executor=None,
    stage_names: tuple[str, ...] | None = None,
) -> PipelineRun:
    """Push ``items`` through a chain of stage callables, overlapped.

    ``stages`` is a sequence of one-argument callables; item ``i``'s
    result flows ``stages[0] -> stages[1] -> …``.  ``executor`` (spec
    string, instance, or ``None`` for the ambient default) sets the
    concurrency *width only*: serial runs items inline back to back,
    anything wider runs them on a *dedicated* thread pool — never the
    shared encode pool (a stage that itself fans out through the
    ambient executor cannot deadlock the pipeline by queueing its
    subtasks behind gate-blocked items), and never a process pool
    (stages are stateful closures — a stream writer, a prediction loop
    — that must mutate in this address space; a stage may still *use*
    a :class:`~repro.parallel.ProcessExecutor` internally for its own
    codec fan-out).  A per-stage gate admits items
    strictly in order, so distinct steps overlap across stages (the
    paper's streaming-write pattern) while every stage sees the steps
    one at a time, in sequence, making stateful stages (a stream
    writer, a closed prediction loop) safe.  Results keep item order
    regardless of executor.
    """
    stages = list(stages)
    if not stages:
        raise ValueError("need at least one stage")
    if stage_names is None:
        stage_names = tuple(
            getattr(fn, "__name__", f"stage{i}") for i, fn in enumerate(stages)
        )
    if len(stage_names) != len(stages):
        raise ValueError("one name per stage required")
    ex = get_executor(executor) if executor is None or isinstance(executor, str) else executor
    workers = min(getattr(ex, "max_workers", 1), len(stages) + 1)

    failed = threading.Event()
    root_cause: list[BaseException] = []
    root_lock = threading.Lock()

    class _PipelineAborted(RuntimeError):
        """Raised for items cancelled because another item failed."""

    class _Gate:
        """Admits item indices to one stage strictly in order."""

        def __init__(self):
            self.cond = threading.Condition()
            self.next = 0

        def enter(self, i: int) -> None:
            with self.cond:
                while self.next != i:
                    if failed.is_set():
                        raise _PipelineAborted("pipeline aborted after a stage failure")
                    self.cond.wait(timeout=0.1)
                # re-check after winning the turn: another item may
                # have failed in this very stage while we waited, and a
                # stateful stage must not see any later item after that
                # (it would record them at wrong positions)
                if failed.is_set():
                    raise _PipelineAborted("pipeline aborted after a stage failure")

        def leave(self, i: int) -> None:
            with self.cond:
                self.next = i + 1
                self.cond.notify_all()

    gates = [_Gate() for _ in stages]
    busy = [0.0] * len(stages)
    busy_lock = threading.Lock()

    def work(i, item):
        x = item
        try:
            for s, (fn, gate) in enumerate(zip(stages, gates)):
                gate.enter(i)
                try:
                    t0 = time.perf_counter()
                    x = fn(x)
                except BaseException:
                    # flag the failure *before* the gate opens so the
                    # next item's enter() sees it and never runs this
                    # stage out of order
                    failed.set()
                    raise
                finally:
                    gate.leave(i)
                with busy_lock:
                    busy[s] += time.perf_counter() - t0
        except BaseException as e:
            # remember the real failure (cancelled items raise the
            # generic abort and must not mask it), then wake every
            # waiter so a stage failure cannot strand the thread pool
            # on gates that will never open
            if not isinstance(e, _PipelineAborted):
                with root_lock:
                    if not root_cause:
                        root_cause.append(e)
            failed.set()
            for g in gates:
                with g.cond:
                    g.cond.notify_all()
            raise
        return x

    items = list(items)
    t0 = time.perf_counter()
    if workers <= 1:
        results = [work(i, item) for i, item in enumerate(items)]
    else:
        import concurrent.futures

        try:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-pipeline"
            ) as pool:
                results = list(pool.map(work, range(len(items)), items))
        except BaseException as e:
            # pool.map surfaces exceptions in item order, which may be a
            # cancelled item's generic abort; raise the real failure
            if root_cause and root_cause[0] is not e:
                raise root_cause[0] from None
            raise
    wall = time.perf_counter() - t0
    return PipelineRun(
        results=results,
        stage_names=tuple(stage_names),
        stage_busy_seconds=tuple(busy),
        wall_seconds=wall,
    )


def workflow_pipeline(
    per_process_shape: tuple[int, ...] = (513, 513, 513),
    n_processes: int = 4096,
    k_classes: int | None = None,
    device: DeviceSpec = V100,
    storage: StorageTier = ALPINE_PFS,
    gpudirect: bool = True,
    tiered=None,
    fast_budget_bytes: int | None = None,
) -> PipelineModel:
    """Stage durations of the streaming write workflow, per time step.

    Stages: GPU refactor, device→host transfer (skipped with
    ``gpudirect=True``, paper §I), PFS write of the class prefix.

    ``tiered`` (a :class:`~repro.io.storage.TieredStorage`) replaces
    the single-tier write with a placement-aware one: the class prefix
    is routed by ``place_classes`` over ``fast_budget_bytes`` of the
    fastest tier (default: a quarter of the prefix per process) and the
    write stage takes the modeled placement time — tiers overlap, so a
    hot prefix on NVMe hides the PFS spill.
    """
    from ..core.classes import class_sizes
    from ..kernels.launches import EngineOptions

    hier = hierarchy_for(per_process_shape)
    sizes = [s * 8 for s in class_sizes(hier)]
    if k_classes is None:
        k_classes = len(sizes)
    if not 1 <= k_classes <= len(sizes):
        raise ValueError(f"k_classes must be in [1, {len(sizes)}]")
    opts = EngineOptions(n_streams=8 if len(per_process_shape) >= 3 else 1)
    t_refactor = model_pass(hier, device, opts, "decompose").total_seconds
    prefix_bytes = sum(sizes[:k_classes])
    if tiered is not None:
        agg = [s * n_processes for s in sizes[:k_classes]]
        if fast_budget_bytes is None:
            fast_budget_bytes = (prefix_bytes * n_processes) // 4
        placement = tiered.place_classes(agg, int(fast_budget_bytes))
        t_write = tiered.write_seconds(agg, placement, n_processes)
        write_name = "write(tiered)"
    else:
        t_write = storage.write_seconds(prefix_bytes * n_processes, n_processes)
        write_name = "write(PFS)"
    names = ["refactor(GPU)"]
    durations = [t_refactor]
    if not gpudirect:
        names.append("transfer(D2H)")
        durations.append(prefix_bytes / (device.pcie_bandwidth_gbps * 1e9))
    names.append(write_name)
    durations.append(t_write)
    return PipelineModel(stage_names=tuple(names), stage_seconds=tuple(durations))
