"""Producer→consumer pipeline overlap model.

The paper's workflow showcase treats refactor and I/O as sequential
stages; in a steady-state simulation campaign they *pipeline*: while
step ``t`` writes, step ``t+1`` refactors, and (with GPUDirect-style
paths, paper §I) the transfer stage overlaps too.  This module models
that: a chain of stages with per-step durations, executed over ``n``
steps with unlimited buffering between stages, has makespan

    T = Σ_s d_s  +  (n − 1) · max_s d_s

(fill the pipe once, then the bottleneck stage paces every further
step).  :func:`steady_state_throughput` turns that into sustained
bytes/s, and :func:`workflow_pipeline` builds the stage durations for
the refactor→transfer→write chain from the same models as Fig. 10 —
showing how much of the refactoring cost disappears behind I/O once
the workflow streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import TensorHierarchy
from ..gpu.analytic import model_pass
from ..gpu.device import DeviceSpec, V100
from ..io.storage import ALPINE_PFS, StorageTier

__all__ = ["PipelineModel", "workflow_pipeline"]


@dataclass
class PipelineModel:
    """A linear pipeline of stages with fixed per-step durations."""

    stage_names: tuple[str, ...]
    stage_seconds: tuple[float, ...]

    def __post_init__(self):
        if len(self.stage_names) != len(self.stage_seconds):
            raise ValueError("one duration per stage required")
        if not self.stage_seconds:
            raise ValueError("need at least one stage")
        if any(d < 0 for d in self.stage_seconds):
            raise ValueError("durations must be non-negative")

    @property
    def bottleneck(self) -> str:
        return self.stage_names[int(np.argmax(self.stage_seconds))]

    def makespan(self, n_steps: int) -> float:
        """Total time to push ``n_steps`` items through the pipeline."""
        if n_steps < 1:
            raise ValueError("need at least one step")
        return sum(self.stage_seconds) + (n_steps - 1) * max(self.stage_seconds)

    def sequential_time(self, n_steps: int) -> float:
        """The no-overlap baseline (every stage serialized per step)."""
        if n_steps < 1:
            raise ValueError("need at least one step")
        return n_steps * sum(self.stage_seconds)

    def overlap_gain(self, n_steps: int) -> float:
        """Speedup of pipelining over fully sequential execution."""
        return self.sequential_time(n_steps) / self.makespan(n_steps)

    def steady_state_throughput(self, bytes_per_step: int) -> float:
        """Sustained bytes/second once the pipe is full."""
        return bytes_per_step / max(self.stage_seconds)


def workflow_pipeline(
    per_process_shape: tuple[int, ...] = (513, 513, 513),
    n_processes: int = 4096,
    k_classes: int | None = None,
    device: DeviceSpec = V100,
    storage: StorageTier = ALPINE_PFS,
    gpudirect: bool = True,
) -> PipelineModel:
    """Stage durations of the streaming write workflow, per time step.

    Stages: GPU refactor, device→host transfer (skipped with
    ``gpudirect=True``, paper §I), PFS write of the class prefix.
    """
    from ..core.classes import class_sizes
    from ..kernels.launches import EngineOptions

    hier = TensorHierarchy.from_shape(per_process_shape)
    sizes = [s * 8 for s in class_sizes(hier)]
    if k_classes is None:
        k_classes = len(sizes)
    if not 1 <= k_classes <= len(sizes):
        raise ValueError(f"k_classes must be in [1, {len(sizes)}]")
    opts = EngineOptions(n_streams=8 if len(per_process_shape) >= 3 else 1)
    t_refactor = model_pass(hier, device, opts, "decompose").total_seconds
    prefix_bytes = sum(sizes[:k_classes])
    t_write = storage.write_seconds(prefix_bytes * n_processes, n_processes)
    names = ["refactor(GPU)"]
    durations = [t_refactor]
    if not gpudirect:
        names.append("transfer(D2H)")
        durations.append(prefix_bytes / (device.pcie_bandwidth_gbps * 1e9))
    names.append("write(PFS)")
    durations.append(t_write)
    return PipelineModel(stage_names=tuple(names), stage_seconds=tuple(durations))
