"""Compatibility shim: the SPMD substrate moved to :mod:`repro.cluster.fabric`.

``SimComm`` (the thread communicator), ``run_spmd``, and ``SpmdError``
keep their historical import path here.  New code should import from
:mod:`repro.cluster.fabric`, which adds the process fabric
(``run_spmd(..., fabric="process")``), ``SpmdTimeout``, and
``RemoteRankError``.
"""

from __future__ import annotations

from .fabric import (  # noqa: F401
    RemoteRankError,
    SimComm,
    SpmdError,
    SpmdTimeout,
    ThreadComm,
    run_spmd,
)

__all__ = ["SimComm", "run_spmd", "SpmdError", "SpmdTimeout"]
