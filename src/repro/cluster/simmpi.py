"""In-process SPMD message-passing substrate (the paper's MPI stand-in).

The paper parallelizes refactoring by giving each of up to 4096 MPI
ranks (one per GPU) an equal partition and running independently.  This
module provides a small, deterministic, thread-based communicator with
the mpi4py-style surface the examples and tests need — point-to-point
``send``/``recv`` plus the collectives (``bcast``, ``scatter``,
``gather``, ``allgather``, ``reduce``, ``allreduce``, ``barrier``) —
implemented over per-edge FIFO queues.

It is a *functional* substrate for small rank counts (examples, tests,
workflow demos).  Performance at 4096 ranks is modeled analytically in
:mod:`repro.cluster.scaling`; nothing here pretends to time real
networks.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

import numpy as np

__all__ = ["SimComm", "run_spmd", "SpmdError"]


class SpmdError(RuntimeError):
    """Raised on the host when one or more ranks failed."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = failures
        detail = "; ".join(f"rank {r}: {e!r}" for r, e in sorted(failures.items()))
        super().__init__(f"{len(failures)} rank(s) failed: {detail}")


class _Fabric:
    """Shared state of one communicator: per-edge mailboxes + a barrier."""

    def __init__(self, size: int):
        self.size = size
        self._queues: dict[tuple[int, int, int], queue.Queue] = {}
        self._lock = threading.Lock()
        self.barrier = threading.Barrier(size)

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q


class SimComm:
    """Communicator handle held by each rank."""

    #: default point-to-point tag, mirroring MPI's ANY-tag-free style here
    DEFAULT_TAG = 0

    def __init__(self, rank: int, fabric: _Fabric):
        self.rank = rank
        self._fabric = fabric

    @property
    def size(self) -> int:
        return self._fabric.size

    # -- point to point --------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = DEFAULT_TAG) -> None:
        """Send a Python object (arrays are shipped by copy, like a wire)."""
        self._check_rank(dest)
        if isinstance(obj, np.ndarray):
            obj = obj.copy()
        self._fabric.mailbox(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = DEFAULT_TAG, timeout: float = 30.0) -> Any:
        """Blocking receive from ``source``."""
        self._check_rank(source)
        try:
            return self._fabric.mailbox(source, self.rank, tag).get(timeout=timeout)
        except queue.Empty as e:  # pragma: no cover - deadlock guard
            raise TimeoutError(
                f"rank {self.rank} timed out receiving from {source} (tag {tag})"
            ) from e

    # -- collectives ------------------------------------------------------
    def barrier(self) -> None:
        self._fabric.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag=-1)
            return obj
        return self.recv(root, tag=-1)

    def scatter(self, chunks: list | None, root: int = 0) -> Any:
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError(f"root must pass exactly {self.size} chunks")
            for r in range(self.size):
                if r != root:
                    self.send(chunks[r], r, tag=-2)
            return chunks[root]
        return self.recv(root, tag=-2)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for r in range(self.size):
                if r != root:
                    out[r] = self.recv(r, tag=-3)
            return out
        self.send(obj, root, tag=-3)
        return None

    def allgather(self, obj: Any) -> list:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None, root: int = 0):
        op = op if op is not None else (lambda a, b: a + b)
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None):
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    # ----------------------------------------------------------------------
    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range [0, {self.size})")


def run_spmd(fn: Callable[..., Any], n_ranks: int, *args: Any, **kwargs: Any) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` threads.

    Returns the per-rank return values in rank order; raises
    :class:`SpmdError` if any rank raised.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    fabric = _Fabric(n_ranks)
    results: list[Any] = [None] * n_ranks
    failures: dict[int, BaseException] = {}

    def runner(rank: int) -> None:
        comm = SimComm(rank, fabric)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as e:  # noqa: BLE001 - reported to the host
            failures[rank] = e
            fabric.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(n_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    if failures:
        raise SpmdError(failures)
    return results
