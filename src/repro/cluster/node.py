"""Node-level machine models (paper Table VI).

A :class:`NodeSpec` bundles the GPUs and CPU sockets of one machine.
Presets describe the two evaluation platforms:

* ``SUMMIT_NODE`` — 6× V100 + 2× 21-usable-core POWER9 (42 cores);
* ``DESKTOP`` — 1× RTX 2080 Ti + 8-core i7-9700K.

Table VI compares *all GPUs* against *all CPU cores* of one machine on
a dataset partitioned equally — refactoring partitions independently
(no halo exchange), so the node time is the slowest partition's time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.grid import hierarchy_for
from ..gpu.analytic import model_pass
from ..gpu.device import (
    CpuSpec,
    DeviceSpec,
    I7_9700K_CORE,
    POWER9_CORE,
    RTX2080TI,
    V100,
)

__all__ = ["NodeSpec", "SUMMIT_NODE", "DESKTOP", "partition_shape", "node_speedup"]


@dataclass(frozen=True)
class NodeSpec:
    """One machine: its GPUs and its CPU cores."""

    name: str
    gpu: DeviceSpec
    n_gpus: int
    cpu: CpuSpec

    @property
    def n_cores(self) -> int:
        return self.cpu.cores


SUMMIT_NODE = NodeSpec(name="Summit node", gpu=V100, n_gpus=6, cpu=POWER9_CORE)
DESKTOP = NodeSpec(name="GPU-accelerated desktop", gpu=RTX2080TI, n_gpus=1, cpu=I7_9700K_CORE)


def partition_shape(shape: tuple[int, ...], n_parts: int) -> tuple[int, ...]:
    """Per-partition shape when splitting ``shape`` along its first axis.

    The paper partitions by assigning "each GPU an equal sized data
    partition"; partitions are refactored independently, so only the
    largest partition matters for node time.  Refactoring wants
    ``2^L + 1``-friendly sizes, but the hierarchy supports any size, so
    a plain ceil-split is faithful.
    """
    if n_parts < 1:
        raise ValueError("need at least one partition")
    first = -(-shape[0] // n_parts)  # ceil division: the largest part
    return (max(first, 1),) + tuple(shape[1:])


def node_speedup(
    node: NodeSpec,
    shape: tuple[int, ...],
    operation: str = "decompose",
    gpu_opts=None,
) -> dict:
    """Model Table VI: all-GPUs versus all-CPU-cores time on one node.

    Both sides scale near-linearly (independent partitions); the CPU
    side additionally pays the socket's memory-bandwidth contention
    through ``CpuSpec.parallel_efficiency``.
    """
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    if gpu_opts is None:
        gpu_opts = EngineOptions(n_streams=8 if len(shape) >= 3 else 1)
    gpu_shape = partition_shape(shape, node.n_gpus)
    cpu_shape = partition_shape(shape, node.n_cores)
    t_gpu = model_pass(
        hierarchy_for(gpu_shape), node.gpu, gpu_opts, operation
    ).total_seconds
    t_cpu = (
        model_pass(
            hierarchy_for(cpu_shape), node.cpu, CPU_BASELINE_OPTIONS, operation
        ).total_seconds
        / node.cpu.parallel_efficiency
    )
    return {
        "node": node.name,
        "shape": shape,
        "operation": operation,
        "gpu_seconds": t_gpu,
        "cpu_seconds": t_cpu,
        "speedup": t_cpu / t_gpu,
    }
