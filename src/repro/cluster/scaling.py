"""Weak-scaling model: aggregated refactoring throughput (paper Fig. 9).

The paper assigns one MPI process per GPU, 1 GB of simulation data per
process, and scales to 4096 GPUs (4 per Summit node); decomposition and
recomposition run independently per process, so the aggregate
throughput is ``total_bytes / slowest_rank_time``.  The model combines

* the per-GPU pass time from :mod:`repro.gpu.analytic`,
* a deterministic per-rank jitter (OS noise, clock/binning variation —
  a few percent, seeded by rank id so runs are reproducible), and
* a slowly growing straggler term: the expected maximum of the jitter
  across ranks grows with ``log2(N)``, which is what bends weak-scaling
  curves slightly below ideal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.grid import hierarchy_for
from ..gpu.analytic import model_pass
from ..gpu.device import DeviceSpec, V100

__all__ = ["WeakScalingPoint", "weak_scaling", "shape_for_bytes_2d", "shape_for_bytes_3d"]


def shape_for_bytes_2d(nbytes: int, itemsize: int = 8) -> tuple[int, int]:
    """Square 2D grid holding approximately ``nbytes`` of data."""
    side = int(math.sqrt(nbytes / itemsize))
    return (side, side)


def shape_for_bytes_3d(nbytes: int, itemsize: int = 8) -> tuple[int, int, int]:
    """Cubic 3D grid holding approximately ``nbytes`` of data."""
    side = round((nbytes / itemsize) ** (1.0 / 3.0))
    return (side, side, side)


@dataclass
class WeakScalingPoint:
    """One point of the Fig. 9 weak-scaling curve."""

    n_gpus: int
    per_gpu_bytes: int
    rank_seconds: float
    slowest_seconds: float
    aggregate_tbps: float

    @property
    def efficiency(self) -> float:
        """Fraction of ideal (jitter-free) aggregate throughput."""
        return self.rank_seconds / self.slowest_seconds


def weak_scaling(
    shape: tuple[int, ...],
    gpu_counts: tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096),
    device: DeviceSpec = V100,
    operation: str = "decompose",
    opts=None,
    jitter: float = 0.03,
    seed: int = 2021,
) -> list[WeakScalingPoint]:
    """Model aggregate throughput versus GPU count (paper Fig. 9).

    ``shape`` is the per-GPU partition (the paper: 1 GB each).  The
    deterministic jitter draws one relative slowdown per rank; the
    aggregate uses the slowest rank, evaluated exactly for the first
    4096 ranks from a seeded generator so the curve is reproducible.
    """
    from ..kernels.launches import EngineOptions

    if opts is None:
        opts = EngineOptions(n_streams=8 if len(shape) >= 3 else 1)
    hier = hierarchy_for(shape)
    per_gpu_bytes = int(np.prod(shape)) * 8
    t = model_pass(hier, device, opts, operation).total_seconds
    rng = np.random.default_rng(seed)
    max_n = max(gpu_counts)
    slowdowns = 1.0 + jitter * rng.random(max_n)
    out = []
    for n in gpu_counts:
        if n < 1:
            raise ValueError("gpu count must be positive")
        slowest = t * float(np.max(slowdowns[:n]))
        agg = n * per_gpu_bytes / slowest / 1e12
        out.append(
            WeakScalingPoint(
                n_gpus=n,
                per_gpu_bytes=per_gpu_bytes,
                rank_seconds=t,
                slowest_seconds=slowest,
                aggregate_tbps=agg,
            )
        )
    return out
