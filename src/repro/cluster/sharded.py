"""Shard-parallel compression for partitioned domains.

The paper's large-scale runs "assign each GPU an equal sized data
partition and do decomposition and recomposition independently" — no
halo exchange, each partition with its own hierarchy.  This module
promotes :class:`~repro.cluster.partition.BlockRefactorer` from a
refactor-only helper into a full compress→decompress path over such
partitions: a frame is split along axis 0 into *shards*, each shard
runs its own :class:`~repro.compress.mgard.MgardCompressor` (sharing
the global :mod:`~repro.compress.plan` cache, so equal-shape shards pay
setup once), and the shard fan-out is scheduled through the executor
backends of :mod:`repro.parallel`:

``serial``
    The byte-for-byte reference — shards encode inline, in order.

``thread``
    Shards encode on the shared thread pool (the heavy kernels release
    the GIL).

``process``
    The frame is staged **once** in shared memory
    (:func:`repro.parallel.shm.share_array`); workers receive only a
    picklable ref plus their row range, attach, and return their
    shard's container bytes.  Falls back to inline encoding when shared
    memory is unavailable.

All three backends emit **byte-identical** shard containers: a shard's
bytes depend only on (shard data, tolerance, mode, backend), never on
the scheduler — shards share no code-book chain and no temporal state.

Error-bound accounting: shards are *disjoint* along axis 0 and are
decomposed/recomposed independently, so the reconstruction error at any
grid point is exactly the error of the one shard containing it.  The
global L∞ bound therefore holds with every shard compressed at the
*full* tolerance — :func:`shard_tolerance` records that accounting (it
would **not** be an identity for L2-type budgets, where per-shard
errors accumulate across shards; the quantizer here budgets L∞).

Shard payloads are self-contained single-shard containers (the
refactored ``.rprc`` or compressed ``.mgz`` layout), so a consumer can
decode any subset — the basis of
:meth:`repro.io.stream.StepStreamReader.read_region`.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from .. import faults
from ..errors import ContainerError
from ..parallel import get_executor
from ..parallel.shm import ArrayRef, ShmUnavailable, share_array
from .partition import BlockPlan

__all__ = [
    "ShardCodec",
    "ShardedCompressor",
    "ShardedFrame",
    "decode_shard",
    "encode_shards",
    "encode_shards_spmd",
    "plan_shards",
    "shard_tolerance",
]


def plan_shards(shape: tuple[int, ...], n_shards: int) -> BlockPlan:
    """Split ``shape`` along axis 0 into ``n_shards`` balanced shards.

    The explicit-count counterpart of
    :func:`~repro.cluster.partition.plan_blocks` (which derives the
    count from a memory budget): shard sizes differ by at most one row.
    Shards with a single row are allowed when ``n_shards`` demands them
    (they round-trip losslessly, they just cannot coarsen along axis
    0); asking for more shards than rows is an error.
    """
    n0 = int(shape[0])
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if n_shards > n0:
        raise ValueError(f"cannot split {n0} rows into {n_shards} shards")
    base, extra = divmod(n0, n_shards)
    starts, stops = [], []
    pos = 0
    for i in range(n_shards):
        rows = base + (1 if i < extra else 0)
        starts.append(pos)
        stops.append(pos + rows)
        pos += rows
    return BlockPlan(shape=tuple(shape), starts=tuple(starts), stops=tuple(stops))


def shard_tolerance(tol: float, n_shards: int) -> float:
    """Per-shard L∞ tolerance preserving a global bound of ``tol``.

    Shards partition the domain, so the global L∞ error is the *max*
    (not any accumulation) of the per-shard errors — each shard may use
    the full budget.  Kept as an explicit function so the accounting is
    visible at the call sites (and because other error norms would need
    a real split here).
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if tol <= 0:
        raise ValueError("tolerance must be positive")
    return float(tol)


@dataclass(frozen=True)
class ShardCodec:
    """Picklable per-shard codec settings.

    ``tol is None`` selects the *refactored* payload (raw coefficient
    classes, the ``.rprc`` layout); otherwise shards are error-bounded
    compressed (the ``.mgz`` layout) at the — already shard-accounted —
    tolerance.  Worker-side compressors always run their *internal*
    entropy fan-out serially: the shard is the unit of parallelism.
    """

    tol: float | None = None
    mode: str = "level"
    backend: str = "zlib"

    @property
    def payload_mode(self) -> str:
        return "refactored" if self.tol is None else "compressed"


def _encode_shard_array(shard: np.ndarray, codec: ShardCodec) -> bytes:
    """Encode one contiguous shard into self-contained container bytes.

    ``sharded.encode.shard`` is a fault-injection site: armed ``error``
    faults fail individual shard encodes (a sick worker), ``delay``
    faults model stragglers in the fan-out.
    """
    from ..compress.fileio import save_compressed
    from ..compress.mgard import MgardCompressor
    from ..core.refactor import Refactorer
    from ..io.container import write_refactored_stream

    faults.delay_point("sharded.encode.shard")
    faults.error_point("sharded.encode.shard")
    buf = io.BytesIO()
    if codec.tol is None:
        cc = Refactorer(shard.shape).refactor(np.asarray(shard, dtype=np.float64))
        write_refactored_stream(buf, cc)
    else:
        comp = MgardCompressor.for_shape(
            shard.shape, codec.tol, mode=codec.mode, backend=codec.backend,
            executor="serial",
        )
        save_compressed(buf, comp.compress(np.asarray(shard, dtype=np.float64)))
    return buf.getvalue()


def _encode_shard_worker(
    ref: ArrayRef, start: int, stop: int, codec: ShardCodec
) -> bytes:
    """Process-pool work unit: attach the staged frame, encode one shard."""
    lease = ref.open()
    try:
        # a real copy, not ascontiguousarray: the slice is already
        # contiguous, so the latter would return a view pinning the
        # segment past lease.close()
        shard = lease.view[start:stop].copy()
    finally:
        lease.close()
    return _encode_shard_array(shard, codec)


def encode_shards(
    field: np.ndarray, plan: BlockPlan, codec: ShardCodec, executor=None
) -> list[bytes]:
    """Encode every shard of ``field``; returns one container per shard.

    ``executor`` (spec string, instance, or ``None`` for the ambient
    default) schedules the fan-out.  With the process backend the frame
    is staged once in shared memory and workers ship back only bytes;
    every backend returns byte-identical payloads.
    """
    if tuple(field.shape) != plan.shape:
        raise ValueError(f"expected shape {plan.shape}, got {field.shape}")
    ex = (
        get_executor(executor)
        if executor is None or isinstance(executor, str)
        else executor
    )
    bounds = list(zip(plan.starts, plan.stops))
    if getattr(ex, "kind", None) == "process" and len(bounds) > 1:
        try:
            ref, block = share_array(field)
        except ShmUnavailable:
            pass  # no shared memory: encode in-process below
        else:
            try:
                n = len(bounds)
                return ex.map(
                    _encode_shard_worker,
                    [ref] * n,
                    [a for a, _ in bounds],
                    [b for _, b in bounds],
                    [codec] * n,
                )
            finally:
                block.destroy()
    return ex.map(
        lambda a, b: _encode_shard_array(
            np.ascontiguousarray(field[a:b]), codec
        ),
        [a for a, _ in bounds],
        [b for _, b in bounds],
    )


def encode_shards_spmd(
    field: np.ndarray,
    plan: BlockPlan,
    codec: ShardCodec,
    *,
    fabric: str | None = None,
    n_ranks: int = 4,
    recv_timeout: float = 60.0,
    shm_threshold: int | None = None,
) -> list[bytes]:
    """Encode every shard across SPMD ranks; one container per shard.

    The rank-shaped counterpart of :func:`encode_shards`: rank 0 owns
    the frame and ships each shard's slice to its owner rank
    (round-robin) as a bare ndarray — on the process fabric a large
    slice rides the zero-copy shared-memory data plane — then gathers
    the encoded containers back in shard order.  Byte-identical to
    :func:`encode_shards` on every fabric.
    """
    if tuple(field.shape) != plan.shape:
        raise ValueError(f"expected shape {plan.shape}, got {field.shape}")
    from .fabric import run_spmd

    bounds = list(zip(plan.starts, plan.stops))
    n_ranks = max(1, min(int(n_ranks), len(bounds)))

    def rank_fn(comm):
        if comm.rank == 0:
            for i, (start, stop) in enumerate(bounds):
                dst = i % comm.size
                if dst != 0:
                    comm.send(np.ascontiguousarray(field[start:stop]), dst, tag=i)
        encoded = []
        for i in range(comm.rank, len(bounds), comm.size):
            if comm.rank == 0:
                start, stop = bounds[i]
                shard = np.ascontiguousarray(field[start:stop])
            else:
                shard = comm.recv(0, tag=i)
            encoded.append((i, _encode_shard_array(shard, codec)))
        gathered = comm.gather(encoded, root=0)
        if comm.rank != 0:
            return None
        out: list[bytes | None] = [None] * len(bounds)
        for pairs in gathered:
            for i, blob in pairs:
                out[i] = blob
        return out

    results = run_spmd(
        rank_fn,
        n_ranks,
        fabric=fabric,
        recv_timeout=recv_timeout,
        shm_threshold=shm_threshold,
    )
    return results[0]


def decode_shard(payload: bytes, payload_mode: str) -> np.ndarray:
    """Decode one shard container back to its (full-rank) field block.

    Every way a corrupt shard can fail to decode surfaces as
    :class:`~repro.errors.ContainerError` (the parse layers raise it
    directly; schema-level junk that slips past them — valid JSON with
    wrong fields — is mapped here), so a region read can treat "this
    shard is poison" as one condition.
    """
    from ..compress.fileio import load_compressed
    from ..compress.mgard import MgardCompressor
    from ..core.classes import reconstruct_from_classes
    from ..core.grid import hierarchy_for
    from ..io.container import read_refactored_stream

    if payload_mode not in ("refactored", "compressed"):
        raise ValueError(f"unknown shard payload mode {payload_mode!r}")
    try:
        if payload_mode == "refactored":
            header, classes = read_refactored_stream(payload)
            return reconstruct_from_classes(
                classes, hierarchy_for(tuple(header["shape"]))
            )
        blob, hier = load_compressed(payload)
        comp = MgardCompressor.for_shape(
            hier.shape, float(blob.tol), mode=blob.mode, executor="serial"
        )
        return comp.decompress(blob)
    except ContainerError:
        raise
    except (KeyError, TypeError, ValueError) as e:
        raise ContainerError(f"shard payload undecodable ({payload_mode}): {e}") from e


@dataclass
class ShardedFrame:
    """One frame compressed shard-by-shard (payloads + partition)."""

    payloads: list[bytes] = field(repr=False)
    starts: tuple[int, ...]
    stops: tuple[int, ...]
    shape: tuple[int, ...]
    payload_mode: str
    tol: float | None

    @property
    def n_shards(self) -> int:
        return len(self.payloads)

    @property
    def nbytes(self) -> int:
        return sum(len(p) for p in self.payloads)

    def compression_ratio(self, itemsize: int = 8) -> float:
        n = itemsize
        for s in self.shape:
            n *= s
        return n / max(self.nbytes, 1)


class ShardedCompressor:
    """Shard-parallel error-bounded compressor for one grid geometry.

    Parameters
    ----------
    shape:
        Full-frame shape; shards split axis 0.
    tol:
        Global absolute L∞ error bound (``None`` keeps shards as raw
        refactored classes — lossless, partially readable).
    n_shards / memory_bytes:
        Exactly one of an explicit shard count
        (:func:`plan_shards`) or a per-shard memory budget
        (:func:`~repro.cluster.partition.plan_blocks`).
    mode / backend:
        Quantizer budgeting mode and entropy backend of each shard's
        :class:`~repro.compress.mgard.MgardCompressor`.
    executor:
        Executor spec or instance scheduling the shard fan-out; the
        emitted bytes never depend on it.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        tol: float | None,
        *,
        n_shards: int | None = None,
        memory_bytes: float | None = None,
        mode: str = "level",
        backend: str = "zlib",
        executor=None,
    ):
        from .partition import plan_blocks

        if (n_shards is None) == (memory_bytes is None):
            raise ValueError("pass exactly one of n_shards or memory_bytes")
        if n_shards is not None:
            self.plan = plan_shards(tuple(shape), n_shards)
        else:
            self.plan = plan_blocks(tuple(shape), memory_bytes)
        self.tol = None if tol is None else float(tol)
        self.codec = ShardCodec(
            tol=None if tol is None else shard_tolerance(tol, self.plan.n_blocks),
            mode=mode,
            backend=backend,
        )
        self.executor = executor

    @property
    def n_shards(self) -> int:
        return self.plan.n_blocks

    def compress(self, data: np.ndarray) -> ShardedFrame:
        """Compress every shard; the global L∞ bound is ``tol``."""
        payloads = encode_shards(
            np.ascontiguousarray(data), self.plan, self.codec, self.executor
        )
        return ShardedFrame(
            payloads=payloads,
            starts=self.plan.starts,
            stops=self.plan.stops,
            shape=self.plan.shape,
            payload_mode=self.codec.payload_mode,
            tol=self.tol,
        )

    def decompress(self, frame: ShardedFrame) -> np.ndarray:
        """Reassemble the full field from a :class:`ShardedFrame`."""
        if frame.shape != self.plan.shape:
            raise ValueError(
                f"frame was sharded for shape {frame.shape}, not {self.plan.shape}"
            )
        out = np.empty(self.plan.shape, dtype=np.float64)
        for payload, a, b in zip(frame.payloads, frame.starts, frame.stops):
            block = decode_shard(payload, frame.payload_mode)
            if block.shape != (b - a,) + self.plan.shape[1:]:
                raise ValueError(
                    f"shard [{a}:{b}] decoded to shape {block.shape}"
                )
            out[a:b] = block
        return out
