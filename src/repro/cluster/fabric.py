"""SPMD fabrics: thread-based reference and process-backed transport.

The paper parallelizes refactoring by giving each of up to 4096 MPI
ranks an equal partition and running independently.  This module
provides two interchangeable implementations of the same mpi4py-style
communicator surface — point-to-point ``send``/``recv`` plus the
collectives (``bcast``, ``scatter``, ``gather``, ``allgather``,
``reduce``, ``allreduce``, ``barrier``) — selected by
``run_spmd(fn, n, fabric=...)``:

``thread`` (the deterministic reference)
    Ranks are daemon threads over per-edge FIFO queues in one address
    space.  Deterministic and cheap, but the GIL serializes Python-side
    work, so "parallel" ranks measure no speedup.

``process`` (the measured fabric)
    Ranks are forked OS processes.  The **control plane** is a mesh of
    UNIX-domain stream sockets (one listener per rank, lazily-connected
    outgoing edges, length-prefixed frames); small messages travel as
    pickles.  The **data plane** is zero-copy for large local-rank
    ndarrays: a send whose payload is an ndarray of at least
    ``shm_threshold`` bytes stages the array once in a
    ``multiprocessing.shared_memory`` segment (through
    :mod:`repro.parallel.shm`) and ships only a tiny descriptor —
    payload bytes never traverse the socket or the pickler.  Ownership
    transfers with the message: the receiver copies out and unlinks.
    Anything that is not a large ndarray (or when shared memory is
    unavailable) falls back to pickle, so arbitrary objects still work.

Both fabrics run the *same* collective algorithms over send/recv (rank
order gathers, left-fold reductions), so every collective produces
bit-identical results across fabrics.  Rank failures surface on the
host as :class:`SpmdError` carrying per-rank exceptions *and* formatted
tracebacks; receive timeouts raise :class:`SpmdTimeout` naming
(src, dst, tag, waited_s) in either fabric.

Failure containment on the process fabric: a rank that dies abnormally
(e.g. a ``kill@spmd.rank.shm`` fault firing ``os._exit`` inside the
staging window) is detected through its result pipe; peers blocked on
it time out with :class:`SpmdTimeout`; and the host finalizer sweeps
every shared-memory segment the run created — names carry a per-run
prefix, so segments orphaned by a dead sender or an unreceived message
are unlinked, never leaked.  :func:`last_run_report` exposes the sweep
and per-rank transport stats of the most recent run.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import struct
import tempfile
import threading
import time
import traceback
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .. import faults
from ..parallel.shm import ShmUnavailable, share_array, unlink_segment

__all__ = [
    "BaseComm",
    "ThreadComm",
    "ProcessComm",
    "SimComm",
    "SpmdError",
    "SpmdTimeout",
    "RemoteRankError",
    "SpmdRunReport",
    "last_run_report",
    "run_spmd",
    "DEFAULT_RECV_TIMEOUT",
    "DEFAULT_SHM_THRESHOLD",
]

#: default blocking-receive timeout (seconds); the ``recv_timeout``
#: knob on :func:`run_spmd` overrides it per run
DEFAULT_RECV_TIMEOUT = 30.0

#: ndarray payloads at least this large ride the shared-memory data
#: plane on the process fabric (``REPRO_SPMD_SHM_THRESHOLD`` overrides)
DEFAULT_SHM_THRESHOLD = 64 * 1024

_ENV_FABRIC = "REPRO_SPMD_FABRIC"
_ENV_SHM_THRESHOLD = "REPRO_SPMD_SHM_THRESHOLD"

#: reserved collective tags (user tags are >= 0)
_TAG_BCAST = -1
_TAG_SCATTER = -2
_TAG_GATHER = -3
_TAG_BARRIER = -4


class SpmdError(RuntimeError):
    """Raised on the host when one or more ranks failed.

    ``failures`` maps rank → exception (the live exception object on
    the thread fabric, a :class:`RemoteRankError` on the process
    fabric); ``tracebacks`` maps rank → formatted traceback text when
    one was captured.  Constructing with a plain string produces a
    generic fabric error with empty maps.
    """

    def __init__(self, failures, tracebacks: dict[int, str] | None = None):
        if isinstance(failures, str):
            self.failures: dict[int, BaseException] = {}
            self.tracebacks: dict[int, str] = {}
            super().__init__(failures)
            return
        self.failures = dict(failures)
        self.tracebacks = dict(tracebacks or {})
        detail = "; ".join(
            f"rank {r}: {e!r}" for r, e in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} rank(s) failed: {detail}")


class SpmdTimeout(SpmdError):
    """A blocking receive expired: nothing arrived from ``src``.

    Carries the full context a deadlock post-mortem needs: the waiting
    rank (``dst``), the expected sender (``src``), the message ``tag``,
    and how long the receiver waited (``waited_s``).
    """

    def __init__(self, *, src: int, dst: int, tag: int, waited_s: float):
        self.src = int(src)
        self.dst = int(dst)
        self.tag = int(tag)
        self.waited_s = float(waited_s)
        RuntimeError.__init__(
            self,
            f"rank {self.dst} timed out receiving from rank {self.src} "
            f"(tag {self.tag}) after {self.waited_s:.2f}s",
        )
        self.failures = {}
        self.tracebacks = {}


class RemoteRankError(RuntimeError):
    """Host-side stand-in for an exception raised in a rank process.

    The original exception object cannot always cross the process
    boundary, so the host re-raises its ``repr`` with the remote
    traceback attached (``.traceback``, also in
    :attr:`SpmdError.tracebacks`).
    """

    def __init__(self, message: str, rank: int, tb: str | None = None):
        super().__init__(message)
        self.rank = int(rank)
        self.traceback = tb


# ----------------------------------------------------------------------
# communicator surface shared by both fabrics


class BaseComm:
    """Collectives over point-to-point, identical across fabrics.

    Subclasses provide ``send``/``recv`` (and may override ``barrier``);
    every collective here runs the same deterministic algorithm — rank
    order gathers, left-fold reductions — so results are bit-identical
    regardless of the transport underneath.
    """

    #: default point-to-point tag, mirroring MPI's ANY-tag-free style
    DEFAULT_TAG = 0

    rank: int

    @property
    def size(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def send(self, obj: Any, dest: int, tag: int = DEFAULT_TAG) -> None:
        raise NotImplementedError

    def recv(self, source: int, tag: int = DEFAULT_TAG, timeout: float | None = None) -> Any:
        raise NotImplementedError

    def transport_stats(self) -> dict:
        """Counters of how payloads travelled (shm vs pickle vs inline)."""
        return {"shm_sends": 0, "pickle_sends": 0, "shm_recvs": 0, "inline_sends": 0}

    # -- collectives ------------------------------------------------------
    def barrier(self) -> None:
        """Release no rank until every rank arrived (gather + release)."""
        if self.rank == 0:
            for r in range(1, self.size):
                self.recv(r, tag=_TAG_BARRIER)
            for r in range(1, self.size):
                self.send(None, r, tag=_TAG_BARRIER)
        else:
            self.send(None, 0, tag=_TAG_BARRIER)
            self.recv(0, tag=_TAG_BARRIER)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag=_TAG_BCAST)
            return obj
        return self.recv(root, tag=_TAG_BCAST)

    def scatter(self, chunks: list | None, root: int = 0) -> Any:
        if self.rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError(f"root must pass exactly {self.size} chunks")
            for r in range(self.size):
                if r != root:
                    self.send(chunks[r], r, tag=_TAG_SCATTER)
            return chunks[root]
        return self.recv(root, tag=_TAG_SCATTER)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for r in range(self.size):
                if r != root:
                    out[r] = self.recv(r, tag=_TAG_GATHER)
            return out
        self.send(obj, root, tag=_TAG_GATHER)
        return None

    def allgather(self, obj: Any) -> list:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None, root: int = 0):
        op = op if op is not None else (lambda a, b: a + b)
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] | None = None):
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    # ----------------------------------------------------------------------
    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.size:
            raise ValueError(f"rank {r} out of range [0, {self.size})")


# ----------------------------------------------------------------------
# thread fabric (the deterministic reference)


class _ThreadFabric:
    """Shared state of one thread communicator: mailboxes + a barrier."""

    def __init__(self, size: int):
        self.size = size
        self._queues: dict[tuple[int, int, int], queue.Queue] = {}
        self._lock = threading.Lock()
        self.barrier = threading.Barrier(size)

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._lock:
            q = self._queues.get(key)
            if q is None:
                q = self._queues[key] = queue.Queue()
            return q


class ThreadComm(BaseComm):
    """Communicator handle of one thread rank (the historical SimComm)."""

    def __init__(self, rank: int, fabric: _ThreadFabric, default_timeout: float = DEFAULT_RECV_TIMEOUT):
        self.rank = rank
        self._fabric = fabric
        self._default_timeout = float(default_timeout)
        self._sends = 0

    @property
    def size(self) -> int:
        return self._fabric.size

    def send(self, obj: Any, dest: int, tag: int = BaseComm.DEFAULT_TAG) -> None:
        """Send a Python object (arrays are shipped by copy, like a wire)."""
        self._check_rank(dest)
        if isinstance(obj, np.ndarray):
            obj = obj.copy()
        self._sends += 1
        self._fabric.mailbox(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = BaseComm.DEFAULT_TAG, timeout: float | None = None) -> Any:
        """Blocking receive from ``source``."""
        self._check_rank(source)
        waited = self._default_timeout if timeout is None else float(timeout)
        try:
            return self._fabric.mailbox(source, self.rank, tag).get(timeout=waited)
        except queue.Empty as e:
            raise SpmdTimeout(src=source, dst=self.rank, tag=tag, waited_s=waited) from e

    def barrier(self) -> None:
        self._fabric.barrier.wait()

    def transport_stats(self) -> dict:
        return {"shm_sends": 0, "pickle_sends": 0, "shm_recvs": 0, "inline_sends": self._sends}


#: historical name of the thread communicator (public API since PR 0)
SimComm = ThreadComm


# ----------------------------------------------------------------------
# process fabric: UNIX-socket control plane + shared-memory data plane

_FRAME = struct.Struct("<iiBQ")  # src, tag, kind, body nbytes
_KIND_PICKLE = 0
_KIND_SHM = 1

_PIPE_PROTOCOL_NOTE = (
    "result pipes carry ('ready',), ('ok', rank, result, stats, shm_names), "
    "('err', rank, repr, traceback); host sends 'go' then 'stop'"
)


class _DecodeFailure:
    """Mailbox marker: a frame arrived but its payload did not decode."""

    def __init__(self, detail: str):
        self.detail = detail


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on a clean mid-stream EOF."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            return None
        got += k
    return bytes(buf)


class _ProcessTransport:
    """One rank's endpoint: listener, reader threads, outgoing edges.

    Every created shared-memory segment's name starts with the run
    prefix, so the host finalizer can sweep leftovers even when this
    rank dies without reporting (see ``_sweep_run_segments``).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        sockdir: Path,
        run_prefix: str,
        shm_threshold: int,
        kill_marked: bool = False,
    ):
        self.rank = rank
        self.size = size
        self.sockdir = Path(sockdir)
        self.run_prefix = run_prefix
        self.shm_threshold = int(shm_threshold)
        self.kill_marked = bool(kill_marked)
        self._listener: socket.socket | None = None
        self._conns: dict[int, tuple[socket.socket, threading.Lock]] = {}
        self._conn_lock = threading.Lock()
        self._mail: dict[tuple[int, int], queue.Queue] = {}
        self._mail_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = {"shm_sends": 0, "pickle_sends": 0, "shm_recvs": 0, "inline_sends": 0}
        self._shm_seq = 0
        self.shm_created: list[str] = []
        self._closed = False

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        path = self.sockdir / f"r{self.rank}.sock"
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(str(path))
        self._listener.listen(self.size + 1)
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def close(self) -> None:
        self._closed = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        with self._conn_lock:
            for sock, _ in self._conns.values():
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
            self._conns.clear()

    # -- receive side -----------------------------------------------------
    def _accept_loop(self) -> None:
        try:
            while True:
                conn, _ = self._listener.accept()
                threading.Thread(target=self._reader, args=(conn,), daemon=True).start()
        except OSError:
            return  # listener closed

    def _reader(self, conn: socket.socket) -> None:
        try:
            while True:
                head = _recv_exact(conn, _FRAME.size)
                if head is None:
                    return
                src, tag, kind, nbytes = _FRAME.unpack(head)
                body = _recv_exact(conn, nbytes) if nbytes else b""
                if body is None:
                    return  # peer died mid-frame; recv timeouts surface it
                try:
                    obj = self._decode(kind, body)
                except Exception as e:  # noqa: BLE001 - delivered to recv
                    obj = _DecodeFailure(f"message from rank {src} undecodable: {e!r}")
                self.mailbox(src, tag).put(obj)
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _decode(self, kind: int, body: bytes) -> Any:
        if kind == _KIND_PICKLE:
            return pickle.loads(body)
        if kind == _KIND_SHM:
            name, shape, dtype = pickle.loads(body)
            from ..parallel import shm as shm_mod

            seg = shm_mod.attach(name)
            try:
                count = int(np.prod(shape, dtype=np.int64))
                arr = np.frombuffer(seg.buf, dtype=np.dtype(dtype), count=count)
                out = arr.reshape(shape).copy()
                del arr
            finally:
                seg.close()
            # ownership travelled with the message: the receiver unlinks
            unlink_segment(name)
            with self._stats_lock:
                self._stats["shm_recvs"] += 1
            return out
        raise ValueError(f"unknown frame kind {kind}")

    def mailbox(self, src: int, tag: int) -> queue.Queue:
        key = (src, tag)
        with self._mail_lock:
            q = self._mail.get(key)
            if q is None:
                q = self._mail[key] = queue.Queue()
            return q

    def recv(self, src: int, tag: int, timeout: float) -> Any:
        try:
            obj = self.mailbox(src, tag).get(timeout=timeout)
        except queue.Empty as e:
            raise SpmdTimeout(src=src, dst=self.rank, tag=tag, waited_s=timeout) from e
        if isinstance(obj, _DecodeFailure):
            raise RuntimeError(obj.detail)
        return obj

    # -- send side --------------------------------------------------------
    def _edge(self, dst: int) -> tuple[socket.socket, threading.Lock]:
        with self._conn_lock:
            edge = self._conns.get(dst)
            if edge is not None:
                return edge
            path = self.sockdir / f"r{dst}.sock"
            deadline = time.monotonic() + 10.0
            while True:
                s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    s.connect(str(path))
                    break
                except (FileNotFoundError, ConnectionRefusedError):
                    s.close()
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.005)
            edge = (s, threading.Lock())
            self._conns[dst] = edge
            return edge

    def send(self, dst: int, tag: int, obj: Any) -> None:
        kind = _KIND_PICKLE
        body = None
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= self.shm_threshold
            and obj.dtype.hasobject is False
        ):
            try:
                body = self._stage_shm(obj)
                kind = _KIND_SHM
            except ShmUnavailable:
                body = None
        if body is None:
            body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            with self._stats_lock:
                self._stats["pickle_sends"] += 1
        sock, lock = self._edge(dst)
        frame = _FRAME.pack(self.rank, tag, kind, len(body))
        with lock:
            sock.sendall(frame)
            if body:
                sock.sendall(body)

    def _stage_shm(self, arr: np.ndarray) -> bytes:
        """Stage ``arr`` in a run-prefixed segment; returns the descriptor.

        Ownership transfers to the receiver (the sender keeps no
        mapping), so a receiver that dies before copy-out leaves the
        segment for the host sweep.  ``spmd.rank.shm`` kill marks fire
        *inside* this window — after the segment exists, before the
        descriptor is sent — which is exactly the leak the sweep must
        cover.
        """
        while True:
            with self._stats_lock:
                name = f"{self.run_prefix}_{self.rank}_{self._shm_seq}"
                self._shm_seq += 1
            try:
                # reprolint: ok shm-lifetime - ownership transfers to the receiver; a death in flight is reclaimed by _sweep_run_segments
                ref, block = share_array(arr, name=name, track=False)
                break
            except FileExistsError:  # pragma: no cover - stale collision
                continue
        self.shm_created.append(name)
        # release the sender's mapping without unlinking: the segment
        # now belongs to the in-flight message
        block.release()
        if self.kill_marked:
            os._exit(17)  # simulated kill -9 inside the staging window
        with self._stats_lock:
            self._stats["shm_sends"] += 1
        return pickle.dumps((name, ref.shape, ref.dtype), protocol=pickle.HIGHEST_PROTOCOL)

    def stats(self) -> dict:
        with self._stats_lock:
            return dict(self._stats)


class ProcessComm(BaseComm):
    """Communicator handle of one process rank."""

    def __init__(
        self,
        rank: int,
        size: int,
        transport: _ProcessTransport,
        default_timeout: float = DEFAULT_RECV_TIMEOUT,
    ):
        self.rank = rank
        self._size = size
        self._transport = transport
        self._default_timeout = float(default_timeout)

    @property
    def size(self) -> int:
        return self._size

    def send(self, obj: Any, dest: int, tag: int = BaseComm.DEFAULT_TAG) -> None:
        """Send a Python object; large ndarrays ride the shm data plane."""
        self._check_rank(dest)
        self._transport.send(dest, tag, obj)

    def recv(self, source: int, tag: int = BaseComm.DEFAULT_TAG, timeout: float | None = None) -> Any:
        """Blocking receive from ``source``."""
        self._check_rank(source)
        waited = self._default_timeout if timeout is None else float(timeout)
        return self._transport.recv(source, tag, waited)

    def transport_stats(self) -> dict:
        return self._transport.stats()


# ----------------------------------------------------------------------
# run reports (sweep accounting, per-rank transport stats)


@dataclass(frozen=True)
class SpmdRunReport:
    """What the most recent :func:`run_spmd` did, beyond its results."""

    fabric: str
    n_ranks: int
    wall_s: float
    n_failures: int
    swept_segments: tuple[str, ...] = ()
    rank_stats: tuple[dict | None, ...] = ()


_last_run_lock = threading.Lock()
_last_run: SpmdRunReport | None = None


def _record_run(report: SpmdRunReport) -> None:
    global _last_run
    with _last_run_lock:
        _last_run = report


def last_run_report() -> SpmdRunReport | None:
    """Report of the most recent ``run_spmd`` in this process (or None)."""
    with _last_run_lock:
        return _last_run


# ----------------------------------------------------------------------
# hosts


def run_spmd(
    fn: Callable[..., Any],
    n_ranks: int,
    *args: Any,
    fabric: str | None = None,
    recv_timeout: float = DEFAULT_RECV_TIMEOUT,
    shm_threshold: int | None = None,
    **kwargs: Any,
) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``n_ranks`` SPMD ranks.

    Returns the per-rank return values in rank order; raises
    :class:`SpmdError` (with per-rank tracebacks) if any rank raised.

    Parameters
    ----------
    fabric:
        ``"thread"`` (default; the deterministic in-process reference)
        or ``"process"`` (forked OS ranks over the socket + shared-
        memory transport).  ``None`` reads ``REPRO_SPMD_FABRIC``.
        Collectives produce identical results on both.
    recv_timeout:
        Default timeout of every blocking ``comm.recv`` (seconds);
        expired receives raise :class:`SpmdTimeout` naming src, dst,
        tag, and the wait.  Individual calls may still pass their own
        ``timeout=``.
    shm_threshold:
        Process fabric only: ndarray payloads at least this many bytes
        ship through shared memory instead of pickle
        (``None`` reads ``REPRO_SPMD_SHM_THRESHOLD``, default 64 KiB).

    Process-fabric ranks are forked, so ``fn`` may close over live
    arrays (they arrive copy-on-write); results return over a pipe and
    must be picklable.  Rank processes are daemonic: a rank must not
    fork its own process pools (in-rank codecs run their internal
    fan-outs serially — the rank is the unit of parallelism).
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if fabric is None:
        fabric = os.environ.get(_ENV_FABRIC, "thread").strip() or "thread"
    if fabric not in ("thread", "process"):
        raise ValueError(f"unknown fabric {fabric!r}; choose 'thread' or 'process'")
    if shm_threshold is None:
        shm_threshold = int(os.environ.get(_ENV_SHM_THRESHOLD, DEFAULT_SHM_THRESHOLD))
    if fabric == "process":
        return _run_spmd_process(fn, n_ranks, args, kwargs, recv_timeout, shm_threshold)
    return _run_spmd_thread(fn, n_ranks, args, kwargs, recv_timeout)


def _format_tb(e: BaseException) -> str:
    return "".join(traceback.format_exception(type(e), e, e.__traceback__))


def _run_spmd_thread(fn, n_ranks, args, kwargs, recv_timeout) -> list:
    t0 = time.perf_counter()
    fab = _ThreadFabric(n_ranks)
    results: list[Any] = [None] * n_ranks
    comms: list[ThreadComm | None] = [None] * n_ranks
    failures: dict[int, BaseException] = {}

    def runner(rank: int) -> None:
        comm = ThreadComm(rank, fab, default_timeout=recv_timeout)
        comms[rank] = comm
        try:
            faults.error_point("spmd.rank.run")
            results[rank] = fn(comm, *args, **kwargs)
        # reprolint: ok crash-swallow - recorded in failures[rank]; the host re-raises as SpmdError after join
        except BaseException as e:  # noqa: BLE001 - reported to the host
            failures[rank] = e
            fab.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(n_ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    _record_run(
        SpmdRunReport(
            fabric="thread",
            n_ranks=n_ranks,
            wall_s=time.perf_counter() - t0,
            n_failures=len(failures),
            rank_stats=tuple(
                c.transport_stats() if c is not None else None for c in comms
            ),
        )
    )
    if failures:
        raise SpmdError(failures, {r: _format_tb(e) for r, e in failures.items()})
    return results


def _rank_main(
    rank: int,
    n_ranks: int,
    sockdir: str,
    run_prefix: str,
    conn,
    fn,
    args,
    kwargs,
    recv_timeout: float,
    shm_threshold: int,
    kill_marked: bool,
) -> None:
    """Entry point of one forked rank process."""
    transport = _ProcessTransport(
        rank, n_ranks, Path(sockdir), run_prefix, shm_threshold, kill_marked
    )
    try:
        transport.start()
        conn.send(("ready", rank))
        conn.recv()  # "go": every listener is bound before any send
        comm = ProcessComm(rank, n_ranks, transport, default_timeout=recv_timeout)
        faults.error_point("spmd.rank.run")
        result = fn(comm, *args, **kwargs)
        try:
            conn.send(("ok", rank, result, transport.stats(), list(transport.shm_created)))
        except Exception as e:  # noqa: BLE001 - unpicklable result
            conn.send(
                (
                    "err",
                    rank,
                    f"rank result not picklable: {e!r}",
                    traceback.format_exc(),
                    list(transport.shm_created),
                )
            )
    # reprolint: ok crash-swallow - a forked rank has no caller: the error ships over the pipe and the host raises SpmdError
    except BaseException as e:  # noqa: BLE001 - reported to the host
        try:
            conn.send(("err", rank, repr(e), traceback.format_exc(), list(transport.shm_created)))
        except Exception:  # pragma: no cover - pipe gone with the host
            pass
    # linger until the host has collected everyone, so late peer sends
    # still find a live listener instead of a connection reset
    try:
        if conn.poll(30.0):
            conn.recv()  # "stop"
    except (EOFError, OSError):  # pragma: no cover - host died first
        pass
    transport.close()


def _sweep_run_segments(run_prefix: str, reported: set[str]) -> list[str]:
    """Unlink every still-existing segment of one run; returns the names.

    Candidates come from two sources: the names surviving ranks
    reported, and a ``/dev/shm`` scan for the run prefix — the latter
    covers ranks that died before reporting (the abnormal-death leak
    window this sweep exists for).
    """
    candidates = set(reported)
    shm_root = Path("/dev/shm")
    if shm_root.is_dir():
        try:
            candidates.update(p.name for p in shm_root.glob(f"{run_prefix}_*"))
        except OSError:  # pragma: no cover - racing teardown
            pass
    return sorted(name for name in candidates if unlink_segment(name))


def _run_spmd_process(fn, n_ranks, args, kwargs, recv_timeout, shm_threshold) -> list:
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        raise SpmdError(
            "the process fabric requires the 'fork' start method "
            "(POSIX); use fabric='thread' on this platform"
        )
    ctx = mp.get_context("fork")
    t0 = time.perf_counter()
    sockdir = tempfile.mkdtemp(prefix="rspmd-")
    run_prefix = f"rspmd{os.getpid():x}x{uuid.uuid4().hex[:6]}"
    kill_marks = faults.kill_indices("spmd.rank.shm", n_ranks)

    procs: list = []
    pipes: list = []
    results: list[Any] = [None] * n_ranks
    stats: list[dict | None] = [None] * n_ranks
    failures: dict[int, BaseException] = {}
    tracebacks: dict[int, str] = {}
    reported_segments: set[str] = set()
    try:
        for r in range(n_ranks):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            p = ctx.Process(
                target=_rank_main,
                args=(
                    r,
                    n_ranks,
                    sockdir,
                    run_prefix,
                    child_conn,
                    fn,
                    args,
                    kwargs,
                    recv_timeout,
                    shm_threshold,
                    r in kill_marks,
                ),
                daemon=True,
            )
            p.start()
            child_conn.close()
            procs.append(p)
            pipes.append(parent_conn)

        # phase 1: every rank listening before any rank may send
        ready_deadline = time.monotonic() + 60.0
        ready: set[int] = set()
        while len(ready) + len(failures) < n_ranks:
            for r in range(n_ranks):
                if r in ready or r in failures:
                    continue
                try:
                    if pipes[r].poll(0.01):
                        msg = pipes[r].recv()
                        if msg[0] == "ready":
                            ready.add(r)
                        else:  # died during import/bind
                            _absorb_err(r, msg, failures, tracebacks, reported_segments)
                        continue
                except (EOFError, OSError):
                    pass
                if not procs[r].is_alive():
                    failures[r] = RemoteRankError(
                        f"rank {r} died during startup (exitcode {procs[r].exitcode})", r
                    )
            if time.monotonic() > ready_deadline:
                for r in range(n_ranks):
                    if r not in ready and r not in failures:
                        failures[r] = RemoteRankError(f"rank {r} never became ready", r)
                break
        for r in ready:
            try:
                pipes[r].send("go")
            except (BrokenPipeError, OSError):  # pragma: no cover - died at go
                pass

        # phase 2: collect results; a failure starts a grace timer for
        # the rest (peers of a dead rank unwedge via SpmdTimeout)
        done = set(failures)
        fail_deadline: float | None = None
        while len(done) < n_ranks:
            for r in range(n_ranks):
                if r in done:
                    continue
                dead = False
                try:
                    if pipes[r].poll(0.02):
                        msg = pipes[r].recv()
                        if msg[0] == "ok":
                            _, _, results[r], stats[r], names = msg
                            reported_segments.update(names)
                        else:
                            _absorb_err(r, msg, failures, tracebacks, reported_segments)
                        done.add(r)
                        continue
                except (EOFError, OSError):
                    dead = True
                if dead or not procs[r].is_alive():
                    # drain any result that raced the exit
                    try:
                        if pipes[r].poll(0):
                            continue
                    except (EOFError, OSError):
                        pass
                    failures[r] = RemoteRankError(
                        f"rank {r} died before reporting a result "
                        f"(exitcode {procs[r].exitcode})",
                        r,
                    )
                    done.add(r)
            if failures and fail_deadline is None:
                fail_deadline = time.monotonic() + recv_timeout + 15.0
            if fail_deadline is not None and time.monotonic() > fail_deadline:
                for r in range(n_ranks):
                    if r not in done:
                        failures[r] = RemoteRankError(
                            f"rank {r} terminated: unresponsive after a peer failure", r
                        )
                        done.add(r)
                        procs[r].terminate()
                break

        for r in range(n_ranks):
            try:
                pipes[r].send("stop")
            except (BrokenPipeError, OSError):
                pass
        for p in procs:
            p.join(timeout=10.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - stuck rank
                p.terminate()
                p.join(timeout=5.0)
    finally:
        for conn in pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        swept = _sweep_run_segments(run_prefix, reported_segments)
        import shutil

        shutil.rmtree(sockdir, ignore_errors=True)
        _record_run(
            SpmdRunReport(
                fabric="process",
                n_ranks=n_ranks,
                wall_s=time.perf_counter() - t0,
                n_failures=len(failures),
                swept_segments=tuple(swept),
                rank_stats=tuple(stats),
            )
        )
    if failures:
        raise SpmdError(failures, tracebacks)
    return results


def _absorb_err(r, msg, failures, tracebacks, reported_segments) -> None:
    """Fold one ('err', rank, repr, tb[, shm_names]) message into the maps."""
    detail, tb = msg[2], msg[3]
    if len(msg) > 4:
        reported_segments.update(msg[4])
    failures[r] = RemoteRankError(detail, r, tb)
    tracebacks[r] = tb
