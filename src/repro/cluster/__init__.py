"""Cluster substrate: SPMD fabrics, node models, weak-scaling model."""

from .fabric import (
    ProcessComm,
    RemoteRankError,
    SimComm,
    SpmdError,
    SpmdRunReport,
    SpmdTimeout,
    ThreadComm,
    last_run_report,
    run_spmd,
)
from .pipeline import PipelineModel, workflow_pipeline
from .partition import BlockPlan, BlockRefactorer, plan_blocks
from .sharded import (
    ShardCodec,
    ShardedCompressor,
    ShardedFrame,
    decode_shard,
    encode_shards,
    encode_shards_spmd,
    plan_shards,
    shard_tolerance,
)
from .node import DESKTOP, NodeSpec, SUMMIT_NODE, node_speedup, partition_shape
from .scaling import (
    WeakScalingPoint,
    shape_for_bytes_2d,
    shape_for_bytes_3d,
    weak_scaling,
)

__all__ = [
    "BlockPlan",
    "BlockRefactorer",
    "DESKTOP",
    "NodeSpec",
    "PipelineModel",
    "ProcessComm",
    "RemoteRankError",
    "SUMMIT_NODE",
    "ShardCodec",
    "ShardedCompressor",
    "ShardedFrame",
    "SimComm",
    "SpmdError",
    "SpmdRunReport",
    "SpmdTimeout",
    "ThreadComm",
    "WeakScalingPoint",
    "decode_shard",
    "encode_shards",
    "encode_shards_spmd",
    "last_run_report",
    "node_speedup",
    "partition_shape",
    "plan_blocks",
    "plan_shards",
    "run_spmd",
    "shard_tolerance",
    "shape_for_bytes_2d",
    "shape_for_bytes_3d",
    "weak_scaling",
    "workflow_pipeline",
]
