"""Cluster substrate: simulated MPI, node models, weak-scaling model."""

from .pipeline import PipelineModel, workflow_pipeline
from .partition import BlockPlan, BlockRefactorer, plan_blocks
from .sharded import (
    ShardCodec,
    ShardedCompressor,
    ShardedFrame,
    decode_shard,
    encode_shards,
    plan_shards,
    shard_tolerance,
)
from .node import DESKTOP, NodeSpec, SUMMIT_NODE, node_speedup, partition_shape
from .scaling import (
    WeakScalingPoint,
    shape_for_bytes_2d,
    shape_for_bytes_3d,
    weak_scaling,
)
from .simmpi import SimComm, SpmdError, run_spmd

__all__ = [
    "BlockPlan",
    "BlockRefactorer",
    "DESKTOP",
    "NodeSpec",
    "PipelineModel",
    "SUMMIT_NODE",
    "ShardCodec",
    "ShardedCompressor",
    "ShardedFrame",
    "SimComm",
    "SpmdError",
    "WeakScalingPoint",
    "decode_shard",
    "encode_shards",
    "node_speedup",
    "partition_shape",
    "plan_blocks",
    "plan_shards",
    "run_spmd",
    "shard_tolerance",
    "shape_for_bytes_2d",
    "shape_for_bytes_3d",
    "weak_scaling",
    "workflow_pipeline",
]
