"""Iso-surface extraction metrics for the visualization showcase (§V-A).

The paper judges reduced-accuracy reconstructions by a feature of the
visualization output: "the total area of the iso-surfaces", reporting
~95 % accuracy with three of ten coefficient classes.  This module
computes that feature:

* :func:`isosurface_area` — 3D iso-surface area via *marching
  tetrahedra*: each hexahedral cell is split into six tetrahedra around
  its main diagonal; each tetrahedron contributes a triangle (one
  vertex separated) or a quad (two-two split) whose corners are linear
  edge interpolations.  Marching tetrahedra is topologically unambiguous
  (no case-table holes), which keeps the area metric stable under small
  data perturbations — exactly what an accuracy comparison needs.
* :func:`contour_length` — the 2D analogue (marching triangles).

Both are fully vectorized over cells and handle non-uniform grid
coordinates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["isosurface_area", "contour_length", "feature_accuracy"]

#: Six-tetrahedron decomposition of the unit cube around diagonal 0-7.
#: Corner ids use bit k = offset along axis k: id = dx + 2*dy + 4*dz.
_CUBE_TETS = (
    (0, 1, 3, 7),
    (0, 3, 2, 7),
    (0, 2, 6, 7),
    (0, 6, 4, 7),
    (0, 4, 5, 7),
    (0, 5, 1, 7),
)

#: The two triangles of the unit square (corners 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1)).
_SQUARE_TRIS = ((0, 1, 3), (0, 3, 2))


def _corner_arrays(field: np.ndarray, coords: list[np.ndarray]):
    """Per-corner value and coordinate arrays over all cells.

    Returns ``values[corner_id]`` with shape ``cells`` and
    ``points[corner_id]`` with shape ``cells + (ndim,)``.
    """
    ndim = field.ndim
    n_corners = 1 << ndim
    cell_shape = tuple(s - 1 for s in field.shape)
    grids = np.meshgrid(*[c for c in coords], indexing="ij")
    values = []
    points = []
    for cid in range(n_corners):
        sl = tuple(
            slice(1, None) if (cid >> k) & 1 else slice(0, -1) for k in range(ndim)
        )
        values.append(field[sl])
        points.append(np.stack([g[sl] for g in grids], axis=-1))
    assert values[0].shape == cell_shape
    return values, points


def _edge_point(pa, pb, fa, fb, iso):
    """Linear interpolation of the iso crossing on edge a-b."""
    denom = fb - fa
    t = np.where(np.abs(denom) > 0, (iso - fa) / np.where(denom == 0, 1.0, denom), 0.5)
    t = np.clip(t, 0.0, 1.0)[..., None]
    return pa + t * (pb - pa)


def _tri_area(p0, p1, p2):
    """Areas of triangles given corner stacks shaped (..., 3)."""
    c = np.cross(p1 - p0, p2 - p0)
    return 0.5 * np.linalg.norm(c, axis=-1)


def isosurface_area(
    field: np.ndarray,
    iso: float,
    coords: tuple[np.ndarray, ...] | None = None,
) -> float:
    """Total iso-surface area of a 3D field at level ``iso``."""
    if field.ndim != 3:
        raise ValueError("isosurface_area expects a 3D field")
    if coords is None:
        coords = tuple(np.arange(n, dtype=np.float64) for n in field.shape)
    values, points = _corner_arrays(field, list(coords))
    total = 0.0
    for tet in _CUBE_TETS:
        f = [values[i] for i in tet]
        p = [points[i] for i in tet]
        above = [fi > iso for fi in f]
        n_above = sum(a.astype(np.int8) for a in above)

        # one vertex separated (above or below): single triangle
        for lone in range(4):
            others = [i for i in range(4) if i != lone]
            mask_above = above[lone]
            for o in others:
                mask_above = mask_above & ~above[o]
            mask_below = ~above[lone]
            for o in others:
                mask_below = mask_below & above[o]
            mask = mask_above | mask_below
            if not mask.any():
                continue
            idx = np.nonzero(mask)
            qs = [
                _edge_point(
                    p[lone][idx], p[o][idx], f[lone][idx], f[o][idx], iso
                )
                for o in others
            ]
            total += float(_tri_area(qs[0], qs[1], qs[2]).sum())

        # two-two split: quad = two triangles
        for a, b in ((0, 1), (0, 2), (0, 3)):
            c_, d_ = [i for i in range(4) if i not in (a, b)]
            pat = above[a] & above[b] & ~above[c_] & ~above[d_]
            pat |= ~above[a] & ~above[b] & above[c_] & above[d_]
            mask = pat & (n_above == 2)
            if not mask.any():
                continue
            idx = np.nonzero(mask)
            q0 = _edge_point(p[a][idx], p[c_][idx], f[a][idx], f[c_][idx], iso)
            q1 = _edge_point(p[a][idx], p[d_][idx], f[a][idx], f[d_][idx], iso)
            q2 = _edge_point(p[b][idx], p[d_][idx], f[b][idx], f[d_][idx], iso)
            q3 = _edge_point(p[b][idx], p[c_][idx], f[b][idx], f[c_][idx], iso)
            total += float(_tri_area(q0, q1, q2).sum())
            total += float(_tri_area(q0, q2, q3).sum())
    return total


def contour_length(
    field: np.ndarray,
    iso: float,
    coords: tuple[np.ndarray, ...] | None = None,
) -> float:
    """Total iso-contour length of a 2D field at level ``iso``."""
    if field.ndim != 2:
        raise ValueError("contour_length expects a 2D field")
    if coords is None:
        coords = tuple(np.arange(n, dtype=np.float64) for n in field.shape)
    values, points = _corner_arrays(field, list(coords))
    total = 0.0
    for tri in _SQUARE_TRIS:
        f = [values[i] for i in tri]
        p = [points[i] for i in tri]
        above = [fi > iso for fi in f]
        for lone in range(3):
            others = [i for i in range(3) if i != lone]
            mask_above = above[lone] & ~above[others[0]] & ~above[others[1]]
            mask_below = ~above[lone] & above[others[0]] & above[others[1]]
            mask = mask_above | mask_below
            if not mask.any():
                continue
            idx = np.nonzero(mask)
            q0 = _edge_point(
                p[lone][idx], p[others[0]][idx], f[lone][idx], f[others[0]][idx], iso
            )
            q1 = _edge_point(
                p[lone][idx], p[others[1]][idx], f[lone][idx], f[others[1]][idx], iso
            )
            total += float(np.linalg.norm(q1 - q0, axis=-1).sum())
    return total


def feature_accuracy(approx_value: float, exact_value: float) -> float:
    """The paper's accuracy metric for a derived feature, in [0, 1]."""
    if exact_value == 0.0:
        return 1.0 if approx_value == 0.0 else 0.0
    return max(0.0, 1.0 - abs(approx_value - exact_value) / abs(exact_value))
