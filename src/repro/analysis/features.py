"""Analyst-facing feature metrics for reduced-accuracy data.

Beyond the paper's iso-surface area, analysts judge reduced data by
whether *their* derived features survive.  This module collects the
common checks, each returning an accuracy-style score in ``[0, 1]``
(1 = feature perfectly preserved), so they can be compared across class
prefixes the same way the paper compares iso-surface area:

* :func:`histogram_similarity` — value-distribution overlap (what
  histogram-based detectors see);
* :func:`extrema_preservation` — how well the global min/max survive
  (what threshold alarms see);
* :func:`mass_conservation` — relative preservation of the field's
  integral (what budget/conservation checks see);
* :func:`gradient_energy_ratio` — preserved fraction of gradient
  energy (what edge/front trackers see; fine classes carry most of it,
  so this is the *hardest* feature for a class prefix).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "histogram_similarity",
    "extrema_preservation",
    "mass_conservation",
    "gradient_energy_ratio",
    "feature_report",
]


def histogram_similarity(approx: np.ndarray, exact: np.ndarray, bins: int = 64) -> float:
    """Histogram intersection of the two fields' value distributions."""
    lo = min(float(approx.min()), float(exact.min()))
    hi = max(float(approx.max()), float(exact.max()))
    if hi <= lo:
        return 1.0
    ha, _ = np.histogram(approx, bins=bins, range=(lo, hi), density=False)
    he, _ = np.histogram(exact, bins=bins, range=(lo, hi), density=False)
    inter = np.minimum(ha, he).sum()
    return float(inter / max(he.sum(), 1))


def extrema_preservation(approx: np.ndarray, exact: np.ndarray) -> float:
    """How well the global extrema survive, relative to the data range."""
    rng = float(exact.max() - exact.min())
    if rng == 0.0:
        return 1.0
    err = max(
        abs(float(approx.max()) - float(exact.max())),
        abs(float(approx.min()) - float(exact.min())),
    )
    return max(0.0, 1.0 - err / rng)


def mass_conservation(approx: np.ndarray, exact: np.ndarray) -> float:
    """Relative preservation of the field integral (plain node sum)."""
    total = float(np.abs(exact.sum()))
    if total == 0.0:
        return 1.0 if abs(float(approx.sum())) < 1e-12 else 0.0
    return max(0.0, 1.0 - abs(float(approx.sum()) - float(exact.sum())) / total)


def gradient_energy_ratio(approx: np.ndarray, exact: np.ndarray) -> float:
    """Fraction of the exact field's gradient energy the approximation keeps."""
    def energy(f):
        total = 0.0
        for axis in range(f.ndim):
            total += float(np.sum(np.square(np.diff(f, axis=axis), dtype=np.float64)))
        return total

    e_exact = energy(exact)
    if e_exact == 0.0:
        return 1.0
    return float(min(energy(approx) / e_exact, 1.0))


def feature_report(approx: np.ndarray, exact: np.ndarray) -> dict[str, float]:
    """All feature scores at once (plus the paper's accuracy convention)."""
    return {
        "histogram": histogram_similarity(approx, exact),
        "extrema": extrema_preservation(approx, exact),
        "mass": mass_conservation(approx, exact),
        "gradient_energy": gradient_energy_ratio(approx, exact),
    }
