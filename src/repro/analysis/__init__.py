"""Analysis routines for the showcase consumers (iso-surfaces, metrics)."""

from .features import (
    extrema_preservation,
    feature_report,
    gradient_energy_ratio,
    histogram_similarity,
    mass_conservation,
)
from .isosurface import contour_length, feature_accuracy, isosurface_area
from .spectrum import class_band_energy, radial_power_spectrum

__all__ = [
    "class_band_energy",
    "contour_length",
    "extrema_preservation",
    "feature_report",
    "feature_accuracy",
    "gradient_energy_ratio",
    "histogram_similarity",
    "isosurface_area",
    "mass_conservation",
    "radial_power_spectrum",
]
