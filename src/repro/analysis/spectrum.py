"""Spectral and multilevel energy diagnostics.

Helpers for understanding *what the coefficient classes carry*: the
radially-averaged power spectrum of a field, and the spectral content
of each class's contribution to the reconstruction.  Together they show
the frequency-band interpretation of the hierarchy (class ``l`` carries
roughly the octave between the level-``l-1`` and level-``l`` Nyquist
frequencies), which is the intuition behind using class prefixes as
low-pass approximations for visualization.
"""

from __future__ import annotations

import numpy as np

from ..core.classes import CoefficientClasses

__all__ = ["radial_power_spectrum", "class_band_energy"]


def radial_power_spectrum(field: np.ndarray, n_bins: int | None = None):
    """Radially averaged power spectrum.

    Returns ``(k, power)`` where ``k`` is the bin-center wavenumber in
    cycles per domain and ``power`` the mean squared FFT magnitude of
    the bin.  Works in any dimension.
    """
    field = np.asarray(field, dtype=np.float64)
    spec = np.abs(np.fft.fftn(field)) ** 2
    freqs = np.meshgrid(
        *[np.fft.fftfreq(n) * n for n in field.shape], indexing="ij"
    )
    radius = np.sqrt(sum(f**2 for f in freqs))
    k_max = radius.max()
    if n_bins is None:
        n_bins = max(4, int(min(field.shape) // 2))
    edges = np.linspace(0.0, k_max + 1e-9, n_bins + 1)
    which = np.digitize(radius.ravel(), edges) - 1
    which = np.clip(which, 0, n_bins - 1)
    power = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    np.add.at(power, which, spec.ravel())
    np.add.at(counts, which, 1.0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    valid = counts > 0
    power[valid] /= counts[valid]
    return centers, power


def class_band_energy(cc: CoefficientClasses) -> list[dict]:
    """Spectral centroid and energy of each class's field contribution.

    The contribution of class ``l`` is ``reconstruct(≤l) - reconstruct(<l)``
    (class 0's contribution is ``reconstruct(1)`` itself).  For
    well-behaved data the spectral centroid should increase with ``l``:
    finer classes carry higher frequencies.  Returns one dict per class
    with ``energy`` (sum of squares) and ``centroid`` (power-weighted
    mean wavenumber).
    """
    out = []
    prev = None
    for k in range(1, cc.n_classes + 1):
        cur = cc.reconstruct(k)
        contrib = cur if prev is None else cur - prev
        prev = cur
        energy = float(np.sum(np.square(contrib, dtype=np.float64)))
        if energy > 0:
            kk, power = radial_power_spectrum(contrib)
            total = float(power.sum())
            centroid = float((kk * power).sum() / total) if total > 0 else 0.0
        else:
            centroid = 0.0
        out.append({"class": k - 1, "energy": energy, "centroid": centroid})
    return out
