"""Detail-coefficient computation and restoration (grid-processing kernels).

At each decomposition step the data on the level-``l`` grid is split into

* the values at the coarse nodes ``N_{l-1}`` and
* *detail coefficients* ``(I - Π_{l-1}) Q_l u`` at the nodes
  ``N_l \\ N_{l-1}``: the difference between the nodal value and its
  multi-linear interpolation from the surrounding coarse nodes.

Because the grid is a tensor product, the multi-linear interpolant
``Π_{l-1}`` factors into a composition of 1D interpolations, one per
*coarsening* dimension.  ``prolong`` applies a single 1D interpolation
along an axis; ``interpolate_coarse`` composes them; ``compute_coefficients``
and ``restore_from_coefficients`` are the forward/inverse grid-processing
kernels of the paper (§III-A.1).

The functions are exact inverses of each other by construction: the
interpolant is evaluated from the *same* coarse nodal values in both
directions, and at coarse positions the prolongation is an exact copy, so
a decompose/recompose round trip is lossless to floating-point rounding.
"""

from __future__ import annotations

import numpy as np

from .grid import LevelOps, TensorHierarchy

__all__ = [
    "prolong",
    "restrict_nodes",
    "interpolate_coarse",
    "compute_coefficients",
    "restore_from_coefficients",
    "zero_coarse_entries",
]


def prolong(vc: np.ndarray, ops: LevelOps, axis: int = -1) -> np.ndarray:
    """Piecewise-linear prolongation from the coarse to the fine grid.

    The coarse values are copied to their fine positions; each detail
    position receives the linear interpolation of its interval endpoints.
    """
    vc = np.moveaxis(vc, axis, -1)
    if vc.shape[-1] != ops.m_coarse:
        raise ValueError(f"axis length {vc.shape[-1]} does not match m_coarse={ops.m_coarse}")
    out = np.empty(vc.shape[:-1] + (ops.m_fine,), dtype=vc.dtype)
    out[..., ops.coarse_pos] = vc
    if ops.m_detail:
        interp = ops.w_left * vc[..., :-1] + ops.w_right * vc[..., 1:]
        out[..., ops.interval_detail[ops.has_detail]] = interp[..., ops.has_detail]
    return np.moveaxis(out, -1, axis)


def restrict_nodes(v: np.ndarray, ops: LevelOps, axis: int = -1) -> np.ndarray:
    """Gather the coarse-node values (injection ``N_{l-1} ⊂ N_l``)."""
    v = np.moveaxis(v, axis, -1)
    if v.shape[-1] != ops.m_fine:
        raise ValueError(f"axis length {v.shape[-1]} does not match m_fine={ops.m_fine}")
    return np.moveaxis(v[..., ops.coarse_pos], -1, axis)


def _step_ops(hier: TensorHierarchy, l: int) -> list[tuple[int, LevelOps]]:
    """(axis, ops) pairs for every dimension that coarsens at step ``l``."""
    return [(k, hier.level_ops(l, k)) for k in hier.coarsening_dims(l)]


def interpolate_coarse(vc: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
    """Multi-linear interpolation of level-``l-1`` values onto the level-``l`` grid.

    ``vc`` must have the packed shape of level ``l-1``; the result has the
    packed shape of level ``l``.  Dimensions that do not coarsen at this
    step pass through unchanged.
    """
    out = vc
    for axis, ops in _step_ops(hier, l):
        out = prolong(out, ops, axis=axis)
    return out


def compute_coefficients(v: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
    """Detail coefficients of the step ``l -> l-1``.

    Returns a full level-``l``-shaped array ``c = v - Π_{l-1} v`` that is
    exactly zero at the coarse positions (the interpolant reproduces the
    coarse values bit-for-bit), matching the paper's coefficient matrix
    ``C_l`` which "consists of computed coefficients at ``N_l \\ N_{l-1}``
    and zeros at ``N_{l-1}``".
    """
    if v.shape != hier.level_shape(l):
        raise ValueError(f"expected level-{l} shape {hier.level_shape(l)}, got {v.shape}")
    vc = v
    for axis, ops in _step_ops(hier, l):
        vc = restrict_nodes(vc, ops, axis=axis)
    c = v - interpolate_coarse(vc, hier, l)
    return c


def restore_from_coefficients(
    c: np.ndarray, vc: np.ndarray, hier: TensorHierarchy, l: int
) -> np.ndarray:
    """Inverse of :func:`compute_coefficients`.

    Given the detail coefficients ``c`` (level-``l`` shaped, zeros at
    coarse positions) and the restored coarse nodal values ``vc``
    (level-``l-1`` shaped), rebuild the level-``l`` nodal values
    ``v = c + Π_{l-1} vc``.
    """
    if vc.shape != hier.level_shape(l - 1):
        raise ValueError(
            f"expected level-{l - 1} shape {hier.level_shape(l - 1)}, got {vc.shape}"
        )
    v = c + interpolate_coarse(vc, hier, l)
    # Re-inject the coarse values exactly: c may carry noise at coarse
    # positions (e.g. quantization artefacts) that must not leak into the
    # nodal values.
    v[_coarse_open_mesh(hier, l)] = vc
    return v


def _coarse_open_mesh(hier: TensorHierarchy, l: int) -> tuple[np.ndarray, ...]:
    """Open-mesh (``np.ix_``) indexer selecting the coarse positions of level ``l``.

    Non-coarsening dimensions contribute their full index range so the
    selection always has the packed shape of level ``l - 1``.
    """
    per_dim = []
    for k, n in enumerate(hier.level_shape(l)):
        if hier.coarsens(l, k):
            per_dim.append(hier.level_ops(l, k).coarse_pos)
        else:
            per_dim.append(np.arange(n, dtype=np.intp))
    return np.ix_(*per_dim)


def zero_coarse_entries(c: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
    """Zero the coarse-position entries of a level-``l`` array in place."""
    c[_coarse_open_mesh(hier, l)] = 0.0
    return c
