"""Error control for derived quantities of interest (paper ref [7]).

Ainsworth et al.'s third paper ("quantitative control of accuracy in
derived quantities") extends refactoring-error control from norms of the
field to *linear functionals* ``Q(u) = Σ_i w_i u_i`` — averages, fluxes,
weighted integrals — which is often what scientists actually consume.
The key observation: recomposition is linear, so the error a truncated
or perturbed representation induces in ``Q`` is itself a linear
functional of the dropped/perturbed coefficients, with computable
per-class sensitivities.

``QoIAnalyzer`` computes those sensitivities *exactly* for any
user-supplied weight field by pushing the weights through the adjoint
of the reconstruction operator (implemented by reconstructing unit
perturbations class-by-class — exact because of linearity, and
affordable because it is done once per (grid, functional), independent
of the data).  It then provides:

* ``truncation_error(cc, k)`` — the *exact* error of ``Q`` under
  dropping classes ≥ k for this dataset (linearity makes it exact, not
  an estimate);
* ``quantization_bound(steps)`` — a worst-case bound on ``|Q(u) - Q(ũ)|``
  for quantized classes with the given bin widths (Hölder: sensitivity
  L1-norms times half-bins);
* ``classes_for_qoi_tolerance`` — the Figure-1 decision for a derived
  quantity instead of a norm.
"""

from __future__ import annotations

import numpy as np

from .classes import CoefficientClasses, assemble_from_classes, class_sizes
from .decompose import recompose
from .grid import TensorHierarchy

__all__ = ["QoIAnalyzer", "mean_functional", "region_average"]


def mean_functional(shape: tuple[int, ...]) -> np.ndarray:
    """Weights of the plain mean over all nodes."""
    n = 1
    for s in shape:
        n *= s
    return np.full(shape, 1.0 / n)


def region_average(shape: tuple[int, ...], region: tuple[slice, ...]) -> np.ndarray:
    """Weights of the average over a sub-region (a common analysis QoI)."""
    w = np.zeros(shape)
    w[region] = 1.0
    total = w.sum()
    if total == 0:
        raise ValueError("region selects no nodes")
    return w / total


class QoIAnalyzer:
    """Sensitivity analysis of a linear functional under refactoring.

    Parameters
    ----------
    hier:
        The grid hierarchy.
    weights:
        Functional weights, same shape as the grid: ``Q(u) = Σ w ⊙ u``.
    """

    def __init__(
        self, hier: TensorHierarchy, weights: np.ndarray, method: str = "adjoint"
    ):
        if weights.shape != hier.shape:
            raise ValueError(
                f"weights shape {weights.shape} does not match grid {hier.shape}"
            )
        if method not in ("adjoint", "basis"):
            raise ValueError("method must be 'adjoint' or 'basis'")
        self.hier = hier
        self.weights = np.asarray(weights, dtype=np.float64)
        if method == "adjoint":
            # one transposed-recomposition pass: exact and fast at any size
            from .adjoint import qoi_sensitivities

            self._sensitivities = qoi_sensitivities(self.weights, hier)
        else:
            # basis-forward oracle: obviously exact, O(N) reconstructions
            self._sensitivities = self._compute_sensitivities()

    # ------------------------------------------------------------------
    def _compute_sensitivities(self) -> list[np.ndarray]:
        """Per-class sensitivity vectors ``dQ/dc_l``.

        The map ``classes -> field`` (assemble + recompose) is linear,
        so ``(dQ/dc_l)_i = <w, reconstruct(e_{l,i})>`` for the basis
        perturbation ``e_{l,i}``.  We evaluate that definition directly:
        one reconstruction per basis coefficient.  The cost is
        ``O(N)`` reconstructions per (grid, functional) pair — done
        once, independent of how many datasets the functional is later
        applied to — and is intended for the moderate grids on which
        analysts define derived quantities.  The default ``"adjoint"``
        method (see :mod:`repro.core.adjoint`) reduces this to one pass;
        this forward-basis route remains as the obviously-exact oracle
        the adjoint is tested against.
        """
        sizes = class_sizes(self.hier)
        return [self._class_sensitivity(l, sizes) for l in range(len(sizes))]

    def _class_sensitivity(self, l: int, sizes: list[int]) -> np.ndarray:
        hier = self.hier
        size = sizes[l]
        sens = np.empty(size)
        for i in range(size):
            vals = np.zeros(size)
            vals[i] = 1.0
            classes = [
                vals if j == l else np.zeros(sizes[j]) for j in range(len(sizes))
            ]
            field = recompose(assemble_from_classes(classes, hier), hier)
            sens[i] = float(np.sum(self.weights * field))
        return sens

    # ------------------------------------------------------------------
    def sensitivity(self, l: int) -> np.ndarray:
        """``dQ/dc_l`` — the functional's gradient w.r.t. class ``l``."""
        return self._sensitivities[l]

    def evaluate(self, field: np.ndarray) -> float:
        """``Q(field)`` directly."""
        return float(np.sum(self.weights * field))

    def evaluate_from_classes(self, cc: CoefficientClasses, k: int | None = None) -> float:
        """``Q`` of the reconstruction from the first ``k`` classes —
        *without reconstructing*, via the sensitivities."""
        k = cc.n_classes if k is None else k
        total = 0.0
        for l in range(min(k, cc.n_classes)):
            total += float(np.dot(self._sensitivities[l], cc.classes[l]))
        return total

    def truncation_error(self, cc: CoefficientClasses, k: int) -> float:
        """Exact error of ``Q`` when dropping classes ``k..L`` (linearity)."""
        if not 1 <= k <= cc.n_classes:
            raise ValueError(f"k must be in [1, {cc.n_classes}], got {k}")
        err = 0.0
        for l in range(k, cc.n_classes):
            err += float(np.dot(self._sensitivities[l], cc.classes[l]))
        return abs(err)

    def quantization_bound(self, steps: list[float]) -> float:
        """Worst-case ``|Q|`` perturbation for half-bin coefficient errors."""
        if len(steps) != len(self._sensitivities):
            raise ValueError("one step per class required")
        return sum(
            0.5 * step * float(np.abs(s).sum())
            for step, s in zip(steps, self._sensitivities)
        )

    def classes_for_qoi_tolerance(self, cc: CoefficientClasses, tol: float) -> int:
        """Smallest prefix whose exact QoI truncation error ≤ ``tol``."""
        if tol < 0:
            raise ValueError("tolerance must be non-negative")
        for k in range(1, cc.n_classes + 1):
            if self.truncation_error(cc, k) <= tol:
                return k
        return cc.n_classes  # unreachable: error at k = n_classes is 0
