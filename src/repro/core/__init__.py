"""Core multigrid hierarchical data-refactoring algorithms.

The primary contribution of the reproduced paper: decomposition and
recomposition of multi-dimensional (optionally non-uniform) structured
data into progressively refinable coefficient classes.
"""

from .classes import (
    CoefficientClasses,
    assemble_from_classes,
    class_sizes,
    detail_mask,
    extract_classes,
    num_classes,
    reconstruct_from_classes,
)
from .coefficients import (
    compute_coefficients,
    interpolate_coarse,
    prolong,
    restore_from_coefficients,
    restrict_nodes,
)
from .correction import compute_correction
from .decompose import decompose, recompose, restrict_all
from .engine import Engine, NumpyEngine
from .errors import class_decay, l2, linf, psnr, rel_l2, rel_linf
from .grid import (
    Hierarchy1D,
    LevelOps,
    TensorHierarchy,
    clear_hierarchy_cache,
    dyadic_size,
    hierarchy_cache_stats,
    hierarchy_for,
    num_levels_for_size,
)
from .mass import dense_mass_matrix, mass_apply, mass_apply_coarse
from .adjoint import qoi_sensitivities, recompose_adjoint
from .qoi import QoIAnalyzer, mean_functional, region_average
from .refactor import Refactorer
from .snorm import class_snorm, classes_for_tolerance, truncation_estimate
from .solver import solve_correction, thomas_factor, thomas_solve
from .transfer import dense_transfer_matrix, transfer_apply

__all__ = [
    "CoefficientClasses",
    "Engine",
    "Hierarchy1D",
    "LevelOps",
    "NumpyEngine",
    "QoIAnalyzer",
    "Refactorer",
    "TensorHierarchy",
    "assemble_from_classes",
    "class_decay",
    "class_snorm",
    "classes_for_tolerance",
    "class_sizes",
    "clear_hierarchy_cache",
    "compute_coefficients",
    "compute_correction",
    "decompose",
    "dense_mass_matrix",
    "dense_transfer_matrix",
    "detail_mask",
    "dyadic_size",
    "extract_classes",
    "hierarchy_cache_stats",
    "hierarchy_for",
    "interpolate_coarse",
    "l2",
    "linf",
    "mass_apply",
    "mass_apply_coarse",
    "mean_functional",
    "num_classes",
    "num_levels_for_size",
    "prolong",
    "psnr",
    "qoi_sensitivities",
    "recompose",
    "recompose_adjoint",
    "region_average",
    "reconstruct_from_classes",
    "rel_l2",
    "rel_linf",
    "restore_from_coefficients",
    "restrict_all",
    "restrict_nodes",
    "solve_correction",
    "thomas_factor",
    "thomas_solve",
    "transfer_apply",
    "truncation_estimate",
]
