"""Non-uniform mass-matrix application along one axis of a packed grid.

This is the vectorized host-side reference for the paper's *mass matrix
multiplication* kernel (Algorithm 2 of Chen et al.).  The tridiagonal
piecewise-linear FEM mass matrix on a non-uniform 1D grid with spacings
``h_i = x_i - x_{i-1}`` has rows::

    (M u)[i] = h_i/6 * u[i-1] + (h_i + h_{i+1})/3 * u[i] + h_{i+1}/6 * u[i+1]

with the natural one-sided rows at the two boundary nodes.  The paper's
Algorithm 2 computes ``6 M`` (it folds the 1/6 into later stages); we keep
the mathematically-normalized ``M`` so the correction equation
``M_{l-1} z = R_l M_l c`` can be checked directly against dense linear
algebra in the tests.

All functions operate along an arbitrary ``axis`` of a multi-dimensional
array, broadcasting over every other axis.  They never modify the input.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mass_apply", "mass_apply_coarse", "dense_mass_matrix"]


def _apply_tridiagonal_weights(v: np.ndarray, h: np.ndarray, axis: int) -> np.ndarray:
    """Core stencil shared by fine- and coarse-grid mass application."""
    v = np.moveaxis(v, axis, -1)
    m = v.shape[-1]
    if m == 1:
        # Degenerate single-node axis: the 1x1 "mass" is the identity.
        return np.moveaxis(v.copy(), -1, axis)
    if h.shape[0] != m - 1:
        raise ValueError(f"spacing array of length {h.shape[0]} does not match axis size {m}")
    out = np.empty_like(v)
    hl = h[:-1]  # h_i      for interior node i = 1..m-2
    hr = h[1:]  # h_{i+1}
    out[..., 1:-1] = (
        hl * v[..., :-2] + 2.0 * (hl + hr) * v[..., 1:-1] + hr * v[..., 2:]
    ) / 6.0
    out[..., 0] = (2.0 * h[0] * v[..., 0] + h[0] * v[..., 1]) / 6.0
    out[..., -1] = (h[-1] * v[..., -2] + 2.0 * h[-1] * v[..., -1]) / 6.0
    return np.moveaxis(out, -1, axis)


def mass_apply(v: np.ndarray, h_fine: np.ndarray, axis: int = -1) -> np.ndarray:
    """Apply the level-``l`` (fine) mass matrix along ``axis``.

    Parameters
    ----------
    v:
        Packed level-``l`` data; the length of ``axis`` must be ``m_fine``.
    h_fine:
        Fine-grid spacings ``LevelOps.h_fine`` (length ``m_fine - 1``).
    axis:
        Axis along which the operator acts.
    """
    return _apply_tridiagonal_weights(v, h_fine, axis)


def mass_apply_coarse(v: np.ndarray, h_coarse: np.ndarray, axis: int = -1) -> np.ndarray:
    """Apply the level-``l-1`` (coarse) mass matrix along ``axis``."""
    return _apply_tridiagonal_weights(v, h_coarse, axis)


def dense_mass_matrix(x: np.ndarray) -> np.ndarray:
    """Dense mass matrix for validation on small grids."""
    x = np.asarray(x, dtype=np.float64)
    m = x.shape[0]
    M = np.zeros((m, m))
    if m == 1:
        M[0, 0] = 1.0
        return M
    h = np.diff(x)
    for i in range(m - 1):
        M[i, i] += h[i] / 3.0
        M[i + 1, i + 1] += h[i] / 3.0
        M[i, i + 1] += h[i] / 6.0
        M[i + 1, i] += h[i] / 6.0
    return M
