"""Transfer-matrix (load-vector restriction) along one axis.

The correction step of the refactoring algorithm needs the load vector
``f_{l-1} = R_l M_l c`` where ``R_l`` converts a functional on the fine
basis ``V_l`` into one on the coarse basis ``V_{l-1}``.  Because the
coarse hat functions are linear combinations of fine hat functions,
``R_l = P_l^T`` where ``P_l`` is the prolongation (piecewise-linear
interpolation) matrix.  On a non-uniform grid, a coarse node ``j``
(fine position ``p_j``) gathers its own fine value plus the weighted
values of the detail nodes of its two adjacent intervals::

    (R f)[j] = f[p_j] + w_right[j-1] * f[d_{j-1}] + w_left[j] * f[d_j]

with ``d_j`` the detail node inside interval ``j`` (if any) and the
interpolation weights of :class:`repro.core.grid.LevelOps`.

The inverse-direction operator (prolongation) lives in
:mod:`repro.core.coefficients` since it is also the interpolation used
to compute detail coefficients.
"""

from __future__ import annotations

import numpy as np

from .grid import LevelOps

__all__ = ["transfer_apply", "dense_transfer_matrix"]


def transfer_apply(f: np.ndarray, ops: LevelOps, axis: int = -1) -> np.ndarray:
    """Restrict a load vector from the fine to the coarse grid along ``axis``.

    Parameters
    ----------
    f:
        Packed level-``l`` load values; ``axis`` must have length
        ``ops.m_fine``.
    ops:
        Per-(dimension, level) operator data.
    axis:
        Axis along which the restriction acts.  The returned array has
        length ``ops.m_coarse`` along that axis.
    """
    f = np.moveaxis(f, axis, -1)
    if f.shape[-1] != ops.m_fine:
        raise ValueError(f"axis length {f.shape[-1]} does not match m_fine={ops.m_fine}")
    out = f[..., ops.coarse_pos].copy()
    if ops.m_detail:
        # Gather detail contributions per interval; intervals without a
        # detail node have zero weights so the clipped gather is harmless.
        detail_vals = f[..., ops.interval_detail]
        out[..., :-1] += ops.w_left * detail_vals
        out[..., 1:] += ops.w_right * detail_vals
    return np.moveaxis(out, -1, axis)


def dense_transfer_matrix(ops: LevelOps) -> np.ndarray:
    """Dense ``R_l`` for validation on small grids."""
    R = np.zeros((ops.m_coarse, ops.m_fine))
    R[np.arange(ops.m_coarse), ops.coarse_pos] = 1.0
    idx = np.nonzero(ops.has_detail)[0]
    for j in idx:
        d = ops.interval_detail[j]
        R[j, d] = ops.w_left[j]
        R[j + 1, d] = ops.w_right[j]
    return R
