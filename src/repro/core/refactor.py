"""Public high-level API: the :class:`Refactorer`.

A ``Refactorer`` binds a grid shape (and optional non-uniform
coordinates) to a hierarchy and an execution engine and exposes the three
operations downstream users need:

>>> import numpy as np
>>> from repro import Refactorer
>>> r = Refactorer((65, 65))
>>> data = np.random.default_rng(0).random((65, 65))
>>> refactored = r.decompose(data)
>>> roundtrip = r.recompose(refactored)
>>> bool(np.allclose(roundtrip, data, atol=1e-9))
True
>>> cc = r.refactor(data)                     # split into classes
>>> approx = cc.reconstruct(k=3)              # progressive recovery
>>> approx.shape
(65, 65)
"""

from __future__ import annotations

import numpy as np

from .classes import CoefficientClasses, extract_classes, num_classes
from .decompose import decompose, recompose
from .engine import Engine, NumpyEngine
from .grid import TensorHierarchy, hierarchy_for

__all__ = ["Refactorer"]


class Refactorer:
    """Multigrid hierarchical data refactoring for one grid geometry.

    Parameters
    ----------
    shape:
        Grid shape.  Any sizes ≥ 1 are supported; the paper's benchmarks
        use per-dimension sizes of the form ``2^L + 1``.
    coords:
        Optional per-dimension strictly-increasing coordinate arrays for
        non-uniformly spaced grids (``None`` entries mean uniform).
    engine:
        Execution engine; defaults to the pure NumPy reference.  Pass a
        :class:`repro.kernels.gpu_engine.GpuSimEngine` to meter the
        simulated-GPU cost of every operation.

    Hierarchies are resolved through the shared cache
    (:func:`repro.core.grid.hierarchy_for`), so constructing many
    refactorers for the same geometry — the streaming and multi-field
    pattern — builds the per-level operator data exactly once.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        coords: tuple[np.ndarray | None, ...] | None = None,
        engine: Engine | None = None,
    ):
        self.hier = hierarchy_for(tuple(shape), coords)
        self.engine = engine if engine is not None else NumpyEngine()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.hier.shape

    @property
    def levels(self) -> int:
        """Number of decomposition levels ``L``."""
        return self.hier.L

    @property
    def n_classes(self) -> int:
        """Number of coefficient classes (``L + 1``)."""
        return num_classes(self.hier)

    # ------------------------------------------------------------------
    def decompose(self, data: np.ndarray) -> np.ndarray:
        """Refactor ``data`` in the in-place multilevel layout."""
        return decompose(data, self.hier, self.engine)

    def recompose(self, refactored: np.ndarray) -> np.ndarray:
        """Invert :meth:`decompose` (lossless to fp rounding)."""
        return recompose(refactored, self.hier, self.engine)

    def refactor(self, data: np.ndarray) -> CoefficientClasses:
        """Decompose and split into coefficient classes in one call."""
        refactored = self.decompose(data)
        return CoefficientClasses(self.hier, extract_classes(refactored, self.hier))

    def reconstruct(
        self, cc: CoefficientClasses, k: int | None = None
    ) -> np.ndarray:
        """Approximation from the first ``k`` classes of ``cc``."""
        if cc.hier is not self.hier and cc.hier.shape != self.hier.shape:
            raise ValueError("coefficient classes belong to a different grid")
        return cc.reconstruct(k, self.engine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Refactorer(shape={self.shape}, levels={self.levels})"
