"""Execution-engine abstraction for the refactoring driver.

The decomposition/recomposition driver (:mod:`repro.core.decompose`) is
written once against this small interface and can then run on different
*engines*:

* :class:`NumpyEngine` — the pure vectorized host implementation (no
  performance accounting); the correctness reference.
* :class:`repro.kernels.cpu.CpuRefEngine` — same arithmetic, plus a cost
  model of the serial CPU MGARD implementation (the paper's baseline).
* :class:`repro.kernels.gpu_engine.GpuSimEngine` — kernels structured
  after the paper's grid-/linear-processing GPU frameworks, executed
  functionally and metered by the simulated-GPU cost model.

Every data-touching step of Algorithm 3 goes through an engine method so
that engines can meter the memory-copy (``MC``) and node-packing (``PN``)
traffic the paper's Table IV reports, not only the four math kernels.
"""

from __future__ import annotations

import abc

import numpy as np

from . import coefficients as _coef
from . import mass as _mass
from . import solver as _solver
from . import transfer as _transfer
from .grid import LevelOps, TensorHierarchy

__all__ = ["Engine", "NumpyEngine"]


class Engine(abc.ABC):
    """Interface the refactoring driver programs against.

    Methods mirror the paper's five kernels plus the two data-movement
    operations of Algorithm 3 (working-buffer copies and node packing).
    Implementations must be *functionally exact*: engines differ in how
    the work is scheduled and metered, never in the arithmetic result.
    """

    # -- grid-processing kernels -------------------------------------------
    @abc.abstractmethod
    def compute_coefficients(self, v: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
        """Detail coefficients ``c = (I - Π_{l-1}) v`` on the level-``l`` grid."""

    @abc.abstractmethod
    def restore_from_coefficients(
        self, c: np.ndarray, vc: np.ndarray, hier: TensorHierarchy, l: int
    ) -> np.ndarray:
        """Rebuild level-``l`` nodal values from coefficients + coarse values."""

    # -- linear-processing kernels ------------------------------------------
    #
    # The optional ``hier``/``l`` keywords identify the decomposition step
    # so cost-modeling engines can recover the *unpacked* access stride
    # (``hier.level_stride(l, axis)``) that the paper's CPU baseline and
    # naive GPU design would pay.  Pure engines ignore them.

    @abc.abstractmethod
    def mass_apply(
        self, v: np.ndarray, ops: LevelOps, axis: int,
        *, hier: TensorHierarchy | None = None, l: int | None = None,
    ) -> np.ndarray:
        """Fine mass-matrix application along ``axis``."""

    @abc.abstractmethod
    def transfer_apply(
        self, f: np.ndarray, ops: LevelOps, axis: int,
        *, hier: TensorHierarchy | None = None, l: int | None = None,
    ) -> np.ndarray:
        """Load-vector restriction along ``axis``."""

    @abc.abstractmethod
    def solve_correction(
        self, f: np.ndarray, ops: LevelOps, axis: int,
        *, hier: TensorHierarchy | None = None, l: int | None = None,
    ) -> np.ndarray:
        """Coarse mass-matrix solve along ``axis``."""

    # -- data movement --------------------------------------------------------
    @abc.abstractmethod
    def copy(self, arr: np.ndarray, *, reason: str = "copy", level: int = -1) -> np.ndarray:
        """Working-buffer copy (metered as ``MC`` in the paper's breakdown)."""

    @abc.abstractmethod
    def pack(
        self,
        full: np.ndarray,
        level_indices: tuple[np.ndarray, ...],
        *,
        reason: str = "pack",
        level: int = -1,
    ) -> np.ndarray:
        """Gather the nodes of a level into a contiguous working array (``PN``)."""

    @abc.abstractmethod
    def unpack(
        self,
        packed: np.ndarray,
        full: np.ndarray,
        level_indices: tuple[np.ndarray, ...],
        *,
        reason: str = "unpack",
        level: int = -1,
    ) -> None:
        """Scatter a packed level array back into the full-resolution array."""

    # -- correction application (fused with packing in the paper's Alg. 3) ----
    def add_correction(
        self, v: np.ndarray, z: np.ndarray, hier: TensorHierarchy, l: int
    ) -> np.ndarray:
        """Coarse nodal values ``restrict(v) + z`` of the decomposition step."""
        from .decompose import restrict_all  # local import to avoid a cycle

        return restrict_all(v, hier, l) + z

    def subtract_correction(
        self, v: np.ndarray, z: np.ndarray, hier: TensorHierarchy, l: int
    ) -> np.ndarray:
        """Undo the correction during recomposition (element-wise ``v - z``)."""
        return v - z

    # -- bookkeeping hooks ------------------------------------------------------
    def begin(self, operation: str, hier: TensorHierarchy) -> None:
        """Called by the driver before a decomposition/recomposition pass."""

    def end(self, operation: str) -> None:
        """Called by the driver after a pass completes."""


class NumpyEngine(Engine):
    """Pure NumPy reference engine — exact arithmetic, no cost accounting."""

    def compute_coefficients(self, v, hier, l):
        return _coef.compute_coefficients(v, hier, l)

    def restore_from_coefficients(self, c, vc, hier, l):
        return _coef.restore_from_coefficients(c, vc, hier, l)

    def mass_apply(self, v, ops, axis, *, hier=None, l=None):
        return _mass.mass_apply(v, ops.h_fine, axis=axis)

    def transfer_apply(self, f, ops, axis, *, hier=None, l=None):
        return _transfer.transfer_apply(f, ops, axis=axis)

    def solve_correction(self, f, ops, axis, *, hier=None, l=None):
        return _solver.solve_correction(f, ops, axis=axis)

    def copy(self, arr, *, reason="copy", level=-1):
        return arr.copy()

    def pack(self, full, level_indices, *, reason="pack", level=-1):
        return full[np.ix_(*level_indices)]

    def unpack(self, packed, full, level_indices, *, reason="unpack", level=-1):
        full[np.ix_(*level_indices)] = packed
