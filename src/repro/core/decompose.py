"""Decomposition and recomposition drivers (paper Algorithm 3).

``decompose`` walks the hierarchy from the finest grid (global level
``L``) down to the coarsest (level 0).  At every step it

1. computes the detail coefficients of the current grid,
2. scatters them into the output array at the finest-grid positions of
   the current level's nodes (coarser levels will overwrite the subset
   of positions they own, so after the loop every position holds exactly
   the payload of the *coarsest* level in which it appears — detail
   coefficients for detail nodes, nodal values for the final coarse
   nodes; this matches the in-place layout of the paper's Figure 3),
3. computes the global correction from the coefficients and adds it to
   the coarse nodal values, which become the next iteration's grid.

``recompose`` inverts the walk: from the coarsest nodal values upward it
recomputes the (deterministic) correction from the stored coefficients,
subtracts it to recover the coarse values as they were *before* the
correction, and restores the fine nodal values from the coefficients.
With all coefficients intact the round trip is bit-tight (≤ a few ulps).

The drivers never mutate their input; they allocate one output array and
one working buffer exactly like the paper's design ("the size of working
memory space is equal to the original input size").
"""

from __future__ import annotations

import numpy as np

from . import coefficients as _coef
from .correction import compute_correction
from .engine import Engine, NumpyEngine
from .grid import TensorHierarchy

__all__ = ["decompose", "recompose", "restrict_all"]


def restrict_all(v: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
    """Gather level-``l-1`` nodal values out of a packed level-``l`` array."""
    out = v
    for axis in hier.coarsening_dims(l):
        out = _coef.restrict_nodes(out, hier.level_ops(l, axis), axis=axis)
    return out


def decompose(
    data: np.ndarray,
    hier: TensorHierarchy | None = None,
    engine: Engine | None = None,
) -> np.ndarray:
    """Refactor ``data`` into its multilevel coefficient representation.

    Returns an array of the same shape holding, at each node, the detail
    coefficient of the level at which the node leaves the hierarchy (or
    the corrected nodal value for the coarsest nodes).
    """
    if hier is None:
        hier = TensorHierarchy.from_shape(data.shape)
    if engine is None:
        engine = NumpyEngine()
    data = hier.validate_array(data)
    engine.begin("decompose", hier)
    try:
        out = engine.copy(data, reason="output", level=hier.L)
        if hier.L == 0:
            return out
        v = engine.pack(out, hier.level_indices(hier.L), reason="pack-finest", level=hier.L)
        for l in range(hier.L, 0, -1):
            c = engine.compute_coefficients(v, hier, l)
            # Persist this level's coefficients; the coarse-position zeros
            # are overwritten by the coarser levels' scatters below.
            engine.unpack(c, out, hier.level_indices(l), reason="store-coefficients", level=l)
            z = compute_correction(c, hier, l, engine)
            v = engine.add_correction(v, z, hier, l)
        engine.unpack(v, out, hier.level_indices(0), reason="store-coarsest", level=0)
        return out
    finally:
        engine.end("decompose")


def recompose(
    refactored: np.ndarray,
    hier: TensorHierarchy | None = None,
    engine: Engine | None = None,
) -> np.ndarray:
    """Invert :func:`decompose`, reconstructing the original nodal values."""
    if hier is None:
        hier = TensorHierarchy.from_shape(refactored.shape)
    if engine is None:
        engine = NumpyEngine()
    refactored = hier.validate_array(refactored)
    engine.begin("recompose", hier)
    try:
        out = engine.copy(refactored, reason="output", level=hier.L)
        if hier.L == 0:
            return out
        v = engine.pack(refactored, hier.level_indices(0), reason="pack-coarsest", level=0)
        for l in range(1, hier.L + 1):
            c = engine.pack(
                refactored, hier.level_indices(l), reason="pack-coefficients", level=l
            )
            # Coarse positions of this packed read carry the payloads of
            # coarser levels (already consumed); the coefficient array used
            # for the correction must be zero there (paper: C_l has zeros
            # at N_{l-1}).
            c = _coef.zero_coarse_entries(c, hier, l)
            z = compute_correction(c, hier, l, engine)
            vc = engine.subtract_correction(v, z, hier, l)
            v = engine.restore_from_coefficients(c, vc, hier, l)
        engine.unpack(v, out, hier.level_indices(hier.L), reason="store-restored", level=hier.L)
        return out
    finally:
        engine.end("recompose")
