"""Coefficient classes: the unit of progressive storage and retrieval.

The refactored representation groups naturally into ``L + 1``
*coefficient classes* (paper §I, Figure 1):

* class 0 — the coarsest nodal values (``N_0``), tiny but carrying the
  bulk structure of the field;
* class ``l`` (``1 ≤ l ≤ L``) — the detail coefficients of the step
  ``l -> l-1``, i.e. the values at ``N_l \\ N_{l-1}``.

Classes are ordered coarse-to-fine: any *prefix* of the sequence can be
stored/transmitted and recomposed into an approximation whose accuracy
improves monotonically with the number of classes (the dropped classes
are treated as zero coefficients, which turns the recomposition into
piecewise-multilinear interpolation from the retained levels).

This module provides the mask bookkeeping, extraction, re-assembly, and
progressive reconstruction.  Sizes in bytes drive the I/O models of
:mod:`repro.io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from .decompose import recompose
from .engine import Engine
from .grid import TensorHierarchy

__all__ = [
    "num_classes",
    "detail_mask",
    "class_sizes",
    "extract_classes",
    "assemble_from_classes",
    "reconstruct_from_classes",
    "CoefficientClasses",
]


def num_classes(hier: TensorHierarchy) -> int:
    """Number of coefficient classes (``L + 1``)."""
    return hier.L + 1


def detail_mask(hier: TensorHierarchy, l: int) -> np.ndarray:
    """Boolean mask over the packed level-``l`` grid, True at detail nodes.

    A node is a detail node of step ``l`` when at least one coarsening
    dimension places it at an odd (dropped) position.
    """
    if not 1 <= l <= hier.L:
        raise ValueError(f"detail masks exist for levels 1..{hier.L}, got {l}")
    shape = hier.level_shape(l)
    per_dim: list[np.ndarray] = []
    for k, n in enumerate(shape):
        coarse = np.ones(n, dtype=bool)
        if hier.coarsens(l, k):
            coarse[:] = False
            coarse[hier.level_ops(l, k).coarse_pos] = True
        per_dim.append(coarse)
    # all-coarse = outer AND of the per-dimension coarse indicators
    ndim = len(per_dim)
    reshaped = [
        v.reshape(tuple(-1 if i == k else 1 for i in range(ndim)))
        for k, v in enumerate(per_dim)
    ]
    allcoarse = np.broadcast_to(reduce(np.logical_and, reshaped), shape)
    return ~allcoarse


def class_sizes(hier: TensorHierarchy) -> list[int]:
    """Number of values in each class, coarse-to-fine."""
    sizes = [hier.num_nodes(0)]
    for l in range(1, hier.L + 1):
        sizes.append(hier.detail_count(l))
    return sizes


def extract_classes(refactored: np.ndarray, hier: TensorHierarchy) -> list[np.ndarray]:
    """Split a refactored array into its coefficient classes.

    Values inside a class keep the C-order of the packed level grid, so
    :func:`assemble_from_classes` can invert the split exactly.
    """
    refactored = hier.validate_array(refactored)
    out = [refactored[np.ix_(*hier.level_indices(0))].ravel().copy()]
    for l in range(1, hier.L + 1):
        packed = refactored[np.ix_(*hier.level_indices(l))]
        out.append(packed[detail_mask(hier, l)].copy())
    return out


def assemble_from_classes(
    classes: list[np.ndarray],
    hier: TensorHierarchy,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Rebuild a refactored array from a *prefix* of coefficient classes.

    Missing (or ``None``) classes are treated as all-zero coefficients.
    The scatter happens fine-to-coarse so that each node ends up holding
    the payload of the coarsest level in which it appears, exactly as
    :func:`repro.core.decompose.decompose` lays the data out.
    """
    if len(classes) > num_classes(hier):
        raise ValueError(
            f"got {len(classes)} classes but hierarchy has only {num_classes(hier)}"
        )
    sizes = class_sizes(hier)
    full = np.zeros(hier.shape, dtype=dtype)
    for l in range(hier.L, 0, -1):
        shape = hier.level_shape(l)
        packed = np.zeros(shape, dtype=dtype)
        if l < len(classes) and classes[l] is not None:
            values = np.asarray(classes[l])
            if values.size != sizes[l]:
                raise ValueError(
                    f"class {l} has {values.size} values, expected {sizes[l]}"
                )
            packed[detail_mask(hier, l)] = values
        full[np.ix_(*hier.level_indices(l))] = packed
    if len(classes) >= 1 and classes[0] is not None:
        base = np.asarray(classes[0])
        if base.size != sizes[0]:
            raise ValueError(f"class 0 has {base.size} values, expected {sizes[0]}")
        full[np.ix_(*hier.level_indices(0))] = base.reshape(hier.level_shape(0))
    return full


def reconstruct_from_classes(
    classes: list[np.ndarray],
    hier: TensorHierarchy,
    engine: Engine | None = None,
) -> np.ndarray:
    """Recompose an approximation from a prefix of coefficient classes."""
    return recompose(assemble_from_classes(classes, hier), hier, engine)


@dataclass
class CoefficientClasses:
    """A refactored dataset split into coefficient classes.

    The handle users move across storage tiers: each class can be stored,
    shipped, or dropped independently; any prefix reconstructs.
    """

    hier: TensorHierarchy
    classes: list[np.ndarray]

    def __post_init__(self) -> None:
        expected = class_sizes(self.hier)
        if len(self.classes) != len(expected):
            raise ValueError(
                f"expected {len(expected)} classes, got {len(self.classes)}"
            )
        for l, (cls, size) in enumerate(zip(self.classes, expected)):
            if cls.size != size:
                raise ValueError(f"class {l} has {cls.size} values, expected {size}")

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def nbytes(self, l: int | None = None) -> int:
        """Byte size of class ``l`` (or of all classes when ``None``)."""
        if l is None:
            return sum(c.nbytes for c in self.classes)
        return self.classes[l].nbytes

    def cumulative_bytes(self) -> list[int]:
        """Cumulative byte sizes of class prefixes, coarse-to-fine."""
        out, acc = [], 0
        for c in self.classes:
            acc += c.nbytes
            out.append(acc)
        return out

    def reconstruct(self, k: int | None = None, engine: Engine | None = None) -> np.ndarray:
        """Approximation from the first ``k`` classes (all when ``None``)."""
        if k is None:
            k = self.n_classes
        if not 1 <= k <= self.n_classes:
            raise ValueError(f"k must be in [1, {self.n_classes}], got {k}")
        return reconstruct_from_classes(list(self.classes[:k]), self.hier, engine)
