"""Error metrics and multilevel diagnostics.

Companion utilities for validating refactoring quality: norms, PSNR, and
the per-class magnitude/decay statistics the Ainsworth et al. theory
predicts (detail coefficients of a smooth field shrink like ``O(h_l^2)``
— a factor ~4 per level for the dyadic hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .classes import CoefficientClasses

__all__ = [
    "linf",
    "l2",
    "rel_linf",
    "rel_l2",
    "psnr",
    "ClassDecay",
    "class_decay",
]


def linf(a: np.ndarray, b: np.ndarray | None = None) -> float:
    """Maximum absolute difference (or magnitude when ``b`` is omitted)."""
    d = a if b is None else a - b
    return float(np.max(np.abs(d))) if d.size else 0.0


def l2(a: np.ndarray, b: np.ndarray | None = None) -> float:
    """Euclidean norm of the (element-wise) difference."""
    d = a if b is None else a - b
    return float(np.sqrt(np.sum(np.square(d, dtype=np.float64))))


def rel_linf(approx: np.ndarray, exact: np.ndarray) -> float:
    """L∞ error relative to the data range of ``exact``."""
    rng = float(np.max(exact) - np.min(exact))
    err = linf(approx, exact)
    if rng == 0.0:
        return 0.0 if err == 0.0 else np.inf
    return err / rng

def rel_l2(approx: np.ndarray, exact: np.ndarray) -> float:
    """L2 error relative to the L2 norm of ``exact``."""
    denom = l2(exact)
    err = l2(approx, exact)
    if denom == 0.0:
        return 0.0 if err == 0.0 else np.inf
    return err / denom


def psnr(approx: np.ndarray, exact: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for an exact match)."""
    rng = float(np.max(exact) - np.min(exact))
    mse = float(np.mean(np.square(approx - exact, dtype=np.float64)))
    if mse == 0.0:
        return float("inf")
    if rng == 0.0:
        return -float("inf")
    return 10.0 * np.log10(rng * rng / mse)


@dataclass
class ClassDecay:
    """Per-class magnitude statistics of a refactored dataset."""

    max_abs: list[float]
    rms: list[float]

    def decay_ratios(self) -> list[float]:
        """Ratio of consecutive detail-class max magnitudes, coarse→fine.

        For smooth data each ratio should be ≲ ~0.5 (theory: ~0.25 for
        the second-order interpolation on a dyadic grid).  Class 0 (the
        nodal values) is excluded — it is not a detail class.
        """
        mags = self.max_abs[1:]
        out = []
        for a, b in zip(mags[:-1], mags[1:]):
            out.append(b / a if a > 0 else float("nan"))
        return out


def class_decay(cc: CoefficientClasses) -> ClassDecay:
    """Compute magnitude statistics of each coefficient class."""
    max_abs, rms = [], []
    for c in cc.classes:
        if c.size == 0:
            max_abs.append(0.0)
            rms.append(0.0)
            continue
        max_abs.append(float(np.max(np.abs(c))))
        rms.append(float(np.sqrt(np.mean(np.square(c, dtype=np.float64)))))
    return ClassDecay(max_abs=max_abs, rms=rms)
