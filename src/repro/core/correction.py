"""Global-correction computation (paper §II.2 and Algorithm 3 lines 6–11).

The correction ``z_{l-1}`` is the L2 projection of the detail
coefficients onto the coarse space ``V_{l-1}``; it is obtained by solving

.. math:: M_{l-1} z_{l-1} = R_l M_l \\operatorname{vec}(C_l)

Because mass, transfer, and (hence) solve operators are tensor products
of per-dimension tridiagonal/bidiagonal operators, the solve factors into
a *dimension-by-dimension* sweep: along each coarsening dimension apply
the fine mass matrix, restrict the load vector, and solve with the coarse
mass matrix.  This is exactly the order of operations in the paper's
Algorithm 3 (first dimension, then second, then third), and it is why the
paper can reuse its three 2D linear-processing kernels for 3D data.
"""

from __future__ import annotations

import numpy as np

from .engine import Engine, NumpyEngine
from .grid import TensorHierarchy

__all__ = ["compute_correction"]


def compute_correction(
    c: np.ndarray,
    hier: TensorHierarchy,
    l: int,
    engine: Engine | None = None,
) -> np.ndarray:
    """Compute the correction ``z_{l-1}`` from level-``l`` coefficients.

    Parameters
    ----------
    c:
        Level-``l``-shaped coefficient array (zeros at coarse positions).
    hier:
        The tensor hierarchy.
    l:
        Global level of the step ``l -> l-1`` (``1 <= l <= hier.L``).
    engine:
        Execution engine; defaults to the pure NumPy reference.

    Returns
    -------
    Correction with the packed shape of level ``l-1``.
    """
    if engine is None:
        engine = NumpyEngine()
    if not 1 <= l <= hier.L:
        raise ValueError(f"correction defined for levels 1..{hier.L}, got {l}")
    if c.shape != hier.level_shape(l):
        raise ValueError(f"expected level-{l} shape {hier.level_shape(l)}, got {c.shape}")
    f = c
    for axis in hier.coarsening_dims(l):
        ops = hier.level_ops(l, axis)
        f = engine.mass_apply(f, ops, axis, hier=hier, l=l)
        f = engine.transfer_apply(f, ops, axis, hier=hier, l=l)
        f = engine.solve_correction(f, ops, axis, hier=hier, l=l)
    return f
