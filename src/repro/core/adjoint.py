"""Adjoint (transpose) of the recomposition operator.

The reconstruction map ``R : refactored-array -> field`` is linear, so
any linear functional of the field, ``Q(u) = <w, u>``, satisfies
``Q(R(x)) = <R^T w, x>``: one application of the *adjoint* to the weight
field yields the functional's exact sensitivity to every stored
coefficient at once — the one-pass alternative to the basis-forward
route of :mod:`repro.core.qoi` (which the tests use as the oracle).

The adjoint is assembled from the adjoints of recomposition's per-level
stages (recompose runs, per level ``l``: correction from packed
coefficients, ``vc = v - z``, then restore).  Writing the level-``l``
stage as ``x_l = S_l(v_{l-1}, c_l)``, the adjoint runs the levels in
*reverse* (fine to coarse) pushing a cotangent ``ŵ`` of the nodal values
backwards and accumulating cotangents of each level's stored payload:

* restore ``v = c + P vc`` (with exact coarse re-injection) — adjoint:
  ``ĉ += ŵ`` at detail positions, ``v̂c += P^T ŵ_detail + ŵ_coarse``;
* ``vc = v - z``           — adjoint: ``v̂ += v̂c``, ``ẑ = -v̂c``;
* ``z = K c`` with ``K = (M_c^{-1} R M)`` per dimension — adjoint per
  dimension in reverse order: ``M^T R^T M_c^{-T} = M P M_c^{-1}``
  (mass matrices are symmetric, ``R = P^T``), all built from existing
  primitives (``solve`` with the coarse mass matrix, ``prolong``,
  ``mass_apply``);
* the correction's input is the *coarse-zeroed* packed read — adjoint:
  zero the coarse positions of ``ĉ``'s correction contribution.

The result maps the weight field to a full-shape array of sensitivities
in the in-place refactored layout; :func:`qoi_sensitivities` splits it
into per-class vectors.
"""

from __future__ import annotations

import numpy as np

from .classes import extract_classes
from .coefficients import _coarse_open_mesh, prolong, zero_coarse_entries
from .grid import TensorHierarchy
from .mass import mass_apply
from .solver import solve_correction

__all__ = ["recompose_adjoint", "qoi_sensitivities"]


def _correction_adjoint(z_hat: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
    """Adjoint of :func:`repro.core.correction.compute_correction`.

    Forward, per coarsening axis in order: ``f <- M f``, ``f <- R f``,
    ``f <- M_c^{-1} f``.  Adjoint: reverse the axes and transpose each
    factor: ``g <- M_c^{-1} g`` (symmetric), ``g <- R^T g = P g``,
    ``g <- M g`` (symmetric).
    """
    g = z_hat
    for axis in reversed(hier.coarsening_dims(l)):
        ops = hier.level_ops(l, axis)
        g = solve_correction(g, ops, axis=axis)
        g = prolong(g, ops, axis=axis)
        g = mass_apply(g, ops.h_fine, axis=axis)
    return g


def recompose_adjoint(weights: np.ndarray, hier: TensorHierarchy) -> np.ndarray:
    """Apply ``R^T`` to a weight field.

    Returns an array in the refactored in-place layout whose entry at
    each node is the sensitivity of ``<weights, recompose(.)>`` to the
    payload stored at that node.
    """
    weights = hier.validate_array(np.asarray(weights, dtype=np.float64))
    out = np.zeros(hier.shape)
    if hier.L == 0:
        return weights.copy()
    w = weights.copy()  # cotangent of the level-L nodal values
    for l in range(hier.L, 0, -1):
        mesh = _coarse_open_mesh(hier, l)
        # adjoint of restore v_l = c_l + P(vc); coarse positions carry vc
        # exactly (no c contribution there)
        c_hat = w.copy()
        c_hat[mesh] = 0.0
        # v̂c from the interpolation of detail positions + direct coarse copy
        w_detail = w.copy()
        w_detail[mesh] = 0.0
        vc_hat = _prolong_adjoint(w_detail, hier, l) + w[mesh]
        # adjoint of vc = v_{l-1} - z(c_l)
        z_hat = -vc_hat
        c_from_z = _correction_adjoint(z_hat, hier, l)
        zero_coarse_entries(c_from_z, hier, l)  # forward zeroed coarse reads
        c_hat += c_from_z
        # scatter this level's coefficient sensitivities into the output
        out[np.ix_(*hier.level_indices(l))] = c_hat
        w = vc_hat  # continue toward the coarser level
    out[np.ix_(*hier.level_indices(0))] = w
    return out


def _prolong_adjoint(w_detail: np.ndarray, hier: TensorHierarchy, l: int) -> np.ndarray:
    """Adjoint of the multilinear interpolation restricted to detail nodes.

    ``interpolate_coarse`` is the per-axis prolongation ``P = ⊗ P_k``;
    its adjoint is ``⊗ P_k^T`` = the transfer gather, which we apply via
    :func:`repro.core.transfer.transfer_apply` per coarsening axis.  The
    input must be zero at coarse positions (the restore only adds the
    interpolant at detail nodes... at coarse nodes the interpolant is
    overwritten by the exact re-injection, so those paths carry no
    sensitivity), which the caller guarantees.
    """
    from .transfer import transfer_apply

    g = w_detail
    for axis in reversed(hier.coarsening_dims(l)):
        g = transfer_apply(g, hier.level_ops(l, axis), axis=axis)
    return g


def qoi_sensitivities(
    weights: np.ndarray, hier: TensorHierarchy
) -> list[np.ndarray]:
    """Per-class sensitivity vectors of ``Q(u) = <weights, u>``.

    One adjoint pass — exact and fast even on large grids; equals the
    basis-forward sensitivities of :class:`repro.core.qoi.QoIAnalyzer`
    (tested).
    """
    layout = recompose_adjoint(weights, hier)
    return extract_classes(layout, hier)


def _self_test(hier: TensorHierarchy, rng: np.random.Generator) -> float:
    """Adjoint identity check ``<w, R x> == <R^T w, x>``; returns the gap."""
    from .decompose import recompose

    x = rng.standard_normal(hier.shape)
    w = rng.standard_normal(hier.shape)
    lhs = float(np.sum(w * recompose(x, hier)))
    rhs = float(np.sum(recompose_adjoint(w, hier) * x))
    return abs(lhs - rhs) / max(abs(lhs), 1e-30)
