"""Multilevel (s-norm) error estimation for truncated reconstructions.

The Ainsworth et al. theory behind the refactoring (paper refs [5–7])
controls reconstruction error through weighted multilevel norms: for a
decomposition with detail coefficients ``c_l`` on level-``l`` grids of
mesh size ``h_l``, the quantity

.. math:: \\|u\\|_{s}^2 \\;\\approx\\; \\sum_l h_l^{d} \\, (h_l^{-s})^2 \\sum_{i \\in N_l \\setminus N_{l-1}} c_{l,i}^2

is equivalent to the Sobolev ``H^s`` norm of the represented function
(``s = 0`` gives an L2-equivalent norm).  Because recomposition is
stable in these norms, dropping the classes above ``k`` incurs an L2
error bounded by (a constant times) the tail of the ``s = 0`` sum —
which is computable *from the coefficients alone*, before any data is
re-read.  That is what lets the paper's Figure-1 consumers pick how many
classes they need "based on accuracy requirements" without trial
reconstruction.

This module provides those computable estimates:

* :func:`class_snorm` — the per-class contribution to the s-norm;
* :func:`truncation_estimate` — the estimated L2 error of keeping only
  the first ``k`` classes (the tail sum at ``s = 0``);
* :func:`classes_for_tolerance` — the smallest prefix whose estimated
  error meets a target (the "hint" arrow of the paper's Figure 1).

Tests verify the estimate tracks the true L2 error within a modest
constant across workloads, and that it is *reliable* (monotone, and an
upper bound after scaling by the measured equivalence constant).
"""

from __future__ import annotations

import math

import numpy as np

from .classes import CoefficientClasses

__all__ = ["class_snorm", "truncation_estimate", "classes_for_tolerance"]


def _level_cell_volume(cc: CoefficientClasses, l: int) -> float:
    """Representative cell volume ``h_l^d`` of global level ``l``.

    Uses the average spacing of each dimension at its local level; for
    non-coarsening (already-coarsest) dimensions the coarsest spacing is
    used.  This is the quadrature weight that makes the coefficient sum
    mesh-independent.
    """
    hier = cc.hier
    vol = 1.0
    for k, d in enumerate(hier.dims):
        lk = hier.dim_level(l, k) if l <= hier.L else d.L
        x = d.level_coords(lk)
        if x.shape[0] > 1:
            vol *= float(x[-1] - x[0]) / (x.shape[0] - 1)
    return vol


def class_snorm(cc: CoefficientClasses, l: int, s: float = 0.0) -> float:
    """Weighted norm contribution of class ``l`` (``l ≥ 1``).

    ``s = 0`` gives the L2-equivalent weight ``h_l^d``; positive ``s``
    emphasizes fine classes (derivative control), negative ``s``
    de-emphasizes them.
    """
    if not 1 <= l < cc.n_classes:
        raise ValueError(f"detail classes are 1..{cc.n_classes - 1}, got {l}")
    values = cc.classes[l]
    if values.size == 0:
        return 0.0
    vol = _level_cell_volume(cc, l)
    ndim = cc.hier.ndim
    h = vol ** (1.0 / ndim)
    weight = vol * h ** (-2.0 * s)
    return math.sqrt(weight * float(np.sum(np.square(values, dtype=np.float64))))


def truncation_estimate(cc: CoefficientClasses, k: int, s: float = 0.0) -> float:
    """Estimated (s-norm) error of reconstructing from the first ``k`` classes.

    The root-sum-square of the dropped classes' s-norm contributions:
    the standard multilevel tail bound.  For ``s = 0`` this estimates
    the L2(domain) error; divide by ``sqrt(domain volume)`` for an RMS
    per-point figure.
    """
    if not 1 <= k <= cc.n_classes:
        raise ValueError(f"k must be in [1, {cc.n_classes}], got {k}")
    tail = 0.0
    for l in range(k, cc.n_classes):
        tail += class_snorm(cc, l, s) ** 2
    return math.sqrt(tail)


def classes_for_tolerance(cc: CoefficientClasses, tol: float, s: float = 0.0) -> int:
    """Smallest prefix length whose estimated truncation error ≤ ``tol``.

    This is the decision the paper's Figure-1 producers/consumers make
    ("user-defined storing/reading accuracy"): how many classes to move.
    Returns ``n_classes`` when even one dropped class would exceed the
    tolerance.
    """
    if tol < 0:
        raise ValueError("tolerance must be non-negative")
    for k in range(1, cc.n_classes + 1):
        if truncation_estimate(cc, k, s) <= tol:
            return k
    return cc.n_classes
