"""Tridiagonal correction solver (the paper's *solve correction* kernel).

The global correction ``z_{l-1}`` satisfies ``M_{l-1} z = f`` with the
coarse mass matrix ``M_{l-1}`` (symmetric positive definite, tridiagonal).
The paper solves with a Thomas-style forward/backward substitution; we
provide

``solve_correction``
    Batched solve along an arbitrary axis using a precomputed banded
    Cholesky factorization (LAPACK ``pbtrs`` via SciPy), the fast path.

``thomas_solve``
    A literal Thomas-algorithm implementation used by the simulated-GPU
    linear-processing kernels and as an independent cross-check of the
    SciPy path.  It mirrors the sequential data dependence the paper's
    kernel must respect and the ``O(m)`` extra diagonal buffer the paper
    reports as its only extra memory footprint.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve_banded

from .grid import LevelOps

__all__ = ["solve_correction", "thomas_solve", "thomas_factor"]


def solve_correction(f: np.ndarray, ops: LevelOps, axis: int = -1) -> np.ndarray:
    """Solve ``M_{l-1} z = f`` along ``axis`` (batched over other axes)."""
    f = np.moveaxis(f, axis, -1)
    m = f.shape[-1]
    if m != ops.m_coarse:
        raise ValueError(f"axis length {m} does not match m_coarse={ops.m_coarse}")
    if m == 1:
        return np.moveaxis(f / ops.mass_bands_coarse[1, 0], -1, axis)
    batch_shape = f.shape[:-1]
    rhs = f.reshape(-1, m).T  # (m, nrhs) as LAPACK expects
    z = cho_solve_banded((ops.chol_coarse, False), np.ascontiguousarray(rhs))
    z = z.T.reshape(*batch_shape, m)
    return np.moveaxis(z, -1, axis)


def thomas_factor(ops: LevelOps) -> tuple[np.ndarray, np.ndarray]:
    """Precompute the Thomas forward-elimination coefficients.

    Returns ``(cp, denom)`` where ``cp[i]`` is the modified superdiagonal
    and ``denom[i]`` the modified pivot, both of length ``m_coarse``.
    These depend only on the grid coordinates, so the paper precomputes
    (or streams) them; the ``O(m)`` pivot buffer is exactly the "extra
    memory footprint" the paper quantifies for this kernel.
    """
    bands = ops.mass_bands_coarse
    m = bands.shape[1]
    lower = bands[0, 1:]  # symmetric: sub-diagonal equals super-diagonal
    diag = bands[1]
    upper = bands[0, 1:]
    cp = np.zeros(m, dtype=np.float64)
    denom = np.zeros(m, dtype=np.float64)
    denom[0] = diag[0]
    if m > 1:
        cp[0] = upper[0] / diag[0]
        for i in range(1, m):
            denom[i] = diag[i] - lower[i - 1] * cp[i - 1]
            if i < m - 1:
                cp[i] = upper[i] / denom[i]
    return cp, denom


def thomas_solve(f: np.ndarray, ops: LevelOps, axis: int = -1) -> np.ndarray:
    """Batched Thomas solve of ``M_{l-1} z = f`` along ``axis``.

    A straightforward forward-elimination / back-substitution with the
    sequential dependence along the solve axis vectorized over the batch,
    matching the structure of the paper's linear-processing solver kernel.
    """
    f = np.moveaxis(f, axis, -1).astype(np.float64, copy=True)
    m = f.shape[-1]
    if m != ops.m_coarse:
        raise ValueError(f"axis length {m} does not match m_coarse={ops.m_coarse}")
    if m == 1:
        return np.moveaxis(f / ops.mass_bands_coarse[1, 0], -1, axis)
    lower = ops.mass_bands_coarse[0, 1:]
    cp, denom = thomas_factor(ops)
    f[..., 0] /= denom[0]
    for i in range(1, m):
        f[..., i] = (f[..., i] - lower[i - 1] * f[..., i - 1]) / denom[i]
    for i in range(m - 2, -1, -1):
        f[..., i] -= cp[i] * f[..., i + 1]
    return np.moveaxis(f, -1, axis)
