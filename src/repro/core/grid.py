"""Grid hierarchies for multigrid-based data refactoring.

The refactoring algorithms of Ainsworth et al. (the algorithmic core of
MGARD, and the algorithms GPU-accelerated by Chen et al., IPDPS 2021)
operate on *tensor-product* grids: a d-dimensional structured grid whose
node coordinates are the Cartesian product of d one-dimensional coordinate
arrays.  The coordinates may be non-uniformly spaced.

Each dimension carries its own *level hierarchy*: a nested family of index
sets ``N_0 ⊂ N_1 ⊂ … ⊂ N_L`` where ``N_L`` is the full index range of the
dimension.  The paper evaluates grids whose per-dimension size is
``2^L + 1``, in which case ``N_l`` contains every ``2^(L-l)``-th node and
``|N_l| = 2^l + 1``.  This module generalizes that construction to *any*
size ``n ≥ 1`` via the reduction ``n_{l-1} = floor(n_l / 2) + 1``: the
coarse set keeps the even-position nodes and, when the level size is even,
additionally keeps the final node so that every dropped (detail) node has
a coarse neighbour on both sides.  For dyadic sizes this reduces exactly
to the paper's hierarchy; for other sizes it plays the role of the
"special pre-processing decomposition" the paper alludes to in §IV.

Two classes are exported:

``Hierarchy1D``
    The per-dimension hierarchy: level sizes, per-level index sets (as
    indices into the finest array), per-level coordinates, and the
    precomputed :class:`LevelOps` operator data (interpolation weights,
    mass-matrix spacings, banded factorizations) used by every kernel.

``TensorHierarchy``
    A d-dimensional bundle of ``Hierarchy1D`` with a single *global* level
    counter.  Dimensions with shallower hierarchies simply stop coarsening
    once they reach their coarsest size (the standard MGARD convention),
    which this class encodes via :meth:`TensorHierarchy.dim_level`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np
from scipy.linalg import cholesky_banded

__all__ = [
    "LevelOps",
    "Hierarchy1D",
    "TensorHierarchy",
    "dyadic_size",
    "hierarchy_for",
    "clear_hierarchy_cache",
    "hierarchy_cache_stats",
    "num_levels_for_size",
]


def dyadic_size(L: int) -> int:
    """Return the per-dimension size ``2**L + 1`` used throughout the paper."""
    if L < 0:
        raise ValueError(f"level count must be non-negative, got {L}")
    return (1 << L) + 1


def num_levels_for_size(n: int) -> int:
    """Number of coarsening steps ``L`` for a dimension of size ``n``.

    Repeatedly applies ``n <- floor(n/2) + 1`` until the size no longer
    decreases (i.e. ``n <= 2``).  For ``n = 2^L + 1`` this returns ``L``.
    """
    if n < 1:
        raise ValueError(f"dimension size must be >= 1, got {n}")
    L = 0
    while n > 2:
        n = n // 2 + 1
        L += 1
    return L


@dataclass(frozen=True)
class LevelOps:
    """Precomputed per-(dimension, level) operator data.

    All arrays refer to the *packed* level-``l`` grid of size ``m_fine``
    (the nodes of ``N_l`` gathered contiguously) and its coarse subset of
    size ``m_coarse`` (the nodes of ``N_{l-1}``).

    Attributes
    ----------
    x_fine:
        Coordinates of the level-``l`` nodes, shape ``(m_fine,)``.
    x_coarse:
        Coordinates of the level-``l-1`` nodes, shape ``(m_coarse,)``.
    coarse_pos:
        Positions of the coarse nodes inside the packed fine array,
        shape ``(m_coarse,)``; always ``[0, 2, 4, …]`` plus, when
        ``m_fine`` is even, the trailing index ``m_fine - 1``.
    detail_pos:
        Positions of the detail nodes ``N_l \\ N_{l-1}`` inside the packed
        fine array, shape ``(m_detail,)``.
    has_detail:
        Boolean per coarse *interval* ``[coarse_pos[j], coarse_pos[j+1]]``,
        true when the interval contains an interior detail node.  Shape
        ``(m_coarse - 1,)``.
    interval_detail:
        Per-interval detail position (clipped to a valid index when the
        interval has none; mask with ``has_detail``), shape
        ``(m_coarse - 1,)``.
    w_left / w_right:
        Linear interpolation weights of each interval's detail node with
        respect to the interval's left/right coarse endpoints:
        ``u[d] ≈ w_left * u[jl] + w_right * u[jr]``.  The same weights are
        the entries of the transfer matrix ``R = P^T``.  Entries of
        intervals without a detail node are zero.
    h_fine:
        Spacings of the fine grid, ``h_fine[i] = x_fine[i+1] - x_fine[i]``,
        shape ``(m_fine - 1,)``.
    h_coarse:
        Spacings of the coarse grid, shape ``(m_coarse - 1,)``.
    mass_bands_coarse:
        The coarse mass matrix in LAPACK upper-banded form (shape
        ``(2, m_coarse)``) ready for ``scipy.linalg.cholesky_banded`` /
        ``cho_solve_banded``.
    chol_coarse:
        Cholesky factor of ``mass_bands_coarse`` (upper banded form),
        precomputed once because the matrix depends only on coordinates.
    """

    x_fine: np.ndarray
    x_coarse: np.ndarray
    coarse_pos: np.ndarray
    detail_pos: np.ndarray
    has_detail: np.ndarray
    interval_detail: np.ndarray
    w_left: np.ndarray
    w_right: np.ndarray
    h_fine: np.ndarray
    h_coarse: np.ndarray
    mass_bands_coarse: np.ndarray
    chol_coarse: np.ndarray

    @property
    def m_fine(self) -> int:
        return int(self.x_fine.shape[0])

    @property
    def m_coarse(self) -> int:
        return int(self.x_coarse.shape[0])

    @property
    def m_detail(self) -> int:
        return int(self.detail_pos.shape[0])


def _coarse_positions(m_fine: int) -> np.ndarray:
    """Local positions kept by one coarsening step of a packed array."""
    pos = np.arange(0, m_fine, 2, dtype=np.intp)
    if m_fine % 2 == 0:
        pos = np.concatenate([pos, np.asarray([m_fine - 1], dtype=np.intp)])
    return pos


def _mass_bands(x: np.ndarray) -> np.ndarray:
    """Non-uniform P1 finite-element mass matrix in upper banded form.

    The matrix is tridiagonal with rows (interior node ``i``)::

        M[i, i-1] = h_i / 6
        M[i, i]   = (h_i + h_{i+1}) / 3
        M[i, i+1] = h_{i+1} / 6

    and the natural halved diagonal at the two boundary nodes.  Banded
    storage follows LAPACK convention: row 0 holds the superdiagonal
    (shifted right by one), row 1 holds the main diagonal.
    """
    m = x.shape[0]
    bands = np.zeros((2, m), dtype=np.float64)
    if m == 1:
        bands[1, 0] = 1.0  # degenerate single-node "mass"; keeps solves well-posed
        return bands
    h = np.diff(x).astype(np.float64)
    if np.any(h <= 0):
        raise ValueError("grid coordinates must be strictly increasing")
    diag = np.zeros(m, dtype=np.float64)
    diag[:-1] += h / 3.0
    diag[1:] += h / 3.0
    bands[1, :] = diag
    bands[0, 1:] = h / 6.0
    return bands


def _build_level_ops(x_fine: np.ndarray) -> LevelOps:
    """Construct :class:`LevelOps` for one coarsening step of coordinates."""
    m_fine = x_fine.shape[0]
    coarse_pos = _coarse_positions(m_fine)
    keep = np.zeros(m_fine, dtype=bool)
    keep[coarse_pos] = True
    detail_pos = np.nonzero(~keep)[0].astype(np.intp)
    x_coarse = x_fine[coarse_pos]

    n_int = coarse_pos.shape[0] - 1
    has_detail = np.zeros(n_int, dtype=bool)
    interval_detail = np.zeros(n_int, dtype=np.intp)
    w_left = np.zeros(n_int, dtype=np.float64)
    w_right = np.zeros(n_int, dtype=np.float64)
    # With this hierarchy every interval holds zero or one detail node and
    # detail node d sits in interval j = d // 2.
    if detail_pos.shape[0]:
        j = detail_pos // 2
        has_detail[j] = True
        interval_detail[j] = detail_pos
        xl = x_fine[coarse_pos[j]]
        xr = x_fine[coarse_pos[j + 1]]
        xd = x_fine[detail_pos]
        denom = xr - xl
        w_left[j] = (xr - xd) / denom
        w_right[j] = (xd - xl) / denom

    bands = _mass_bands(x_coarse)
    chol = cholesky_banded(bands, lower=False) if x_coarse.shape[0] > 1 else bands.copy()
    h_fine = np.diff(x_fine).astype(np.float64) if m_fine > 1 else np.zeros(0)
    h_coarse = np.diff(x_coarse).astype(np.float64) if x_coarse.shape[0] > 1 else np.zeros(0)
    return LevelOps(
        x_fine=np.asarray(x_fine, dtype=np.float64),
        x_coarse=np.asarray(x_coarse, dtype=np.float64),
        coarse_pos=coarse_pos,
        detail_pos=detail_pos,
        has_detail=has_detail,
        interval_detail=interval_detail,
        w_left=w_left,
        w_right=w_right,
        h_fine=h_fine,
        h_coarse=h_coarse,
        mass_bands_coarse=bands,
        chol_coarse=chol,
    )


class Hierarchy1D:
    """Level hierarchy of a single dimension.

    Parameters
    ----------
    coords:
        Strictly increasing coordinates of the finest grid, shape ``(n,)``.
        Pass ``None`` with ``size=n`` for a uniform grid on ``[0, 1]``.
    size:
        Alternative to ``coords``: build a uniform grid with ``size`` nodes.
    """

    def __init__(self, coords: np.ndarray | None = None, *, size: int | None = None):
        if coords is None:
            if size is None:
                raise ValueError("provide either coords or size")
            if size < 1:
                raise ValueError(f"dimension size must be >= 1, got {size}")
            coords = np.linspace(0.0, 1.0, size) if size > 1 else np.zeros(1)
        coords = np.ascontiguousarray(coords, dtype=np.float64)
        if coords.ndim != 1:
            raise ValueError("coordinates must be one-dimensional")
        if coords.shape[0] > 1 and np.any(np.diff(coords) <= 0):
            raise ValueError("coordinates must be strictly increasing")
        self.coords = coords
        self.n = int(coords.shape[0])
        self.L = num_levels_for_size(self.n)

        # index[l] = finest-grid indices of the level-l node set N_l.
        index: list[np.ndarray] = [np.arange(self.n, dtype=np.intp)]
        ops: list[LevelOps] = []
        cur = coords
        cur_idx = index[0]
        for _ in range(self.L):
            lops = _build_level_ops(cur)
            ops.append(lops)
            cur_idx = cur_idx[lops.coarse_pos]
            cur = cur[lops.coarse_pos]
            index.append(cur_idx)
        index.reverse()  # index[0] = coarsest, index[L] = finest
        ops.reverse()  # ops[l-1] describes the step from level l to l-1
        self._index = index
        self._ops = ops

    # ------------------------------------------------------------------
    def size(self, l: int) -> int:
        """Number of nodes at local level ``l`` (0 = coarsest, L = finest)."""
        return int(self._index[self._check_level(l)].shape[0])

    def index(self, l: int) -> np.ndarray:
        """Finest-grid indices of the level-``l`` node set ``N_l``."""
        return self._index[self._check_level(l)]

    def level_coords(self, l: int) -> np.ndarray:
        """Coordinates of the level-``l`` nodes."""
        return self.coords[self.index(l)]

    def ops(self, l: int) -> LevelOps:
        """Operator data for the coarsening step ``l -> l-1`` (``1 <= l <= L``)."""
        if not 1 <= l <= self.L:
            raise ValueError(f"ops defined for levels 1..{self.L}, got {l}")
        return self._ops[l - 1]

    def _check_level(self, l: int) -> int:
        if not 0 <= l <= self.L:
            raise ValueError(f"level must be in [0, {self.L}], got {l}")
        return l

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hierarchy1D(n={self.n}, L={self.L})"


@dataclass
class TensorHierarchy:
    """A d-dimensional tensor-product hierarchy with a global level counter.

    The *global* number of levels is ``L = max_k L_k``.  At global level
    ``l`` a dimension ``k`` sits at its local level
    ``max(l - (L - L_k), 0)``: the deepest dimensions coarsen at every
    step while shallower dimensions join in once the global level has
    descended to their range and then stay at their coarsest size.
    """

    dims: tuple[Hierarchy1D, ...]
    _shape_cache: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_shape(
        cls,
        shape: tuple[int, ...],
        coords: tuple[np.ndarray | None, ...] | None = None,
    ) -> "TensorHierarchy":
        """Build a hierarchy for an array of the given shape.

        ``coords`` optionally supplies non-uniform coordinates per
        dimension (``None`` entries default to uniform on ``[0, 1]``).
        """
        if len(shape) == 0:
            raise ValueError("shape must have at least one dimension")
        if coords is None:
            coords = tuple(None for _ in shape)
        if len(coords) != len(shape):
            raise ValueError("coords must match shape length")
        dims = []
        for n, c in zip(shape, coords):
            if c is not None and len(c) != n:
                raise ValueError(f"coordinate array of length {len(c)} does not match dim {n}")
            dims.append(Hierarchy1D(c, size=n) if c is not None else Hierarchy1D(size=n))
        return cls(dims=tuple(dims))

    # -- basic queries ---------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(d.n for d in self.dims)

    @cached_property
    def L(self) -> int:
        """Global number of coarsening levels."""
        return max(d.L for d in self.dims)

    def dim_level(self, l: int, k: int) -> int:
        """Local level of dimension ``k`` at global level ``l``."""
        if not 0 <= l <= self.L:
            raise ValueError(f"global level must be in [0, {self.L}], got {l}")
        dk = self.dims[k]
        return max(l - (self.L - dk.L), 0)

    def coarsens(self, l: int, k: int) -> bool:
        """True when dimension ``k`` coarsens at the step ``l -> l-1``."""
        return self.dim_level(l, k) >= 1

    def level_shape(self, l: int) -> tuple[int, ...]:
        """Packed grid shape at global level ``l``."""
        if l not in self._shape_cache:
            self._shape_cache[l] = tuple(
                d.size(self.dim_level(l, k)) for k, d in enumerate(self.dims)
            )
        return self._shape_cache[l]

    def level_indices(self, l: int) -> tuple[np.ndarray, ...]:
        """Finest-grid index arrays (one per dim) of the level-``l`` node set."""
        return tuple(d.index(self.dim_level(l, k)) for k, d in enumerate(self.dims))

    def level_ops(self, l: int, k: int) -> LevelOps:
        """Operator data for dimension ``k`` at the step ``l -> l-1``.

        Only valid when :meth:`coarsens` is true for ``(l, k)``.
        """
        lk = self.dim_level(l, k)
        if lk < 1:
            raise ValueError(f"dimension {k} does not coarsen at global level {l}")
        return self.dims[k].ops(lk)

    def coarsening_dims(self, l: int) -> tuple[int, ...]:
        """Dimensions that actually coarsen at the step ``l -> l-1``."""
        return tuple(k for k in range(self.ndim) if self.coarsens(l, k))

    def level_stride(self, l: int, k: int) -> int:
        """Index stride of the level-``l`` node set of dim ``k`` in the finest grid.

        For dyadic sizes this is ``2^(L_k - l_k)``: the distance (in array
        elements along that dimension) between neighbouring level-``l``
        nodes when the data is stored *unpacked* at full resolution.  The
        CPU baseline and the "naive" GPU design pay this stride on every
        access; the paper's packed designs reduce it to 1.
        """
        idx = self.dims[k].index(self.dim_level(l, k))
        if idx.shape[0] < 2:
            return 1
        return int(idx[1] - idx[0])

    def num_nodes(self, l: int) -> int:
        """Total node count of the packed level-``l`` grid."""
        out = 1
        for s in self.level_shape(l):
            out *= s
        return out

    def detail_count(self, l: int) -> int:
        """Number of detail nodes ``N_l \\ N_{l-1}`` at the step ``l -> l-1``."""
        if not 1 <= l <= self.L:
            raise ValueError(f"detail levels are 1..{self.L}, got {l}")
        return self.num_nodes(l) - self.num_nodes(l - 1)

    def validate_array(self, data: np.ndarray) -> np.ndarray:
        """Check that ``data`` matches this hierarchy and return it as float."""
        if data.shape != self.shape:
            raise ValueError(f"data shape {data.shape} does not match hierarchy {self.shape}")
        if not np.issubdtype(data.dtype, np.floating):
            data = data.astype(np.float64)
        return data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TensorHierarchy(shape={self.shape}, L={self.L})"


# ----------------------------------------------------------------------
# shared hierarchy cache
#
# Building a TensorHierarchy precomputes every level's interpolation
# weights, banded mass matrices, and Cholesky factors — work that
# depends only on (shape, coordinates).  Streaming and multi-field
# workloads compress thousands of same-shape arrays, so the hierarchy is
# memoized here and shared by Refactorer, the compression plans, and the
# file/stream readers.


class _LruCache:
    """Thread-safe LRU memo with hit/miss counters.

    Shared by the hierarchy cache here and the plan cache in
    :mod:`repro.compress.plan`.  Concurrent misses may both build a
    value; last writer wins, which is harmless for immutable entries.
    """

    def __init__(self, max_entries: int):
        self._data: OrderedDict = OrderedDict()
        self._max = int(max_entries)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
                self._hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._misses += 1
            self._data[key] = value
            while len(self._data) > self._max:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._hits = self._misses = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._data),
                "hits": self._hits,
                "misses": self._misses,
            }


_HIER_CACHE = _LruCache(max_entries=128)


def _coords_key(coords) -> tuple | None:
    if coords is None:
        return None
    return tuple(
        None if c is None else np.ascontiguousarray(c, dtype=np.float64).tobytes()
        for c in coords
    )


def hierarchy_for(
    shape: tuple[int, ...],
    coords: tuple[np.ndarray | None, ...] | None = None,
) -> TensorHierarchy:
    """A shared, cached :class:`TensorHierarchy` for one grid geometry.

    Equivalent to :meth:`TensorHierarchy.from_shape` but memoized on
    (shape, coordinate values) with LRU eviction, so repeated
    compress/decompress of same-shape fields skips all per-geometry
    setup.  Callers must treat the returned hierarchy as immutable.
    """
    key = (tuple(int(s) for s in shape), _coords_key(coords))
    hier = _HIER_CACHE.get(key)
    if hier is None:
        hier = TensorHierarchy.from_shape(tuple(shape), coords)
        _HIER_CACHE.put(key, hier)
    return hier


def clear_hierarchy_cache() -> None:
    """Drop all cached hierarchies (and reset the hit/miss counters)."""
    _HIER_CACHE.clear()


def hierarchy_cache_stats() -> dict:
    """Snapshot of the hierarchy cache: entries, hits, misses."""
    return _HIER_CACHE.stats()
