"""Hard-coded paper numbers + machine-checkable residual report.

EXPERIMENTS.md is prose; this module is the executable version: every
quantitative claim the paper makes that our model reproduces is encoded
here with an accepted residual band, and :func:`validation_report`
re-runs the model and checks each one.  A test pins the whole table, so
any future change to the cost model that silently degrades fidelity
fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.scaling import shape_for_bytes_2d, weak_scaling
from ..gpu.analytic import model_pass_shape
from ..gpu.device import I7_9700K_CORE, POWER9_CORE, RTX2080TI, V100
from ..gpu.memory import refactoring_footprint
from ..core.grid import hierarchy_for
from ..gpu.streams import stream_sweep
from .common import format_table

__all__ = ["Claim", "PAPER_CLAIMS", "validation_report", "format_validation"]


@dataclass
class Claim:
    """One quantitative paper claim with an accepted residual band."""

    id: str
    description: str
    paper_value: float
    band: tuple[float, float]  # accepted measured/paper ratio range
    measured: float | None = None

    @property
    def ratio(self) -> float:
        return self.measured / self.paper_value

    @property
    def ok(self) -> bool:
        return self.band[0] <= self.ratio <= self.band[1]


def _gpu(shape, op="decompose", streams=1):
    from ..kernels.launches import EngineOptions

    return model_pass_shape(shape, V100, EngineOptions(n_streams=streams), op).total_seconds


def _cpu(shape, op="decompose", core=POWER9_CORE):
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    return model_pass_shape(shape, core, CPU_BASELINE_OPTIONS, op).total_seconds


def _table5(shape, node="summit", op="decompose"):
    streams = 8 if len(shape) >= 3 else 1
    if node == "summit":
        return _cpu(shape, op) / _gpu(shape, op, streams)
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    t_c = model_pass_shape(shape, I7_9700K_CORE, CPU_BASELINE_OPTIONS, op).total_seconds
    t_g = model_pass_shape(
        shape, RTX2080TI, EngineOptions(n_streams=streams), op
    ).total_seconds
    return t_c / t_g


def _extra_mem_pct(shape):
    return 100.0 * refactoring_footprint(hierarchy_for(shape)).extra_fraction


def _fig9(dims, op):
    shape = shape_for_bytes_2d(10**9) if dims == 2 else (513, 513, 513)
    return weak_scaling(shape, gpu_counts=(4096,), operation=op)[0].aggregate_tbps


def _fig8_at8():
    pts = {p.n_streams: p.speedup for p in stream_sweep((513, 513, 513), V100)}
    return pts[8]


#: (claim id, description, paper value, band, evaluator)
_CLAIM_SPECS = [
    # Table IV anchors (the calibration targets: tight bands)
    ("t4-cpu-2d", "CPU 2D 8193^2 decompose total (s)", 15.07, (0.85, 1.15),
     lambda: _cpu((8193, 8193))),
    ("t4-gpu-2d", "GPU 2D 8193^2 decompose total (s)", 4.83e-2, (0.85, 1.15),
     lambda: _gpu((8193, 8193))),
    ("t4-cpu-3d", "CPU 3D 513^3 decompose total (s)", 25.7, (0.85, 1.15),
     lambda: _cpu((513, 513, 513))),
    ("t4-gpu-3d", "GPU 3D 513^3 decompose total (s)", 0.632, (0.85, 1.15),
     lambda: _gpu((513, 513, 513))),
    # Table V end-to-end speedups (shape fidelity: wider bands)
    ("t5-8193-summit", "8193^2 Summit decompose speedup (x)", 311.18, (0.7, 1.4),
     lambda: _table5((8193, 8193))),
    ("t5-8193-desktop", "8193^2 desktop decompose speedup (x)", 102.31, (0.7, 1.4),
     lambda: _table5((8193, 8193), node="desktop")),
    ("t5-33-summit", "33^2 Summit decompose speedup (x, sub-1 crossover)", 0.30,
     (0.5, 2.5), lambda: _table5((33, 33))),
    ("t5-513cu-summit", "513^3 Summit decompose speedup (x)", 103.41, (0.6, 2.0),
     lambda: _table5((513, 513, 513))),
    # extra memory footprint: closed formula, exact
    ("mem-33", "extra memory at 33^2 (%)", 6.06, (0.99, 1.01),
     lambda: _extra_mem_pct((33, 33))),
    ("mem-513", "extra memory at 513^2 (%)", 0.39, (0.99, 1.01),
     lambda: _extra_mem_pct((513, 513))),
    ("mem-33c", "extra memory at 33^3 (%)", 0.28, (0.97, 1.03),
     lambda: _extra_mem_pct((33, 33, 33))),
    # Fig 8 / Fig 9
    ("f8-8streams", "513^3 decompose speedup at 8 streams (x)", 2.6, (0.8, 1.6),
     lambda: _fig8_at8()),
    ("f9-2d-dec", "4096-GPU 2D decompose throughput (TB/s)", 45.42, (0.7, 1.4),
     lambda: _fig9(2, "decompose")),
    ("f9-3d-dec", "4096-GPU 3D decompose throughput (TB/s)", 17.78, (0.7, 1.6),
     lambda: _fig9(3, "decompose")),
]

PAPER_CLAIMS = [
    Claim(id=i, description=d, paper_value=v, band=b) for i, d, v, b, _ in _CLAIM_SPECS
]


def validation_report() -> list[Claim]:
    """Re-run the model against every encoded paper claim."""
    out = []
    for (i, d, v, b, fn) in _CLAIM_SPECS:
        out.append(Claim(id=i, description=d, paper_value=v, band=b, measured=fn()))
    return out


def format_validation(claims: list[Claim]) -> str:
    """Text rendering of the validation report."""
    rows = [
        [
            c.id,
            c.description,
            f"{c.paper_value:g}",
            f"{c.measured:.4g}",
            f"{c.ratio:.2f}",
            f"[{c.band[0]:g}, {c.band[1]:g}]",
            "ok" if c.ok else "OUT OF BAND",
        ]
        for c in claims
    ]
    return format_table(
        ["id", "claim", "paper", "measured", "ratio", "band", "status"],
        rows,
        title="Validation against the paper's reported numbers",
    )
