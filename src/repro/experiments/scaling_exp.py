"""Figures 8 and 9: CUDA-stream speedups and weak scaling.

Thin experiment wrappers over :mod:`repro.gpu.streams` and
:mod:`repro.cluster.scaling` that produce the paper's series.
"""

from __future__ import annotations

from ..cluster.scaling import WeakScalingPoint, shape_for_bytes_2d, weak_scaling
from ..gpu.device import DeviceSpec, RTX2080TI, V100
from ..gpu.streams import StreamSweepPoint, stream_sweep
from .common import format_table

__all__ = [
    "fig8_streams",
    "format_fig8",
    "fig9_weak_scaling",
    "format_fig9",
]


def fig8_streams(
    shape: tuple[int, int, int] = (513, 513, 513),
    streams: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
) -> dict[str, list[StreamSweepPoint]]:
    """Fig. 8: stream speedups on both platforms, both operations."""
    out = {}
    for device, tag in ((RTX2080TI, "desktop"), (V100, "summit")):
        for operation in ("decompose", "recompose"):
            out[f"{tag}/{operation}"] = stream_sweep(shape, device, streams, operation)
    return out


def format_fig8(sweeps: dict[str, list[StreamSweepPoint]]) -> str:
    """Text rendering of the Fig. 8 sweeps."""
    headers = ["config"] + [f"{p.n_streams} streams" for p in next(iter(sweeps.values()))]
    rows = [
        [key] + [f"{p.speedup:.2f}x" for p in pts] for key, pts in sweeps.items()
    ]
    return format_table(
        headers, rows, title="Fig 8: speedup from CUDA streams on 3D data (513^3, modeled)"
    )


def fig9_weak_scaling(
    gpu_counts: tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096),
    per_gpu_bytes: int = 10**9,
    device: DeviceSpec = V100,
) -> dict[str, list[WeakScalingPoint]]:
    """Fig. 9: aggregate refactoring throughput, 1 GB per GPU."""
    shape_2d = shape_for_bytes_2d(per_gpu_bytes)
    shape_3d = (513, 513, 513)  # the paper's ~1 GB 3D partition
    out = {}
    for shape, tag in ((shape_2d, "2D"), (shape_3d, "3D")):
        for operation in ("decompose", "recompose"):
            out[f"{tag}/{operation}"] = weak_scaling(
                shape, gpu_counts, device, operation
            )
    return out


def format_fig9(curves: dict[str, list[WeakScalingPoint]]) -> str:
    """Text rendering of the Fig. 9 curves."""
    headers = ["config"] + [f"{p.n_gpus} GPUs" for p in next(iter(curves.values()))]
    rows = [
        [key] + [f"{p.aggregate_tbps:.2f}" for p in pts] for key, pts in curves.items()
    ]
    return format_table(
        headers, rows, title="Fig 9: aggregate throughput (TB/s) at scale, 1 GB per GPU (modeled)"
    )
