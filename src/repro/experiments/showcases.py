"""Figures 10 and 11: the two showcases.

Fig. 10 — scientific-visualization workflow: write/read cost of a 4 TB
dataset versus the number of coefficient classes kept, with GPU or CPU
refactoring, plus the functional small-scale accuracy demo (iso-surface
area versus classes), plus the *measured* streaming-write pipeline
(refactor→encode→write executed with real overlap and compared against
the analytic makespan).

Fig. 11 — MGARD lossy compression: per-stage time breakdown with the
refactoring (and quantization) on the CPU versus offloaded to the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compress.mgard import MgardCompressor
from ..core.grid import hierarchy_for
from ..gpu.device import CpuSpec, DeviceSpec, POWER9_CORE, V100
from ..io.workflow import (
    MeasuredPipeline,
    WorkflowPoint,
    model_workflow,
    run_streaming_pipeline,
    run_workflow_demo,
)
from ..workloads.grayscott import simulate
from .common import format_seconds, format_table

__all__ = [
    "fig10_workflow",
    "format_fig10",
    "fig10_accuracy_demo",
    "fig10_measured_pipeline",
    "format_fig10_pipeline",
    "Fig11Row",
    "fig11_mgard",
    "format_fig11",
]


def fig10_workflow(
    ks: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    n_writers: int = 4096,
    n_readers: int = 512,
) -> dict[str, list[WorkflowPoint]]:
    """Fig. 10 cost model: 4 TB write (4096 procs) and read (512 procs)."""
    out = {}
    for use_gpu, tag in ((True, "gpu"), (False, "cpu")):
        out[f"write/{tag}"] = model_workflow(
            n_processes=n_writers, operation="write", use_gpu=use_gpu, ks=ks
        )
        out[f"read/{tag}"] = model_workflow(
            n_processes=n_readers, operation="read", use_gpu=use_gpu, ks=ks
        )
    return out


def format_fig10(curves: dict[str, list[WorkflowPoint]]) -> str:
    """Text rendering of the Fig. 10 cost curves."""
    headers = ["config"] + [f"k={p.k_classes}" for p in next(iter(curves.values()))]
    rows = []
    for key, pts in curves.items():
        rows.append([key] + [format_seconds(p.total_seconds) for p in pts])
    lines = [
        format_table(
            headers,
            rows,
            title="Fig 10: end-to-end I/O cost (refactor + PFS) vs classes kept, 4 TB (modeled)",
        )
    ]
    sizes = curves[next(iter(curves))]
    lines.append(
        "stored bytes per k: "
        + ", ".join(f"k={p.k_classes}:{p.bytes_stored / 1e12:.3f}TB" for p in sizes)
    )
    return "\n".join(lines)


def fig10_accuracy_demo(
    shape: tuple[int, ...] = (65, 65, 65),
    steps: int = 800,
    iso: float | None = None,
) -> list:
    """Functional accuracy-vs-classes demo (the paper's ~95 % with 3/10).

    Runs Gray–Scott, refactors, and measures iso-surface-area accuracy
    for every class prefix.  Returns :class:`repro.io.workflow.DemoResult`.
    """
    field = simulate(shape, steps=steps, params="stripes")
    if iso is None:
        iso = float(0.25 * field.max() + 0.75 * field.min())
    return run_workflow_demo(field, iso)


def fig10_measured_pipeline(
    shape: tuple[int, ...] | None = None,
    n_steps: int | None = None,
    executor: str | None = None,
    sim_steps: int | None = None,
    mode: str = "refactored",
    backend: str = "huffman",
    key_interval: int = 4,
    codec_executor: str | None = None,
    shards: int | None = None,
) -> MeasuredPipeline:
    """The Fig. 10 streaming write, executed with measured overlap.

    A short Gray–Scott sequence flows through the three-stage chain of
    ``mode`` (``refactored``: refactor→encode→write; ``compressed``:
    predict→encode→write with closed-loop temporal prediction) over a
    live :class:`~repro.io.stream.StepStreamWriter`, scheduled through
    :func:`repro.cluster.pipeline.run_pipeline`; the measured stage
    overlap is paired with the analytic
    :meth:`~repro.cluster.pipeline.PipelineModel.makespan` of a model
    calibrated from the serial run.  ``executor=None`` picks a small
    thread pool (the pipeline needs one thread per stage to overlap);
    ``codec_executor`` schedules the compressed mode's entropy-stage
    fan-out — or, with ``shards > 1``, the sharded chain's per-shard
    encode fan-out (shard → encode → write over shard-partitioned
    steps).  ``shape``/``n_steps``/``sim_steps`` default by
    ``REPRO_BENCH_SCALE`` (``ci``: 17³ × 5 steps; otherwise 33³ × 8) —
    the single scale knob the CLI, the CI smoke step, and
    ``benchmarks/bench_fig10_pipeline.py`` all share.
    """
    import os

    ci = os.environ.get("REPRO_BENCH_SCALE") == "ci"
    if shape is None:
        side = 17 if ci else 33
        shape = (side, side, side)
    if n_steps is None:
        n_steps = 5 if ci else 8
    if sim_steps is None:
        sim_steps = 60 if ci else 200
    base = simulate(shape, steps=sim_steps, params="stripes")
    drift = np.roll(base, 1, axis=0) * 0.02
    frames = [base + t * drift for t in range(n_steps)]
    if executor is None:
        executor = "thread:4"
    return run_streaming_pipeline(
        frames,
        executor=executor,
        mode=mode,
        backend=backend,
        key_interval=key_interval,
        codec_executor=codec_executor,
        shards=shards,
    )


def format_fig10_pipeline(m: MeasuredPipeline) -> str:
    """Text rendering of the measured-vs-modeled pipeline comparison."""
    per_stage = ", ".join(
        f"{name}={format_seconds(sec)}"
        for name, sec in zip(m.stage_names, m.stage_seconds)
    )
    rows = [
        [
            "measured",
            format_seconds(m.serial_wall),
            format_seconds(m.pipelined_wall),
            f"{m.measured_overlap_gain:.2f}x",
        ],
        [
            "modeled",
            format_seconds(m.modeled_sequential),
            format_seconds(m.modeled_makespan),
            f"{m.modeled_overlap_gain:.2f}x",
        ],
    ]
    table = format_table(
        ["", "sequential", "pipelined", "overlap gain"],
        rows,
        title=(
            f"Fig 10 streaming write, executed ({m.mode} mode"
            + (f", {m.shards} shards/step" if m.shards else "")
            + f"): {m.n_steps} steps, stages {per_stage} "
            f"(bottleneck: {m.bottleneck})"
        ),
    )
    return "\n".join(
        [
            table,
            f"executor: {m.executor}; {m.bytes_written} bytes committed "
            "through the live stream writer",
        ]
    )


# ----------------------------------------------------------------------
# Fig 11: MGARD compression breakdown
# ----------------------------------------------------------------------

@dataclass
class Fig11Row:
    """Per-stage times of one compressor configuration."""

    config: str
    operation: str
    refactor_s: float
    quantize_s: float
    entropy_s: float
    transfer_s: float
    compression_ratio: float

    @property
    def total(self) -> float:
        return self.refactor_s + self.quantize_s + self.entropy_s + self.transfer_s


def fig11_mgard(
    shape: tuple[int, ...] = (129, 129, 129),
    tol_rel: float = 1e-3,
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
    steps: int = 400,
) -> list[Fig11Row]:
    """Fig. 11: MGARD stage breakdown, CPU refactoring vs GPU offload.

    Functional end to end on Gray–Scott data; refactor/quantize stage
    times come from the metered engines (the modeled hardware times the
    figure is about), the entropy stage (zlib, always on the CPU in the
    paper) is measured for real and rescaled to the baseline CPU's
    speed.
    """
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CpuRefEngine, GpuSimEngine

    data = simulate(shape, steps=steps, params="spots")
    rng = float(data.max() - data.min()) or 1.0
    tol = tol_rel * rng
    hier = hierarchy_for(shape)
    gpu_opts = EngineOptions(n_streams=8 if len(shape) >= 3 else 1)
    rows = []
    for tag, engine in (
        ("CPU", CpuRefEngine(cpu)),
        ("GPU-offload", GpuSimEngine(device, gpu_opts)),
    ):
        comp = MgardCompressor(hier, tol, engine=engine)
        blob = comp.compress(data)
        t = blob.times
        rows.append(
            Fig11Row(
                config=tag,
                operation="compress",
                refactor_s=t.refactor_modeled or t.refactor_wall,
                quantize_s=t.quantize_modeled or t.quantize_wall,
                entropy_s=t.entropy_wall,
                transfer_s=t.transfer_modeled or 0.0,
                compression_ratio=blob.compression_ratio(),
            )
        )
        back = comp.decompress(blob)
        err = float(np.max(np.abs(back - data)))
        if err > tol:
            raise AssertionError(f"error bound violated: {err} > {tol}")
        t = blob.times
        rows.append(
            Fig11Row(
                config=tag,
                operation="decompress",
                refactor_s=t.refactor_modeled or t.refactor_wall,
                quantize_s=t.quantize_modeled or t.quantize_wall,
                entropy_s=t.entropy_wall,
                transfer_s=t.transfer_modeled or 0.0,
                compression_ratio=blob.compression_ratio(),
            )
        )
    return rows


def format_fig11(rows: list[Fig11Row]) -> str:
    """Text rendering of the Fig. 11 breakdown."""
    table_rows = [
        [
            r.config,
            r.operation,
            format_seconds(r.refactor_s),
            format_seconds(r.quantize_s),
            format_seconds(r.entropy_s),
            format_seconds(r.transfer_s),
            format_seconds(r.total),
            f"{r.compression_ratio:.1f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["config", "op", "refactor", "quantize", "entropy", "transfer", "total", "ratio"],
        table_rows,
        title="Fig 11: MGARD lossy compression stage breakdown (refactor/quantize modeled)",
    )
