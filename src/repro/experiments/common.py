"""Shared helpers for the experiment generators.

Each ``repro.experiments`` module regenerates one of the paper's tables
or figures and returns both structured data and a formatted text block
(the same rows/series the paper reports).  ``bench scale`` switches
between CI-friendly sizes and the paper's full sizes via the
``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["bench_scale", "Scale", "format_table", "format_seconds", "SCALES"]


@dataclass(frozen=True)
class Scale:
    """Grid sizes used by the experiment harness at one scale setting."""

    name: str
    side_2d: int  # largest 2D side (paper: 8193)
    side_3d: int  # largest 3D side (paper: 513)
    sweep_2d: tuple[int, ...]
    sweep_3d: tuple[int, ...]
    fig7_side: int  # paper: 4097
    gpus_max: int  # paper: 4096


SCALES = {
    "ci": Scale(
        name="ci",
        side_2d=1025,
        side_3d=129,
        sweep_2d=(33, 65, 129, 257, 513, 1025),
        sweep_3d=(33, 65, 129),
        fig7_side=1025,
        gpus_max=4096,
    ),
    "paper": Scale(
        name="paper",
        side_2d=8193,
        side_3d=513,
        sweep_2d=(33, 65, 129, 257, 513, 1025, 2049, 4097, 8193),
        sweep_3d=(33, 65, 129, 257, 513),
        fig7_side=4097,
        gpus_max=4096,
    ),
}


def bench_scale() -> Scale:
    """Scale selected by ``REPRO_BENCH_SCALE`` (``paper`` default, or ``ci``).

    Note that *modeled* experiments (every table/figure generator in
    this package) are shape-only and run the paper scale instantly; the
    scale mainly matters for benchmarks that also execute functionally.
    """
    name = os.environ.get("REPRO_BENCH_SCALE", "paper").lower()
    if name not in SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}")
    return SCALES[name]


def format_seconds(t: float) -> str:
    """Human-scaled seconds for table cells."""
    if t == 0:
        return "0"
    if t < 1e-3:
        return f"{t * 1e6:.1f}us"
    if t < 1:
        return f"{t * 1e3:.2f}ms"
    return f"{t:.2f}s"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)
