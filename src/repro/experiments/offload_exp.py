"""Offload break-even experiment (paper §I's qualitative claim, quantified).

Models in-situ CPU refactoring against GPU offload (transfers included)
across grid sizes, locating the break-even point on both platforms.
"""

from __future__ import annotations

from ..gpu.device import I7_9700K_CORE, POWER9_CORE, RTX2080TI, V100
from ..gpu.offload import OffloadPoint, offload_breakeven
from .common import format_seconds, format_table

__all__ = ["offload_experiment", "format_offload"]


def offload_experiment(ndim: int = 2) -> dict[str, tuple[int | None, list[OffloadPoint]]]:
    """Break-even sweeps for both platforms (2D by default)."""
    sides = (17, 33, 65, 129, 257, 513, 1025, 2049, 4097)
    if ndim == 3:
        sides = (9, 17, 33, 65, 129, 257, 513)
    out = {}
    for device, cpu, tag in (
        (V100, POWER9_CORE, "summit (NVLink)"),
        (RTX2080TI, I7_9700K_CORE, "desktop (PCIe)"),
    ):
        out[tag] = offload_breakeven(sides, ndim=ndim, device=device, cpu=cpu)
    return out


def format_offload(result: dict[str, tuple[int | None, list[OffloadPoint]]]) -> str:
    """Text rendering of the offload break-even sweeps."""
    blocks = []
    for tag, (side, pts) in result.items():
        rows = [
            [
                "x".join(str(s) for s in p.shape),
                format_seconds(p.cpu_seconds),
                format_seconds(p.transfer_seconds),
                format_seconds(p.gpu_seconds),
                f"{p.offload_speedup:.2f}x",
                "yes" if p.worthwhile else "no",
            ]
            for p in pts
        ]
        title = (
            f"Offload analysis on {tag} — break-even at "
            f"{side if side is not None else 'never'}"
        )
        blocks.append(
            format_table(
                ["input", "in-situ CPU", "transfers", "GPU pass", "speedup", "offload?"],
                rows,
                title=title,
            )
        )
    return "\n\n".join(blocks)
