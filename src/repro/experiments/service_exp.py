"""Service experiment: measured tail latency of the network front-end.

The serving layer's performance claims — request coalescing, decode
caching, bounded backpressure — measured the way every other hot path
in this repo is: as a structured record (``service_experiment``) with a
paper-style text block (``format_service``).

**Load generation** is open-loop: ``readers`` concurrent clients draw
Poisson arrivals at a combined ``rate_hz`` and fire without waiting for
earlier replies, while a live writer keeps appending steps through
``put_step`` — the follower workload of the paper's
producer→storage→consumer showcase.  Latency is measured from each
request's *scheduled* arrival, so queueing delay is charged to the
server (no coordinated omission).  The mix models real consumers:
mostly the newest step (what followers want — and exactly what
coalesces), some random back-catalog steps, regions, and progressive-
precision levels.

The same load runs against two server configurations:

* **batched** — micro-batching on, decoded-step LRU on (the default);
* **naive** — ``batching=False``, ``cache_bytes=0``: every request
  decodes on its own.

The record's ``speedup`` block is naive/batched per percentile; the
benchmark gate (``bench_service --assert-speedup``) enforces ≥2x on
p99 under concurrency.

**Chaos case** — the server runs as a real subprocess, is SIGKILLed
mid-stream, and restarted on the same port; a
:class:`~repro.service.client.ServiceClient` must reconnect
transparently, re-read pre-kill steps exactly, and resume ingest until
reads converge on post-restart appends.
"""

from __future__ import annotations

import asyncio
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from ..io.stream import StepStreamWriter
from ..service.client import AsyncServiceClient, ServiceClient
from ..service.protocol import BusyError, RemoteError
from ..service.server import CompressionService, ServiceConfig, serve

__all__ = ["service_experiment", "format_service"]


def _frames(shape, n, seed=0):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.standard_normal(shape), axis=0)
    drift = rng.standard_normal(shape) * 0.05
    return [base + t * drift for t in range(n)]


def _percentiles(samples_s: list[float]) -> dict:
    if not samples_s:
        return {"p50": None, "p99": None, "p999": None, "mean": None, "max": None}
    ms = np.asarray(samples_s) * 1e3
    p50, p99, p999 = np.percentile(ms, [50, 99, 99.9])
    return {
        "p50": float(p50),
        "p99": float(p99),
        "p999": float(p999),
        "mean": float(ms.mean()),
        "max": float(ms.max()),
    }


class _ServerThread:
    """An in-process :class:`CompressionService` on its own event loop.

    The load generator owns the main thread's loop; the server gets a
    background one — requests still cross a real TCP socket, so framing,
    scheduling, and zero-copy writes are all exercised for real.
    """

    def __init__(self, config: ServiceConfig):
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._fail: BaseException | None = None
        self.svc: CompressionService | None = None
        self._thread = threading.Thread(
            target=self._run, args=(config,), daemon=True, name="repro-service"
        )
        self._thread.start()
        if not self._started.wait(30):
            raise RuntimeError("service thread never came up")
        if self._fail is not None:
            raise self._fail

    def _run(self, config: ServiceConfig) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self.svc = self._loop.run_until_complete(serve(config))
        # reprolint: ok crash-swallow - stored in self._fail; __init__ re-raises it after the startup wait
        except BaseException as e:  # surface bind/config errors to the caller
            self._fail = e
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()

    @property
    def port(self) -> int:
        return self.svc.port

    def stop(self) -> None:
        async def _shutdown():
            await self.svc.stop()
            others = [
                t for t in asyncio.all_tasks() if t is not asyncio.current_task()
            ]
            for t in others:
                t.cancel()
            await asyncio.gather(*others, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(15)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(15)
        self.svc.close()


async def _load(
    port: int,
    *,
    readers: int,
    duration_s: float,
    rate_hz: float,
    shape,
    prepop: int,
    extra_steps: int,
    levels: int,
    seed: int = 7,
) -> dict:
    """Open-loop load against a running server; returns raw counters."""
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    sheds = errors = 0
    latest = prepop - 1  # newest step the writer has confirmed

    async def writer_task():
        nonlocal latest
        frames = _frames(shape, prepop + extra_steps, seed=1)
        client = await AsyncServiceClient(port=port).connect()
        try:
            pause = duration_s / max(extra_steps, 1)
            for i in range(extra_steps):
                await asyncio.sleep(pause)
                idx = await client.put_step(frames[prepop + i])
                latest = max(latest, idx)
        except (ConnectionError, RemoteError, BusyError):
            pass  # the load's reads, not ingest, are under test here
        finally:
            await client.close()

    async def one(client, kind, scheduled):
        nonlocal sheds, errors
        try:
            if kind == "newest":
                # wait= rides the server-side backoff follower path
                await client.get_step(latest, wait=2.0)
            elif kind == "old":
                await client.get_step(int(rng.integers(prepop)))
            elif kind == "region":
                n0 = shape[0]
                lo = int(rng.integers(max(n0 - 4, 1)))
                await client.get_region(
                    int(rng.integers(prepop)), [[lo, min(lo + 4, n0)]]
                )
            else:  # progressive level
                await client.get_step(
                    int(rng.integers(prepop)),
                    level=int(rng.integers(1, levels + 1)),
                )
            latencies.append(loop.time() - scheduled)
        except BusyError:
            sheds += 1
        except (ConnectionError, RemoteError):
            errors += 1

    rng = np.random.default_rng(seed)

    async def reader_task(idx):
        client = await AsyncServiceClient(port=port).connect()
        pending: set[asyncio.Task] = set()
        try:
            period = readers / rate_hz  # per-reader mean inter-arrival
            t0 = loop.time()
            sched = t0
            while True:
                sched = sched + float(rng.exponential(period))
                if sched - t0 > duration_s:
                    break
                now = loop.time()
                if sched > now:
                    await asyncio.sleep(sched - now)
                r = rng.random()
                kind = (
                    "newest"
                    if r < 0.6
                    else "old"
                    if r < 0.8
                    else "region"
                    if r < 0.9
                    else "level"
                )
                t = asyncio.ensure_future(one(client, kind, sched))
                pending.add(t)
                t.add_done_callback(pending.discard)
            if pending:
                await asyncio.wait(pending, timeout=10)
        finally:
            for t in pending:
                t.cancel()
            await client.close()

    wt = asyncio.ensure_future(writer_task())
    t_start = loop.time()
    await asyncio.gather(*[reader_task(i) for i in range(readers)])
    wall = loop.time() - t_start
    wt.cancel()
    try:
        await wt
    except (asyncio.CancelledError, Exception):
        pass
    async with AsyncServiceClient(port=port) as c:
        server_stats = await c.stats()
    return {
        "latencies": latencies,
        "sheds": sheds,
        "errors": errors,
        "wall_s": wall,
        "server": server_stats,
    }


def _run_mode(
    batched: bool, *, shape, prepop, readers, duration_s, rate_hz, extra_steps
) -> dict:
    """One full load run against a fresh server in the given mode."""
    with tempfile.TemporaryDirectory() as d:
        root = Path(d) / "stream"
        writer = StepStreamWriter(root, shape)
        for f in _frames(shape, prepop):
            writer.append(f)
        levels = len(writer._steps[0]["truncation_estimates"])
        server = _ServerThread(
            ServiceConfig(
                root=root,
                port=0,
                batching=batched,
                cache_bytes=(256 << 20) if batched else 0,
            )
        )
        try:
            raw = asyncio.run(
                _load(
                    server.port,
                    readers=readers,
                    duration_s=duration_s,
                    rate_hz=rate_hz,
                    shape=shape,
                    prepop=prepop,
                    extra_steps=extra_steps,
                    levels=levels,
                )
            )
        finally:
            server.stop()
    ok = len(raw["latencies"])
    stats = raw["server"]
    return {
        "batched": batched,
        "requests_ok": ok,
        "sheds": raw["sheds"],
        "errors": raw["errors"],
        "wall_s": raw["wall_s"],
        "throughput_rps": ok / raw["wall_s"] if raw["wall_s"] else 0.0,
        "latency_ms": _percentiles(raw["latencies"]),
        "coalesce_rate": stats["batcher"]["coalesce_rate"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "server_shed": stats["shed"],
        "server_errors": stats["errors"],
    }


# ----------------------------------------------------------------------
# chaos: SIGKILL the server subprocess mid-stream, reconnect, converge


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spawn_server(root: Path, port: int) -> subprocess.Popen:
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.server",
            str(root),
            "--port",
            str(port),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_ready(port: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with ServiceClient(port=port, reconnect=0, timeout=5) as c:
                if c.ping():
                    return
        except OSError:
            time.sleep(0.1)
    raise RuntimeError(f"server on port {port} never became ready")


def _chaos_case(shape) -> dict:
    """Kill a live server subprocess; the client must reconnect and
    converge (pre-kill steps exact, post-restart ingest resumes)."""
    frames = _frames(shape, 6, seed=3)
    with tempfile.TemporaryDirectory() as d:
        root = Path(d) / "stream"
        port = _free_port()
        proc = _spawn_server(root, port)
        try:
            _wait_ready(port)
            client = ServiceClient(
                port=port, reconnect=60, reconnect_delay=0.05, timeout=15
            )
            for i in range(3):
                client.put_step(frames[i], time=float(i))
            pre_ok = bool(np.allclose(client.get_step(2), frames[2]))
            proc.kill()
            proc.wait()
            t0 = time.perf_counter()
            proc = _spawn_server(root, port)
            # transparent reconnect: the next idempotent request blocks
            # through the restart window, then must be served exactly
            survived = bool(np.allclose(client.get_step(1), frames[1]))
            reconnect_s = time.perf_counter() - t0
            idxs = [client.put_step(frames[i], time=float(i)) for i in range(3, 6)]
            converged = client.wait_step(idxs[-1], timeout=10) and bool(
                np.allclose(client.get_step(idxs[-1]), frames[5])
            )
            n_after = client.info()["n_steps"]
            reconnects = client.reconnects
            client.close()
            return {
                "pre_kill_read_ok": pre_ok,
                "read_after_kill_ok": survived,
                "converged": bool(converged),
                "reconnects": reconnects,
                "reconnect_s": reconnect_s,
                "steps_before_kill": 3,
                "steps_after": n_after,
            }
        finally:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------


def service_experiment(
    *,
    shape: tuple[int, ...] | None = None,
    readers: int | None = None,
    duration_s: float | None = None,
    rate_hz: float | None = None,
    chaos: bool = True,
) -> dict:
    """Run the full service load (both modes) + chaos; structured record."""
    ci = os.environ.get("REPRO_BENCH_SCALE") == "ci"
    if shape is None:
        shape = (17, 16, 16) if ci else (33, 32, 32)
    if readers is None:
        readers = 8 if ci else 16
    if duration_s is None:
        duration_s = 1.5 if ci else 5.0
    if rate_hz is None:
        rate_hz = 150.0 if ci else 300.0
    prepop = 4 if ci else 8
    extra = 3 if ci else 6
    kwargs = dict(
        shape=shape,
        prepop=prepop,
        readers=readers,
        duration_s=duration_s,
        rate_hz=rate_hz,
        extra_steps=extra,
    )
    batched = _run_mode(True, **kwargs)
    naive = _run_mode(False, **kwargs)

    def _ratio(p):
        b, n = batched["latency_ms"][p], naive["latency_ms"][p]
        return float(n / b) if b and n else None

    rec = {
        "config": {
            "shape": list(shape),
            "readers": readers,
            "duration_s": duration_s,
            "rate_hz": rate_hz,
            "prepop_steps": prepop,
            "live_steps": extra,
            "cpu_count": os.cpu_count(),
        },
        "batched": batched,
        "naive": naive,
        "speedup": {
            "p50_x": _ratio("p50"),
            "p99_x": _ratio("p99"),
            "p999_x": _ratio("p999"),
            "throughput_x": (
                batched["throughput_rps"] / naive["throughput_rps"]
                if naive["throughput_rps"]
                else None
            ),
        },
    }
    if chaos:
        rec["chaos"] = _chaos_case((9, 8, 8) if ci else (17, 16, 16))
    return rec


def format_service(rec: dict) -> str:
    """Text block for one :func:`service_experiment` record."""
    cfg = rec["config"]
    lines = [
        f"service load on {tuple(cfg['shape'])}: {cfg['readers']} readers, "
        f"{cfg['rate_hz']:.0f} req/s open-loop for {cfg['duration_s']:.1f}s "
        f"(writer live, {cfg['cpu_count']} cpus):"
    ]
    for name in ("batched", "naive"):
        m = rec[name]
        lat = m["latency_ms"]
        lines.append(
            f"  {name:8s} {m['throughput_rps']:7.1f} req/s  "
            f"p50 {lat['p50']:.2f} ms  p99 {lat['p99']:.2f} ms  "
            f"p99.9 {lat['p999']:.2f} ms  "
            f"(coalesce {m['coalesce_rate']:.0%}, cache {m['cache_hit_rate']:.0%}, "
            f"shed {m['sheds']}, errors {m['errors']})"
        )
    sp = rec["speedup"]
    lines.append(
        f"  speedup (naive/batched): p50 {sp['p50_x']:.1f}x  "
        f"p99 {sp['p99_x']:.1f}x  p99.9 {sp['p999_x']:.1f}x"
    )
    ch = rec.get("chaos")
    if ch:
        flag = "ok " if ch["read_after_kill_ok"] and ch["converged"] else "FAIL"
        lines.append(
            f"  chaos [{flag}] SIGKILL mid-stream: reconnected in "
            f"{ch['reconnect_s']:.2f}s ({ch['reconnects']} attempts), "
            f"pre-kill reads exact {ch['read_after_kill_ok']}, "
            f"converged on {ch['steps_after']} steps"
        )
    return "\n".join(lines)
