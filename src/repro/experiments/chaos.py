"""Chaos experiment: measured fault recovery across the streaming stack.

Everything PR 6 hardens is exercised here *as an experiment*, with the
same structure the paper-figure generators use (structured record +
``format_chaos`` text block), so recovery behaviour is a measured,
regression-trackable quantity rather than a claim:

1. **Writer-crash matrix** — a producer is killed (via
   :mod:`repro.faults` crash points) at every commit-path crash site,
   for every stream mode.  After each death the stream is reopened,
   scrubbed (:func:`repro.io.scrub.scrub_stream`), fully re-read, and
   appended to — the recovery *rate* is the fraction of (site × mode)
   cells that come back with zero corrupt visible steps.
2. **Corrupt-read recovery** — step files of a compressed stream are
   bit-flipped on disk; every step is then read back with the default
   ``on_error="recover"`` policy, classifying each read as *exact*,
   *degraded* (an earlier chain state was served), or *lost*.  The
   added latency of recovery is measured against a clean read sweep.
3. **Worker-kill fan-out** — a shard encode over the process backend
   with injected worker deaths, measuring the pool-rebuild retry's
   added latency over the undisturbed encode (payloads must match).
4. **Durability cost** — per-step append latency of
   ``durability="fsync"`` over the default ``"rename"``.

Shapes are deliberately small: the point is failure *handling*, not
throughput, and the full matrix must stay cheap enough for CI.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from .. import faults
from ..io.scrub import scrub_stream
from ..io.stream import StepStreamReader, StepStreamWriter, StreamError

__all__ = ["chaos_experiment", "format_chaos"]

#: every producer-side crash site in the commit path
CRASH_SITES = (
    "stream.step.pre_tmp",
    "stream.step.post_tmp",
    "stream.commit.post_rename",
    "stream.manifest.pre_flush",
    "stream.manifest.post_tmp",
)

#: stream mode → StepStreamWriter kwargs
MODES = {
    "refactored": {},
    "compressed": {"tol": 1e-3, "key_interval": 4},
    "sharded": {"tol": 1e-3, "shards": 2},
}


def _frames(shape, n, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape)
    drift = rng.normal(size=shape) * 0.05
    return [base + t * drift for t in range(n)]


def _crash_cell(shape, mode: str, site: str, steps_before: int = 2) -> dict:
    """One (mode × site) cell of the writer-crash matrix."""
    kwargs = MODES[mode]
    frames = _frames(shape, steps_before + 2)
    with tempfile.TemporaryDirectory() as d:
        root = Path(d) / "stream"
        writer = StepStreamWriter(root, shape, **kwargs)
        for f in frames[:steps_before]:
            writer.append(f)
        crashed = False
        try:
            with faults.inject(f"crash@{site}:count=1"):
                writer.append(frames[steps_before])
        except faults.InjectedCrash:
            crashed = True
        # the dead producer's stream: reopen, scrub, re-read, append
        report = scrub_stream(root)
        writer = StepStreamWriter(root, shape, **kwargs)
        visible = writer.n_steps
        reader = StepStreamReader(root)
        readable = 0
        for s in range(len(reader.steps)):
            try:
                reader.read_region(s)
                readable += 1
            except Exception:
                pass
        writer.append(frames[steps_before + 1])
        reader.refresh()
        reader.read_region(len(reader.steps) - 1)
        return {
            "mode": mode,
            "site": site,
            "crashed": crashed,
            "visible_steps": visible,
            "readable_steps": readable,
            "scrub_clean": report.clean,
            "stale_tmps": len(report.stale_tmps),
            "orphans": len(report.orphans),
            "recovered": report.clean and readable == visible,
        }


def _corrupt_read_recovery(shape, n_steps: int = 10, corrupt=(3, 7)) -> dict:
    """Bit-flip committed steps, read everything back under recovery."""
    frames = _frames(shape, n_steps)
    with tempfile.TemporaryDirectory() as d:
        root = Path(d) / "stream"
        writer = StepStreamWriter(root, shape, tol=1e-3, key_interval=4)
        for f in frames:
            writer.append(f)

        def _sweep() -> float:
            t0 = time.perf_counter()
            for s in range(n_steps):
                r = StepStreamReader(root)
                try:
                    r.read_step(s)
                except StreamError:
                    pass
            return time.perf_counter() - t0

        clean_s = _sweep()
        rng = np.random.default_rng(1)
        for s in corrupt:
            path = root / f"step_{s:06d}.mgz"
            blob = bytearray(path.read_bytes())
            blob[int(rng.integers(len(blob)))] ^= 0xFF
            path.write_bytes(bytes(blob))
        exact = degraded = lost = 0
        t0 = time.perf_counter()
        for s in range(n_steps):
            r = StepStreamReader(root)
            try:
                r.read_step(s)
            except StreamError:
                lost += 1
                continue
            if r.last_recovery is None or not r.last_recovery.degraded:
                exact += 1
            else:
                degraded += 1
        chaos_s = time.perf_counter() - t0
        return {
            "n_steps": n_steps,
            "corrupted": list(corrupt),
            "exact": exact,
            "degraded": degraded,
            "lost": lost,
            "clean_sweep_s": clean_s,
            "chaos_sweep_s": chaos_s,
            "added_latency_s": chaos_s - clean_s,
        }


def _worker_kill(shape, n_shards: int = 4) -> dict:
    """Shard encode through a process pool with injected worker deaths."""
    from ..cluster.sharded import ShardCodec, encode_shards, plan_shards
    from ..parallel.executors import ProcessExecutor

    data = _frames(shape, 1)[0]
    plan = plan_shards(shape, n_shards)
    codec = ShardCodec(tol=1e-3)

    ex = ProcessExecutor(max_workers=2)
    t0 = time.perf_counter()
    reference = encode_shards(data, plan, codec, ex)
    clean_s = time.perf_counter() - t0
    ex.shutdown()

    ex = ProcessExecutor(max_workers=2)
    with faults.inject("kill@executor.process.map:count=1"):
        t0 = time.perf_counter()
        payloads = encode_shards(data, plan, codec, ex)
        kill_s = time.perf_counter() - t0
    stats = dict(ex.stats)
    ex.shutdown()
    return {
        "n_shards": n_shards,
        "payloads_match": payloads == reference,
        "clean_encode_s": clean_s,
        "kill_encode_s": kill_s,
        "added_latency_s": kill_s - clean_s,
        "executor_stats": stats,
    }


def _durability_cost(shape, n_steps: int = 4) -> dict:
    """Per-step append latency: fsync durability over plain rename."""
    frames = _frames(shape, n_steps)
    out = {}
    for level in ("rename", "fsync"):
        with tempfile.TemporaryDirectory() as d:
            writer = StepStreamWriter(
                Path(d) / "stream", shape, durability=level
            )
            t0 = time.perf_counter()
            for f in frames:
                writer.append(f)
            out[level] = (time.perf_counter() - t0) / n_steps
    return {
        "steps": n_steps,
        "rename_step_s": out["rename"],
        "fsync_step_s": out["fsync"],
        "overhead_x": out["fsync"] / max(out["rename"], 1e-12),
    }


def chaos_experiment(shape: tuple[int, ...] | None = None) -> dict:
    """Run the full chaos matrix; returns the structured record."""
    if shape is None:
        shape = (9, 8) if os.environ.get("REPRO_BENCH_SCALE") == "ci" else (17, 16)
    cells = [
        _crash_cell(shape, mode, site)
        for mode in MODES
        for site in CRASH_SITES
    ]
    recovered = sum(c["recovered"] for c in cells)
    return {
        "shape": list(shape),
        "crash_matrix": {
            "cells": cells,
            "recovered": recovered,
            "total": len(cells),
            "recovery_rate": recovered / len(cells),
        },
        "corrupt_read": _corrupt_read_recovery(shape),
        "worker_kill": _worker_kill(shape),
        "durability": _durability_cost(shape),
    }


def format_chaos(rec: dict) -> str:
    """Text block for one :func:`chaos_experiment` record."""
    cm = rec["crash_matrix"]
    lines = [
        f"writer-crash matrix on {tuple(rec['shape'])} "
        f"({len(MODES)} modes x {len(CRASH_SITES)} crash sites):",
    ]
    for cell in cm["cells"]:
        flag = "ok " if cell["recovered"] else "FAIL"
        lines.append(
            f"  [{flag}] {cell['mode']:10s} {cell['site']:28s} "
            f"visible {cell['visible_steps']} readable {cell['readable_steps']}"
            + ("" if cell["scrub_clean"] else "  scrub: NOT CLEAN")
        )
    lines.append(
        f"  recovery rate: {cm['recovered']}/{cm['total']} "
        f"({cm['recovery_rate']:.0%})"
    )
    cr = rec["corrupt_read"]
    lines.append(
        f"corrupt-read recovery ({len(cr['corrupted'])} of {cr['n_steps']} "
        f"steps bit-flipped): {cr['exact']} exact, {cr['degraded']} degraded, "
        f"{cr['lost']} lost; added latency "
        f"{cr['added_latency_s'] * 1e3:+.1f} ms over a clean sweep"
    )
    wk = rec["worker_kill"]
    lines.append(
        f"worker-kill shard encode ({wk['n_shards']} shards): payloads match "
        f"{wk['payloads_match']}, pool rebuilds "
        f"{wk['executor_stats'].get('rebuilds', 0)}, added latency "
        f"{wk['added_latency_s'] * 1e3:+.1f} ms"
    )
    du = rec["durability"]
    lines.append(
        f"durability: rename {du['rename_step_s'] * 1e3:.1f} ms/step, "
        f"fsync {du['fsync_step_s'] * 1e3:.1f} ms/step "
        f"({du['overhead_x']:.2f}x)"
    )
    return "\n".join(lines)
