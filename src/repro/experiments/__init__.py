"""Experiment generators: one module per paper table/figure.

Every generator returns structured data plus a ``format_*`` text block
with the same rows/series the paper reports.  The benchmark harness
(``benchmarks/``), the CLI (``repro-bench``), and EXPERIMENTS.md all
draw from these functions, so the numbers in all three always agree.
"""

from .ablations import ablation_sweep, format_ablations
from .chaos import chaos_experiment, format_chaos
from .breakdown import format_table4, table4_breakdown
from .common import SCALES, Scale, bench_scale, format_seconds, format_table
from .endtoend import (
    format_table5,
    format_table6,
    table5_end_to_end,
    table6_node_level,
)
from .paper_values import PAPER_CLAIMS, format_validation, validation_report
from .offload_exp import format_offload, offload_experiment
from .kernels import (
    fig7_mass_throughput,
    format_fig7,
    format_kernel_table,
    kernel_speedup_table,
    kernel_speedups,
)
from .scaling_exp import fig8_streams, fig9_weak_scaling, format_fig8, format_fig9
from .service_exp import format_service, service_experiment
from .showcases import (
    fig10_accuracy_demo,
    fig10_measured_pipeline,
    fig10_workflow,
    fig11_mgard,
    format_fig10,
    format_fig10_pipeline,
    format_fig11,
)

__all__ = [
    "PAPER_CLAIMS",
    "SCALES",
    "Scale",
    "ablation_sweep",
    "bench_scale",
    "chaos_experiment",
    "fig10_accuracy_demo",
    "fig10_measured_pipeline",
    "fig10_workflow",
    "fig11_mgard",
    "fig7_mass_throughput",
    "fig8_streams",
    "fig9_weak_scaling",
    "format_ablations",
    "format_chaos",
    "format_fig10",
    "format_fig10_pipeline",
    "format_fig11",
    "format_fig7",
    "format_fig8",
    "format_fig9",
    "format_kernel_table",
    "format_offload",
    "format_service",
    "format_validation",
    "format_seconds",
    "format_table",
    "format_table4",
    "format_table5",
    "format_table6",
    "kernel_speedup_table",
    "kernel_speedups",
    "offload_experiment",
    "service_experiment",
    "table4_breakdown",
    "table5_end_to_end",
    "table6_node_level",
    "validation_report",
]
