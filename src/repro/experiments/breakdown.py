"""Table IV: end-to-end time breakdown per kernel category.

Reproduces the paper's per-category (CC/MM/TM/SC/MC/PN) decomposition
and recomposition times for one serial CPU core and one GPU, on the 2D
``8193²`` and 3D ``513³`` configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.analytic import model_pass_shape
from ..gpu.device import CpuSpec, DeviceSpec, POWER9_CORE, V100
from .common import format_seconds, format_table

__all__ = ["BreakdownRow", "table4_breakdown", "format_table4", "CATEGORIES"]

CATEGORIES = ("CC", "MM", "TM", "SC", "MC", "PN")


@dataclass
class BreakdownRow:
    """One (shape, operation, hardware) breakdown."""

    shape: tuple[int, ...]
    operation: str
    hardware: str
    seconds: dict[str, float]
    total: float


def table4_breakdown(
    shape_2d: tuple[int, int] = (8193, 8193),
    shape_3d: tuple[int, int, int] = (513, 513, 513),
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
) -> list[BreakdownRow]:
    """All eight rows of Table IV (2D/3D × decomp/recomp × CPU/GPU)."""
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    rows = []
    for shape in (shape_2d, shape_3d):
        for operation in ("decompose", "recompose"):
            for hw, opts in (
                (cpu, CPU_BASELINE_OPTIONS),
                (device, EngineOptions()),  # single stream, like the paper's Table IV
            ):
                mp = model_pass_shape(shape, hw, opts, operation)
                rows.append(
                    BreakdownRow(
                        shape=shape,
                        operation=operation,
                        hardware=hw.name,
                        seconds={c: mp.category_seconds.get(c, 0.0) for c in CATEGORIES},
                        total=mp.total_seconds,
                    )
                )
    return rows


def format_table4(rows: list[BreakdownRow]) -> str:
    """Text rendering of Table IV."""
    table_rows = []
    for r in rows:
        cells = [
            "x".join(str(s) for s in r.shape),
            r.operation,
            "GPU" if "NVIDIA" in r.hardware else "CPU",
        ]
        for c in CATEGORIES:
            t = r.seconds[c]
            pct = 100.0 * t / r.total if r.total else 0.0
            cells.append(f"{format_seconds(t)} ({pct:.1f}%)" if t else "-")
        cells.append(format_seconds(r.total))
        table_rows.append(cells)
    return format_table(
        ["shape", "op", "hw", *CATEGORIES, "total"],
        table_rows,
        title="Table IV: time breakdown of data refactoring (modeled)",
    )
