"""Kernel-level experiments: paper Fig. 7 and Tables II/III.

The paper benchmarks its four major kernels across the level sweep of a
large decomposition: each level presents the kernel with a smaller grid
and (for the unpacked CPU/naive designs) a larger access stride.  Fig. 7
plots per-level memory throughput of the mass-matrix kernel for the
serial CPU code, a naive vector-wise GPU port, and the linear-processing
framework; Tables II/III summarize per-kernel speedups (max/min/avg over
the sweep) for the desktop and Summit platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.grid import TensorHierarchy, hierarchy_for
from ..gpu.cost import KernelLaunch, cpu_kernel_time, gpu_kernel_time
from ..gpu.device import CpuSpec, DeviceSpec, I7_9700K_CORE, POWER9_CORE, RTX2080TI, V100
from ..kernels import launches as L
from .common import format_table

__all__ = [
    "Fig7Point",
    "fig7_mass_throughput",
    "format_fig7",
    "KernelSpeedup",
    "kernel_speedups",
    "format_kernel_table",
]

_GPU_OPTS = L.EngineOptions()
_NAIVE_OPTS = L.EngineOptions(framework="naive", pack_nodes=False)
_CPU_OPTS = L.EngineOptions(framework="naive", pack_nodes=False)


@dataclass
class Fig7Point:
    """Throughput of the mass-matrix kernel at one decomposition level."""

    level: int
    grid_side: int
    stride: int
    cpu_gbps: float
    naive_gpu_gbps: float
    lpf_gpu_gbps: float


def _mass_records(hier: TensorHierarchy, l: int) -> dict[str, KernelLaunch]:
    shape = hier.level_shape(l)
    st = hier.level_stride(l, hier.ndim - 1)
    return {
        "cpu": L.mass_launch(shape, 0, opts=_CPU_OPTS, level=l, stride=st),
        "naive": L.mass_launch(shape, 0, opts=_NAIVE_OPTS, level=l, stride=st),
        "lpf": L.mass_launch(shape, 0, opts=_GPU_OPTS, level=l, stride=st),
    }


def fig7_mass_throughput(
    side: int = 4097,
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
) -> list[Fig7Point]:
    """Per-level mass-matrix throughput for the three designs (Fig. 7).

    Throughput is useful bytes (read + write of the level grid) over
    modeled kernel time, like the paper's GB/s axis.
    """
    hier = hierarchy_for((side, side))
    out = []
    for l in range(hier.L, 0, -1):
        recs = _mass_records(hier, l)
        useful = recs["lpf"].total_bytes
        out.append(
            Fig7Point(
                level=l,
                grid_side=hier.level_shape(l)[0],
                stride=hier.level_stride(l, 1),
                cpu_gbps=useful / cpu_kernel_time(recs["cpu"], cpu) / 1e9,
                naive_gpu_gbps=useful / gpu_kernel_time(recs["naive"], device) / 1e9,
                lpf_gpu_gbps=useful / gpu_kernel_time(recs["lpf"], device) / 1e9,
            )
        )
    return out


def format_fig7(points: list[Fig7Point]) -> str:
    """Text rendering of the Fig. 7 series."""
    rows = [
        [
            str(p.level),
            str(p.grid_side),
            str(p.stride),
            f"{p.cpu_gbps:.3f}",
            f"{p.naive_gpu_gbps:.3f}",
            f"{p.lpf_gpu_gbps:.1f}",
        ]
        for p in points
    ]
    return format_table(
        ["level", "grid", "stride", "CPU GB/s", "naive GPU GB/s", "LPF GPU GB/s"],
        rows,
        title="Fig 7: mass-matrix throughput per decomposition level",
    )


# ----------------------------------------------------------------------
# Tables II / III
# ----------------------------------------------------------------------

@dataclass
class KernelSpeedup:
    """Max/min/avg speedup of one kernel over the level sweep."""

    kernel: str
    dims: str
    max: float
    min: float
    avg: float


def _level_kernel_records(hier: TensorHierarchy, l: int, opts: L.EngineOptions):
    """One record per kernel category at level ``l`` (first coarsening axis)."""
    shape = hier.level_shape(l)
    st = hier.level_stride(l, hier.ndim - 1)
    axis = hier.coarsening_dims(l)[0]
    ops = hier.level_ops(l, axis)
    cur = list(shape)
    recs = {
        "Comp. Coefficients": L.coefficients_launch(shape, opts=opts, level=l, stride=st),
        "Mass Matrix Mult.": L.mass_launch(tuple(cur), axis, opts=opts, level=l, stride=st),
        "Trans. Matrix Mult.": L.transfer_launch(
            tuple(cur), axis, ops.m_coarse, opts=opts, level=l, stride=st
        ),
    }
    cur[axis] = ops.m_coarse
    recs["Solve Correction"] = L.solve_launch(tuple(cur), axis, opts=opts, level=l, stride=st)
    return recs


def kernel_speedups(
    shape: tuple[int, ...],
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
    kernels: tuple[str, ...] | None = None,
) -> list[KernelSpeedup]:
    """Per-kernel GPU-vs-serial-CPU speedups over the level sweep.

    Reproduces the regime of Tables II/III: the same kernel invoked on
    every grid of the multilevel sweep (grid sizes ``5…N`` as in the
    paper's "Grid Size" column), CPU strided versus GPU packed.  The
    CPU side is charged the per-call setup cost
    (``CpuSpec.kernel_call_overhead_us``) that standalone kernel
    benchmarking exposes; the end-to-end pipeline (Tables IV/V) reuses
    buffers and does not pay it.
    """
    hier = hierarchy_for(shape)
    dims = f"{len(shape)}D"
    cpu_overhead = cpu.kernel_call_overhead_us * 1e-6
    per_kernel: dict[str, list[float]] = {}
    for l in range(hier.L, 0, -1):
        cpu_recs = _level_kernel_records(hier, l, _CPU_OPTS)
        gpu_recs = _level_kernel_records(hier, l, _GPU_OPTS)
        for name in cpu_recs:
            t_cpu = cpu_kernel_time(cpu_recs[name], cpu) + cpu_overhead
            s = t_cpu / gpu_kernel_time(gpu_recs[name], device)
            per_kernel.setdefault(name, []).append(s)
    wanted = kernels if kernels is not None else tuple(per_kernel)
    out = []
    for name in wanted:
        vals = per_kernel[name]
        out.append(
            KernelSpeedup(
                kernel=name,
                dims=dims,
                max=max(vals),
                min=min(vals),
                avg=sum(vals) / len(vals),
            )
        )
    return out


def kernel_speedup_table(
    platform: str,
    side_2d: int = 8193,
    side_3d: int = 513,
) -> list[KernelSpeedup]:
    """Full Table II (``platform="desktop"``) or III (``"summit"``)."""
    if platform == "desktop":
        device, cpu = RTX2080TI, I7_9700K_CORE
    elif platform == "summit":
        device, cpu = V100, POWER9_CORE
    else:
        raise ValueError("platform must be 'desktop' or 'summit'")
    rows = kernel_speedups(
        (side_3d,) * 3, device, cpu, kernels=("Comp. Coefficients",)
    )
    rows += kernel_speedups((side_2d,) * 2, device, cpu)
    return rows


def format_kernel_table(rows: list[KernelSpeedup], platform: str) -> str:
    """Text rendering of Table II/III."""
    table_rows = [
        [r.dims, r.kernel, f"{r.max:.2f}x", f"{r.min:.2f}x", f"{r.avg:.2f}x"]
        for r in rows
    ]
    return format_table(
        ["dims", "kernel", "max", "min", "avg"],
        table_rows,
        title=f"Kernel speedups (GPU vs serial CPU) on {platform}",
    )
