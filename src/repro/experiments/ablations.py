"""Ablations of the paper's design choices (DESIGN.md §5).

Not a paper artifact per se, but the quantitative support for the
paper's §III design discussion: what each optimization is worth.  Each
ablation flips one :class:`~repro.kernels.launches.EngineOptions` knob
and reports the end-to-end slowdown relative to the full design.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.analytic import model_pass_shape
from ..gpu.device import DeviceSpec, V100
from .common import format_table

__all__ = ["AblationRow", "ablation_sweep", "format_ablations"]


@dataclass
class AblationRow:
    """Slowdown of one ablated configuration."""

    name: str
    shape: tuple[int, ...]
    seconds: float
    slowdown: float
    description: str


def ablation_sweep(
    shape: tuple[int, ...] = (4097, 4097),
    device: DeviceSpec = V100,
    operation: str = "decompose",
) -> list[AblationRow]:
    """Modeled cost of disabling each optimization, one at a time."""
    from ..kernels.launches import EngineOptions

    n_streams = 8 if len(shape) >= 3 else 1
    configs = [
        ("full design", EngineOptions(n_streams=n_streams), "all optimizations on"),
        (
            "no node packing",
            EngineOptions(pack_nodes=False, n_streams=n_streams),
            "kernels pay the 2^(L-l) stride (paper §III-C opt. 1)",
        ),
        (
            "divergent warps",
            EngineOptions(divergence_free=False, n_streams=n_streams),
            "no Algorithm-1 thread re-assignment",
        ),
        (
            "naive linear kernels",
            EngineOptions(framework="naive", pack_nodes=False, n_streams=n_streams),
            "vector-wise parallelism on unpacked data ([14]-style)",
        ),
        (
            "element-wise kernels",
            EngineOptions(framework="elementwise", n_streams=n_streams),
            "max parallelism, out-of-place (+100% memory footprint)",
        ),
    ]
    if len(shape) >= 3:
        configs.append(
            (
                "single stream",
                EngineOptions(n_streams=1),
                "no CUDA-stream slice overlap (paper §III-D opt. 3)",
            )
        )
    base = None
    rows = []
    for name, opts, desc in configs:
        t = model_pass_shape(shape, device, opts, operation).total_seconds
        if base is None:
            base = t
        rows.append(
            AblationRow(
                name=name, shape=shape, seconds=t, slowdown=t / base, description=desc
            )
        )
    return rows


def format_ablations(rows: list[AblationRow]) -> str:
    """Text rendering of an ablation sweep."""
    table_rows = [
        [r.name, f"{r.seconds * 1e3:.2f}ms", f"{r.slowdown:.2f}x", r.description]
        for r in rows
    ]
    shape = "x".join(str(s) for s in rows[0].shape)
    return format_table(
        ["configuration", "time", "slowdown", "what it means"],
        table_rows,
        title=f"Ablations of the GPU design on {shape} (modeled)",
    )
