"""Tables V and VI: end-to-end speedups and extra memory footprint.

Table V: one GPU versus one serial CPU core across grid sizes, for both
platforms, plus the GPU design's extra memory footprint relative to the
CPU baseline.  Table VI: all GPUs versus all CPU cores of one machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.node import DESKTOP, NodeSpec, SUMMIT_NODE, node_speedup
from ..core.grid import hierarchy_for
from ..gpu.analytic import model_pass_shape
from ..gpu.memory import refactoring_footprint
from .common import format_table

__all__ = [
    "Table5Row",
    "table5_end_to_end",
    "format_table5",
    "table6_node_level",
    "format_table6",
]


@dataclass
class Table5Row:
    """Speedups of one grid size on both platforms (Table V)."""

    shape: tuple[int, ...]
    desktop_decompose: float
    desktop_recompose: float
    summit_decompose: float
    summit_recompose: float
    extra_memory_fraction: float


def _speedup(shape, node: NodeSpec, operation: str) -> float:
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    opts = EngineOptions(n_streams=8 if len(shape) >= 3 else 1)
    t_gpu = model_pass_shape(shape, node.gpu, opts, operation).total_seconds
    t_cpu = model_pass_shape(shape, node.cpu, CPU_BASELINE_OPTIONS, operation).total_seconds
    return t_cpu / t_gpu


def table5_end_to_end(
    sides_2d: tuple[int, ...] = (33, 65, 129, 257, 513, 1025, 2049, 4097, 8193),
    sides_3d: tuple[int, ...] = (33, 65, 129, 257, 513),
) -> list[Table5Row]:
    """All rows of Table V (2D sweep then 3D sweep)."""
    rows = []
    shapes = [(n, n) for n in sides_2d] + [(n, n, n) for n in sides_3d]
    for shape in shapes:
        fp = refactoring_footprint(hierarchy_for(shape))
        rows.append(
            Table5Row(
                shape=shape,
                desktop_decompose=_speedup(shape, DESKTOP, "decompose"),
                desktop_recompose=_speedup(shape, DESKTOP, "recompose"),
                summit_decompose=_speedup(shape, SUMMIT_NODE, "decompose"),
                summit_recompose=_speedup(shape, SUMMIT_NODE, "recompose"),
                extra_memory_fraction=fp.extra_fraction,
            )
        )
    return rows


def format_table5(rows: list[Table5Row]) -> str:
    """Text rendering of Table V."""
    table_rows = [
        [
            "x".join(str(s) for s in r.shape),
            f"{r.desktop_decompose:.2f}x",
            f"{r.desktop_recompose:.2f}x",
            f"{r.summit_decompose:.2f}x",
            f"{r.summit_recompose:.2f}x",
            f"{100 * r.extra_memory_fraction:.3f}%",
        ]
        for r in rows
    ]
    return format_table(
        ["input", "desktop dec.", "desktop rec.", "summit dec.", "summit rec.", "extra mem"],
        table_rows,
        title="Table V: one GPU vs one CPU core (modeled) + extra memory footprint",
    )


def table6_node_level(
    desktop_2d: tuple[int, int] = (16386, 32772),
    desktop_3d: tuple[int, int, int] = (1026, 1026, 1026),
    summit_2d: tuple[int, int] = (49158, 57351),
    summit_3d: tuple[int, int, int] = (1539, 1026, 4099),
) -> list[dict]:
    """Table VI: all GPUs vs all CPU cores on each machine.

    Default shapes are the paper's (the Summit 3D extent is reduced from
    the paper's 57351 third dimension to keep the per-GPU partition
    within V100 memory in our stricter capacity model; the paper's
    partitioning splits further along that axis).
    """
    out = []
    for node, shape in (
        (DESKTOP, desktop_2d),
        (DESKTOP, desktop_3d),
        (SUMMIT_NODE, summit_2d),
        (SUMMIT_NODE, summit_3d),
    ):
        for operation in ("decompose", "recompose"):
            out.append(node_speedup(node, shape, operation))
    return out


def format_table6(rows: list[dict]) -> str:
    """Text rendering of Table VI."""
    table_rows = [
        [
            r["node"],
            "x".join(str(s) for s in r["shape"]),
            r["operation"],
            f"{r['speedup']:.2f}x",
        ]
        for r in rows
    ]
    return format_table(
        ["machine", "input", "op", "all-GPUs vs all-cores"],
        table_rows,
        title="Table VI: node-level speedup (modeled)",
    )
