"""3D linear processing via batched 2D slice kernels (paper §III-D).

The paper does not write 3D linear-processing kernels; it reuses the 2D
designs slice by slice: "we use the 2D design to build both 2D and 3D
data refactoring routines ... As processing different 2D slices for 3D
input can be performed independently, we use CUDA streams" (opt. 3).
The slicing rule (§III-C) keeps accesses coalesced: vectors along the
first dimension batch on the x-y plane, along the second on x-y, along
the third on x-z — i.e. the *plane* always contains the processing axis
plus one batching axis, and kernels launch once per remaining-axis
slice.

This module is the literal embodiment: :class:`SlicedLinearProcessor`
walks a 3D array slice by slice, runs the genuine 2D
:class:`~repro.kernels.linear_processing.LinearProcessingKernel` on
each slice, assigns launches round-robin to a simulated stream set, and
returns both the (bit-exact) result and the launch timeline.  Tests
assert equality with the vectorized 3D operators and that the timeline
matches the closed-form wave model of the cost layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import LevelOps
from ..gpu.streams import StreamScheduler
from .linear_processing import LinearProcessingKernel

__all__ = ["SliceLaunch", "SlicedLinearProcessor"]


@dataclass(frozen=True)
class SliceLaunch:
    """One recorded 2D-kernel launch of the slice walk."""

    kernel: str
    slice_index: int
    stream: int
    plane_shape: tuple[int, int]


def _slice_axes(axis: int) -> tuple[int, int]:
    """(batch_axis, slice_axis) for a processing ``axis`` on 3D data.

    The plane contains ``axis`` and the batching axis; kernels launch
    once per index of the slicing axis.  Mirrors the paper's x-y / x-z
    plane rule with the processing axis always inside the plane.
    """
    others = [a for a in range(3) if a != axis]
    # batch on the lower remaining axis, slice along the higher one —
    # for C-order arrays this keeps the last (contiguous) axis inside
    # the plane whenever possible
    return others[0], others[1]


class SlicedLinearProcessor:
    """Run the 2D linear kernels over a 3D array, slice by slice.

    Parameters
    ----------
    ops:
        Operator data of the (dimension, level) being processed.
    n_streams:
        Simulated CUDA streams for round-robin launch assignment.
    segment:
        Segment length of the underlying 2D kernels.
    backend:
        Kernel-backend policy forwarded to the underlying 2D kernels
        (``None`` defers to the process-wide policy).
    """

    def __init__(
        self,
        ops: LevelOps,
        n_streams: int = 1,
        segment: int = 32,
        backend: str | None = None,
    ):
        self.ops = ops
        self.kernel2d = LinearProcessingKernel(ops, segment=segment, backend=backend)
        self.scheduler = StreamScheduler(n_streams)
        self.n_streams = n_streams
        self.launches: list[SliceLaunch] = []

    # ------------------------------------------------------------------
    def _walk(self, v: np.ndarray, axis: int, name: str, fn, out_len: int) -> np.ndarray:
        if v.ndim != 3:
            raise ValueError("SlicedLinearProcessor expects 3D data")
        batch_axis, slice_axis = _slice_axes(axis)
        n_slices = v.shape[slice_axis]
        out_shape = list(v.shape)
        out_shape[axis] = out_len
        out = np.empty(tuple(out_shape), dtype=v.dtype)
        for s in range(n_slices):
            idx: list[object] = [slice(None)] * 3
            idx[slice_axis] = s
            plane = v[tuple(idx)]  # 2D view: (batch, axis) in some order
            # orient the plane so the processing axis is last
            plane_axis = 0 if axis < batch_axis else 1
            plane2 = np.moveaxis(plane, plane_axis, -1)
            result = fn(np.ascontiguousarray(plane2))
            out[tuple(idx)] = np.moveaxis(result, -1, plane_axis)
            self.launches.append(
                SliceLaunch(
                    kernel=name,
                    slice_index=s,
                    stream=s % self.n_streams,
                    plane_shape=tuple(plane2.shape),
                )
            )
        return out

    def mass_multiply(self, v: np.ndarray, axis: int) -> np.ndarray:
        """Mass-matrix apply along ``axis`` of a 3D array, slice-wise."""
        return self._walk(v, axis, "mass", self.kernel2d.mass_multiply, self.ops.m_fine)

    def transfer_multiply(self, f: np.ndarray, axis: int) -> np.ndarray:
        """Restriction along ``axis`` of a 3D array, slice-wise."""
        return self._walk(
            f, axis, "transfer", self.kernel2d.transfer_multiply, self.ops.m_coarse
        )

    def solve(self, f: np.ndarray, axis: int) -> np.ndarray:
        """Coarse-mass solve along ``axis`` of a 3D array, slice-wise."""
        return self._walk(f, axis, "solve", self.kernel2d.solve, self.ops.m_coarse)

    # ------------------------------------------------------------------
    def modeled_makespan(self, per_launch_seconds: float) -> float:
        """Schedule the recorded launches on the stream set.

        With equal launch durations this equals the closed-form
        ``ceil(n / streams) * duration`` wave model used by
        :func:`repro.gpu.cost.gpu_kernel_time` (tested).
        """
        return self.scheduler.makespan([per_launch_seconds] * len(self.launches))
