"""Kernel-launch record builders and the Algorithm-3 launch walk.

Exactly one place in the codebase decides how many bytes, elements,
threads, and launches each operation of the refactoring pipeline costs:
the builder functions below.  They are shared by

* the *metered engines* (:mod:`repro.kernels.metered`), which execute
  functionally and emit a record per call, and
* the *analytic model* (:func:`iter_decompose_launches`), which walks
  Algorithm 3 over shapes only — no data — so that paper-scale
  configurations (4 TB datasets, 4096 GPUs) can be modeled instantly.

Because both paths call the same builders, the functional engines and
the analytic model cannot drift apart; a unit test asserts record-level
equality between them.

Design-option knobs (the paper's optimizations) live in
:class:`EngineOptions`; flipping them off yields the ablation baselines
(naive vector-wise kernels, no node packing, divergent thread
assignment, single stream).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..core.grid import TensorHierarchy
from ..gpu.cost import KernelLaunch

__all__ = [
    "EngineOptions",
    "CATEGORY",
    "category_of",
    "coefficients_launch",
    "mass_launch",
    "transfer_launch",
    "solve_launch",
    "pack_launch",
    "copy_launch",
    "correction_update_launch",
    "iter_decompose_launches",
]


@dataclass(frozen=True)
class EngineOptions:
    """Design-space options of the paper's GPU implementation.

    Attributes
    ----------
    framework:
        ``"lpf"`` — the paper's linear-processing framework (batched
        vectors, region pipeline, packed access);
        ``"naive"`` — vector-wise parallelism on unpacked data (the
        Fig. 7 baseline, after [14]);
        ``"elementwise"`` — element-parallel out-of-place processing
        (maximum parallelism, 100 % extra footprint; §III-A.2).
    pack_nodes:
        Pack each level's nodes contiguously into the working buffer
        (§III-C optimization 1).  Off ⇒ every kernel pays the level
        stride ``2^(L-l)``.
    divergence_free:
        Use Algorithm 1's warp re-assignment for interpolation types.
        Off ⇒ grid kernels pay a warp-divergence factor.
    n_streams:
        CUDA streams used to overlap per-slice 2D launches on 3D data
        (§III-D optimization 3, Fig. 8).
    occupancy_cap_3d:
        Occupancy bound of the resource-heavy 3D coefficient blocks
        (the paper's explanation for lower 3D speedups, §IV-A).
    lpf_threads_per_vector:
        Thread-block rows cooperating on each vector batch in the
        linear-processing framework (Fig. 6 shows 4×4 blocks).
    """

    framework: str = "lpf"
    pack_nodes: bool = True
    divergence_free: bool = True
    n_streams: int = 1
    occupancy_cap_3d: float = 0.22
    lpf_threads_per_vector: int = 16

    def __post_init__(self):
        if self.framework not in ("lpf", "naive", "elementwise"):
            raise ValueError(f"unknown framework {self.framework!r}")
        if self.n_streams < 1:
            raise ValueError("n_streams must be >= 1")


#: Map from kernel-record names to the paper's Table IV row categories.
CATEGORY = {
    "compute_coefficients": "CC",
    "restore_from_coefficients": "CC",
    "mass": "MM",
    "transfer": "TM",
    "solve": "SC",
    "copy": "MC",
    "unpack_store": "MC",
    "pack": "PN",
    "correction_update": "PN",
}

#: Per-kernel calibration: GPU sustained-bandwidth scale and CPU
#: per-element cost scale (relative to ``CpuSpec.element_ns``).  These
#: land the modeled Table IV near the paper's measurements; see
#: EXPERIMENTS.md for the residuals.
_CAL = {
    "compute_coefficients": dict(sustained=0.62, cpu=0.95),
    "restore_from_coefficients": dict(sustained=0.62, cpu=0.95),
    "mass": dict(sustained=0.52, cpu=0.76),
    "transfer": dict(sustained=0.45, cpu=0.67),
    "solve": dict(sustained=0.52, cpu=0.56),
    "copy": dict(sustained=0.85, cpu=0.73),
    "unpack_store": dict(sustained=0.85, cpu=0.73),
    # Packing kernels gather/scatter across the level stride with
    # transposition-like access on both sides; they sustain far less of
    # peak than plain copies (calibrated to the paper's PN row).
    "pack": dict(sustained=0.30, cpu=0.65),
    "correction_update": dict(sustained=0.30, cpu=0.65),
}


def category_of(rec: KernelLaunch) -> str:
    """Table IV row (CC/MM/TM/SC/MC/PN) of a launch record."""
    return CATEGORY[rec.name]


def _prod(shape: tuple[int, ...]) -> int:
    out = 1
    for s in shape:
        out *= s
    return out


def _slice_layout(shape: tuple[int, ...], axis: int) -> tuple[int, int]:
    """(n_launches, vectors_per_launch) of a per-slice linear kernel.

    On 3D data the paper reuses its 2D linear kernels slice by slice
    (§III-D optimization 3): processing dimension ``axis`` batches
    vectors within a 2D plane containing ``axis`` and launches one
    kernel per slice along the remaining axis.  1D/2D data is a single
    launch.
    """
    others = [s for a, s in enumerate(shape) if a != axis]
    if len(others) <= 1:
        return 1, (others[0] if others else 1)
    # plane = axis x (largest other dim); slices along the remaining one
    others.sort()
    n_slices = _prod(tuple(others[:-1]))
    return n_slices, others[-1]


def coefficients_launch(
    shape: tuple[int, ...],
    *,
    opts: EngineOptions,
    level: int,
    stride: int,
    restore: bool = False,
) -> KernelLaunch:
    """Record for the grid-processing kernels (compute/restore coefficients)."""
    name = "restore_from_coefficients" if restore else "compute_coefficients"
    n = _prod(shape)
    ndim = len([s for s in shape if s > 1])
    cal = _CAL[name]
    return KernelLaunch(
        name=name,
        kind="grid",
        elements=n,
        # read the level's nodal values (plus ~25 % re-reads of shared
        # coarse neighbours that spill the tile cache), write the
        # full coefficient plane
        bytes_read=int(n * 8 * 1.25),
        bytes_written=n * 8,
        threads=n,
        stride=stride if not opts.pack_nodes else 1,
        divergence=1.0 if opts.divergence_free else 3.0,
        occupancy_cap=opts.occupancy_cap_3d if ndim >= 3 else 1.0,
        sustained_scale=cal["sustained"],
        cpu_scale=cal["cpu"],
        level=level,
    )


def _linear_common(
    name: str,
    shape: tuple[int, ...],
    axis: int,
    *,
    opts: EngineOptions,
    level: int,
    stride: int,
) -> dict:
    """Thread/launch geometry shared by the three linear-processing kernels."""
    n_launches, per_slice_vectors = _slice_layout(shape, axis)
    n_vectors = _prod(shape) // shape[axis]
    cal = _CAL[name]
    sustained = cal["sustained"]
    if opts.framework == "lpf":
        threads = n_vectors * opts.lpf_threads_per_vector
        eff_stride = stride if not opts.pack_nodes else 1
    elif opts.framework == "naive":
        # vector-wise parallelism on unpacked data: one thread per
        # vector walking its line ([14]-style).  Each thread issues a
        # *dependent* load chain along its vector (no intra-thread
        # latency hiding), which caps the achievable bandwidth well
        # below a pipelined design even at stride 1.
        threads = n_vectors
        eff_stride = stride
        n_launches = 1  # the naive design launches one monolithic kernel
        sustained *= 0.45
    else:  # elementwise
        threads = _prod(shape)
        eff_stride = stride if not opts.pack_nodes else 1
    return dict(
        threads=threads,
        stride=eff_stride,
        n_launches=n_launches,
        n_streams=opts.n_streams,
        sustained_scale=sustained,
        cpu_scale=cal["cpu"],
        level=level,
    )


def mass_launch(
    shape: tuple[int, ...], axis: int, *, opts: EngineOptions, level: int, stride: int
) -> KernelLaunch:
    """Record for the mass-matrix multiplication kernel along ``axis``."""
    n = _prod(shape)
    extra_write = 2.0 if opts.framework == "elementwise" else 1.0
    return KernelLaunch(
        name="mass",
        kind="linear",
        elements=n,
        bytes_read=n * 8,
        bytes_written=int(n * 8 * extra_write),
        **_linear_common("mass", shape, axis, opts=opts, level=level, stride=stride),
    )


def transfer_launch(
    shape: tuple[int, ...],
    axis: int,
    m_coarse: int,
    *,
    opts: EngineOptions,
    level: int,
    stride: int,
) -> KernelLaunch:
    """Record for the transfer-matrix (restriction) kernel along ``axis``."""
    n_in = _prod(shape)
    n_out = n_in // shape[axis] * m_coarse
    return KernelLaunch(
        name="transfer",
        kind="linear",
        elements=n_in,
        bytes_read=n_in * 8,
        bytes_written=n_out * 8,
        **_linear_common("transfer", shape, axis, opts=opts, level=level, stride=stride),
    )


def solve_launch(
    shape_coarse: tuple[int, ...],
    axis: int,
    *,
    opts: EngineOptions,
    level: int,
    stride: int,
) -> KernelLaunch:
    """Record for the tridiagonal correction-solver kernel along ``axis``.

    The forward/backward substitution makes two dependent sweeps over
    the vector; the ``chain_length`` field carries the sequential
    dependence that caps this kernel's parallel efficiency (the paper:
    "solving corrections is naturally less parallelizable").
    """
    n = _prod(shape_coarse)
    m = shape_coarse[axis]
    common = _linear_common("solve", shape_coarse, axis, opts=opts, level=level, stride=stride)
    if opts.framework == "elementwise":
        # element-parallel solve = parallel cyclic reduction: log(m)
        # dependent stages, ~2x the arithmetic/traffic, out-of-place
        # (the "100% extra memory footprint" design of paper §III-A.2)
        common["threads"] = n
        chain = 2 * max(1, m.bit_length())
        bytes_read = n * 8 * 3
        bytes_written = n * 8 * 2
        elements = 4 * n
    else:
        # one thread per vector: the substitution chain is serial
        common["threads"] = n // m
        chain = 2 * m
        bytes_read = int(n * 8 * 1.5)
        bytes_written = n * 8
        elements = 2 * n
    return KernelLaunch(
        name="solve",
        kind="solve",
        elements=elements,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        chain_length=chain,
        **common,
    )


def pack_launch(
    shape: tuple[int, ...],
    *,
    stride: int,
    level: int,
    reason: str = "pack",
    opts: EngineOptions | None = None,
) -> KernelLaunch:
    """Record for gathering/scattering a level into/out of packed storage."""
    n = _prod(shape)
    ndim = len([s for s in shape if s > 1])
    cap = opts.occupancy_cap_3d if (opts is not None and ndim >= 3) else 1.0
    return KernelLaunch(
        name="pack",
        kind="pack",
        elements=n,
        bytes_read=n * 8,
        bytes_written=n * 8,
        threads=n,
        stride=stride,
        occupancy_cap=cap,
        sustained_scale=_CAL["pack"]["sustained"],
        cpu_scale=_CAL["pack"]["cpu"],
        level=level,
        extra={"reason": reason},
    )


def copy_launch(
    shape: tuple[int, ...], *, stride: int = 1, level: int = -1, name: str = "copy",
    reason: str = "copy",
) -> KernelLaunch:
    """Record for a working-buffer copy (Table IV's ``MC`` row)."""
    n = _prod(shape)
    return KernelLaunch(
        name=name,
        kind="copy",
        elements=n,
        bytes_read=n * 8,
        bytes_written=n * 8,
        threads=n,
        stride=stride,
        sustained_scale=_CAL[name]["sustained"],
        cpu_scale=_CAL[name]["cpu"],
        level=level,
        extra={"reason": reason},
    )


def correction_update_launch(
    shape_coarse: tuple[int, ...],
    *,
    stride: int,
    level: int,
    fine_shape: tuple[int, ...] | None = None,
    opts: EngineOptions | None = None,
) -> KernelLaunch:
    """Record for applying/undoing the correction on the coarse nodes.

    Fused with node packing/unpacking in the paper's Algorithm 3 (the
    ``*``/``◦`` annotations), hence categorized under ``PN``.  During
    decomposition the update reads the *fine* level (restriction of the
    nodal values) before adding the correction; pass ``fine_shape`` to
    account for that traffic.
    """
    n = _prod(shape_coarse)
    n_read = (_prod(fine_shape) if fine_shape is not None else n) + n
    ndim = len([s for s in shape_coarse if s > 1])
    cap = opts.occupancy_cap_3d if (opts is not None and ndim >= 3) else 1.0
    return KernelLaunch(
        name="correction_update",
        kind="pack",
        elements=n,
        bytes_read=n_read * 8,
        bytes_written=n * 8,
        threads=n,
        stride=stride,
        occupancy_cap=cap,
        sustained_scale=_CAL["correction_update"]["sustained"],
        cpu_scale=_CAL["correction_update"]["cpu"],
        level=level,
    )


# ----------------------------------------------------------------------
# Shape-only walk of Algorithm 3
# ----------------------------------------------------------------------

def iter_decompose_launches(
    hier: TensorHierarchy,
    opts: EngineOptions,
    operation: str = "decompose",
) -> Iterator[KernelLaunch]:
    """Yield every launch of one decomposition/recomposition pass.

    Mirrors :func:`repro.core.decompose.decompose` /
    :func:`~repro.core.decompose.recompose` exactly, but over shapes
    only.  The metered engines emit the same records (asserted by
    tests), so analytic sweeps and functional runs agree by
    construction.
    """
    if operation not in ("decompose", "recompose"):
        raise ValueError(f"operation must be decompose|recompose, got {operation!r}")
    full = hier.shape
    yield copy_launch(full, level=hier.L, reason="output")
    if hier.L == 0:
        return

    def _level_stride(l: int) -> int:
        return hier.level_stride(l, hier.ndim - 1)

    def correction_launches(l: int) -> Iterator[KernelLaunch]:
        cur = list(hier.level_shape(l))
        st = _level_stride(l)
        for axis in hier.coarsening_dims(l):
            ops = hier.level_ops(l, axis)
            yield mass_launch(tuple(cur), axis, opts=opts, level=l, stride=st)
            yield transfer_launch(
                tuple(cur), axis, ops.m_coarse, opts=opts, level=l, stride=st
            )
            cur[axis] = ops.m_coarse
            yield solve_launch(tuple(cur), axis, opts=opts, level=l, stride=st)

    if operation == "decompose":
        if opts.pack_nodes:
            yield pack_launch(full, stride=1, level=hier.L, reason="pack-finest", opts=opts)
        for l in range(hier.L, 0, -1):
            shape = hier.level_shape(l)
            st = _level_stride(l)
            yield coefficients_launch(shape, opts=opts, level=l, stride=st)
            yield copy_launch(
                shape, stride=st, level=l, name="unpack_store", reason="store-coefficients"
            )
            yield from correction_launches(l)
            yield correction_update_launch(
                hier.level_shape(l - 1),
                stride=2 if opts.pack_nodes else st,
                level=l,
                fine_shape=shape,
                opts=opts,
            )
        yield copy_launch(
            hier.level_shape(0), stride=_level_stride(0),
            level=0, name="unpack_store", reason="store-coarsest",
        )
    else:
        if opts.pack_nodes:
            yield pack_launch(
                hier.level_shape(0), stride=_level_stride(0), level=0,
                reason="pack-coarsest", opts=opts,
            )
        for l in range(1, hier.L + 1):
            shape = hier.level_shape(l)
            st = _level_stride(l)
            yield pack_launch(shape, stride=st, level=l, reason="pack-coefficients", opts=opts)
            yield from correction_launches(l)
            yield correction_update_launch(
                hier.level_shape(l - 1),
                stride=1 if opts.pack_nodes else st,
                level=l,
                opts=opts,
            )
            yield coefficients_launch(shape, opts=opts, level=l, stride=st, restore=True)
        yield copy_launch(
            full, stride=1, level=hier.L, name="unpack_store", reason="store-restored"
        )

