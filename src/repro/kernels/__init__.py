"""Kernel frameworks and metered execution engines.

Embodies the paper's §III: the grid-processing and linear-processing
kernel frameworks (literal tiled implementations for validation), the
launch-record builders, and the metered engines that attach the
simulated-GPU / CPU-baseline cost models to the functional pipeline.
"""

from .launches import (
    CATEGORY,
    EngineOptions,
    category_of,
    iter_decompose_launches,
)
from .autotune import TuneResult, autotune
from .batch3d import SliceLaunch, SlicedLinearProcessor
from .grid_processing import GridProcessingKernel, interpolation_thread_assignment
from .linear_processing import LinearProcessingKernel
from .metered import CPU_BASELINE_OPTIONS, CpuRefEngine, GpuSimEngine, MeteredEngine
from .tiled_engine import TiledEngine

__all__ = [
    "CATEGORY",
    "CPU_BASELINE_OPTIONS",
    "GridProcessingKernel",
    "LinearProcessingKernel",
    "SliceLaunch",
    "TuneResult",
    "SlicedLinearProcessor",
    "CpuRefEngine",
    "EngineOptions",
    "GpuSimEngine",
    "MeteredEngine",
    "TiledEngine",
    "autotune",
    "category_of",
    "interpolation_thread_assignment",
    "iter_decompose_launches",
]
