"""Kernel frameworks and metered execution engines.

Embodies the paper's §III: the grid-processing and linear-processing
kernel frameworks (literal tiled implementations for validation), the
launch-record builders, and the metered engines that attach the
simulated-GPU / CPU-baseline cost models to the functional pipeline.
"""

from .launches import (
    CATEGORY,
    EngineOptions,
    category_of,
    iter_decompose_launches,
)
from .autotune import (
    KERNEL_TUNE_SCHEMA,
    TuneResult,
    autotune,
    autotune_backend,
    select_backend,
)
from .batch3d import SliceLaunch, SlicedLinearProcessor
from .grid_processing import GridProcessingKernel, interpolation_thread_assignment
from .launcher import (
    KernelLauncher,
    available_backends,
    get_launcher,
    kernel_backend_policy,
    run_op,
    set_kernel_backend,
)
from .linear_processing import LinearProcessingKernel
from .metered import CPU_BASELINE_OPTIONS, CpuRefEngine, GpuSimEngine, MeteredEngine
from .tiled_engine import TiledEngine

__all__ = [
    "CATEGORY",
    "CPU_BASELINE_OPTIONS",
    "GridProcessingKernel",
    "KERNEL_TUNE_SCHEMA",
    "KernelLauncher",
    "LinearProcessingKernel",
    "SliceLaunch",
    "TuneResult",
    "SlicedLinearProcessor",
    "CpuRefEngine",
    "EngineOptions",
    "GpuSimEngine",
    "MeteredEngine",
    "TiledEngine",
    "autotune",
    "autotune_backend",
    "available_backends",
    "category_of",
    "get_launcher",
    "interpolation_thread_assignment",
    "iter_decompose_launches",
    "kernel_backend_policy",
    "run_op",
    "select_backend",
    "set_kernel_backend",
]
