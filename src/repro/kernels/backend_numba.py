"""Compiled (numba) kernels for the hot loops behind the launcher seam.

Each public wrapper here implements one launcher op with the *same
array ABI* as the reference implementation in
:mod:`repro.kernels.launcher` and is required to be bit-identical to
it — the per-element arithmetic keeps the reference's operand order
(IEEE float ops are deterministic, so same order ⇒ same bits), integer
kernels are exact by construction, and stores into lower-precision
outputs happen at the same points so any double-rounding matches.
Tests cross-check every op against the reference backend exactly as
the scalar Huffman encoders cross-check the vectorized ones.

The ``@njit(cache=True)`` kernels compile once per (dtype, layout)
signature and persist the machine code on disk, so the JIT cost is
paid once per machine, not per process; batch-parallel kernels use
``prange`` where iterations are independent (the thread layer the
paper gets from its thread blocks).  Nothing in this module imports
numba directly — the decorators come from :mod:`repro.kernels.jit`,
the package's single import guard — and nothing here runs unless the
numba backend was selected, so the module is inert without the extra.
"""

from __future__ import annotations

import numpy as np

from .jit import njit, prange

__all__ = ["NUMBA_OPS"]

_U1 = np.uint64(1)
_U63 = np.uint64(63)
_SIGN = np.uint64(0x8000000000000000)


# ----------------------------------------------------------------------
# linear-processing kernels (batch-parallel over vectors)


@njit(cache=True, parallel=True)
def _mass_kernel(v, h, out):  # pragma: no cover - compiled
    B, m = v.shape
    for b in prange(B):
        out[b, 0] = (2.0 * h[0] * v[b, 0] + h[0] * v[b, 1]) / 6.0
        for y in range(1, m - 1):
            h1 = h[y - 1]
            h2 = h[y]
            out[b, y] = (
                h1 * v[b, y - 1] + 2.0 * (h1 + h2) * v[b, y] + h2 * v[b, y + 1]
            ) / 6.0
        out[b, m - 1] = (h[m - 2] * v[b, m - 2] + 2.0 * h[m - 2] * v[b, m - 1]) / 6.0


def mass(v2, h):
    """Mass-matrix apply over a (batch, m) block; m >= 2."""
    out = np.empty_like(v2)
    _mass_kernel(v2, h, out)
    return out


@njit(cache=True, parallel=True)
def _transfer_kernel(f, coarse_pos, interval_detail, w_left, w_right, m_detail, out):
    # pragma: no cover - compiled
    B, mc = out.shape
    for b in prange(B):
        for j in range(mc):
            out[b, j] = f[b, coarse_pos[j]]
            if m_detail > 0:
                # own-interval (left-weight) contribution before the
                # previous interval's right-weight one — the reference
                # accumulation order, kept for bit identity
                if j < mc - 1:
                    out[b, j] += w_left[j] * f[b, interval_detail[j]]
                if j > 0:
                    out[b, j] += w_right[j - 1] * f[b, interval_detail[j - 1]]


def transfer(f2, coarse_pos, interval_detail, w_left, w_right, m_detail):
    """Restriction of a (batch, m_fine) block to (batch, m_coarse)."""
    out = np.empty((f2.shape[0], coarse_pos.size), dtype=f2.dtype)
    _transfer_kernel(f2, coarse_pos, interval_detail, w_left, w_right, int(m_detail), out)
    return out


@njit(cache=True, parallel=True)
def _solve_kernel(z, lower, cp, denom):  # pragma: no cover - compiled
    B, mc = z.shape
    for b in prange(B):
        z[b, 0] = z[b, 0] / denom[0]
        for i in range(1, mc):
            z[b, i] = (z[b, i] - lower[i - 1] * z[b, i - 1]) / denom[i]
        for i in range(mc - 2, -1, -1):
            z[b, i] = z[b, i] - cp[i] * z[b, i + 1]


def solve(f2, lower, cp, denom):
    """Thomas solve over a (batch, m_coarse) block; always float64 out."""
    z = f2.astype(np.float64)  # astype copies; the kernel works in place
    _solve_kernel(z, lower, cp, denom)
    return z


# ----------------------------------------------------------------------
# quantizer kernels (elementwise, fused)


@njit(cache=True, parallel=True)
def _quantize_kernel(flat, inv, out):  # pragma: no cover - compiled
    for i in prange(flat.size):
        out[i] = np.int64(np.rint(flat[i] * inv[i]))


def quantize(flat, inv):
    """Fused ``round(flat * inv) -> int64`` (np.rint == np.round here)."""
    out = np.empty(flat.size, dtype=np.int64)
    _quantize_kernel(flat, inv, out)
    return out


@njit(cache=True, parallel=True)
def _dequantize_kernel(bins, scale, out):  # pragma: no cover - compiled
    for i in prange(bins.size):
        out[i] = bins[i] * scale[i]


def dequantize(bins, scale):
    """Fused ``bins * scale -> float64``."""
    out = np.empty(bins.size, dtype=np.float64)
    _dequantize_kernel(bins, scale, out)
    return out


# ----------------------------------------------------------------------
# Huffman pack: word-aligned scatter-OR of (code, length) chunks


@njit(cache=True)
def _pack_kernel(c_codes, c_lens, offsets, buf):  # pragma: no cover - compiled
    # sequential: consecutive chunks OR into overlapping words, so this
    # loop carries a true dependence the vector path resolves with
    # reduceat; one fused pass beats the multi-pass NumPy pipeline
    for k in range(c_codes.size):
        off = offsets[k]
        s = (off & 63) + c_lens[k]
        w = off >> 6
        code = c_codes[k]
        if s <= 64:
            buf[w] |= code << np.uint64(64 - s)
        else:
            buf[w] |= code >> np.uint64(s - 64)
            buf[w + 1] |= code << np.uint64(128 - s)


def huff_pack(c_codes, c_lens, offsets):
    """MSB-first pack into big-endian 64-bit words (+1 spill word)."""
    n_words = (int(offsets[-1]) + 63) >> 6
    buf = np.zeros(n_words + 1, dtype=np.uint64)
    _pack_kernel(c_codes, c_lens, offsets, buf)
    return buf


# ----------------------------------------------------------------------
# Huffman sync-block decode: independent cursor walk per block
#
# The reference path advances all block cursors in vectorized lockstep
# (one NumPy step per symbol slot).  Compiled, each block can simply be
# walked to completion independently — same canonical first-code
# tables, same windows, same outputs — and the blocks parallelize with
# prange.


@njit(cache=True, parallel=True)
def _decode_blocks_kernel(
    words,
    starts,
    ends,
    rem,
    total,
    lens_arr,
    first_arr,
    count_arr,
    base_arr,
    limits,
    flat_syms,
    esc_flat,
    esc_len,
    sync_block,
    out,
    status,
):  # pragma: no cover - compiled
    n_blocks = starts.size
    n_limits = limits.size
    max_wi = words.size - 2  # window reads touch words[wi] and words[wi + 1]
    for b in prange(n_blocks):
        pos = starts[b]
        cnt = sync_block if b < n_blocks - 1 else rem
        err = 0
        for _t in range(cnt):
            if pos > total:
                err = 2  # truncated
                break
            wi = pos >> 6
            if wi > max_wi:
                err = 2
                break
            r = np.uint64(pos & 63)
            win = (words[wi] << r) | ((words[wi + 1] >> (_U63 - r)) >> _U1)
            li = 0
            while li < n_limits and limits[li] <= win:
                li += 1
            L = lens_arr[li]
            rank = (win >> np.uint64(64 - L)) - first_arr[li]
            if rank >= count_arr[li]:
                err = 1  # no codeword matches
                break
            flat = base_arr[li] + np.int64(rank)
            sym = flat_syms[flat]
            step = L
            if flat == esc_flat:
                epos = pos + esc_len
                ewi = epos >> 6
                if ewi > max_wi:
                    err = 2
                    break
                er = np.uint64(epos & 63)
                raw = (words[ewi] << er) | ((words[ewi + 1] >> (_U63 - er)) >> _U1)
                if raw & _SIGN:  # two's complement reinterpretation
                    sym = -np.int64(~raw) - 1
                else:
                    sym = np.int64(raw)
                step = L + 64
            out[b, _t] = sym
            pos += step
        if err == 0 and pos != ends[b]:
            err = 3  # sync mismatch
        status[b] = err


_DECODE_ERRORS = {
    1: "corrupt Huffman payload: no codeword matches",
    2: "truncated Huffman payload",
    3: "corrupt Huffman payload: sync mismatch",
}


def huff_decode(
    words,
    starts,
    ends,
    rem,
    total,
    lens_arr,
    first_arr,
    count_arr,
    base_arr,
    limits,
    flat_syms,
    esc_flat,
    esc_len,
    sync_block,
):
    """Decode one run of sync blocks; raises the reference ValueErrors."""
    n_blocks = starts.size
    out = np.empty((n_blocks, sync_block), dtype=np.int64)
    status = np.zeros(n_blocks, dtype=np.int64)
    _decode_blocks_kernel(
        np.ascontiguousarray(words),
        np.ascontiguousarray(starts),
        np.ascontiguousarray(ends),
        int(rem),
        int(total),
        lens_arr,
        first_arr,
        count_arr,
        base_arr,
        limits,
        flat_syms,
        int(esc_flat),
        int(esc_len),
        int(sync_block),
        out,
        status,
    )
    bad = status[status != 0]
    if bad.size:
        raise ValueError(_DECODE_ERRORS[int(bad.min())])
    return np.concatenate([out[:-1].reshape(-1), out[-1, :rem]])


#: op name -> compiled-backend implementation (the launcher registers
#: these behind the ``numba`` backend; the reference twins live in
#: :mod:`repro.kernels.launcher`)
NUMBA_OPS = {
    "mass": mass,
    "transfer": transfer,
    "solve": solve,
    "quantize": quantize,
    "dequantize": dequantize,
    "huff_pack": huff_pack,
    "huff_decode": huff_decode,
}
