"""Grid-processing kernel framework (paper Fig. 4 + Algorithm 1).

The paper's grid-processing framework executes the two coefficient
kernels with explicit thread-block tiles:

1. each thread block claims a tile of ``2^b`` coarse cells per dimension
   and stages the ``(2^b + 1)^d`` nodes it covers (tile + one-node halo)
   through shared memory, with warp-contiguous loads;
2. threads are then *re-assigned* from the load layout to interpolation
   work such that every warp executes a single interpolation type in a
   single direction — eliminating warp divergence (Algorithm 1);
3. results are written back in the load layout.

This module implements that structure literally (tile staging buffer =
"shared memory"; all interpolation arithmetic confined to the staged
tile) so tests can verify it is bit-identical to the vectorized fast
path of :mod:`repro.core.coefficients`, and so the divergence-free
thread assignment itself (:func:`interpolation_thread_assignment`) can
be property-tested.  The Python tile loop is the *validation* path;
production calls go through the vectorized path.

Interpolation types generalize the paper's 3D description: a detail
node's type is the non-empty subset of coarsening dimensions in which it
sits at a dropped (odd) position — edges, faces, and the cell center in
3D (7 types), edges and center in 2D (3 types).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from ..core.coefficients import compute_coefficients as _vec_compute
from ..core.grid import TensorHierarchy

__all__ = [
    "InterpolationAssignment",
    "interpolation_thread_assignment",
    "GridProcessingKernel",
]


@dataclass(frozen=True)
class InterpolationAssignment:
    """Algorithm 1's mapping of threads to interpolation operations.

    Attributes
    ----------
    b:
        Tile exponent; the tile has ``2^b`` cells per dimension.
    warp_size:
        Threads per warp.
    warps_per_type:
        ``P = ceil((2^b - 1)^d / warp_size)`` — warps dedicated to each
        interpolation type.
    n_types:
        Number of interpolation types (``2^d - 1``).
    ops_per_type:
        Work items of each type inside one tile.
    """

    b: int
    ndim: int
    warp_size: int
    warps_per_type: int
    n_types: int
    ops_per_type: int

    @property
    def total_warps(self) -> int:
        return self.warps_per_type * self.n_types

    def warp_type(self, warp_id: int) -> int:
        """Interpolation type executed by a warp (Alg. 1 SelectInterpolation)."""
        return warp_id // self.warps_per_type

    def work_index(self, warp_id: int, lane_id: int) -> int:
        """Linear index of the work item a (warp, lane) pair computes."""
        return (warp_id % self.warps_per_type) * self.warp_size + lane_id

    def work_coords(self, warp_id: int, lane_id: int) -> tuple[int, ...] | None:
        """Per-dimension work coordinates ``(wx, wy, wz)`` or ``None`` if idle.

        Mirrors Algorithm 1: the linear id is unravelled in base
        ``2^b - 1`` (the interior work lattice of the tile); lanes past
        the lattice are idle (but — crucially — *uniformly* idle within
        the trailing warp, so no divergent branches execute).
        """
        side = (1 << self.b) - 1
        p = self.work_index(warp_id, lane_id)
        if p >= side**self.ndim:
            return None
        coords = []
        for _ in range(self.ndim):
            coords.append(p % side)
            p //= side
        return tuple(coords)


def interpolation_thread_assignment(
    b: int, ndim: int = 3, warp_size: int = 32
) -> InterpolationAssignment:
    """Compute Algorithm 1's divergence-free thread↔operation assignment."""
    if b < 1:
        raise ValueError("tile exponent b must be >= 1")
    if ndim not in (1, 2, 3):
        raise ValueError("grid-processing tiles support 1-3 dimensions")
    side = (1 << b) - 1
    ops = side**ndim
    P = math.ceil(ops / warp_size)
    return InterpolationAssignment(
        b=b,
        ndim=ndim,
        warp_size=warp_size,
        warps_per_type=P,
        n_types=(1 << ndim) - 1,
        ops_per_type=ops,
    )


class GridProcessingKernel:
    """Literal tiled execution of the coefficient kernels.

    Parameters
    ----------
    hier, l:
        Hierarchy and the global level of the step ``l -> l-1``.
    b:
        Tile exponent: each thread block covers ``2^b`` coarse cells per
        coarsening dimension (bounded by shared-memory capacity on a
        real device; here it just sets the staging-tile size).
    """

    def __init__(self, hier: TensorHierarchy, l: int, b: int = 3):
        if not 1 <= l <= hier.L:
            raise ValueError(f"level must be in [1, {hier.L}], got {l}")
        self.hier = hier
        self.l = l
        self.b = b
        self.axes = hier.coarsening_dims(l)
        if not self.axes:
            raise ValueError(f"no dimension coarsens at level {l}")
        self.shape = hier.level_shape(l)
        self._ops = {k: hier.level_ops(l, k) for k in self.axes}
        self.assignment = interpolation_thread_assignment(b, ndim=min(len(self.axes), 3))

    # -- tile enumeration ---------------------------------------------------
    def tile_origins(self) -> list[tuple[int, ...]]:
        """Coarse-cell origins of every thread-block tile."""
        per_axis = []
        cells = 1 << self.b
        for k in range(len(self.shape)):
            if k in self.axes:
                n_cells = self._ops[k].m_coarse - 1
                per_axis.append(range(0, max(n_cells, 1), cells))
            else:
                per_axis.append(range(1))  # non-coarsening axes ride along whole
        return list(itertools.product(*per_axis))

    def _tile_node_slices(self, origin: tuple[int, ...]) -> tuple[slice, ...]:
        """Node index range (tile + one-node halo) covered by a tile."""
        cells = 1 << self.b
        out = []
        for k, o in enumerate(origin):
            if k in self.axes:
                pos = self._ops[k].coarse_pos
                j_end = min(o + cells, pos.shape[0] - 1)
                out.append(slice(int(pos[o]), int(pos[j_end]) + 1))
            else:
                out.append(slice(0, self.shape[k]))
        return tuple(out)

    # -- per-tile interpolation ------------------------------------------------
    def _tile_interpolant(self, tile: np.ndarray, sls: tuple[slice, ...]) -> np.ndarray:
        """Multilinear interpolant of the tile's coarse nodes, full tile shape.

        Implements the warp work of the framework: gather the coarse
        sub-lattice of the staged tile, then prolong it axis by axis —
        each axis pass is the batch of 1D interpolations that one
        interpolation-type warp group performs.
        """
        # coarse sub-lattice of the tile
        sel = []
        for k in range(tile.ndim):
            if k in self.axes:
                lo, hi = sls[k].start, sls[k].stop
                pos = self._ops[k].coarse_pos
                local = pos[(pos >= lo) & (pos < hi)] - lo
                sel.append(local.astype(np.intp))
            else:
                sel.append(np.arange(tile.shape[k], dtype=np.intp))
        sub = tile[np.ix_(*sel)]
        for k in self.axes:
            sub = self._prolong_axis(sub, k, sls[k])
        return sub

    def _prolong_axis(self, sub: np.ndarray, k: int, sl: slice) -> np.ndarray:
        """Prolong the tile's values from coarse to all nodes along axis ``k``."""
        ops = self._ops[k]
        lo, hi = sl.start, sl.stop
        pos = ops.coarse_pos
        in_tile = (pos >= lo) & (pos < hi)
        local_coarse = pos[in_tile] - lo
        j0 = int(np.nonzero(in_tile)[0][0])  # global interval offset of tile
        mov = np.moveaxis(sub, k, 0)
        out_shape = (hi - lo,) + mov.shape[1:]
        out = np.empty(out_shape, dtype=sub.dtype)
        out[local_coarse] = mov
        details = ops.detail_pos[(ops.detail_pos >= lo) & (ops.detail_pos < hi)]
        if details.size:
            j = details // 2  # global interval of each detail node
            wl = ops.w_left[j].reshape((-1,) + (1,) * (mov.ndim - 1))
            wr = ops.w_right[j].reshape((-1,) + (1,) * (mov.ndim - 1))
            out[details - lo] = wl * mov[j - j0] + wr * mov[j - j0 + 1]
        return np.moveaxis(out, 0, k)

    # -- kernels ----------------------------------------------------------------
    def compute(self, v: np.ndarray, validate_against_fast_path: bool = False) -> np.ndarray:
        """Tiled computation of detail coefficients (decomposition)."""
        if v.shape != self.shape:
            raise ValueError(f"expected shape {self.shape}, got {v.shape}")
        out = np.zeros_like(v)
        for origin in self.tile_origins():
            sls = self._tile_node_slices(origin)
            tile = np.ascontiguousarray(v[sls])  # stage through "shared memory"
            interp = self._tile_interpolant(tile, sls)
            self._writeback(out, tile - interp, sls)
        if validate_against_fast_path:
            ref = _vec_compute(v, self.hier, self.l)
            np.testing.assert_array_equal(out, ref)
        return out

    def restore(self, c: np.ndarray, vc: np.ndarray) -> np.ndarray:
        """Tiled restoration of nodal values (recomposition).

        The restored coarse values ``vc`` are scattered to their packed
        positions, then every tile adds its interpolant to the stored
        coefficients — the exact inverse of :meth:`compute`.
        """
        base = np.zeros(self.shape, dtype=np.result_type(c.dtype, vc.dtype))
        mesh = self._coarse_mesh()
        base[mesh] = vc
        out = np.zeros_like(base)
        for origin in self.tile_origins():
            sls = self._tile_node_slices(origin)
            tile_c = np.ascontiguousarray(c[sls])
            tile_b = np.ascontiguousarray(base[sls])
            interp = self._tile_interpolant(tile_b, sls)
            self._writeback(out, tile_c + interp, sls)
        out[mesh] = vc  # coarse nodes carry exact values, not c + interp noise
        return out

    def _coarse_mesh(self):
        per_dim = []
        for k, n in enumerate(self.shape):
            if k in self.axes:
                per_dim.append(self._ops[k].coarse_pos)
            else:
                per_dim.append(np.arange(n, dtype=np.intp))
        return np.ix_(*per_dim)

    def _writeback(self, out: np.ndarray, tile: np.ndarray, sls: tuple[slice, ...]) -> None:
        """Store a tile, overwriting the halo consistently.

        Halo nodes are coarse nodes shared between neighbouring tiles;
        both tiles compute identical values for them, so plain overwrite
        is race-free — the property that lets the real kernel store in
        place.
        """
        out[sls] = tile

    def validate(self, rng: np.random.Generator | None = None) -> None:
        """Self-check against the vectorized path on random data."""
        rng = rng or np.random.default_rng(0)
        v = rng.standard_normal(self.shape)
        self.compute(v, validate_against_fast_path=True)
