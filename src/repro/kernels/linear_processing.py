"""Linear-processing kernel framework (paper Fig. 5/6 + Algorithm 2).

The three correction kernels (mass-matrix multiplication, transfer-matrix
multiplication, correction solver) update every vector along one
dimension with a neighbour-dependent stencil, *in place*.  The paper's
framework balances parallelism and footprint by

* batching vectors onto thread blocks (vector-wise outer parallelism);
* walking each batch through the vector in fixed-size *segments* staged
  in shared memory, so that updated values never pollute unread
  neighbours; during the walk the data is partitioned into six regions
  (Fig. 6): processed / main (shared mem) / ghost 1 (registers, the
  last original values of the previous segment) / ghost 2 (shared mem,
  the first original values after the main region) / prefetch
  (registers) / unprocessed.

This module executes that structure at two speeds.  The default
methods (:meth:`~LinearProcessingKernel.mass_multiply`,
:meth:`~LinearProcessingKernel.transfer_multiply`,
:meth:`~LinearProcessingKernel.solve`) keep the segment walk but
compute each staged segment with whole-segment NumPy expressions — the
per-element loops of the original validation path are gone, yet the
arithmetic (operand order included) matches the production ops in
:mod:`repro.core` bit for bit, which tests assert.  The solver is the
one kernel whose along-axis recurrence is sequential by construction
(the paper's kernel respects the same dependence); there the
vectorization is over the batch and the walk is a single fused
recurrence without per-segment carry copies.

The original per-element implementations are retained as
``*_scalar`` methods — the cross-check references the fast paths are
tested against, mirroring how the entropy stage keeps its scalar
encoder.

All three fast methods dispatch through the kernel-launcher seam
(:mod:`repro.kernels.launcher`) first: when the backend policy resolves
to a compiled backend the whole batch runs through one JIT kernel
(bit-identical by contract), and when it resolves to ``reference`` the
segmented NumPy walk below runs untouched.
"""

from __future__ import annotations

import numpy as np

from ..core.grid import LevelOps
from ..core.solver import thomas_factor
from .launcher import maybe_launch

__all__ = ["LinearProcessingKernel"]


class LinearProcessingKernel:
    """Segment-pipelined in-place linear kernels along the last axis.

    The caller is responsible for presenting the data with the
    processing axis last (the framework's "always batch on the x-y /
    x-z plane" rule means the real kernel does the same re-orientation
    through its access functions).  All methods treat leading axes as
    the vector batch.

    Parameters
    ----------
    ops:
        Per-(dimension, level) operator data.
    segment:
        Main-region length in elements (the shared-memory tile width).
    backend:
        Kernel-backend policy for this kernel instance
        (``"reference"`` / ``"numba"`` / ``"auto"``); ``None`` defers
        to the process-wide policy (``REPRO_KERNEL_BACKEND``).
    """

    def __init__(self, ops: LevelOps, segment: int = 8, backend: str | None = None):
        if segment < 2:
            raise ValueError("segment length must be >= 2")
        self.ops = ops
        self.segment = segment
        self.backend = backend

    # ------------------------------------------------------------------
    # mass-matrix multiplication (Algorithm 2)
    # ------------------------------------------------------------------
    def mass_multiply(self, v: np.ndarray) -> np.ndarray:
        """In-place-style mass-matrix apply over segments; returns new array.

        The segment walk of the scalar reference is kept, but each
        staged segment is one vector expression: interior rows read
        their neighbours straight from the original array (the ghost
        regions are just the slice elements flanking the segment), and
        the two boundary rows use the one-sided stencils.
        """
        m = v.shape[-1]
        if m != self.ops.m_fine:
            raise ValueError(f"axis length {m} != m_fine {self.ops.m_fine}")
        if m == 1:
            return v.copy()
        h = self.ops.h_fine
        ran, res = maybe_launch(
            "mass", v.shape, v.dtype, v.reshape(-1, m), h, policy=self.backend
        )
        if ran:
            return res.reshape(v.shape)
        out = v.copy()
        seg = self.segment
        for start in range(0, m, seg):
            stop = min(start + seg, m)
            lo = max(start, 1)
            hi = min(stop, m - 1)
            if hi > lo:
                hl = h[lo - 1 : hi - 1]
                hr = h[lo:hi]
                out[..., lo:hi] = (
                    hl * v[..., lo - 1 : hi - 1]
                    + 2.0 * (hl + hr) * v[..., lo:hi]
                    + hr * v[..., lo + 1 : hi + 1]
                ) / 6.0
            if start == 0:
                out[..., 0] = (2.0 * h[0] * v[..., 0] + h[0] * v[..., 1]) / 6.0
            if stop == m:
                out[..., m - 1] = (
                    h[-1] * v[..., m - 2] + 2.0 * h[-1] * v[..., m - 1]
                ) / 6.0
        return out

    def mass_multiply_scalar(self, v: np.ndarray) -> np.ndarray:
        """Per-element reference walk (ghost carries in "registers")."""
        m = v.shape[-1]
        if m != self.ops.m_fine:
            raise ValueError(f"axis length {m} != m_fine {self.ops.m_fine}")
        if m == 1:
            return v.copy()
        h = self.ops.h_fine
        out = v.copy()
        seg = self.segment
        # ghost1: original value of the element just before the segment
        # (kept in "registers" because `out` may already be updated there)
        for start in range(0, m, seg):
            stop = min(start + seg, m)
            main = v[..., start:stop]  # staged original values ("shared mem")
            ghost1 = v[..., start - 1] if start > 0 else None
            ghost2 = v[..., stop] if stop < m else None  # first unread value
            out[..., start:stop] = self._mass_segment(main, ghost1, ghost2, start, stop, h)
        return out

    def _mass_segment(self, main, ghost1, ghost2, start, stop, h):
        """Device function of Algorithm 2 on one staged segment.

        Computes ``t = (h1*u[y-1] + 2*(h1+h2)*u[y] + h2*u[y+1]) / 6``
        for interior rows and the one-sided boundary rows, reading
        neighbours from the ghost regions at segment edges.
        """
        m = self.ops.m_fine
        width = stop - start
        t = np.empty_like(main)
        for y_local in range(width):
            y = start + y_local
            left = (
                main[..., y_local - 1]
                if y_local > 0
                else (ghost1 if ghost1 is not None else None)
            )
            right = (
                main[..., y_local + 1]
                if y_local + 1 < width
                else (ghost2 if ghost2 is not None else None)
            )
            if y == 0:
                t[..., y_local] = (2.0 * h[0] * main[..., y_local] + h[0] * right) / 6.0
            elif y == m - 1:
                t[..., y_local] = (h[-1] * left + 2.0 * h[-1] * main[..., y_local]) / 6.0
            else:
                h1, h2 = h[y - 1], h[y]
                t[..., y_local] = (
                    h1 * left + 2.0 * (h1 + h2) * main[..., y_local] + h2 * right
                ) / 6.0
        return t

    # ------------------------------------------------------------------
    # transfer-matrix multiplication (restriction)
    # ------------------------------------------------------------------
    def transfer_multiply(self, f: np.ndarray) -> np.ndarray:
        """Segmented load-vector restriction; output has coarse length.

        Each segment of coarse outputs gathers its own-interval
        (left-weight) contributions before the previous interval's
        right-weight contributions — the same accumulation order as the
        vectorized production path, so the result is bit-identical.
        Intervals without a detail node carry zero weights, making the
        clipped gather harmless.
        """
        m = f.shape[-1]
        if m != self.ops.m_fine:
            raise ValueError(f"axis length {m} != m_fine {self.ops.m_fine}")
        ops = self.ops
        mc = ops.m_coarse
        ran, res = maybe_launch(
            "transfer",
            f.shape,
            f.dtype,
            f.reshape(-1, m),
            ops.coarse_pos,
            ops.interval_detail,
            ops.w_left,
            ops.w_right,
            ops.m_detail,
            policy=self.backend,
        )
        if ran:
            return res.reshape(f.shape[:-1] + (mc,))
        out = np.empty(f.shape[:-1] + (mc,), dtype=f.dtype)
        seg = self.segment
        for start in range(0, mc, seg):
            stop = min(start + seg, mc)
            acc = f[..., ops.coarse_pos[start:stop]].copy()
            if ops.m_detail:
                own_hi = min(stop, mc - 1)
                if own_hi > start:
                    dv = f[..., ops.interval_detail[start:own_hi]]
                    acc[..., : own_hi - start] += ops.w_left[start:own_hi] * dv
                prev_lo = max(start, 1)
                if stop > prev_lo:
                    dv = f[..., ops.interval_detail[prev_lo - 1 : stop - 1]]
                    acc[..., prev_lo - start :] += (
                        ops.w_right[prev_lo - 1 : stop - 1] * dv
                    )
            out[..., start:stop] = acc
        return out

    def transfer_multiply_scalar(self, f: np.ndarray) -> np.ndarray:
        """Per-output reference walk (one coarse output per thread)."""
        m = f.shape[-1]
        if m != self.ops.m_fine:
            raise ValueError(f"axis length {m} != m_fine {self.ops.m_fine}")
        ops = self.ops
        mc = ops.m_coarse
        out = np.empty(f.shape[:-1] + (mc,), dtype=f.dtype)
        seg = self.segment
        for start in range(0, mc, seg):
            stop = min(start + seg, mc)
            for j in range(start, stop):  # one coarse output per thread
                p = ops.coarse_pos[j]
                acc = f[..., p].copy()
                # accumulate own-interval (left-weight) before the
                # previous interval's right-weight contribution, matching
                # the vectorized path's operation order bit-for-bit
                if j < mc - 1 and ops.has_detail[j]:
                    acc += ops.w_left[j] * f[..., ops.interval_detail[j]]
                if j > 0 and ops.has_detail[j - 1]:
                    acc += ops.w_right[j - 1] * f[..., ops.interval_detail[j - 1]]
                out[..., j] = acc
        return out

    # ------------------------------------------------------------------
    # correction solver (two dependent segment walks)
    # ------------------------------------------------------------------
    def solve(self, f: np.ndarray) -> np.ndarray:
        """Thomas solve ``M_{l-1} z = f`` along the last axis.

        The along-axis recurrence is sequential by construction — the
        paper's kernel walks it the same way — so the fast path fuses
        the two segment walks into single forward/backward recurrences
        (no per-segment carry copies) with every step vectorized over
        the batch, exactly matching
        :func:`repro.core.solver.thomas_solve` operation for operation.
        """
        mc = f.shape[-1]
        if mc != self.ops.m_coarse:
            raise ValueError(f"axis length {mc} != m_coarse {self.ops.m_coarse}")
        if mc == 1:
            return f / self.ops.mass_bands_coarse[1, 0]
        lower = self.ops.mass_bands_coarse[0, 1:]
        cp, denom = thomas_factor(self.ops)
        ran, res = maybe_launch(
            "solve",
            f.shape,
            f.dtype,
            f.reshape(-1, mc),
            lower,
            cp,
            denom,
            policy=self.backend,
        )
        if ran:
            return res.reshape(f.shape)
        z = f.astype(np.float64, copy=True)
        z[..., 0] = z[..., 0] / denom[0]
        for i in range(1, mc):
            z[..., i] = (z[..., i] - lower[i - 1] * z[..., i - 1]) / denom[i]
        for i in range(mc - 2, -1, -1):
            z[..., i] = z[..., i] - cp[i] * z[..., i + 1]
        return z

    def solve_scalar(self, f: np.ndarray) -> np.ndarray:
        """Segmented reference walk with explicit ghost carries.

        The forward sweep walks segments left to right carrying the last
        eliminated value in "registers" (ghost 1); the backward sweep
        walks right to left carrying the last solved value.  Uses the
        precomputed pivots of :func:`repro.core.solver.thomas_factor` —
        the ``O(m)`` extra buffer the paper charges this kernel.
        """
        mc = f.shape[-1]
        if mc != self.ops.m_coarse:
            raise ValueError(f"axis length {mc} != m_coarse {self.ops.m_coarse}")
        if mc == 1:
            return f / self.ops.mass_bands_coarse[1, 0]
        lower = self.ops.mass_bands_coarse[0, 1:]
        cp, denom = thomas_factor(self.ops)
        z = f.astype(np.float64, copy=True)
        seg = self.segment
        # forward elimination
        carry = None  # ghost 1: z[i-1] of the previous segment
        for start in range(0, mc, seg):
            stop = min(start + seg, mc)
            for i in range(start, stop):
                if i == 0:
                    z[..., 0] = z[..., 0] / denom[0]
                else:
                    prev = carry if i == start else z[..., i - 1]
                    z[..., i] = (z[..., i] - lower[i - 1] * prev) / denom[i]
            carry = z[..., stop - 1].copy()
        # backward substitution
        carry = None  # ghost 1 of the reverse walk: z[i+1]
        starts = list(range(0, mc, seg))
        for start in reversed(starts):
            stop = min(start + seg, mc)
            for i in range(stop - 1, start - 1, -1):
                if i == mc - 1:
                    continue
                nxt = carry if i == stop - 1 else z[..., i + 1]
                z[..., i] = z[..., i] - cp[i] * nxt
            carry = z[..., start].copy()
        return z
