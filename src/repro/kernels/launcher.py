"""Kernel backend registry: compile-once, cache per signature, dispatch hot.

The paper's premise is hand-tuned kernels selected per configuration
(§III-A); this module is the host-side seam that makes the backend a
*configuration axis* instead of a hard-coded implementation.  A
:class:`KernelLauncher` exposes ``compile(op, signature) -> handle``
and ``launch(handle, *arrays)``; compiled handles are cached per
``(op, signature)`` on the launcher, so JIT cost is paid once and the
hot path is a dict hit plus a call (the gstaichi ``KernelLauncher`` /
template-mapper shape).

Two backends are registered:

* ``reference`` — the existing NumPy kernels, always available, and
  the bit-identity oracle every other backend is checked against;
* ``numba`` — ``@njit(cache=True)`` twins of the hot loops
  (:mod:`repro.kernels.backend_numba`), available only when the
  optional ``jit`` extra is installed.

Selection policy (``REPRO_KERNEL_BACKEND`` / ``--kernel-backend`` /
:func:`set_kernel_backend`):

* ``reference`` — always the NumPy path;
* ``numba`` — the compiled path, with a single warning + fallback when
  numba is missing;
* ``auto`` (default) — *measured* per-(op, shape, dtype) selection via
  :func:`repro.kernels.autotune.select_backend`; resolves silently to
  ``reference`` when numba is not installed.

Every op's ABI is plain arrays (plus ints), so backends are trivially
interchangeable and the identity contract — compiled output equals
reference output bit for bit — is assertable array-by-array, exactly
as the scalar Huffman encoders cross-check the vectorized ones.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .jit import HAVE_NUMBA

__all__ = [
    "KernelLauncher",
    "NumbaLauncher",
    "OpSpec",
    "OP_SPECS",
    "ReferenceLauncher",
    "Signature",
    "available_backends",
    "get_launcher",
    "kernel_backend_policy",
    "maybe_launch",
    "resolve",
    "run_op",
    "set_kernel_backend",
    "signature_of",
]

VALID_POLICIES = ("reference", "numba", "auto")


@dataclass(frozen=True)
class Signature:
    """Compile-cache key of one kernel specialization."""

    dtype: str
    ndim: int


def signature_of(*args) -> Signature:
    """Signature derived from the first array argument."""
    for a in args:
        if isinstance(a, np.ndarray):
            return Signature(str(a.dtype), a.ndim)
    return Signature("object", 0)


# ----------------------------------------------------------------------
# op specs: reference implementations + synthetic input builders
#
# The reference callables below are whole-axis NumPy twins of the
# production paths (same per-element arithmetic and operand order, so
# bit-identical); the input builders synthesize representative operands
# for autotune measurement, backend warm-up, and the benchmark sweep.


def _batch_shape(shape: tuple[int, ...]) -> tuple[int, int]:
    """Interpret an op shape as a (batch, m) block."""
    if len(shape) >= 2:
        m = int(shape[-1])
        b = 1
        for s in shape[:-1]:
            b *= int(s)
        return max(b, 1), max(m, 2)
    return 1, max(int(shape[0]) if shape else 2, 2)


def _ref_mass(v2, h):
    out = np.empty_like(v2)
    out[:, 1:-1] = (
        h[:-1] * v2[:, :-2]
        + 2.0 * (h[:-1] + h[1:]) * v2[:, 1:-1]
        + h[1:] * v2[:, 2:]
    ) / 6.0
    out[:, 0] = (2.0 * h[0] * v2[:, 0] + h[0] * v2[:, 1]) / 6.0
    out[:, -1] = (h[-1] * v2[:, -2] + 2.0 * h[-1] * v2[:, -1]) / 6.0
    return out


def _make_mass(shape, dtype, rng):
    b, m = _batch_shape(shape)
    v = rng.standard_normal((b, m)).astype(dtype, copy=False)
    h = rng.uniform(0.8, 1.2, m - 1)
    return v, h


def _ref_transfer(f2, coarse_pos, interval_detail, w_left, w_right, m_detail):
    acc = f2[:, coarse_pos].copy()
    if m_detail:
        dv = f2[:, interval_detail]
        acc[:, :-1] += w_left * dv
        acc[:, 1:] += w_right * dv
    return acc


def _make_transfer(shape, dtype, rng):
    b, m = _batch_shape(shape)
    m |= 1  # dyadic layout below assumes an odd fine length
    if m < 3:
        m = 3
    f = rng.standard_normal((b, m)).astype(dtype, copy=False)
    coarse_pos = np.arange(0, m, 2, dtype=np.int64)
    interval_detail = np.arange(1, m, 2, dtype=np.int64)
    w = rng.uniform(0.3, 0.7, interval_detail.size)
    return f, coarse_pos, interval_detail, w, 1.0 - w, interval_detail.size


def _ref_solve(f2, lower, cp, denom):
    z = f2.astype(np.float64)
    mc = z.shape[1]
    z[:, 0] = z[:, 0] / denom[0]
    for i in range(1, mc):
        z[:, i] = (z[:, i] - lower[i - 1] * z[:, i - 1]) / denom[i]
    for i in range(mc - 2, -1, -1):
        z[:, i] = z[:, i] - cp[i] * z[:, i + 1]
    return z


def _make_solve(shape, dtype, rng):
    b, m = _batch_shape(shape)
    f = rng.standard_normal((b, m)).astype(dtype, copy=False)
    lower = rng.uniform(0.5, 1.0, m - 1)
    cp = rng.uniform(0.1, 0.4, m - 1)
    denom = rng.uniform(2.5, 3.5, m)
    return f, lower, cp, denom


def _ref_quantize(flat, inv):
    return np.round(flat * inv).astype(np.int64)


def _make_quantize(shape, dtype, rng):
    n = max(int(np.prod(shape)) if shape else 1, 1)
    flat = (rng.standard_normal(n) * 40.0).astype(dtype, copy=False)
    inv = np.repeat(1.0 / rng.uniform(0.005, 0.05, 4), -(-n // 4))[:n]
    return flat, np.ascontiguousarray(inv)


def _ref_dequantize(bins, scale):
    return bins.astype(np.float64) * scale


def _make_dequantize(shape, dtype, rng):
    n = max(int(np.prod(shape)) if shape else 1, 1)
    bins = rng.integers(-2000, 2000, n, dtype=np.int64)
    scale = np.repeat(rng.uniform(0.005, 0.05, 4), -(-n // 4))[:n]
    return bins, np.ascontiguousarray(scale)


def _ref_huff_pack(c_codes, c_lens, offsets):
    from ..compress.huffman import _pack_chunks_words_numpy

    return _pack_chunks_words_numpy(c_codes, c_lens, offsets)


def _make_huff_pack(shape, dtype, rng):
    n = max(int(np.prod(shape)) if shape else 1, 1)
    c_lens = rng.integers(1, 24, n).astype(np.int64)
    raw = rng.integers(0, 1 << 62, n, dtype=np.int64).astype(np.uint64)
    c_codes = raw & ((np.uint64(1) << c_lens.astype(np.uint64)) - np.uint64(1))
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(c_lens, out=offsets[1:])
    return c_codes, c_lens, offsets


def _ref_huff_decode(
    words,
    starts,
    ends,
    rem,
    total,
    lens_arr,
    first_arr,
    count_arr,
    base_arr,
    limits,
    flat_syms,
    esc_flat,
    esc_len,
    sync_block,
):
    from ..compress import huffman as _H

    t = _H._DecodeTables.__new__(_H._DecodeTables)
    t.lens_arr = lens_arr
    t.first_arr = first_arr
    t.count_arr = count_arr
    t.base_arr = base_arr
    t.limits = limits
    t.flat_syms = flat_syms
    t.esc_flat = int(esc_flat)
    t.esc_len = int(esc_len) if esc_len else None
    return _H._decode_sync_range_numpy(words, starts, ends, rem, total, t)


def _make_huff_decode(shape, dtype, rng):
    from ..compress import huffman as _H

    n = max(int(np.prod(shape)) if shape else 1, 16)
    values = np.rint(rng.standard_normal(n) * 3.0).astype(np.int64)
    payload, header = _H.huffman_encode(values)
    code = _H.HuffmanCode.from_lengths(_H._lengths_from_header(header))
    t = _H._DecodeTables(code)
    total = int(header["bits"])
    sync = header.get("sync", [])
    starts = np.concatenate([[0], sync]).astype(np.int64)
    ends = np.concatenate([sync, [total]]).astype(np.int64)
    rem = n - (starts.size - 1) * _H._SYNC_BLOCK
    words = _H._payload_words(payload, total)
    return (
        words,
        starts,
        ends,
        int(rem),
        total,
        t.lens_arr,
        t.first_arr,
        t.count_arr,
        t.base_arr,
        t.limits,
        t.flat_syms,
        int(t.esc_flat),
        int(t.esc_len or 0),
        _H._SYNC_BLOCK,
    )


@dataclass(frozen=True)
class OpSpec:
    """One dispatchable hot-loop op: reference impl + operand builder."""

    name: str
    reference: Callable
    make_inputs: Callable


#: Registry of dispatchable ops, shared by every backend.
OP_SPECS: dict[str, OpSpec] = {
    "mass": OpSpec("mass", _ref_mass, _make_mass),
    "transfer": OpSpec("transfer", _ref_transfer, _make_transfer),
    "solve": OpSpec("solve", _ref_solve, _make_solve),
    "quantize": OpSpec("quantize", _ref_quantize, _make_quantize),
    "dequantize": OpSpec("dequantize", _ref_dequantize, _make_dequantize),
    "huff_pack": OpSpec("huff_pack", _ref_huff_pack, _make_huff_pack),
    "huff_decode": OpSpec("huff_decode", _ref_huff_decode, _make_huff_decode),
}

#: Minimal shapes used to warm a backend's JIT inside ``compile``.
_WARM_SHAPES = {
    "mass": (2, 5),
    "transfer": (2, 5),
    "solve": (2, 5),
    "quantize": (8,),
    "dequantize": (8,),
    "huff_pack": (8,),
    "huff_decode": (64,),
}


# ----------------------------------------------------------------------
# launchers


class KernelLauncher:
    """Backend interface: compile per signature once, launch many times."""

    name = "abstract"

    def __init__(self):
        self._handles: dict[tuple[str, Signature], Callable] = {}
        self.stats = {"compiles": 0, "cache_hits": 0}

    def available(self) -> bool:
        """Whether this backend can run on the current host."""
        return True

    def compile(self, op: str, signature: Signature) -> Callable:
        """Build (and for JIT backends, warm) the handle for one op."""
        raise NotImplementedError

    def launch(self, handle: Callable, *arrays):
        """Run a compiled handle on its operands."""
        return handle(*arrays)

    def compiled(self, op: str, signature: Signature) -> Callable:
        """Cached :meth:`compile` — the per-(op, signature) hot path."""
        key = (op, signature)
        handle = self._handles.get(key)
        if handle is None:
            handle = self.compile(op, signature)
            self._handles[key] = handle
            self.stats["compiles"] += 1
        else:
            self.stats["cache_hits"] += 1
        return handle

    def cache_info(self) -> dict:
        """Compile-cache accounting (entries / compiles / hits)."""
        return {"entries": len(self._handles), **self.stats}


class ReferenceLauncher(KernelLauncher):
    """The always-available NumPy backend — the identity oracle."""

    name = "reference"

    def compile(self, op: str, signature: Signature) -> Callable:
        return OP_SPECS[op].reference


class NumbaLauncher(KernelLauncher):
    """JIT backend over :mod:`repro.kernels.backend_numba`."""

    name = "numba"

    def available(self) -> bool:
        return HAVE_NUMBA

    def compile(self, op: str, signature: Signature) -> Callable:
        from . import backend_numba

        fn = backend_numba.NUMBA_OPS[op]
        # run once on a minimal same-dtype input so the numba dispatch
        # compiles here, inside compile(), not on the first hot launch
        try:
            dtype = np.dtype(signature.dtype)
        except TypeError:
            dtype = np.dtype(np.float64)
        args = OP_SPECS[op].make_inputs(
            _WARM_SHAPES[op], dtype, np.random.default_rng(0)
        )
        fn(*args)
        return fn


_LAUNCHERS: dict[str, KernelLauncher] = {
    "reference": ReferenceLauncher(),
    "numba": NumbaLauncher(),
}


def get_launcher(name: str) -> KernelLauncher:
    """The registered launcher named ``name`` (available or not)."""
    try:
        return _LAUNCHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_LAUNCHERS)}"
        ) from None


def available_backends() -> list[str]:
    """Names of the backends that can run on this host."""
    return [n for n, lau in _LAUNCHERS.items() if lau.available()]


# ----------------------------------------------------------------------
# selection policy

_POLICY_OVERRIDE: str | None = None
_WARNED_NO_NUMBA = False


def set_kernel_backend(policy: str | None) -> None:
    """Set the process-wide backend policy (``None`` = back to env/auto)."""
    global _POLICY_OVERRIDE
    if policy is not None and policy not in VALID_POLICIES:
        raise ValueError(
            f"kernel backend must be one of {VALID_POLICIES}, got {policy!r}"
        )
    _POLICY_OVERRIDE = policy


def kernel_backend_policy() -> str:
    """Active policy: override > ``REPRO_KERNEL_BACKEND`` > ``auto``."""
    if _POLICY_OVERRIDE is not None:
        return _POLICY_OVERRIDE
    env = os.environ.get("REPRO_KERNEL_BACKEND", "auto")
    if env not in VALID_POLICIES:
        raise ValueError(
            f"REPRO_KERNEL_BACKEND must be one of {VALID_POLICIES}, got {env!r}"
        )
    return env


def resolve(
    op: str, shape: tuple[int, ...], dtype, policy: str | None = None
) -> KernelLauncher:
    """Pick the launcher for one (op, shape, dtype) under the policy.

    ``reference`` and ``numba`` are direct requests (the latter warns
    once and falls back when numba is missing); ``auto`` asks the
    autotuner for its *measured* per-shape choice and resolves silently
    to ``reference`` when numba is not installed.
    """
    global _WARNED_NO_NUMBA
    if op not in OP_SPECS:
        raise ValueError(f"unknown kernel op {op!r}; registered: {sorted(OP_SPECS)}")
    p = policy if policy is not None else kernel_backend_policy()
    if p not in VALID_POLICIES:
        raise ValueError(f"kernel backend must be one of {VALID_POLICIES}, got {p!r}")
    reference = _LAUNCHERS["reference"]
    if p == "reference":
        return reference
    numba = _LAUNCHERS["numba"]
    if not numba.available():
        if p == "numba" and not _WARNED_NO_NUMBA:
            warnings.warn(
                "REPRO_KERNEL_BACKEND=numba but numba is not installed "
                "(pip install repro[jit]); falling back to the reference "
                "backend",
                RuntimeWarning,
                stacklevel=2,
            )
            _WARNED_NO_NUMBA = True
        return reference
    if p == "numba":
        return numba
    from . import autotune

    if autotune.select_backend(op, shape, dtype) == "numba":
        return numba
    return reference


def maybe_launch(
    op: str, shape: tuple[int, ...], dtype, *args, policy: str | None = None
):
    """Hot-path dispatch: ``(True, result)`` if a compiled backend ran.

    Returns ``(False, None)`` when policy resolution lands on the
    reference backend, so call sites keep their existing (already
    optimal-NumPy) code path with zero extra work.
    """
    lau = resolve(op, shape, dtype, policy)
    if lau.name == "reference":
        return False, None
    handle = lau.compiled(op, Signature(str(np.dtype(dtype)), len(shape)))
    return True, lau.launch(handle, *args)


def run_op(backend: str, op: str, *args):
    """Run one op on one backend directly (tests / benchmarks)."""
    lau = get_launcher(backend)
    if not lau.available():
        raise ValueError(f"kernel backend {backend!r} is not available on this host")
    handle = lau.compiled(op, signature_of(*args))
    return lau.launch(handle, *args)
