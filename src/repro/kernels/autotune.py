"""Configuration tuning: modeled launch sweeps + measured backend picks.

The paper tunes its launch configurations by hand ("Although choosing
large block sizes can reduce thread divergence, it may cause the total
number of threads to exceed the maximum allowed on a streaming
multiprocessor or make the SM underutilized", §III-A).  With the cost
model in hand, that search can be automated: :func:`autotune` sweeps
the discrete design space (stream count, linear-framework thread-block
rows) and returns the configuration with the lowest modeled end-to-end
time for a given (shape, device, operation).

This is the simulated-substrate analogue of the autotuning literature
the paper cites ([14], Basu et al.), applied to *its* design space.
Since the launcher seam added real alternative kernel *backends*
(:mod:`repro.kernels.launcher`), the second half of that literature
applies too: :func:`select_backend` picks the backend per
(op, shape, dtype) from **measured** warm-cache times — each candidate
is compiled/warmed first, then timed best-of-``repeats`` — instead of
the static cost model, and persists the verdicts in an on-disk table
(``benchmarks/results/kernel_tuning.json`` or ``$REPRO_TUNE_CACHE``)
keyed by a schema version so stale tables from older layouts are
invalidated wholesale rather than trusted.  Every :class:`TuneResult`
now records *which backend won and why* (``modeled`` static sweep vs
``measured`` timing), so the two tuning regimes cannot be confused.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.grid import hierarchy_for
from ..gpu.analytic import model_pass
from ..gpu.device import DeviceSpec, V100
from .launches import EngineOptions

__all__ = [
    "KERNEL_TUNE_SCHEMA",
    "TuneResult",
    "autotune",
    "autotune_backend",
    "clear_backend_cache",
    "measure_backend_times",
    "select_backend",
    "tune_table_path",
]

#: Version key of the persisted timing table.  Bump whenever the op
#: ABI, the measurement protocol, or the entry layout changes; tables
#: written under any other schema are discarded, not reinterpreted.
KERNEL_TUNE_SCHEMA = 1


@dataclass
class TuneResult:
    """Outcome of one autotuning sweep.

    ``backend`` names the kernel backend the sweep selected and ``why``
    records the evidence class: ``"modeled"`` when the static cost
    model ranked the candidates (the launch-configuration sweeps, which
    never leave the reference backend), ``"measured"`` when real
    warm-cache timings did (the backend sweeps).
    """

    best: EngineOptions
    best_seconds: float
    baseline_seconds: float
    evaluated: int
    table: list[tuple[EngineOptions, float]]
    backend: str = "reference"
    why: str = "modeled"

    @property
    def gain(self) -> float:
        """Speedup of the tuned configuration over the defaults."""
        return self.baseline_seconds / self.best_seconds


def autotune(
    shape: tuple[int, ...],
    device: DeviceSpec = V100,
    operation: str = "decompose",
    stream_choices: tuple[int, ...] = (1, 2, 4, 8, 16),
    tpv_choices: tuple[int, ...] = (4, 8, 16, 32),
) -> TuneResult:
    """Exhaustively search the launch-configuration space via the model.

    The space is tiny (tens of points) and each evaluation is a
    shape-only walk, so the sweep costs milliseconds — which is exactly
    the advantage of having a calibrated model over empirical tuning.
    """
    hier = hierarchy_for(shape)
    baseline = model_pass(hier, device, EngineOptions(), operation).total_seconds
    table = []
    for streams in stream_choices:
        for tpv in tpv_choices:
            opts = EngineOptions(n_streams=streams, lpf_threads_per_vector=tpv)
            t = model_pass(hier, device, opts, operation).total_seconds
            table.append((opts, t))
    table.sort(key=lambda item: item[1])
    best, best_t = table[0]
    return TuneResult(
        best=best,
        best_seconds=best_t,
        baseline_seconds=baseline,
        evaluated=len(table),
        table=table,
        backend="reference",
        why="modeled",
    )


# ----------------------------------------------------------------------
# Measured per-(op, shape, dtype) backend selection
# ----------------------------------------------------------------------

#: Cap on synthesized operand size for one measurement, so a miss on a
#: paper-scale shape costs milliseconds, not a full-scale run.
_MEASURE_CAP = 1 << 21

#: Hysteresis: the compiled backend must beat reference by this factor
#: before ``auto`` switches away from the (always-correct) default.
_SWITCH_MARGIN = 0.95

_SELECT_CACHE: dict[str, str] = {}
_TABLE_CACHE: dict[str, dict] | None = None


def tune_table_path() -> Path:
    """Where the measured timing table is persisted.

    ``$REPRO_TUNE_CACHE`` wins; the default sits next to the committed
    benchmark artifacts under ``benchmarks/results/``.
    """
    env = os.environ.get("REPRO_TUNE_CACHE")
    if env:
        return Path(env)
    return Path("benchmarks") / "results" / "kernel_tuning.json"


def _load_table() -> dict[str, dict]:
    """Persisted entries, or ``{}`` on any schema mismatch / corruption."""
    global _TABLE_CACHE
    if _TABLE_CACHE is not None:
        return _TABLE_CACHE
    path = tune_table_path()
    entries: dict[str, dict] = {}
    try:
        doc = json.loads(path.read_text())
        if doc.get("schema") == KERNEL_TUNE_SCHEMA:
            entries = dict(doc.get("entries", {}))
        # any other schema: a stale table from an older op ABI — ignore
    except (OSError, ValueError):
        pass
    _TABLE_CACHE = entries
    return entries


def _save_table(entries: dict[str, dict]) -> None:
    """Atomically persist the timing table (best-effort)."""
    path = tune_table_path()
    doc = {
        "schema": KERNEL_TUNE_SCHEMA,
        "cpu_count": os.cpu_count(),
        "entries": entries,
    }
    try:
        if not path.parent.is_dir():
            if "REPRO_TUNE_CACHE" not in os.environ:
                return  # don't litter arbitrary cwds with benchmarks/ dirs
            path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except OSError:
        pass  # persistence is an optimization, never a failure mode


def clear_backend_cache() -> None:
    """Drop the in-memory selection/table caches (tests, path changes)."""
    global _TABLE_CACHE
    _SELECT_CACHE.clear()
    _TABLE_CACHE = None


def _bucket_key(op: str, shape: tuple[int, ...], dtype) -> str:
    """Table key: shapes bucket by log2(total elements), not exact size."""
    n = 1
    for s in shape:
        n *= max(int(s), 1)
    log2n = max(n - 1, 0).bit_length()
    return f"{op}|{np.dtype(dtype)}|{len(shape)}|{log2n}"


def _measure_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """The shape actually synthesized for timing (capped batch)."""
    n = math.prod(shape) if shape else 1
    if n <= _MEASURE_CAP:
        return tuple(int(s) for s in shape) or (1,)
    if len(shape) >= 2:
        m = int(shape[-1])
        return (max(1, _MEASURE_CAP // max(m, 1)), m)
    return (_MEASURE_CAP,)


def measure_backend_times(
    op: str, shape: tuple[int, ...], dtype, repeats: int = 3
) -> dict[str, float]:
    """Warm-cache seconds per available backend for one op instance.

    Each backend is compiled (JIT included) and run once before timing,
    so the numbers are steady-state launch costs — the quantity backend
    selection should rank — not first-call compile costs.
    """
    from . import launcher as L

    spec = L.OP_SPECS[op]
    mshape = _measure_shape(shape)
    rng = np.random.default_rng(0xC0FFEE)
    args = spec.make_inputs(mshape, np.dtype(dtype), rng)
    sig = L.Signature(str(np.dtype(dtype)), len(mshape))
    times: dict[str, float] = {}
    for name in ("reference", "numba"):
        lau = L.get_launcher(name)
        if not lau.available():
            continue
        handle = lau.compiled(op, sig)
        lau.launch(handle, *args)  # warm: JIT specialization, caches
        best = math.inf
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            lau.launch(handle, *args)
            best = min(best, time.perf_counter() - t0)
        times[name] = best
    return times


def select_backend(op: str, shape: tuple[int, ...], dtype) -> str:
    """Measured per-(op, shape, dtype) backend choice for ``auto``.

    Consults the in-memory cache, then the persisted table, and only
    then measures — so steady-state cost is a dict lookup.  The numba
    backend is chosen only when its measured time beats reference by
    :data:`_SWITCH_MARGIN`; with numba unavailable this returns
    ``reference`` without measuring anything.
    """
    from . import launcher as L

    if not L.get_launcher("numba").available():
        return "reference"
    key = _bucket_key(op, shape, dtype)
    cached = _SELECT_CACHE.get(key)
    if cached is not None:
        return cached
    entries = _load_table()
    entry = entries.get(key)
    if entry is None:
        times = measure_backend_times(op, shape, dtype)
        winner = "reference"
        if "numba" in times and times["numba"] < times["reference"] * _SWITCH_MARGIN:
            winner = "numba"
        entry = {
            "backend": winner,
            "times": times,
            "why": "measured",
            "cpu_count": os.cpu_count(),
        }
        entries[key] = entry
        _save_table(entries)
    choice = entry.get("backend", "reference")
    if choice not in ("reference", "numba"):
        choice = "reference"
    _SELECT_CACHE[key] = choice
    return choice


def autotune_backend(op: str, shape: tuple[int, ...], dtype=np.float64) -> TuneResult:
    """Measured backend sweep for one op — the empirical twin of
    :func:`autotune`, with ``why="measured"`` and the winning backend
    recorded on the result."""
    times = measure_backend_times(op, shape, dtype)
    baseline = times["reference"]
    ranked = sorted(times.items(), key=lambda kv: (kv[1], kv[0] != "reference"))
    winner, best = ranked[0]
    if winner != "reference" and best >= baseline * _SWITCH_MARGIN:
        winner, best = "reference", baseline
    return TuneResult(
        best=EngineOptions(),
        best_seconds=best,
        baseline_seconds=baseline,
        evaluated=len(times),
        table=ranked,
        backend=winner,
        why="measured",
    )
