"""Model-driven configuration tuning for the GPU design.

The paper tunes its launch configurations by hand ("Although choosing
large block sizes can reduce thread divergence, it may cause the total
number of threads to exceed the maximum allowed on a streaming
multiprocessor or make the SM underutilized", §III-A).  With the cost
model in hand, that search can be automated: :func:`autotune` sweeps
the discrete design space (stream count, linear-framework thread-block
rows) and returns the configuration with the lowest modeled end-to-end
time for a given (shape, device, operation).

This is the simulated-substrate analogue of the autotuning literature
the paper cites ([14], Basu et al.), applied to *its* design space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.grid import hierarchy_for
from ..gpu.analytic import model_pass
from ..gpu.device import DeviceSpec, V100
from .launches import EngineOptions

__all__ = ["TuneResult", "autotune"]


@dataclass
class TuneResult:
    """Outcome of one autotuning sweep."""

    best: EngineOptions
    best_seconds: float
    baseline_seconds: float
    evaluated: int
    table: list[tuple[EngineOptions, float]]

    @property
    def gain(self) -> float:
        """Speedup of the tuned configuration over the defaults."""
        return self.baseline_seconds / self.best_seconds


def autotune(
    shape: tuple[int, ...],
    device: DeviceSpec = V100,
    operation: str = "decompose",
    stream_choices: tuple[int, ...] = (1, 2, 4, 8, 16),
    tpv_choices: tuple[int, ...] = (4, 8, 16, 32),
) -> TuneResult:
    """Exhaustively search the launch-configuration space via the model.

    The space is tiny (tens of points) and each evaluation is a
    shape-only walk, so the sweep costs milliseconds — which is exactly
    the advantage of having a calibrated model over empirical tuning.
    """
    hier = hierarchy_for(shape)
    baseline = model_pass(hier, device, EngineOptions(), operation).total_seconds
    table = []
    for streams in stream_choices:
        for tpv in tpv_choices:
            opts = EngineOptions(n_streams=streams, lpf_threads_per_vector=tpv)
            t = model_pass(hier, device, opts, operation).total_seconds
            table.append((opts, t))
    table.sort(key=lambda item: item[1])
    best, best_t = table[0]
    return TuneResult(
        best=best,
        best_seconds=best_t,
        baseline_seconds=baseline,
        evaluated=len(table),
        table=table,
    )
