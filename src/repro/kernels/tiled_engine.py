"""An execution engine built entirely from the literal kernel frameworks.

The strongest structural claim a reproduction of the paper's §III can
make: Algorithm 3 runs end to end with every kernel executed through
the *literal* framework implementations —

* coefficients/restore through the tiled grid-processing framework
  (:class:`~repro.kernels.grid_processing.GridProcessingKernel`,
  Fig. 4 + Algorithm 1);
* mass/transfer/solve through the segment-pipelined linear-processing
  framework (:class:`~repro.kernels.linear_processing.LinearProcessingKernel`,
  Fig. 5/6 + Algorithm 2), routed slice-by-slice on 3D data exactly as
  §III-D prescribes (:class:`~repro.kernels.batch3d.SlicedLinearProcessor`)

— and produces results identical to the vectorized reference engine
(bit-for-bit for the grid/mass/transfer kernels, to solver tolerance
for the correction).  ``TiledEngine`` is slow (Python tile loops) and
exists for validation and for studying the frameworks; production runs
use the vectorized engines.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import NumpyEngine
from ..core.grid import LevelOps, TensorHierarchy
from .batch3d import SlicedLinearProcessor
from .grid_processing import GridProcessingKernel
from .linear_processing import LinearProcessingKernel

__all__ = ["TiledEngine"]


class TiledEngine(NumpyEngine):
    """Run the refactoring pipeline through the literal paper kernels.

    Parameters
    ----------
    b:
        Grid-processing tile exponent (``2^b`` cells per dimension).
    segment:
        Linear-processing main-region length.
    n_streams:
        Simulated streams for the 3D slice walks.
    kernel_backend:
        Kernel-backend policy forwarded to the linear-processing
        kernels (``None`` defers to the process-wide policy).
    """

    def __init__(
        self,
        b: int = 3,
        segment: int = 16,
        n_streams: int = 8,
        kernel_backend: str | None = None,
    ):
        self.b = b
        self.segment = segment
        self.n_streams = n_streams
        self.kernel_backend = kernel_backend
        self._grid_kernels: dict[tuple[int, int], GridProcessingKernel] = {}
        self.slice_launches = 0  # §III-D accounting, for tests/inspection

    # -- grid-processing kernels ------------------------------------------
    def _grid_kernel(self, hier: TensorHierarchy, l: int) -> GridProcessingKernel:
        key = (id(hier), l)
        if key not in self._grid_kernels:
            self._grid_kernels[key] = GridProcessingKernel(hier, l, b=self.b)
        return self._grid_kernels[key]

    def compute_coefficients(self, v, hier, l):
        return self._grid_kernel(hier, l).compute(v)

    def restore_from_coefficients(self, c, vc, hier, l):
        return self._grid_kernel(hier, l).restore(c, vc)

    # -- linear-processing kernels -------------------------------------------
    def _linear(self, data: np.ndarray, ops: LevelOps, axis: int, op: str) -> np.ndarray:
        if data.ndim == 3:
            proc = SlicedLinearProcessor(ops, n_streams=self.n_streams,
                                         segment=self.segment,
                                         backend=self.kernel_backend)
            out = getattr(proc, op)(data, axis)
            self.slice_launches += len(proc.launches)
            return out
        kernel = LinearProcessingKernel(ops, segment=self.segment,
                                        backend=self.kernel_backend)
        moved = np.moveaxis(data, axis, -1)
        out = getattr(kernel, _METHOD_2D[op])(np.ascontiguousarray(moved))
        return np.moveaxis(out, -1, axis)

    def mass_apply(self, v, ops, axis, *, hier=None, l=None):
        return self._linear(v, ops, axis, "mass_multiply")

    def transfer_apply(self, f, ops, axis, *, hier=None, l=None):
        return self._linear(f, ops, axis, "transfer_multiply")

    def solve_correction(self, f, ops, axis, *, hier=None, l=None):
        return self._linear(f, ops, axis, "solve")


_METHOD_2D = {
    "mass_multiply": "mass_multiply",
    "transfer_multiply": "transfer_multiply",
    "solve": "solve",
}
