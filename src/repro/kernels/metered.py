"""Metered execution engines: functional arithmetic + modeled time.

Two engines wrap the exact NumPy arithmetic of
:class:`repro.core.engine.NumpyEngine` and additionally emit one
:class:`~repro.gpu.cost.KernelLaunch` record per operation, converting
it to modeled seconds with the appropriate hardware model:

* :class:`GpuSimEngine` — the paper's optimized GPU design (or any
  ablation of it, via :class:`~repro.kernels.launches.EngineOptions`)
  on a :class:`~repro.gpu.device.DeviceSpec`.
* :class:`CpuRefEngine` — the serial CPU MGARD baseline on a
  :class:`~repro.gpu.device.CpuSpec`; runs unpacked (strided) with
  vector-wise processing, like the original code.

Records produced by a metered engine during one decomposition /
recomposition are identical to the shape-only walk of
:func:`repro.kernels.launches.iter_decompose_launches` (tested), so
functional runs and analytic sweeps report the same numbers.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..core.engine import NumpyEngine
from ..core.grid import TensorHierarchy
from ..gpu.cost import KernelLaunch, cpu_kernel_time, gpu_kernel_time
from ..gpu.device import CpuSpec, DeviceSpec, POWER9_CORE, V100
from ..gpu.memory import FootprintReport, refactoring_footprint
from . import launches as L

__all__ = ["MeteredEngine", "GpuSimEngine", "CpuRefEngine", "CPU_BASELINE_OPTIONS"]

#: How the original CPU implementation behaves in the launch model:
#: vector-wise processing on unpacked (strided) data, one "stream".
CPU_BASELINE_OPTIONS = L.EngineOptions(framework="naive", pack_nodes=False)


class MeteredEngine(NumpyEngine):
    """Functional engine that meters every operation through a cost model."""

    def __init__(self, opts: L.EngineOptions):
        self.opts = opts
        self.records: list[KernelLaunch] = []
        self.record_times: list[float] = []
        self.clock = 0.0
        self.category_seconds: dict[str, float] = defaultdict(float)
        self._hier: TensorHierarchy | None = None

    # -- to be provided by subclasses -------------------------------------
    def _model_time(self, rec: KernelLaunch) -> float:
        raise NotImplementedError

    # -- bookkeeping -------------------------------------------------------
    def reset(self) -> None:
        """Clear the simulated clock and all recorded launches."""
        self.records.clear()
        self.record_times.clear()
        self.clock = 0.0
        self.category_seconds = defaultdict(float)

    def begin(self, operation: str, hier: TensorHierarchy) -> None:
        self._hier = hier

    def _emit(self, rec: KernelLaunch) -> None:
        t = self._model_time(rec)
        self.records.append(rec)
        self.record_times.append(t)
        self.clock += t
        self.category_seconds[L.category_of(rec)] += t

    def _stride(self, hier: TensorHierarchy, l: int) -> int:
        return hier.level_stride(l, hier.ndim - 1)

    def report(self) -> dict[str, float]:
        """Per-category modeled seconds (Table IV rows) plus the total."""
        out = dict(self.category_seconds)
        out["total"] = self.clock
        return out

    # -- metered operations --------------------------------------------------
    def compute_coefficients(self, v, hier, l):
        out = super().compute_coefficients(v, hier, l)
        self._emit(
            L.coefficients_launch(
                v.shape, opts=self.opts, level=l, stride=self._stride(hier, l)
            )
        )
        return out

    def restore_from_coefficients(self, c, vc, hier, l):
        shape = c.shape
        out = super().restore_from_coefficients(c, vc, hier, l)
        self._emit(
            L.coefficients_launch(
                shape, opts=self.opts, level=l, stride=self._stride(hier, l), restore=True
            )
        )
        return out

    def mass_apply(self, v, ops, axis, *, hier=None, l=None):
        out = super().mass_apply(v, ops, axis)
        self._emit(
            L.mass_launch(v.shape, axis, opts=self.opts, level=l, stride=self._stride(hier, l))
        )
        return out

    def transfer_apply(self, f, ops, axis, *, hier=None, l=None):
        out = super().transfer_apply(f, ops, axis)
        self._emit(
            L.transfer_launch(
                f.shape, axis, ops.m_coarse,
                opts=self.opts, level=l, stride=self._stride(hier, l),
            )
        )
        return out

    def solve_correction(self, f, ops, axis, *, hier=None, l=None):
        out = super().solve_correction(f, ops, axis)
        self._emit(
            L.solve_launch(f.shape, axis, opts=self.opts, level=l, stride=self._stride(hier, l))
        )
        return out

    def copy(self, arr, *, reason="copy", level=-1):
        out = super().copy(arr)
        self._emit(L.copy_launch(arr.shape, stride=1, level=level, reason=reason))
        return out

    def pack(self, full, level_indices, *, reason="pack", level=-1):
        out = super().pack(full, level_indices)
        if not self.opts.pack_nodes and reason in ("pack-finest", "pack-coarsest"):
            # The unpacked designs operate on the strided data in place;
            # the driver's initial gather is a host-side convenience of
            # the functional implementation, not a metered device op
            # (the stride cost is charged to every kernel instead).
            return out
        stride = self._stride(self._hier, level) if self._hier is not None else 1
        self._emit(
            L.pack_launch(out.shape, stride=stride, level=level, reason=reason, opts=self.opts)
        )
        return out

    def unpack(self, packed, full, level_indices, *, reason="unpack", level=-1):
        super().unpack(packed, full, level_indices)
        stride = self._stride(self._hier, level) if self._hier is not None else 1
        self._emit(
            L.copy_launch(
                packed.shape, stride=stride, level=level, name="unpack_store", reason=reason
            )
        )

    def add_correction(self, v, z, hier, l):
        fine_shape = v.shape
        out = super().add_correction(v, z, hier, l)
        stride = 2 if self.opts.pack_nodes else self._stride(hier, l)
        self._emit(
            L.correction_update_launch(
                z.shape, stride=stride, level=l, fine_shape=fine_shape, opts=self.opts
            )
        )
        return out

    def subtract_correction(self, v, z, hier, l):
        out = super().subtract_correction(v, z, hier, l)
        stride = 1 if self.opts.pack_nodes else self._stride(hier, l)
        self._emit(L.correction_update_launch(z.shape, stride=stride, level=l, opts=self.opts))
        return out


class GpuSimEngine(MeteredEngine):
    """The paper's GPU design (or an ablation) on a simulated device."""

    def __init__(
        self,
        device: DeviceSpec = V100,
        opts: L.EngineOptions | None = None,
    ):
        super().__init__(opts if opts is not None else L.EngineOptions())
        self.device = device

    def _model_time(self, rec: KernelLaunch) -> float:
        return gpu_kernel_time(rec, self.device)

    def begin(self, operation, hier):
        super().begin(operation, hier)
        data_bytes = int(np.prod(hier.shape)) * 8
        needed = refactoring_footprint(hier).gpu_total
        if needed > self.device.memory_gb * 1e9:
            raise MemoryError(
                f"{hier.shape} needs {needed / 1e9:.1f} GB but "
                f"{self.device.name} has {self.device.memory_gb} GB"
            )
        self._data_bytes = data_bytes

    def footprint(self, hier: TensorHierarchy | None = None) -> FootprintReport:
        """Memory-footprint report of the last (or given) hierarchy."""
        h = hier if hier is not None else self._hier
        if h is None:
            raise ValueError("no hierarchy seen yet; run an operation first")
        return refactoring_footprint(h)


class CpuRefEngine(MeteredEngine):
    """The serial CPU MGARD baseline (the paper's comparison point)."""

    def __init__(self, cpu: CpuSpec = POWER9_CORE, opts: L.EngineOptions | None = None):
        super().__init__(opts if opts is not None else CPU_BASELINE_OPTIONS)
        self.cpu = cpu

    def _model_time(self, rec: KernelLaunch) -> float:
        return cpu_kernel_time(rec, self.cpu)

    def report(self) -> dict[str, float]:
        """CPU breakdown: the baseline performs no packing, so ``PN``
        (which the metered driver emits for the fused correction/pack
        updates) is folded into ``MC`` as plain copies."""
        out = super().report()
        if "PN" in out:
            out["MC"] = out.get("MC", 0.0) + out.pop("PN")
        return out
