"""The one place in the package that imports :mod:`numba`.

Every other module that wants JIT compilation imports ``HAVE_NUMBA``,
``njit`` and ``prange`` from here.  When numba is not installed (it is
an optional extra: ``pip install repro[jit]``) — or when it is masked
with ``REPRO_NO_NUMBA=1``, which CI uses to exercise the fallback on
hosts that *do* have it — the decorators degrade to no-ops and
``HAVE_NUMBA`` is ``False``, so the package imports and the tier-1
suite runs identically without the dependency.
"""

from __future__ import annotations

import os

__all__ = ["HAVE_NUMBA", "njit", "prange"]

HAVE_NUMBA = False

if not os.environ.get("REPRO_NO_NUMBA"):
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit, prange  # noqa: F401

        HAVE_NUMBA = True
    except Exception:  # ImportError, or a broken numba install
        HAVE_NUMBA = False

if not HAVE_NUMBA:

    def njit(*args, **kwargs):  # noqa: D103 - no-op stand-in
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco

    prange = range
