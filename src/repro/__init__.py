"""repro — multigrid-based hierarchical scientific data refactoring.

A comprehensive reproduction of *Accelerating Multigrid-based
Hierarchical Scientific Data Refactoring on GPUs* (Chen et al.,
IPDPS 2021, arXiv:2007.04457): the Ainsworth et al. refactoring
algorithms, the paper's grid-/linear-processing GPU kernel frameworks on
a simulated-GPU substrate, a weak-scaling cluster model, an MGARD-style
lossy compressor, and the I/O-workflow showcases.

Quick start::

    import numpy as np
    from repro import Refactorer

    r = Refactorer((129, 129))
    cc = r.refactor(np.random.default_rng(0).random((129, 129)))
    approx = cc.reconstruct(k=4)        # progressive recovery
    exact = cc.reconstruct()            # lossless with all classes
"""

from .core import (
    CoefficientClasses,
    Engine,
    Hierarchy1D,
    NumpyEngine,
    Refactorer,
    TensorHierarchy,
    decompose,
    dyadic_size,
    recompose,
)

__version__ = "1.0.0"

__all__ = [
    "CoefficientClasses",
    "Engine",
    "Hierarchy1D",
    "NumpyEngine",
    "Refactorer",
    "TensorHierarchy",
    "decompose",
    "dyadic_size",
    "recompose",
    "__version__",
]
