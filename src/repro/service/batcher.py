"""Adaptive micro-batching: coalesce concurrent decodes of the same key.

Under concurrency, many in-flight requests tend to touch the same
``(step, level)`` — followers trailing a live writer all ask for the
newest step, dashboards poll the same region.  Decoding once per
*request* multiplies the most expensive operation the server has by the
fan-in.  :class:`MicroBatcher` collapses them:

* **single-flight** — the first request for a key becomes the *leader*
  and runs the decode; every request arriving while it is in flight
  *joins* and awaits the same future.  One decode, N responses.
* **adaptive hold window** — a leader may briefly park (``window``)
  before decoding so that near-simultaneous requests coalesce even when
  they arrive just *after* the decode would have started.  The window
  adapts to the observed traffic: every batch that attracted joiners
  doubles it (up to ``max_window_s``), every solo batch halves it (down
  to zero), so an idle server pays no added latency and a hot key
  converges to maximal coalescing.

Failures propagate to every member of the batch; the key is retired
before the result is published, so a request arriving *after* a failure
starts a fresh decode rather than inheriting a stale error.
"""

from __future__ import annotations

import asyncio

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce concurrent async suppliers by key (see module docstring).

    Parameters
    ----------
    max_window_s:
        Upper bound of the adaptive hold window.  ``0`` disables the
        window entirely (pure single-flight).
    min_window_s:
        Smallest non-zero window; the first batch with joiners jumps
        here from zero.
    adaptive:
        ``False`` pins the window at zero regardless of traffic.
    """

    def __init__(
        self,
        *,
        max_window_s: float = 0.002,
        min_window_s: float = 0.0001,
        adaptive: bool = True,
    ):
        if max_window_s < 0 or min_window_s < 0:
            raise ValueError("windows must be >= 0")
        self.max_window_s = float(max_window_s)
        self.min_window_s = float(min_window_s)
        self.adaptive = adaptive
        self.window_s = 0.0
        self._inflight: dict = {}
        self._leaders = 0
        self._joined = 0
        self._batches_with_joiners = 0
        self._errors = 0

    async def run(self, key, supplier):
        """Return ``await supplier()`` for ``key``, coalescing duplicates.

        ``supplier`` is an argument-less coroutine function; it runs at
        most once per batch, on the leader's task.
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self._joined += 1
            fut.joiners += 1
            return await _wait(fut)
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        fut.joiners = 0
        self._inflight[key] = fut
        self._leaders += 1
        try:
            if self.window_s > 0:
                await asyncio.sleep(self.window_s)
            result = await supplier()
        except BaseException as e:
            self._errors += 1
            self._inflight.pop(key, None)
            self._adapt(fut.joiners)
            if not fut.done():
                fut.set_exception(e)
                fut.exception()  # mark retrieved; joiners re-retrieve theirs
            raise
        else:
            self._inflight.pop(key, None)
            self._adapt(fut.joiners)
            if not fut.done():
                fut.set_result(result)
            return result

    def _adapt(self, joiners: int) -> None:
        if joiners:
            self._batches_with_joiners += 1
        if not self.adaptive or self.max_window_s == 0:
            return
        if joiners:
            self.window_s = min(
                self.max_window_s, max(self.window_s * 2, self.min_window_s)
            )
        else:
            self.window_s = self.window_s / 2
            if self.window_s < self.min_window_s:
                self.window_s = 0.0

    @property
    def coalesce_rate(self) -> float:
        """Fraction of requests served by someone else's decode."""
        total = self._leaders + self._joined
        return self._joined / total if total else 0.0

    def stats(self) -> dict:
        return {
            "leaders": self._leaders,
            "joined": self._joined,
            "batches_with_joiners": self._batches_with_joiners,
            "errors": self._errors,
            "coalesce_rate": self.coalesce_rate,
            "window_s": self.window_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroBatcher(leaders={self._leaders}, joined={self._joined}, "
            f"window={self.window_s * 1e3:.2f}ms)"
        )


async def _wait(fut: asyncio.Future):
    """Await a shared batch future without cancelling it on joiner
    cancellation (the leader owns its lifecycle)."""
    return await asyncio.shield(fut)
