"""Clients for the compression service.

Two flavours over the same wire protocol (:mod:`repro.service.protocol`):

:class:`ServiceClient`
    Blocking, one request in flight at a time — the ergonomic choice
    for scripts and notebooks.  Transparently **reconnects** when the
    server restarts (idempotent requests are retried; ``put_step`` is
    not, since a retry after an uncertain outcome could double-append),
    and **backs off** on ``status: busy`` shedding before surfacing
    :class:`~repro.service.protocol.BusyError`.  Response bodies are
    received straight into one pre-sized buffer and wrapped by
    ``np.frombuffer`` — no copies on the read path.

:class:`AsyncServiceClient`
    asyncio, **pipelined**: many requests may be in flight on one
    connection; a background task matches responses to callers by
    request id.  This is what the load generator in
    ``benchmarks/bench_service.py`` uses to model open-loop arrivals.
    Shedding surfaces immediately as :class:`BusyError` so callers can
    implement (and measure) their own retry policy.

Both return decoded steps/regions as ``np.ndarray``; pass
``with_meta=True`` to also get the response header — for progressive-
precision requests it carries ``level`` / ``n_levels`` /
``error_bound`` / ``final``.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time

import numpy as np

from . import protocol
from .protocol import BusyError, ProtocolError, RemoteError, ServiceError

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _array_of(resp: dict, body) -> np.ndarray:
    """Wrap a response body as the ndarray its header describes (no copy)."""
    arr = np.frombuffer(body, dtype=np.dtype(resp["dtype"]))
    return arr.reshape(resp["shape"])


def _raise_remote(resp: dict) -> None:
    if resp.get("status") == "error":
        raise RemoteError(resp.get("error", "unspecified server error"))


class ServiceClient:
    """Blocking client with reconnect and busy-backoff (see module docs).

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Socket timeout per send/recv, seconds.
    reconnect:
        Attempts to re-establish a dropped connection (per request)
        before giving up; ``0`` disables reconnection.
    reconnect_delay:
        Initial pause before a reconnect attempt; doubles per attempt.
    busy_retries:
        How many times a shed request is retried (with backoff) before
        :class:`BusyError` reaches the caller.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9753,
        *,
        timeout: float = 30.0,
        reconnect: int = 5,
        reconnect_delay: float = 0.05,
        busy_retries: int = 8,
        busy_delay: float = 0.002,
    ):
        self.host, self.port = host, int(port)
        self.timeout = timeout
        self.reconnect = int(reconnect)
        self.reconnect_delay = float(reconnect_delay)
        self.busy_retries = int(busy_retries)
        self.busy_delay = float(busy_delay)
        self._sock: socket.socket | None = None
        self._ids = itertools.count(1)
        self.reconnects = 0  # total successful re-establishments

    # ------------------------------------------------------------------
    # connection management

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop(self) -> None:
        self.close()

    def _reconnect_or_raise(self, err: Exception) -> None:
        """Re-establish the transport after ``err``, with backoff."""
        delay = self.reconnect_delay
        for _ in range(self.reconnect):
            time.sleep(delay)
            delay = min(delay * 2, 1.0)
            try:
                self.connect()
                self.reconnects += 1
                return
            except OSError:
                self._drop()
        raise ConnectionError(
            f"lost connection to {self.host}:{self.port} and could not "
            f"reconnect after {self.reconnect} attempts"
        ) from err

    # ------------------------------------------------------------------
    # request plumbing

    def _request(
        self, header: dict, body=b"", *, idempotent: bool = True
    ) -> tuple[dict, bytearray]:
        busy_left = self.busy_retries
        busy_delay = self.busy_delay
        attempts = self.reconnect + 1
        while True:
            self.connect()
            rid = next(self._ids)
            header["id"] = rid
            try:
                protocol.send_frame_sync(self._sock, header, body)
                resp, payload = protocol.recv_frame_into(self._sock)
            except (ConnectionError, ProtocolError, OSError, socket.timeout) as e:
                self._drop()
                if not idempotent or attempts <= 1:
                    raise ConnectionError(
                        f"connection to {self.host}:{self.port} failed "
                        f"mid-request: {e}"
                    ) from e
                attempts -= 1
                self._reconnect_or_raise(e)
                continue
            if resp.get("id") not in (None, rid):
                # a stale response from before a reconnect — drop the
                # transport so request/response pairing resynchronizes
                self._drop()
                raise ProtocolError(
                    f"response id {resp.get('id')} does not match request {rid}"
                )
            if resp.get("status") == "busy":
                if busy_left <= 0:
                    raise BusyError(
                        f"server shed the request {self.busy_retries + 1} times"
                    )
                busy_left -= 1
                time.sleep(busy_delay)
                busy_delay = min(busy_delay * 2, 0.1)
                continue
            _raise_remote(resp)
            return resp, payload

    # ------------------------------------------------------------------
    # ops

    def ping(self) -> bool:
        resp, _ = self._request({"op": "ping"})
        return bool(resp.get("pong"))

    def info(self) -> dict:
        resp, _ = self._request({"op": "info"})
        return {k: v for k, v in resp.items() if k not in ("id", "status")}

    def stats(self) -> dict:
        resp, _ = self._request({"op": "stats"})
        return resp["stats"]

    def put_step(self, field: np.ndarray, time: float | None = None) -> int:
        """Append one step; returns its index. Not retried on a dropped
        connection (the outcome would be uncertain)."""
        field = np.ascontiguousarray(field, dtype=np.float64)
        header = {
            "op": "put_step",
            "shape": list(field.shape),
            "dtype": field.dtype.str,
        }
        if time is not None:
            header["time"] = float(time)
        resp, _ = self._request(header, field.data.cast("B"), idempotent=False)
        return int(resp["step"])

    def get_step(
        self,
        step: int,
        *,
        level: int | None = None,
        wait: float = 0.0,
        with_meta: bool = False,
    ):
        """Fetch one full decoded step (optionally a progressive level)."""
        return self.get_region(
            step, None, level=level, wait=wait, with_meta=with_meta
        )

    def get_region(
        self,
        step: int,
        region,
        *,
        level: int | None = None,
        wait: float = 0.0,
        with_meta: bool = False,
    ):
        """Fetch ``field[region]`` of a step; ``region`` is a list of
        ``[lo, hi]`` pairs (or ``None`` entries for whole axes)."""
        header: dict = {"op": "get_region", "step": int(step)}
        if region is not None:
            header["region"] = [
                None if r is None else [int(r[0]), int(r[1])] for r in region
            ]
        if level is not None:
            header["level"] = int(level)
        if wait:
            header["wait"] = float(wait)
        resp, body = self._request(header)
        arr = _array_of(resp, body)
        return (arr, resp) if with_meta else arr

    def wait_step(self, step: int, timeout: float = 30.0) -> bool:
        resp, _ = self._request(
            {"op": "wait_step", "step": int(step), "timeout": float(timeout)}
        )
        return bool(resp["ready"])


class AsyncServiceClient:
    """Pipelining asyncio client (see module docstring).

    Use as an async context manager, or ``await connect()`` /
    ``await close()`` explicitly.  Any number of requests may be in
    flight concurrently; responses are matched to callers by id.  A
    dropped connection fails every pending request with
    :class:`ConnectionError` — reconnection policy is the caller's
    (the benchmark's chaos mode exercises exactly this).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 9753):
        self.host, self.port = host, int(port)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pump: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._wlock = asyncio.Lock()

    async def connect(self) -> "AsyncServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
            self._pump = asyncio.ensure_future(self._pump_responses())
        return self

    async def close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        pump, self._pump = self._pump, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if pump is not None:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------

    def _fail_pending(self, err: Exception) -> None:
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(err)

    async def _pump_responses(self) -> None:
        try:
            while True:
                frame = await protocol.read_frame(self._reader)
                if frame is None:
                    raise ConnectionError("server closed the connection")
                resp, body = frame
                fut = self._pending.pop(resp.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result((resp, body))
        except asyncio.CancelledError:
            raise
        except Exception as e:
            self._fail_pending(
                e
                if isinstance(e, (ConnectionError, ProtocolError))
                else ConnectionError(f"connection lost: {e}")
            )

    async def _request(self, header: dict, body=b"") -> tuple[dict, bytes]:
        if self._writer is None:
            raise ServiceError("not connected (await connect() first)")
        rid = next(self._ids)
        header["id"] = rid
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        try:
            async with self._wlock:
                await protocol.send_frame(self._writer, header, body)
        except (ConnectionError, OSError) as e:
            self._pending.pop(rid, None)
            raise ConnectionError(f"send failed: {e}") from e
        try:
            resp, payload = await fut
        finally:
            self._pending.pop(rid, None)
        if resp.get("status") == "busy":
            raise BusyError("server shed the request")
        _raise_remote(resp)
        return resp, payload

    # ------------------------------------------------------------------
    # ops (mirroring ServiceClient)

    async def ping(self) -> bool:
        resp, _ = await self._request({"op": "ping"})
        return bool(resp.get("pong"))

    async def info(self) -> dict:
        resp, _ = await self._request({"op": "info"})
        return {k: v for k, v in resp.items() if k not in ("id", "status")}

    async def stats(self) -> dict:
        resp, _ = await self._request({"op": "stats"})
        return resp["stats"]

    async def put_step(self, field: np.ndarray, time: float | None = None) -> int:
        field = np.ascontiguousarray(field, dtype=np.float64)
        header = {
            "op": "put_step",
            "shape": list(field.shape),
            "dtype": field.dtype.str,
        }
        if time is not None:
            header["time"] = float(time)
        resp, _ = await self._request(header, field.data.cast("B"))
        return int(resp["step"])

    async def get_step(
        self,
        step: int,
        *,
        level: int | None = None,
        wait: float = 0.0,
        with_meta: bool = False,
    ):
        return await self.get_region(
            step, None, level=level, wait=wait, with_meta=with_meta
        )

    async def get_region(
        self,
        step: int,
        region,
        *,
        level: int | None = None,
        wait: float = 0.0,
        with_meta: bool = False,
    ):
        header: dict = {"op": "get_region", "step": int(step)}
        if region is not None:
            header["region"] = [
                None if r is None else [int(r[0]), int(r[1])] for r in region
            ]
        if level is not None:
            header["level"] = int(level)
        if wait:
            header["wait"] = float(wait)
        resp, body = await self._request(header)
        arr = _array_of(resp, body)
        return (arr, resp) if with_meta else arr

    async def wait_step(self, step: int, timeout: float = 30.0) -> bool:
        resp, _ = await self._request(
            {"op": "wait_step", "step": int(step), "timeout": float(timeout)}
        )
        return bool(resp["ready"])
