"""Wire protocol of the compression service: length-prefixed JSON + binary.

One frame carries one request or one response::

    magic   4 bytes   b"RPS1"
    hlen    u32 LE    JSON header length
    blen    u64 LE    binary body length
    header  hlen bytes of UTF-8 JSON (op / id / params, or status)
    body    blen bytes of raw payload (ndarray bytes, or empty)

The split keeps the hot path **zero-copy**: a response's body is written
to the transport as a :class:`memoryview` of the decoded (often cached)
array — the 20-byte prefix and the JSON header are the only bytes ever
assembled per frame, and nothing is joined into an intermediate
``bytes`` blob.  On the sync client the body is received straight into
one pre-sized ``bytearray`` (``recv_into``), which
:func:`numpy.frombuffer` then wraps without another copy.

Malformed input maps to :class:`ProtocolError` — bad magic, oversized
header/body (both bounded, so a hostile or corrupt peer cannot make the
server allocate unbounded memory), truncated frames (a peer dying
mid-frame surfaces as a clean error, never a hang: reads are
length-driven, so a short stream fails ``readexactly`` immediately at
EOF).
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "MAGIC",
    "MAX_HEADER_BYTES",
    "MAX_BODY_BYTES",
    "ServiceError",
    "ProtocolError",
    "RemoteError",
    "BusyError",
    "frame_prefix",
    "parse_prefix",
    "read_frame",
    "send_frame",
    "recv_frame_into",
    "send_frame_sync",
]

MAGIC = b"RPS1"

#: default bounds a reader enforces before allocating anything
MAX_HEADER_BYTES = 1 << 20
MAX_BODY_BYTES = 1 << 30

_PREFIX = struct.Struct("<4sIQ")


class ServiceError(RuntimeError):
    """Base class of every service-layer error."""


class ProtocolError(ServiceError):
    """Malformed, truncated, or oversized frame on the wire."""


class RemoteError(ServiceError):
    """The server replied ``status: error`` (the message travels along)."""


class BusyError(ServiceError):
    """The server shed the request (``status: busy`` — 429-style).

    Raised client-side once busy retries are exhausted (or immediately
    when retries are disabled); the request was never enqueued
    server-side, so retrying later is always safe.
    """


def frame_prefix(header: dict, body_len: int) -> bytes:
    """Serialize a frame's prefix + JSON header (the only assembled bytes).

    The body is deliberately *not* part of the result — callers write it
    separately (``writer.write(memoryview)`` / ``socket.sendmsg``), so a
    multi-megabyte payload is never copied into a joined buffer.
    """
    hraw = json.dumps(header, separators=(",", ":")).encode()
    if len(hraw) > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {len(hraw)} bytes exceeds {MAX_HEADER_BYTES}")
    return _PREFIX.pack(MAGIC, len(hraw), body_len) + hraw


def parse_prefix(raw: bytes, *, max_header: int = MAX_HEADER_BYTES,
                 max_body: int = MAX_BODY_BYTES) -> tuple[int, int]:
    """Validate a 16-byte frame prefix; returns (header_len, body_len)."""
    if len(raw) != _PREFIX.size:
        raise ProtocolError(
            f"truncated frame prefix: got {len(raw)} of {_PREFIX.size} bytes"
        )
    magic, hlen, blen = _PREFIX.unpack(raw)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if hlen > max_header:
        raise ProtocolError(f"header of {hlen} bytes exceeds limit {max_header}")
    if blen > max_body:
        raise ProtocolError(f"body of {blen} bytes exceeds limit {max_body}")
    return hlen, blen


def _parse_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ProtocolError(f"unparseable frame header: {e}") from e
    if not isinstance(header, dict):
        raise ProtocolError("frame header is not a JSON object")
    return header


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    max_header: int = MAX_HEADER_BYTES,
    max_body: int = MAX_BODY_BYTES,
) -> tuple[dict, bytes] | None:
    """Read one frame; ``None`` on a clean EOF *between* frames.

    EOF inside a frame — the peer died mid-send — raises
    :class:`ProtocolError` (never hangs: every read knows its exact
    length).  Oversized declarations fail *before* any allocation.
    """
    try:
        raw = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as e:
        if not e.partial:  # clean close between frames
            return None
        raise ProtocolError(
            f"connection closed inside a frame prefix "
            f"({len(e.partial)} of {_PREFIX.size} bytes)"
        ) from e
    hlen, blen = parse_prefix(raw, max_header=max_header, max_body=max_body)
    try:
        hraw = await reader.readexactly(hlen)
        body = await reader.readexactly(blen) if blen else b""
    except asyncio.IncompleteReadError as e:
        raise ProtocolError(
            f"connection closed inside a frame "
            f"(got {len(e.partial)} of {e.expected} bytes)"
        ) from e
    return _parse_header(hraw), body


def _as_byte_view(body) -> memoryview:
    """Flat ``B``-format view of any bytes-like, without copying."""
    mv = body if isinstance(body, memoryview) else memoryview(body)
    if mv.ndim != 1 or mv.format != "B":
        mv = mv.cast("B")
    return mv


async def send_frame(
    writer: asyncio.StreamWriter, header: dict, body=b"",
) -> None:
    """Write one frame; ``body`` may be any bytes-like (``memoryview`` of
    a cached array included) and is handed to the transport as-is."""
    mv = _as_byte_view(body)
    writer.write(frame_prefix(header, mv.nbytes))
    if mv.nbytes:
        writer.write(mv)
    await writer.drain()


# ----------------------------------------------------------------------
# blocking (sync-client) counterparts


def _recv_exactly_into(sock, view: memoryview, what: str) -> None:
    got = 0
    while got < len(view):
        n = sock.recv_into(view[got:])
        if n == 0:
            raise ProtocolError(
                f"connection closed inside a frame ({got} of {len(view)} "
                f"{what} bytes)"
            )
        got += n


def recv_frame_into(
    sock,
    *,
    max_header: int = MAX_HEADER_BYTES,
    max_body: int = MAX_BODY_BYTES,
) -> tuple[dict, bytearray]:
    """Blocking read of one frame; the body lands in one pre-sized
    ``bytearray`` (no per-chunk joins — ``np.frombuffer`` wraps it
    copy-free)."""
    prefix = bytearray(_PREFIX.size)
    _recv_exactly_into(sock, memoryview(prefix), "prefix")
    hlen, blen = parse_prefix(bytes(prefix), max_header=max_header, max_body=max_body)
    hraw = bytearray(hlen)
    _recv_exactly_into(sock, memoryview(hraw), "header")
    body = bytearray(blen)
    if blen:
        _recv_exactly_into(sock, memoryview(body), "body")
    return _parse_header(bytes(hraw)), body


def send_frame_sync(sock, header: dict, body=b"") -> None:
    """Blocking frame write; scatter-gathers prefix + body via
    ``sendmsg`` where available (no join), ``sendall`` otherwise."""
    mv = _as_byte_view(body)
    prefix = frame_prefix(header, mv.nbytes)
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is not None and mv.nbytes:
        total = len(prefix) + mv.nbytes
        sent = sock.sendmsg([memoryview(prefix), mv])
        if sent < total:
            # short scatter-gather write (tiny socket buffer): finish
            # the remainder with sendall on flat views — no joins
            if sent < len(prefix):
                sock.sendall(memoryview(prefix)[sent:])
                sock.sendall(mv)
            else:
                sock.sendall(mv[sent - len(prefix):])
        return
    sock.sendall(prefix)
    if mv.nbytes:
        sock.sendall(mv)
