"""Compression-as-a-service: the asyncio network front-end.

The paper's headline workflow — stream compressed simulation steps to
concurrent consumers with accuracy-driven retrieval — served over TCP:

* :mod:`repro.service.protocol` — length-prefixed JSON+binary framing
  with zero-copy body writes and bounded, truncation-safe reads;
* :mod:`repro.service.cache` — the bytes-bounded LRU over decoded
  steps / prefix reconstructions;
* :mod:`repro.service.batcher` — adaptive micro-batching: concurrent
  requests for the same ``(step, level)`` coalesce into one decode;
* :mod:`repro.service.server` — :class:`CompressionService`: ingest
  (``put_step`` → the existing shard→encode→write pipeline on the
  executor layer) and retrieval (``get_step`` / ``get_region``, plus
  progressive-precision ``get_region(level=k)``), with per-connection
  backpressure and BUSY load-shedding;
* :mod:`repro.service.client` — blocking :class:`ServiceClient` (with
  reconnect) and pipelining :class:`AsyncServiceClient`.

``server``/``client`` import the streaming stack, which itself uses
:mod:`repro.service.cache`; they are loaded lazily here so that
``repro.io`` → ``repro.service.cache`` never cycles through them.
"""

from __future__ import annotations

from .batcher import MicroBatcher
from .cache import LRUCache
from .protocol import BusyError, ProtocolError, RemoteError, ServiceError

__all__ = [
    "AsyncServiceClient",
    "BusyError",
    "CompressionService",
    "LRUCache",
    "MicroBatcher",
    "ProtocolError",
    "RemoteError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "serve",
]

_LAZY = {
    "CompressionService": "server",
    "ServiceConfig": "server",
    "serve": "server",
    "ServiceClient": "client",
    "AsyncServiceClient": "client",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)


def __dir__():  # pragma: no cover - introspection cosmetics
    return sorted(set(globals()) | set(_LAZY))
