"""The asyncio compression service: ingest + retrieval over one stream.

:class:`CompressionService` serves a stream directory (see
:mod:`repro.io.stream`) to remote clients over the length-prefixed
JSON+binary protocol of :mod:`repro.service.protocol`:

``put_step``
    Ingest one frame: the body's ndarray bytes flow into the existing
    shard→encode→write pipeline of :class:`~repro.io.stream.
    StepStreamWriter` — the per-shard / per-class fan-out runs on the
    executor layer (``config.executor``), the commit is the same atomic
    publish every local writer uses.  Writes are serialized (the
    compressed mode's prediction loop is stateful in stream order).

``get_step`` / ``get_region``
    Retrieval, engineered for tail latency:

    * an :class:`~repro.service.cache.LRUCache` keyed by
      ``(generation, step, level)`` holds decoded steps, so random
      access stops re-rolling the key-frame chain per request;
    * an adaptive :class:`~repro.service.batcher.MicroBatcher`
      coalesces concurrent requests for the same key into **one**
      decode broadcast to all of them;
    * responses are assembled **zero-copy**: the body written to the
      transport is a ``memoryview`` of the (cached) array — no
      intermediate ``bytes`` joins on the hot path;
    * decodes run on a thread pool (NumPy releases the GIL), keeping
      the event loop free to accept, shed, and reply.

``get_region(level=k)``
    Progressive-precision retrieval — the paper's accuracy-driven
    showcase as an API: level ``k`` reconstructs from the first ``k``
    coefficient classes of a refactored stream and reports the
    manifest's truncation estimate as the advertised ``error_bound`` —
    the estimated L2(domain) error of the prefix, which tracks the true
    L2 error within the multilevel equivalence constant (see
    :mod:`repro.core.snorm`); the final level has bound ``0.0`` and is
    byte-identical to a direct full-precision read.

**Backpressure:** each connection may have at most ``conn_inflight``
requests in flight (plus a global ``max_inflight`` cap).  Beyond that
the server *sheds*: an immediate ``status: busy`` reply (429-style)
instead of unbounded buffering, so overload degrades into fast
rejections rather than collapsing tail latency for everyone.

Startup primes every pool (decode threads, and — satellite of the
measured-p99 story — ``ProcessExecutor.prime()`` on the codec
executor), so the first request never pays pool-fork latency.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..io.stream import StepStreamReader, StepStreamWriter, StreamError
from ..parallel.executors import ThreadExecutor, available_workers, get_executor
from . import protocol
from .batcher import MicroBatcher
from .cache import LRUCache
from .protocol import ProtocolError, ServiceError

__all__ = ["ServiceConfig", "CompressionService", "serve", "main"]


@dataclass
class ServiceConfig:
    """Everything a :class:`CompressionService` needs to run.

    ``batching=False`` and ``cache_bytes=0`` together form the *naive*
    configuration the service benchmark compares against: every request
    decodes on its own.  Ingest settings (``tol``/``backend``/
    ``key_interval``/``shards``/``durability``) apply when the first
    ``put_step`` creates the stream; serving an existing stream infers
    its mode from the manifest.
    """

    root: str | Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is ``service.port``
    batching: bool = True
    max_window_s: float = 0.002
    cache_bytes: int = 256 << 20
    conn_inflight: int = 32
    max_inflight: int = 128
    io_workers: int | None = None
    executor: str | None = None  # codec executor spec for the encode fan-out
    max_body: int = protocol.MAX_BODY_BYTES
    # ingest (lazy writer) settings
    tol: float | None = None
    backend: str = "huffman"
    key_interval: int = 16
    shards: int | None = None
    durability: str = "rename"


class CompressionService:
    """One server instance over one stream directory (see module docs)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.config.root = Path(config.root)
        self.cache = LRUCache(max_bytes=config.cache_bytes)
        self.batcher = MicroBatcher(
            max_window_s=config.max_window_s if config.batching else 0.0
        )
        self._io = ThreadExecutor(config.io_workers or max(2, available_workers()))
        self._codec = get_executor(config.executor)
        self._reader: StepStreamReader | None = None
        self._writer: StepStreamWriter | None = None
        self._write_lock: asyncio.Lock | None = None
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self.stats = {"requests": 0, "shed": 0, "errors": 0, "put_steps": 0}

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the listener; prime every pool before the first request.

        Pool start-up (thread spawn, and above all the process pool's
        fork) must not land inside a measured request: a service whose
        first ``put_step`` pays the codec pool's fork would report it
        as p99.
        """
        self._io.prime()
        prime = getattr(self._codec, "prime", None)
        if prime is not None:
            prime()
        self._write_lock = asyncio.Lock()
        self._open_reader()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServiceError("start() the service first")
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def close(self) -> None:
        """Release pools (sync; safe after the loop is gone)."""
        self._io.shutdown()

    # ------------------------------------------------------------------
    # connection handling: bounded pipelining + load shedding

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tasks: set[asyncio.Task] = set()
        wlock = asyncio.Lock()
        try:
            while True:
                try:
                    frame = await protocol.read_frame(
                        reader, max_body=self.config.max_body
                    )
                except ProtocolError as e:
                    # a malformed frame poisons the byte stream — reply
                    # once (best effort) and drop the connection rather
                    # than resynchronize on garbage
                    await self._send(
                        writer, wlock, {"status": "error", "error": f"protocol: {e}"}
                    )
                    break
                if frame is None:  # clean EOF between frames
                    break
                header, body = frame
                self.stats["requests"] += 1
                rid = header.get("id")
                if (
                    len(tasks) >= self.config.conn_inflight
                    or self._inflight >= self.config.max_inflight
                ):
                    # shed instead of buffering: the reply is immediate
                    # and the request was never enqueued, so the client
                    # may safely retry after backing off
                    self.stats["shed"] += 1
                    await self._send(writer, wlock, {"id": rid, "status": "busy"})
                    continue
                task = asyncio.ensure_future(
                    self._dispatch(header, body, writer, wlock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, OSError):
            pass  # peer vanished; per-request replies already best-effort
        except asyncio.CancelledError:
            pass  # server shutdown: finish cleanly, not as a "failed" task
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _send(self, writer, wlock: asyncio.Lock, header: dict, body=b"") -> None:
        async with wlock:
            try:
                await protocol.send_frame(writer, header, body)
            except (ConnectionError, OSError):
                pass  # peer gone mid-reply; the read loop will notice

    async def _dispatch(self, header: dict, body, writer, wlock) -> None:
        rid = header.get("id")
        op = header.get("op")
        self._inflight += 1
        try:
            handler = _OPS.get(op)
            if handler is None:
                raise ServiceError(f"unknown op {op!r}")
            resp, payload = await handler(self, header, body)
            resp.setdefault("status", "ok")
        except asyncio.CancelledError:
            raise
        except (ServiceError, StreamError, ValueError, KeyError, TypeError, OSError) as e:
            self.stats["errors"] += 1
            resp, payload = {"status": "error", "error": f"{type(e).__name__}: {e}"}, b""
        finally:
            self._inflight -= 1
        resp["id"] = rid
        await self._send(writer, wlock, resp, payload)

    # ------------------------------------------------------------------
    # shared plumbing

    async def _offload(self, fn, *args):
        """Run blocking work on the decode pool; await its result."""
        return await asyncio.wrap_future(self._io.submit(fn, *args))

    def _open_reader(self) -> StepStreamReader | None:
        if self._reader is None and (self.config.root / "manifest.json").exists():
            # cache_steps=0: the service-level LRU owns caching (keyed
            # by level too); double-storing decodes would halve capacity
            self._reader = StepStreamReader(self.config.root, cache_steps=0)
        return self._reader

    def _require_reader(self) -> StepStreamReader:
        r = self._open_reader()
        if r is None:
            raise ServiceError(
                f"no stream at {self.config.root} yet (ingest with put_step first)"
            )
        return r

    def _ensure_writer(self, shape: tuple[int, ...]) -> StepStreamWriter:
        if self._writer is None:
            cfg = self.config
            self._writer = StepStreamWriter(
                cfg.root,
                shape,
                tol=cfg.tol,
                backend=cfg.backend,
                key_interval=cfg.key_interval,
                shards=cfg.shards,
                executor=self._codec,
                durability=cfg.durability,
            )
        elif tuple(self._writer.refactorer.shape) != shape:
            raise ServiceError(
                f"stream has shape {self._writer.refactorer.shape}, "
                f"put_step sent {shape}"
            )
        return self._writer

    async def _await_step(self, r: StepStreamReader, step: int, wait_s: float) -> bool:
        """Refresh (with exponential backoff) until ``step`` exists."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait_s
        interval = 0.005
        while True:
            n = await self._offload(r.refresh)
            if n > step:
                return True
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            await asyncio.sleep(min(interval, remaining))
            interval = min(interval * 2, 0.25)

    # ------------------------------------------------------------------
    # the decode path: cache → batcher → thread pool

    async def _decoded_step(self, r: StepStreamReader, step: int, level: int | None):
        key = (r.generation, step, level)
        hit = self.cache.get(key)
        if hit is not None:
            return hit

        async def supplier():
            return await self._offload(self._decode_step_sync, r, step, level, key)

        if self.config.batching:
            return await self.batcher.run(key, supplier)
        return await supplier()

    def _decode_step_sync(self, r: StepStreamReader, step, level, key):
        if level is not None:
            field, _ = r.read(step, k=level)
            clean = True
        elif r.stream_mode == "refactored" and r.shard_bounds is None:
            field, _ = r.read(step, k=len(r.steps[step]["class_bytes"]))
            clean = True
        else:
            field = r.read_step(step)
            clean = r.last_recovery is None
        field.setflags(write=False)
        if clean:
            self.cache.put(key, field)
        return field

    def _resolve_level(self, r: StepStreamReader, step: int, level):
        """Validate a progressive-precision level request.

        Returns ``(level, n_levels, error_bound, final)`` or ``None``
        for a full-precision request.
        """
        if level is None:
            return None
        if r.stream_mode != "refactored" or r.shard_bounds is not None:
            raise ServiceError(
                "progressive-precision levels need an unsharded 'refactored' "
                f"stream; this one is {r.stream_mode!r}"
                + (" (sharded)" if r.shard_bounds is not None else "")
            )
        ests = r.steps[step]["truncation_estimates"]
        n = len(ests)
        level = int(level)
        if not 1 <= level <= n:
            raise ServiceError(f"level must be in [1, {n}], got {level}")
        return level, n, float(ests[level - 1]), level == n

    def _region_slices(self, r: StepStreamReader, region) -> tuple[slice, ...]:
        if not isinstance(region, (list, tuple)):
            raise ServiceError("region must be a list of [lo, hi] pairs")
        if len(region) > len(r.shape):
            raise ServiceError(
                f"region has {len(region)} axes for a {len(r.shape)}-d grid"
            )
        out = []
        for pair, n in zip(region, r.shape):
            if pair is None:
                out.append(slice(None))
                continue
            try:
                lo, hi = (int(pair[0]), int(pair[1]))
            except (TypeError, ValueError, IndexError):
                raise ServiceError(f"bad region extent {pair!r}") from None
            lo, hi, _ = slice(lo, hi).indices(n)
            if hi <= lo:
                raise ServiceError(f"empty region extent {pair!r} on an axis of {n}")
            out.append(slice(lo, hi))
        return tuple(out)

    # ------------------------------------------------------------------
    # ops

    async def _op_ping(self, h, body):
        return {"pong": True}, b""

    async def _op_info(self, h, body):
        r = self._require_reader()
        await self._offload(r.refresh)
        levels = None
        if r.stream_mode == "refactored" and r.shard_bounds is None and r.steps:
            levels = len(r.steps[0]["truncation_estimates"])
        return {
            "shape": list(r.shape),
            "mode": r.stream_mode,
            "tol": r.tol,
            "n_steps": r.n_steps,
            "sharded": r.shard_bounds is not None,
            "levels": levels,
        }, b""

    async def _op_put_step(self, h, body):
        shape = tuple(int(s) for s in h["shape"])
        dtype = np.dtype(h.get("dtype", "<f8"))
        expected = int(np.prod(shape)) * dtype.itemsize
        if len(body) != expected:
            raise ServiceError(
                f"put_step body has {len(body)} bytes, expected {expected} "
                f"for shape {shape} dtype {dtype.str}"
            )
        arr = np.frombuffer(body, dtype=dtype).reshape(shape)
        if arr.dtype != np.float64:
            arr = arr.astype(np.float64)
        async with self._write_lock:
            if self._writer is None:
                await self._offload(self._ensure_writer, shape)
            else:
                self._ensure_writer(shape)
            idx = await self._offload(self._writer.append, arr, h.get("time"))
        self.stats["put_steps"] += 1
        return {"step": int(idx)}, b""

    async def _op_get_region(self, h, body):
        r = self._require_reader()
        step = int(h["step"])
        if step < 0:
            raise ServiceError(f"step must be >= 0, got {step}")
        if step >= r.n_steps:
            if not await self._await_step(r, step, float(h.get("wait", 0) or 0)):
                raise ServiceError(
                    f"no such step {step} (stream has {r.n_steps} steps)"
                )
        lv = self._resolve_level(r, step, h.get("level"))
        field = await self._decoded_step(r, step, None if lv is None else lv[0])
        region = h.get("region")
        if region is None:
            out = field
        else:
            out = field[self._region_slices(r, region)]
            if not out.flags.c_contiguous:
                out = np.ascontiguousarray(out)
        resp = {"dtype": out.dtype.str, "shape": list(out.shape), "step": step}
        if lv is not None:
            level, n, bound, final = lv
            resp.update(level=level, n_levels=n, error_bound=bound, final=final)
        return resp, out.data.cast("B")

    async def _op_wait_step(self, h, body):
        r = self._require_reader()
        step = int(h["step"])
        ready = step < r.n_steps or await self._await_step(
            r, step, float(h.get("timeout", 30.0))
        )
        return {"ready": bool(ready), "n_steps": r.n_steps}, b""

    async def _op_stats(self, h, body):
        return {"stats": self.server_stats()}, b""

    def server_stats(self) -> dict:
        out = dict(self.stats)
        out["inflight"] = self._inflight
        out["batching"] = self.config.batching
        out["cache"] = self.cache.stats()
        out["batcher"] = self.batcher.stats()
        if self._reader is not None:
            out["n_steps"] = self._reader.n_steps
        return out


_OPS = {
    "ping": CompressionService._op_ping,
    "info": CompressionService._op_info,
    "put_step": CompressionService._op_put_step,
    "get_step": CompressionService._op_get_region,  # region=None ⇒ full step
    "get_region": CompressionService._op_get_region,
    "wait_step": CompressionService._op_wait_step,
    "stats": CompressionService._op_stats,
}


async def serve(config: ServiceConfig) -> CompressionService:
    """Start a service (bound, primed, accepting); caller owns its loop."""
    svc = CompressionService(config)
    await svc.start()
    return svc


def main(argv: list[str] | None = None) -> int:
    """``repro-serve``: run a compression service over a stream directory."""
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=__doc__.split("\n")[0]
    )
    parser.add_argument("root", help="stream directory to serve (created on first put_step)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9753)
    parser.add_argument("--tol", type=float, default=None,
                        help="ingest in compressed mode with this L-inf bound")
    parser.add_argument("--backend", default="huffman")
    parser.add_argument("--key-interval", type=int, default=16)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--executor", default=None, metavar="SPEC",
                        help="codec executor for the encode fan-out "
                        "(serial, thread[:N], process[:N], auto)")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable request coalescing (benchmark baseline)")
    parser.add_argument("--cache-bytes", type=int, default=256 << 20,
                        help="decoded-step cache budget (0 disables)")
    parser.add_argument("--conn-inflight", type=int, default=32)
    parser.add_argument("--max-inflight", type=int, default=128)
    parser.add_argument("--io-workers", type=int, default=None)
    parser.add_argument("--durability", default="rename", choices=("rename", "fsync"))
    args = parser.parse_args(argv)
    config = ServiceConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        batching=not args.no_batch,
        cache_bytes=args.cache_bytes,
        conn_inflight=args.conn_inflight,
        max_inflight=args.max_inflight,
        io_workers=args.io_workers,
        executor=args.executor,
        tol=args.tol,
        backend=args.backend,
        key_interval=args.key_interval,
        shards=args.shards,
        durability=args.durability,
    )

    async def run() -> None:
        svc = await serve(config)
        print(
            f"repro-serve: serving {svc.config.root} on {svc.host}:{svc.port} "
            f"(batching={'on' if config.batching else 'off'}, "
            f"cache={config.cache_bytes >> 20} MiB)",
            flush=True,
        )
        try:
            await svc.serve_forever()
        finally:
            await svc.stop()
            svc.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
