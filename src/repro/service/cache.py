"""Bytes-bounded LRU cache for decoded steps and prefix reconstructions.

Random access into a compressed stream re-rolls the whole key-frame
chain on every request (`StepStreamReader.read_step` replays from the
nearest key frame); a server doing that once per *request* would spend
its tail latency re-decoding identical data.  :class:`LRUCache` is the
shared fix: the service keeps decoded ``(generation, step, level)``
arrays in one bytes-bounded pool, and
:class:`~repro.io.stream.StepStreamReader` uses a small instance of the
same class for its own decoded-step cache.

Deliberately dependency-free (importable from ``repro.io`` without
touching the rest of the service package) and thread-safe — the asyncio
event loop, its decode thread pool, and library callers may all touch
one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["LRUCache"]

_MISSING = object()


def _sizeof(value) -> int:
    """Best-effort byte size of a cached value (ndarray, bytes, ...)."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    try:
        return len(value)
    except TypeError:
        return 0


class LRUCache:
    """Least-recently-used mapping bounded by total bytes and entry count.

    ``max_bytes=0`` (or ``max_entries=0``) disables the cache entirely:
    every ``get`` misses and ``put`` is a no-op — the switch the naive
    benchmark configuration and ``--cache-bytes 0`` flip.

    ``stats()`` reports hits / misses / evictions / current bytes;
    ``hit_rate`` is the fraction of ``get`` calls served from cache
    (0.0 when never queried).
    """

    def __init__(self, max_bytes: int = 256 << 20, max_entries: int | None = None):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_bytes = int(max_bytes)
        self.max_entries = max_entries
        self._data: OrderedDict = OrderedDict()
        self._sizes: dict = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0 and self.max_entries != 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def get(self, key, default=None):
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key, value, nbytes: int | None = None) -> bool:
        """Insert ``value``; returns False when it cannot be cached
        (cache disabled, or the single value exceeds ``max_bytes``)."""
        if not self.enabled:
            return False
        size = _sizeof(value) if nbytes is None else int(nbytes)
        if size > self.max_bytes:
            return False
        with self._lock:
            old = self._sizes.pop(key, None)
            if old is not None:
                self._bytes -= old
                del self._data[key]
            self._data[key] = value
            self._sizes[key] = size
            self._bytes += size
            while self._bytes > self.max_bytes or (
                self.max_entries is not None and len(self._data) > self.max_entries
            ):
                victim, _ = self._data.popitem(last=False)
                self._bytes -= self._sizes.pop(victim)
                self._evictions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self._bytes = 0

    @property
    def hit_rate(self) -> float:
        asked = self._hits + self._misses
        return self._hits / asked if asked else 0.0

    def stats(self) -> dict:
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": len(self._data),
            "bytes": self._bytes,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(entries={len(self._data)}, bytes={self._bytes}/"
            f"{self.max_bytes}, hit_rate={self.hit_rate:.2f})"
        )
