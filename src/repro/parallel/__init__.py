"""Process/thread/serial concurrency substrate for the codec pipeline.

Extracted from ``compress/executor.py`` (which remains as a re-export
shim) so every layer — entropy segments, zlib sub-blocks, Huffman sync
ranges, streaming pipelines — schedules through one interface.  See
:mod:`repro.parallel.executors` for the backends and
:mod:`repro.parallel.shm` for the shared-memory transport the process
backend ships heavy operands through.
"""

from .executors import (
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    default_spec,
    get_executor,
    set_default_executor,
)
from .shm import (
    ArrayRef,
    BytesRef,
    SharedBlock,
    ShmUnavailable,
    share_array,
    share_bytes,
    share_chunks,
    unlink_segment,
)

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "get_executor",
    "set_default_executor",
    "default_spec",
    "available_workers",
    "ShmUnavailable",
    "SharedBlock",
    "ArrayRef",
    "BytesRef",
    "share_array",
    "share_bytes",
    "share_chunks",
    "unlink_segment",
]
