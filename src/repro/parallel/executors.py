"""The three interchangeable executor backends behind one interface.

The paper hides the refactoring cost behind concurrency (CUDA streams
on the device, pipelined I/O across the workflow); this package applies
the same treatment to every host-side fan-out — per-class entropy
segments, zlib sub-blocks, Huffman sync-block ranges, pipeline stages.
A fan-out point takes an *executor* and schedules through ``map``;
which backend runs the units never changes the bytes they emit:

``SerialExecutor``
    Runs work inline on the calling thread.  The default, and the
    byte-for-byte reference every other backend must match.

``ThreadExecutor``
    A shared :class:`concurrent.futures.ThreadPoolExecutor`.  Threads
    suit the encode path: the heavy kernels (``zlib.compress``, bulk
    NumPy ops) release the GIL, so work units genuinely overlap.
    (``ParallelExecutor`` is the pre-refactor alias.)

``ProcessExecutor``
    A :class:`concurrent.futures.ProcessPoolExecutor`-backed pool for
    the work the GIL never releases — the lockstep Huffman decode's
    small-vector loop above all.  Heavy operands (payload words,
    symbol ranges for the block encode, zlib sub-blocks) travel
    through ``multiprocessing.shared_memory`` (see
    :mod:`repro.parallel.shm`); only small descriptors are pickled.
    ``map`` transparently degrades: work that cannot cross a process
    boundary (closures, unpicklable state) runs inline instead, so the
    backend is always *safe* to select ambiently and accelerates the
    call sites that ship process-ready work units.

Selection is explicit (pass an executor), planned
(``CompressionPlan.executor``), or ambient: :func:`get_executor`
resolves ``None`` through :func:`set_default_executor` and the
``REPRO_EXECUTOR`` environment variable.  Specs: ``serial``,
``thread[:N]`` (alias ``parallel``), ``process[:N]``, ``auto``.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import pickle
import threading
import time

from .. import faults

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "get_executor",
    "set_default_executor",
    "default_spec",
    "available_workers",
]

_ENV_KNOB = "REPRO_EXECUTOR"


def available_workers() -> int:
    """Worker count ``auto`` resolves to (the cores *this process* may
    use — CPU affinity / cgroup pinning respected where the platform
    exposes it, so containers don't oversubscribe)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # platforms without sched_getaffinity
        return max(os.cpu_count() or 1, 1)


class SerialExecutor:
    """Inline executor: ``map`` runs on the calling thread, in order."""

    kind = "serial"
    max_workers = 1

    def map(self, fn, *iterables) -> list:
        return [fn(*args) for args in zip(*iterables)]

    def submit(self, fn, *args) -> concurrent.futures.Future:
        """Run ``fn`` inline; returns an already-resolved future.

        Interface symmetry with the pooled backends so async callers
        (the service's decode offload wraps ``submit`` futures with
        ``asyncio.wrap_future``) can take any executor — under the
        serial backend the work simply runs on the calling thread.
        """
        fut: concurrent.futures.Future = concurrent.futures.Future()
        try:
            fut.set_result(fn(*args))
        except BaseException as e:  # noqa: BLE001 - mirrored to the future
            fut.set_exception(e)
        return fut

    def prime(self) -> None:
        """No pool to warm; kept for interface symmetry."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ThreadExecutor:
    """Thread-pool executor for GIL-releasing encode/decode work units.

    The pool is created lazily on first use and shared by every call;
    ``map`` preserves submission order, so any fan-out scheduled through
    it reassembles deterministically regardless of completion order.
    """

    kind = "thread"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or available_workers()
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            with self._lock:
                if self._pool is None:
                    self._pool = concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-encode",
                    )
        return self._pool

    def map(self, fn, *iterables) -> list:
        return list(self._ensure_pool().map(fn, *iterables))

    def submit(self, fn, *args) -> concurrent.futures.Future:
        """Schedule one call on the pool; returns its future.

        The service's event loop offloads blocking decodes here
        (``asyncio.wrap_future(executor.submit(...))``), keeping the
        loop responsive while NumPy-heavy work runs GIL-released.
        """
        return self._ensure_pool().submit(fn, *args)

    def prime(self) -> None:
        """Create the pool now instead of lazily on first ``map``."""
        self._ensure_pool()

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(max_workers={self.max_workers})"


#: Pre-refactor name of the thread backend, kept importable forever —
#: plans and scripts written against ``compress/executor.py`` use it.
ParallelExecutor = ThreadExecutor


def _picklable(fn) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


class _KillMarked:
    """Picklable work-function wrapper carrying injected worker kills.

    The parent decides *which* job indices die
    (:func:`repro.faults.kill_indices` — deterministic, seeded) and
    ships one boolean per job; a marked job ``os._exit``\\ s its worker
    mid-batch, which is exactly what an OOM kill or a segfault looks
    like to the pool: :class:`BrokenProcessPool` on the whole batch.
    """

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, kill, *args):
        if kill:
            os._exit(113)
        return self.fn(*args)


class ProcessExecutor:
    """Process-pool executor for GIL-bound work units.

    Work functions must be picklable (module-level functions with
    descriptor-sized arguments — the shm-staged fan-outs in
    :mod:`repro.compress`); anything else runs inline, preserving
    correctness at zero concurrency.  ``map`` preserves submission
    order.  The pool forks lazily on first real use (spawn where fork
    is unavailable) and is shared by every call.

    **Recovery policy:** a broken pool (a worker killed under it — OOM
    killer, segfault, injected fault) fails the whole in-flight batch
    with :class:`BrokenProcessPool`.  Work units scheduled here are
    pure functions of their arguments, so the batch is safely
    re-runnable: the pool is torn down and **rebuilt**, and the batch
    retried up to ``max_retries`` times with exponential backoff
    (``backoff_s`` doubling per attempt) before degrading to a single
    inline run — bounded persistence instead of the permanent
    serial-forever degradation a one-shot fallback would impose on a
    long-running service.  ``stats`` counts ``broken_pools``,
    ``rebuilds``, and ``inline_fallbacks`` so chaos benchmarks (and
    operators) can see the policy working.
    """

    kind = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        max_retries: int = 2,
        backoff_s: float = 0.05,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_workers = max_workers or available_workers()
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.stats = {"broken_pools": 0, "rebuilds": 0, "inline_fallbacks": 0}
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            with self._lock:
                if self._pool is None:
                    import multiprocessing

                    # fork() is only safe while this process is still
                    # single-threaded: forking under sibling threads (a
                    # pipeline stage reaching its first codec fan-out)
                    # snapshots their locks in the locked state and can
                    # deadlock the children.  Single-threaded, fork is
                    # preferred — it needs no __main__ re-import, so
                    # REPL/stdin scripts work; otherwise fall back to
                    # fork-from-a-clean-server (or spawn).  The
                    # single-threaded check is only sound on >= 3.11,
                    # where a fork-context pool spawns all its workers
                    # eagerly (gh-90622); 3.10 forks them lazily on
                    # later submits, when threads may exist.
                    import sys

                    methods = multiprocessing.get_all_start_methods()
                    if (
                        "fork" in methods
                        and sys.version_info >= (3, 11)
                        and threading.active_count() == 1
                    ):
                        method = "fork"
                    else:
                        for method in ("forkserver", "spawn"):
                            if method in methods:
                                break
                    ctx = multiprocessing.get_context(method)
                    self._pool = concurrent.futures.ProcessPoolExecutor(
                        max_workers=self.max_workers, mp_context=ctx
                    )
                    # join the workers before interpreter teardown; a
                    # pool reaped during module clearing spews weakref
                    # callbacks into a half-dismantled runtime
                    atexit.register(self.shutdown)
        return self._pool

    def map(self, fn, *iterables) -> list:
        jobs = list(zip(*iterables))
        if len(jobs) <= 1 or not _picklable(fn):
            return [fn(*args) for args in jobs]
        delay = self.backoff_s
        for attempt in range(self.max_retries + 1):
            # re-drawn per attempt: a count-limited kill fault exhausts
            # its budget and the retried batch goes through clean
            kills = faults.kill_indices("executor.process.map", len(jobs))
            try:
                pool = self._ensure_pool()
                if kills:
                    marks = [i in kills for i in range(len(jobs))]
                    return list(pool.map(_KillMarked(fn), marks, *zip(*jobs)))
                return list(pool.map(fn, *zip(*jobs)))
            except concurrent.futures.process.BrokenProcessPool:
                self.stats["broken_pools"] += 1
                self.shutdown()
                if attempt < self.max_retries:
                    self.stats["rebuilds"] += 1
                    time.sleep(delay)
                    delay *= 2
                    continue
                # retries exhausted: keep the caller alive at zero
                # concurrency (kill marks never apply inline — they
                # simulate *worker* deaths, not the coordinator's)
                self.stats["inline_fallbacks"] += 1
                return [fn(*args) for args in jobs]
            except RuntimeError:
                # a sibling thread observed the pool break and tore it
                # down between our _ensure_pool() and map() ("cannot
                # schedule new futures after shutdown"); work units are
                # pure, so rerun inline — a genuine RuntimeError from fn
                # re-raises here
                return [fn(*args) for args in jobs]

    def submit(self, fn, *args) -> concurrent.futures.Future:
        """Schedule one call on the pool (inline future when ``fn``
        cannot cross a process boundary — same degradation as ``map``)."""
        if not _picklable(fn):
            fut: concurrent.futures.Future = concurrent.futures.Future()
            try:
                fut.set_result(fn(*args))
            except BaseException as e:  # noqa: BLE001 - mirrored to the future
                fut.set_exception(e)
            return fut
        return self._ensure_pool().submit(fn, *args)

    def prime(self) -> None:
        """Fork/spawn the worker pool *now*.

        The lazy first-use fork prefers plain ``fork()`` only while the
        process is single-threaded; a pipeline whose stages run on a
        thread pool would therefore pay the slower forkserver/spawn
        path (plus its import replay) inside the first *timed* encode.
        Priming from the main thread — before any stage threads exist —
        keeps the fast fork and moves the pool start-up cost out of the
        measurement entirely.
        """
        self._ensure_pool()

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self.max_workers})"


_default_spec: str | None = None
_instances: dict[str, object] = {}
_instances_lock = threading.Lock()

_KINDS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def set_default_executor(spec: str | None) -> None:
    """Set the ambient executor spec (overrides ``REPRO_EXECUTOR``).

    Pass ``None`` to fall back to the environment variable again.
    """
    global _default_spec
    if spec is not None:
        _parse_spec(spec)  # validate eagerly
    _default_spec = spec


def _parse_spec(spec: str) -> tuple[str, int | None]:
    spec = spec.strip().lower()
    if spec in ("", "serial"):
        return "serial", None
    if spec == "auto":
        return ("thread", None) if available_workers() > 1 else ("serial", None)
    kind, sep, count = spec.partition(":")
    if kind == "parallel":  # pre-refactor alias for the thread backend
        kind = "thread"
    if kind in ("thread", "process"):
        if not sep:
            return kind, None
        try:
            n = int(count)
        except ValueError:
            raise ValueError(f"bad executor spec {spec!r}: worker count not an int")
        if n < 1:
            raise ValueError(f"bad executor spec {spec!r}: need >= 1 worker")
        return kind, n
    raise ValueError(
        f"unknown executor spec {spec!r}; use 'serial', 'thread[:N]' "
        "(alias 'parallel'), 'process[:N]', or 'auto'"
    )


def default_spec() -> str:
    """The ambient executor spec a ``None`` request resolves to."""
    if _default_spec is not None:
        return _default_spec
    return os.environ.get(_ENV_KNOB, "serial")


def get_executor(spec: str | None = None):
    """Resolve an executor spec to a (shared) executor instance.

    ``None`` falls through :func:`set_default_executor`, then the
    ``REPRO_EXECUTOR`` environment variable, then ``serial``.  Instances
    are cached per normalized (kind, worker count), so repeated
    resolution reuses one pool.
    """
    if spec is None:
        spec = default_spec()
    kind, workers = _parse_spec(spec)
    key = "serial" if kind == "serial" else f"{kind}:{workers or 0}"
    with _instances_lock:
        inst = _instances.get(key)
        if inst is None:
            cls = _KINDS[kind]
            inst = cls() if kind == "serial" else cls(workers)
            _instances[key] = inst
        return inst
