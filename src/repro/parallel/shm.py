"""Shared-memory transport for the process executor's work units.

A :class:`ProcessExecutor` worker lives in another address space, so the
encode/decode fan-outs cannot hand it live NumPy arrays or payload
buffers by reference the way the thread pool does.  Instead, the parent
*stages* the heavy operand once in a ``multiprocessing.shared_memory``
segment and ships each worker a tiny picklable **ref** (segment name,
shape, dtype); workers attach, compute, and return only their (fresh)
results.  Pickling traffic is therefore proportional to the number of
work units, not to the operand size.  Three fan-outs ride this today:
the lockstep Huffman *decode* (payload words staged, ranges of sync
blocks per worker), the block-parallel Huffman *encode* (the int64
symbol array staged, contiguous sync-aligned ranges per worker, word
packs OR-merged back on the coordinator), and the zlib sub-block
deflate/inflate (chunk extents per worker).

Two staging helpers:

* :func:`share_array` — stage a NumPy array; the ref reopens it as an
  identically-shaped read-only view in the worker.
* :func:`share_bytes` — stage a bytes-like payload; the ref reopens it
  as a memoryview.

Both return ``(ref, block)``; the parent must keep ``block`` alive for
the duration of the fan-out and call :meth:`SharedBlock.destroy` in a
``finally`` once every worker has returned.  When the platform has no
usable shared memory (no ``/dev/shm``, exhausted segments), staging
raises :class:`ShmUnavailable` and callers fall back to their
in-process path.

CPython < 3.13 registers *attached* segments with the resource tracker
as if the worker owned them (gh-82300), which makes the tracker unlink
segments it never created and warn about "leaked" ones at shutdown.
:func:`attach` suppresses that registration — ownership stays with the
creating process, which is the only one that unlinks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ShmUnavailable",
    "SharedBlock",
    "Lease",
    "ArrayRef",
    "BytesRef",
    "share_array",
    "share_bytes",
    "share_chunks",
    "attach",
    "unlink_segment",
]


class ShmUnavailable(RuntimeError):
    """Shared memory cannot be allocated on this platform/configuration."""


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


_attach_lock = threading.Lock()


def attach(name: str):
    """Attach to an existing segment without resource-tracker tracking.

    Attaching registers the segment with the worker's resource tracker
    on CPython < 3.13 (gh-82300), so a pool worker exiting would unlink
    a segment the parent still owns and the tracker would warn about
    phantom leaks.  Registration is suppressed for the duration of the
    attach; the creating process remains the sole owner.  The patch is
    serialized: concurrent attaches (a broken pool's inline fallback
    running on parent threads) must not capture each other's no-op as
    the original.
    """
    shared_memory = _shared_memory()
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - non-CPython
        return shared_memory.SharedMemory(name=name)
    with _attach_lock:
        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


class SharedBlock:
    """Parent-side handle of one staged segment (owns its lifetime)."""

    def __init__(self, shm):
        self._shm = shm

    @property
    def name(self) -> str:
        return self._shm.name

    def destroy(self) -> None:
        """Release the mapping and unlink the segment."""
        try:
            self._shm.close()
        finally:
            self._shm.unlink()

    def release(self) -> None:
        """Release the mapping *without* unlinking the segment.

        Ownership-transfer protocol of the SPMD data plane: the sender
        releases its mapping and the segment's lifetime travels with the
        in-flight message — the receiver (or, if a rank dies abnormally,
        the host's run finalizer sweep) unlinks it.
        """
        self._shm.close()


class Lease:
    """Worker-side attachment of one staged segment.

    Access the operand through :attr:`view` *without binding it to a
    local that outlives the lease*: pass ``lease.view`` (or a temporary
    slice of it) straight into the consuming call, then ``close()`` in
    a ``finally``.  The mmap refuses to unmap while buffer exports
    exist, so any surviving view or slice at close time is a bug — it
    raises ``BufferError`` rather than silently pinning the segment.
    """

    def __init__(self, shm, view):
        self._shm = shm
        self.view = view

    def close(self) -> None:
        view, self.view = self.view, None
        if isinstance(view, memoryview):
            view.release()
        del view
        self._shm.close()


@dataclass(frozen=True)
class ArrayRef:
    """Picklable descriptor of a staged NumPy array."""

    name: str
    shape: tuple
    dtype: str

    def open(self) -> Lease:
        """Attach in a worker; ``lease.view`` is the read-only array."""
        shm = attach(self.name)
        arr = np.frombuffer(
            shm.buf, dtype=np.dtype(self.dtype), count=int(np.prod(self.shape, dtype=np.int64))
        ).reshape(self.shape)
        arr.flags.writeable = False
        return Lease(shm, arr)


@dataclass(frozen=True)
class BytesRef:
    """Picklable descriptor of a staged bytes payload."""

    name: str
    nbytes: int

    def open(self) -> Lease:
        """Attach in a worker; ``lease.view`` is the payload memoryview."""
        shm = attach(self.name)
        return Lease(shm, shm.buf[: self.nbytes])


def _create(size: int, name: str | None = None, track: bool = True):
    shared_memory = _shared_memory()

    def make():
        return shared_memory.SharedMemory(name=name, create=True, size=max(int(size), 1))

    try:
        if track:
            return make()
        # untracked creation (the SPMD data plane): the segment's
        # lifetime transfers to the receiving rank / the host sweep, so
        # this process's resource tracker must not claim it — it would
        # try to unlink an already-consumed segment at exit (gh-82300
        # family).  Same suppression trick as :func:`attach`.
        try:
            from multiprocessing import resource_tracker
        except ImportError:  # pragma: no cover - non-CPython
            return make()
        with _attach_lock:
            orig = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                return make()
            finally:
                resource_tracker.register = orig
    except FileExistsError:
        # an explicitly named segment collided with a stale one; let the
        # caller pick another name rather than masking it as unavailable
        raise
    except (OSError, ValueError, ImportError) as e:
        raise ShmUnavailable(f"cannot allocate shared memory: {e}") from e


def unlink_segment(name: str) -> bool:
    """Unlink a segment by name; True if it existed and was removed.

    The sweep half of the SPMD ownership-transfer protocol: the host
    finalizer calls this for every segment a run created that no
    receiver consumed (abnormal rank death, unreceived messages).
    """
    try:
        seg = attach(name)
    except FileNotFoundError:
        return False
    except OSError:  # pragma: no cover - racing unlink
        return False
    try:
        seg.close()
        # this process never registered the segment (attach suppresses
        # registration), so the unlink must not emit an UNREGISTER the
        # tracker has no matching entry for
        try:
            from multiprocessing import resource_tracker
        except ImportError:  # pragma: no cover - non-CPython
            seg.unlink()
            return True
        with _attach_lock:
            orig = resource_tracker.unregister
            resource_tracker.unregister = lambda *a, **k: None
            try:
                seg.unlink()
            finally:
                resource_tracker.unregister = orig
    except FileNotFoundError:  # pragma: no cover - racing unlink
        return False
    return True


def share_array(
    arr: np.ndarray, name: str | None = None, track: bool = True
) -> tuple[ArrayRef, SharedBlock]:
    """Stage an array in shared memory; returns (worker ref, owner handle).

    ``name`` pins the segment name (the SPMD fabric uses run-prefixed
    names so orphans are sweepable); raises ``FileExistsError`` on
    collision so the caller can retry with a fresh name.  ``track=False``
    skips resource-tracker registration for segments whose ownership
    leaves this process (the fabric's transfer protocol).
    """
    arr = np.ascontiguousarray(arr)
    shm = _create(arr.nbytes, name=name, track=track)
    if arr.nbytes:
        dst = np.frombuffer(shm.buf, dtype=arr.dtype, count=arr.size).reshape(arr.shape)
        np.copyto(dst, arr)
        del dst
    return ArrayRef(shm.name, tuple(arr.shape), arr.dtype.str), SharedBlock(shm)


def share_bytes(payload) -> tuple[BytesRef, SharedBlock]:
    """Stage a bytes-like payload; returns (worker ref, owner handle)."""
    payload = memoryview(payload)
    shm = _create(payload.nbytes)
    if payload.nbytes:
        shm.buf[: payload.nbytes] = payload
    ref = BytesRef(shm.name, payload.nbytes)
    payload.release()
    return ref, SharedBlock(shm)


def share_chunks(chunks) -> tuple[BytesRef, SharedBlock, list[int]]:
    """Stage a chunk list contiguously; returns (ref, handle, offsets).

    Equivalent to ``share_bytes(b"".join(chunks))`` but copies each
    chunk straight into the segment — no intermediate joined copy, so
    staging a multi-GB payload transiently holds one extra copy, not
    two.  ``offsets[i]`` is chunk ``i``'s byte offset in the segment.
    """
    total = sum(len(c) for c in chunks)
    shm = _create(total)
    offsets = []
    pos = 0
    for c in chunks:
        offsets.append(pos)
        end = pos + len(c)
        shm.buf[pos:end] = c
        pos = end
    return BytesRef(shm.name, total), SharedBlock(shm), offsets
