"""Shared exception hierarchy for the storage/streaming stack.

The container layers raise structurally identical errors — malformed
magic, truncated extents, checksum mismatches — from modules on *both*
sides of the ``repro.io`` ↔ ``repro.compress`` import boundary:
``repro.io.stream`` imports ``repro.compress.fileio`` to decode
compressed steps, while ``repro.compress.fileio`` must raise an error a
stream reader can catch uniformly with the refactored container's.
Defining the root type in a dependency-free module breaks that cycle:
:class:`ContainerError` lives here, ``repro.io.container`` re-exports
it, and ``repro.compress.fileio.CompressedFileError`` subclasses it —
so ``except ContainerError`` catches every flavour of corrupt payload,
which is exactly what the recovery paths (step quarantine, partial-
shard region reads, the scrub CLI) key on.
"""

from __future__ import annotations

__all__ = ["ContainerError"]


class ContainerError(RuntimeError):
    """Malformed or inconsistent container file or payload.

    The common root of every "these bytes do not decode" condition:
    truncated extents and headers, checksum mismatches, bad magic,
    short reads, and parse errors mapped from :mod:`struct`/:mod:`json`
    internals.  Messages carry path + offset context so a corrupt file
    is locatable without a debugger.
    """
