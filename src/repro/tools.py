"""repro-tool — file-level refactoring and compression utility.

A small command-line front end over the library for ``.npy`` arrays::

    repro-tool refactor    field.npy field.rprc        # -> class container
    repro-tool reconstruct field.rprc out.npy -k 3     # prefix recovery
    repro-tool reconstruct field.rprc out.npy --tol 1e-3   # s-norm hint
    repro-tool compress    field.npy field.mgz --rel-tol 1e-3
    repro-tool decompress  field.mgz out.npy
    repro-tool info        field.rprc                  # metadata & sizes

All operations are lossless/round-trip-verified where the format allows
(refactor/reconstruct with all classes; compress honours its bound).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .compress.fileio import load_compressed, save_compressed
from .compress.mgard import MgardCompressor
from .core.classes import reconstruct_from_classes
from .core.grid import hierarchy_for
from .core.refactor import Refactorer
from .core.snorm import classes_for_tolerance
from .io.container import RefactoredFileReader, write_refactored

__all__ = ["main"]


def _load_npy(path: str) -> np.ndarray:
    arr = np.load(path)
    if not isinstance(arr, np.ndarray):
        raise SystemExit(f"{path} does not contain a plain array")
    return np.ascontiguousarray(arr, dtype=np.float64)


def _cmd_refactor(args) -> int:
    data = _load_npy(args.input)
    cc = Refactorer(data.shape).refactor(data)
    nbytes = write_refactored(args.output, cc, attrs={"source": str(args.input)})
    print(f"{args.input} -> {args.output}: {cc.n_classes} classes, {nbytes} bytes")
    return 0


def _cmd_reconstruct(args) -> int:
    reader = RefactoredFileReader(args.input)
    hier = hierarchy_for(reader.shape)
    if args.tol is not None:
        cc = reader.to_coefficient_classes(hier)
        k = classes_for_tolerance(cc, args.tol)
        field = cc.reconstruct(k)
    else:
        k = args.k if args.k is not None else reader.n_classes
        field = reconstruct_from_classes(reader.read_classes(k), hier)
    np.save(args.output, field)
    print(f"{args.input} -> {args.output}: used {k}/{reader.n_classes} classes")
    return 0


def _cmd_compress(args) -> int:
    data = _load_npy(args.input)
    if args.rel_tol is not None:
        rng = float(data.max() - data.min())
        tol = args.rel_tol * (rng if rng > 0 else 1.0)
    elif args.tol is not None:
        tol = args.tol
    else:
        raise SystemExit("pass --tol or --rel-tol")
    hier = hierarchy_for(data.shape)
    comp = MgardCompressor(hier, tol, mode=args.mode, backend=args.backend)
    blob = comp.compress(data)
    if args.verify:
        back = comp.decompress(blob)
        err = float(np.abs(back - data).max())
        if err > tol:
            raise SystemExit(f"BUG: bound violated ({err} > {tol})")
    nbytes = save_compressed(args.output, blob)
    print(
        f"{args.input} -> {args.output}: {nbytes} bytes, "
        f"ratio {blob.compression_ratio():.1f}x, tol {tol:g}"
    )
    return 0


def _cmd_decompress(args) -> int:
    blob, hier = load_compressed(args.input)
    comp = MgardCompressor(hier, blob.tol, mode=blob.mode)
    field = comp.decompress(blob)
    np.save(args.output, field)
    print(f"{args.input} -> {args.output}: shape {field.shape}, tol {blob.tol:g}")
    return 0


def _cmd_info(args) -> int:
    path = Path(args.input)
    head = path.open("rb").read(6)
    if head == b"RPRC\x01\x00":
        reader = RefactoredFileReader(path)
        print(f"refactored container: shape {reader.shape}, {reader.n_classes} classes")
        for l, nb in enumerate(reader.class_nbytes()):
            print(f"  class {l}: {nb} bytes")
        if reader.attrs:
            print(f"  attrs: {reader.attrs}")
    elif head == b"RPMG\x01\x00":
        blob, _ = load_compressed(path)
        print(
            f"compressed data: shape {blob.shape}, tol {blob.tol:g}, "
            f"mode {blob.mode}, ratio {blob.compression_ratio():.1f}x"
        )
        for l, p in enumerate(blob.payloads):
            print(f"  class {l}: {len(p)} bytes ({blob.headers[l]['backend']})")
    else:
        raise SystemExit(f"{path}: not a repro container or compressed file")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tool", description="Refactor / compress .npy arrays."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("refactor", help="refactor a .npy into a class container")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(fn=_cmd_refactor)

    p = sub.add_parser("reconstruct", help="reconstruct (a prefix) from a container")
    p.add_argument("input")
    p.add_argument("output")
    group = p.add_mutually_exclusive_group()
    group.add_argument("-k", type=int, help="number of classes to use")
    group.add_argument("--tol", type=float, help="L2 tolerance (s-norm hint picks k)")
    p.set_defaults(fn=_cmd_reconstruct)

    p = sub.add_parser("compress", help="error-bounded lossy compression")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--tol", type=float, help="absolute Linf bound")
    p.add_argument("--rel-tol", type=float, help="bound relative to the value range")
    p.add_argument("--mode", choices=["level", "uniform"], default="level")
    p.add_argument("--backend", choices=["zlib", "huffman"], default="zlib")
    p.add_argument("--verify", action="store_true", help="round-trip check before writing")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("decompress", help="invert `compress`")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(fn=_cmd_decompress)

    p = sub.add_parser("info", help="describe a container/compressed file")
    p.add_argument("input")
    p.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # pragma: no cover
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
