"""CUDA-stream scheduling model (paper §III-D optimization 3, Fig. 8).

For 3D inputs the paper reuses its 2D linear-processing kernels slice by
slice; a single stream leaves the GPU under-occupied, so slices are
spread over up to 64 CUDA streams.  Two views are provided:

* :class:`StreamScheduler` — an event-driven simulator that assigns a
  list of per-launch durations to ``n`` streams FIFO and reports the
  makespan (used in tests to show the closed-form wave model of
  :func:`repro.gpu.cost.gpu_kernel_time` is a faithful summary);
* :func:`stream_sweep` — the Fig. 8 experiment: end-to-end modeled pass
  time and speedup versus stream count.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.grid import hierarchy_for
from .analytic import model_pass
from .device import DeviceSpec

__all__ = ["StreamScheduler", "StreamSweepPoint", "stream_sweep"]


class StreamScheduler:
    """FIFO assignment of kernel launches onto concurrent streams."""

    def __init__(self, n_streams: int):
        if n_streams < 1:
            raise ValueError("need at least one stream")
        self.n_streams = n_streams

    def makespan(self, durations: list[float]) -> float:
        """Completion time of launching ``durations`` FIFO across streams.

        Each launch is issued to the earliest-available stream, like the
        round-robin stream assignment of the paper's 3D driver.
        """
        if not durations:
            return 0.0
        heap = [0.0] * min(self.n_streams, len(durations))
        heapq.heapify(heap)
        for d in durations:
            t = heapq.heappop(heap)
            heapq.heappush(heap, t + d)
        return max(heap)

    def timeline(self, durations: list[float]) -> list[tuple[int, float, float]]:
        """(stream, start, end) for every launch, in issue order."""
        heap = [(0.0, s) for s in range(self.n_streams)]
        heapq.heapify(heap)
        out = []
        for d in durations:
            t, s = heapq.heappop(heap)
            out.append((s, t, t + d))
            heapq.heappush(heap, (t + d, s))
        return out


@dataclass
class StreamSweepPoint:
    """One point of the Fig. 8 stream sweep."""

    n_streams: int
    seconds: float
    speedup: float


def stream_sweep(
    shape: tuple[int, ...],
    device: DeviceSpec,
    streams: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    operation: str = "decompose",
) -> list[StreamSweepPoint]:
    """Model pass time versus CUDA-stream count (paper Fig. 8).

    The baseline (speedup 1.0) is the single-stream configuration, as in
    the paper.
    """
    from ..kernels.launches import EngineOptions

    hier = hierarchy_for(shape)
    base = model_pass(hier, device, EngineOptions(n_streams=1), operation).total_seconds
    out = []
    for s in streams:
        t = model_pass(hier, device, EngineOptions(n_streams=s), operation).total_seconds
        out.append(StreamSweepPoint(n_streams=s, seconds=t, speedup=base / t))
    return out
