"""Shape-only (analytic) performance model of full refactoring passes.

Walks Algorithm 3 through :func:`repro.kernels.launches.iter_decompose_launches`
without touching any data, so paper-scale configurations (8193² grids,
4 TB datasets, 4096 GPUs) evaluate in microseconds.  The records are the
same ones the metered engines emit, so the two views agree exactly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..core.grid import TensorHierarchy, hierarchy_for
from .cost import cpu_kernel_time, gpu_kernel_time
from .device import CpuSpec, DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (gpu <-> kernels)
    from ..kernels.launches import EngineOptions

__all__ = ["ModeledPass", "model_pass", "model_pass_shape"]


@dataclass
class ModeledPass:
    """Modeled time of one decomposition or recomposition pass."""

    operation: str
    shape: tuple[int, ...]
    hardware: str
    total_seconds: float
    category_seconds: dict[str, float] = field(default_factory=dict)
    n_launches: int = 0

    @property
    def throughput_gbps(self) -> float:
        """Useful data throughput: input bytes / modeled seconds."""
        nbytes = 8
        for s in self.shape:
            nbytes *= s
        return nbytes / self.total_seconds / 1e9


def model_pass(
    hier: TensorHierarchy,
    hardware: DeviceSpec | CpuSpec,
    opts: "EngineOptions | None" = None,
    operation: str = "decompose",
) -> ModeledPass:
    """Model one pass over an existing hierarchy."""
    # Imported here to break the repro.gpu <-> repro.kernels cycle.
    from ..kernels.launches import EngineOptions, category_of, iter_decompose_launches

    if opts is None:
        opts = EngineOptions()
    if isinstance(hardware, DeviceSpec):
        timer = lambda rec: gpu_kernel_time(rec, hardware)  # noqa: E731
    elif isinstance(hardware, CpuSpec):
        timer = lambda rec: cpu_kernel_time(rec, hardware)  # noqa: E731
    else:
        raise TypeError(f"hardware must be DeviceSpec or CpuSpec, got {type(hardware)}")
    total = 0.0
    cats: dict[str, float] = defaultdict(float)
    n = 0
    for rec in iter_decompose_launches(hier, opts, operation):
        t = timer(rec)
        total += t
        cats[category_of(rec)] += t
        n += 1
    if isinstance(hardware, CpuSpec) and "PN" in cats:
        cats["MC"] += cats.pop("PN")
    return ModeledPass(
        operation=operation,
        shape=hier.shape,
        hardware=hardware.name,
        total_seconds=total,
        category_seconds=dict(cats),
        n_launches=n,
    )


def model_pass_shape(
    shape: tuple[int, ...],
    hardware: DeviceSpec | CpuSpec,
    opts: "EngineOptions | None" = None,
    operation: str = "decompose",
) -> ModeledPass:
    """Model one pass over a uniform grid of the given shape."""
    return model_pass(hierarchy_for(shape), hardware, opts, operation)
