"""Kernel-timeline tracing for the simulated GPU.

Turns a metered engine's launch records into an inspectable timeline:
per-slice launches are scheduled onto their streams with
:class:`~repro.gpu.streams.StreamScheduler`, single launches run
back-to-back, and the result can be exported as Chrome ``chrome://tracing``
JSON (each kernel a complete event on its stream's row) — the
simulated-substrate analogue of an `nvprof` timeline, handy for seeing
*why* e.g. the single-stream 3D pipeline stalls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .cost import KernelLaunch, gpu_kernel_time
from .device import DeviceSpec, V100

__all__ = ["TraceEvent", "build_timeline", "to_chrome_trace"]


@dataclass
class TraceEvent:
    """One kernel execution interval on a stream."""

    name: str
    category: str
    stream: int
    start_s: float
    end_s: float
    level: int

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def build_timeline(
    records: list[KernelLaunch], device: DeviceSpec = V100
) -> list[TraceEvent]:
    """Schedule metered records into a per-stream timeline.

    Records with ``n_launches > 1`` expand into that many per-slice
    events distributed round-robin over ``min(n_streams, device cap)``
    streams; everything else serializes on stream 0 after the previous
    record completes (the driver's default-stream semantics).
    """
    from ..kernels.launches import category_of

    events: list[TraceEvent] = []
    clock = 0.0
    for rec in records:
        total = gpu_kernel_time(rec, device)
        launches = max(1, rec.n_launches)
        streams = max(1, min(rec.n_streams, launches, device.max_concurrent_kernels))
        if launches == 1:
            events.append(
                TraceEvent(
                    name=rec.name,
                    category=category_of(rec),
                    stream=0,
                    start_s=clock,
                    end_s=clock + total,
                    level=rec.level,
                )
            )
            clock += total
            continue
        # expand into equal per-launch slices on a rotating stream set;
        # each stream executes ~ceil(launches/streams) waves, so one
        # event lasts total/waves and the streams end together at total
        waves = -(-launches // streams)
        per = total / waves
        stream_clock = [clock] * streams
        for i in range(launches):
            s = i % streams
            start = stream_clock[s]
            end = start + per
            events.append(
                TraceEvent(
                    name=f"{rec.name}[{i}]",
                    category=category_of(rec),
                    stream=s,
                    start_s=start,
                    end_s=end,
                    level=rec.level,
                )
            )
            stream_clock[s] = end
        clock = max(stream_clock)
    return events


def to_chrome_trace(events: list[TraceEvent]) -> str:
    """Serialize a timeline as Chrome tracing JSON (microsecond units)."""
    payload = [
        {
            "name": e.name,
            "cat": e.category,
            "ph": "X",
            "pid": 0,
            "tid": e.stream,
            "ts": e.start_s * 1e6,
            "dur": e.duration_s * 1e6,
            "args": {"level": e.level},
        }
        for e in events
    ]
    return json.dumps({"traceEvents": payload})
