"""Simulated-GPU substrate: device specs, cost model, memory accounting.

Stands in for the CUDA devices the paper uses (see DESIGN.md §2 for the
substitution argument).  Functional execution stays in NumPy; this
package converts *what a kernel touches* into *how long it would take*
on a described device.
"""

from .analytic import ModeledPass, model_pass, model_pass_shape
from .cost import KernelLaunch, cpu_kernel_time, gpu_kernel_time
from .device import CpuSpec, DeviceSpec, I7_9700K_CORE, POWER9_CORE, RTX2080TI, V100
from .memory import FootprintReport, MemoryTracker, refactoring_footprint
from .offload import OffloadPoint, offload_analysis, offload_breakeven
from .tracing import TraceEvent, build_timeline, to_chrome_trace

__all__ = [
    "CpuSpec",
    "DeviceSpec",
    "FootprintReport",
    "I7_9700K_CORE",
    "KernelLaunch",
    "MemoryTracker",
    "ModeledPass",
    "OffloadPoint",
    "POWER9_CORE",
    "RTX2080TI",
    "TraceEvent",
    "V100",
    "cpu_kernel_time",
    "gpu_kernel_time",
    "model_pass",
    "model_pass_shape",
    "offload_analysis",
    "offload_breakeven",
    "refactoring_footprint",
    "build_timeline",
    "to_chrome_trace",
]
