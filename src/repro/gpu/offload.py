"""CPU-application offload analysis (paper §I).

The paper argues that even for *CPU-based* applications "it can be
cost-effective to offload the data refactoring workloads to GPUs when
they are available, especially given that fast CPU-GPU interconnections
such as PCIe and NVLinks are available".  This module quantifies that
claim with the same cost model as the rest of the substrate:

offloaded refactoring pays the host→device transfer, the GPU pass, and
the device→host transfer of the refactored payload; in-situ refactoring
pays the serial-CPU pass.  :func:`offload_breakeven` locates the grid
size where offloading starts to win — a decision-support artifact the
paper asserts qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import hierarchy_for
from .analytic import model_pass
from .device import CpuSpec, DeviceSpec, POWER9_CORE, V100

__all__ = ["OffloadPoint", "offload_analysis", "offload_breakeven"]


@dataclass
class OffloadPoint:
    """Cost comparison of one grid size."""

    shape: tuple[int, ...]
    cpu_seconds: float
    transfer_seconds: float
    gpu_seconds: float

    @property
    def offload_seconds(self) -> float:
        return self.transfer_seconds + self.gpu_seconds

    @property
    def offload_speedup(self) -> float:
        return self.cpu_seconds / self.offload_seconds

    @property
    def worthwhile(self) -> bool:
        return self.offload_speedup > 1.0


def offload_analysis(
    shapes: list[tuple[int, ...]],
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
    operation: str = "decompose",
    roundtrip: bool = True,
) -> list[OffloadPoint]:
    """Model offloaded vs in-situ refactoring for a sweep of shapes.

    ``roundtrip=True`` charges both H2D and D2H transfers (the data is
    produced and consumed on the host); ``False`` charges H2D only
    (e.g. the refactored payload leaves via GPUDirect, §I).
    """
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    link_bw = device.pcie_bandwidth_gbps * 1e9
    out = []
    for shape in shapes:
        hier = hierarchy_for(shape)
        nbytes = int(np.prod(shape)) * 8
        n_transfers = 2 if roundtrip else 1
        opts = EngineOptions(n_streams=8 if len(shape) >= 3 else 1)
        out.append(
            OffloadPoint(
                shape=shape,
                cpu_seconds=model_pass(
                    hier, cpu, CPU_BASELINE_OPTIONS, operation
                ).total_seconds,
                transfer_seconds=n_transfers * nbytes / link_bw,
                gpu_seconds=model_pass(hier, device, opts, operation).total_seconds,
            )
        )
    return out


def offload_breakeven(
    sides: tuple[int, ...] = (17, 33, 65, 129, 257, 513, 1025, 2049, 4097, 8193),
    ndim: int = 2,
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
    roundtrip: bool = True,
) -> tuple[int | None, list[OffloadPoint]]:
    """Smallest side where offloading beats in-situ CPU refactoring.

    Returns ``(side or None, full sweep)``; ``None`` when offloading
    never wins over the sweep.
    """
    shapes = [tuple(s for _ in range(ndim)) for s in sides]
    points = offload_analysis(shapes, device, cpu, roundtrip=roundtrip)
    for side, p in zip(sides, points):
        if p.worthwhile:
            return side, points
    return None, points
