"""Device-memory accounting for the simulated GPU.

Tracks named allocations so engines can report the *extra memory
footprint* of the GPU design relative to the CPU baseline, the metric of
the paper's Table V.  Both designs use an input/output buffer plus a
working buffer of the same size ("the size of working memory space is
equal to the original input size"); the GPU design additionally keeps
the two per-dimension Thomas-factorization vectors (modified pivots and
superdiagonal) of the correction solver — ``2 × n_k`` doubles per
dimension — which is the only asymptotically-relevant extra state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.grid import TensorHierarchy

__all__ = ["MemoryTracker", "refactoring_footprint", "FootprintReport"]


class MemoryTracker:
    """Simple named-allocation tracker with a running peak."""

    def __init__(self, capacity_bytes: int | None = None):
        self.capacity_bytes = capacity_bytes
        self._live: dict[str, int] = {}
        self.current = 0
        self.peak = 0
        self.total_allocated = 0

    def alloc(self, name: str, nbytes: int) -> None:
        """Record an allocation; raises MemoryError past device capacity."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._live:
            raise ValueError(f"allocation {name!r} already live")
        if self.capacity_bytes is not None and self.current + nbytes > self.capacity_bytes:
            raise MemoryError(
                f"device out of memory: {self.current + nbytes} > {self.capacity_bytes} bytes"
            )
        self._live[name] = nbytes
        self.current += nbytes
        self.total_allocated += nbytes
        self.peak = max(self.peak, self.current)

    def free(self, name: str) -> None:
        self.current -= self._live.pop(name)

    def live_allocations(self) -> dict[str, int]:
        return dict(self._live)

    def reset(self) -> None:
        self._live.clear()
        self.current = 0
        self.peak = 0
        self.total_allocated = 0


@dataclass
class FootprintReport:
    """Memory footprint of one refactoring pass (bytes)."""

    data_bytes: int
    working_bytes: int
    solver_bytes: int
    itemsize: int = 8
    details: dict = field(default_factory=dict)

    @property
    def cpu_total(self) -> int:
        """CPU-baseline footprint: data + equally-sized working buffer."""
        return self.data_bytes + self.working_bytes

    @property
    def gpu_total(self) -> int:
        return self.cpu_total + self.solver_bytes

    @property
    def extra_fraction(self) -> float:
        """Extra GPU footprint relative to the CPU baseline (Table V)."""
        return self.solver_bytes / self.cpu_total


def refactoring_footprint(hier: TensorHierarchy, itemsize: int = 8) -> FootprintReport:
    """Model the memory footprint of refactoring one array on the GPU.

    The solver keeps, per dimension, the modified-pivot and modified-
    superdiagonal vectors of the Thomas factorization at the finest
    level (coarser levels reuse prefixes of the same buffers), i.e.
    ``2 * n_k`` elements per dimension ``k``.
    """
    data = int(np.prod(hier.shape)) * itemsize
    solver = sum(2 * n * itemsize for n in hier.shape)
    return FootprintReport(
        data_bytes=data,
        working_bytes=data,
        solver_bytes=solver,
        itemsize=itemsize,
        details={"per_dim_solver_elems": [2 * n for n in hier.shape]},
    )
