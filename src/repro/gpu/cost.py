"""First-order kernel time model for the simulated GPU and CPU baseline.

Every operation an engine executes is summarized as a
:class:`KernelLaunch` record; :func:`gpu_kernel_time` and
:func:`cpu_kernel_time` convert a record plus a hardware spec into
modeled seconds.  The model is deliberately first-order — the paper's
kernels are memory-bound, so the performance story is carried by how
many bytes move and at what efficiency:

``GPU``
    ``T = waves × (launch_overhead + max(T_mem, T_chain))`` where

    * ``T_mem = wave_bytes / (BW_peak · sustained · scale · coalesce ·
      occupancy / divergence)``;
    * *coalesce* ``= min(1, sector_elems / stride)`` — a stride-``s``
      access pattern wastes all but ``sector/s`` of every DRAM
      transaction (this is what collapses the naive designs at coarse
      levels, paper Fig. 7);
    * *occupancy* ``= min(cap, concurrent_warps / saturating_warps)`` —
      small grids (and per-slice 2D launches on 3D data) cannot keep
      enough warps in flight to hide DRAM latency (paper Fig. 7 right
      side, Fig. 8's stream optimization);
    * *divergence* serializes intra-warp execution paths (the paper's
      Algorithm 1 exists to keep it at 1.0);
    * ``T_chain = chain_length × chain_step_ns`` models the sequential
      dependence of the correction solver (forward + backward sweeps);
    * ``waves = ceil(launches / streams)`` — concurrent CUDA streams
      overlap per-slice launches (paper §III-D optimization 3).

``CPU`` (serial baseline)
    ``T = elements × (element_ns · scale + dram_latency · miss(stride))
    + bytes / stream_bandwidth`` — a scalar loop whose per-element cost
    grows to a full DRAM latency once the access stride exceeds the
    cacheline (the CPU curve of Fig. 7).

Calibration constants live in :mod:`repro.gpu.device` and in the
per-kernel ``sustained_scale`` / ``cpu_scale`` fields set by the record
builders in :mod:`repro.kernels.launches`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .device import CpuSpec, DeviceSpec

__all__ = ["KernelLaunch", "gpu_kernel_time", "cpu_kernel_time"]


@dataclass
class KernelLaunch:
    """One metered operation (a kernel launch, or a batch of per-slice launches).

    Attributes
    ----------
    name:
        Kernel identifier (``"compute_coefficients"``, ``"mass"``, …).
    kind:
        Category used by reports: ``"grid"``, ``"linear"``, ``"solve"``,
        ``"copy"``, or ``"pack"``.
    elements:
        Element visits (drives the CPU scalar-cost term).
    bytes_read / bytes_written:
        Useful DRAM traffic, before coalescing waste.
    threads:
        Total parallel work items across all launches in the batch.
    stride:
        Dominant access stride in elements (1 = packed/contiguous).
    itemsize:
        Bytes per element (8 for the paper's double-precision data).
    divergence:
        Intra-warp path-serialization factor (1.0 = divergence-free).
    chain_length:
        Length of the longest sequential dependence chain per launch
        (the correction solver's 2·m forward/backward steps); 0 if none.
    occupancy_cap:
        Resource-usage bound on achievable occupancy (< 1 for the
        register/shared-memory-heavy 3D coefficient blocks, §IV-A).
    sustained_scale:
        Per-kernel multiplier on the device's sustained bandwidth.
    cpu_scale:
        Per-kernel multiplier on the CPU per-element cost.
    n_launches:
        Number of identical kernel launches this record aggregates
        (e.g. one per 2D slice of a 3D array).
    n_streams:
        CUDA streams available to overlap those launches.
    level:
        Decomposition level, for reporting/debugging.
    """

    name: str
    kind: str
    elements: int
    bytes_read: int
    bytes_written: int
    threads: int
    stride: int = 1
    itemsize: int = 8
    divergence: float = 1.0
    chain_length: int = 0
    occupancy_cap: float = 1.0
    sustained_scale: float = 1.0
    cpu_scale: float = 1.0
    n_launches: int = 1
    n_streams: int = 1
    level: int = -1
    extra: dict = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


def gpu_kernel_time(k: KernelLaunch, dev: DeviceSpec) -> float:
    """Modeled execution time of ``k`` on GPU ``dev`` in seconds."""
    launches = max(1, k.n_launches)
    streams = max(1, min(k.n_streams, launches, dev.max_concurrent_kernels))
    waves = math.ceil(launches / streams)

    eff_coalesce = min(1.0, dev.sector_elems(k.itemsize) / max(1, k.stride))
    warps_per_launch = max(1.0, k.threads / launches / dev.warp_size)
    concurrent_warps = warps_per_launch * streams
    occupancy = min(k.occupancy_cap, concurrent_warps / dev.saturating_warps, 1.0)
    occupancy = max(occupancy, 1e-4)

    bw = dev.effective_bandwidth * k.sustained_scale * eff_coalesce * occupancy / k.divergence
    wave_bytes = k.total_bytes / waves
    t_mem = wave_bytes / bw
    t_chain = k.chain_length * dev_chain_step_ns(dev) * 1e-9
    return waves * (dev.launch_overhead_us * 1e-6 + max(t_mem, t_chain))


def dev_chain_step_ns(dev: DeviceSpec) -> float:
    """Latency of one dependent step of an in-kernel sequential chain.

    Roughly a shared-memory round trip plus the fused multiply-adds of
    one Thomas-algorithm update; treated as a device constant.
    """
    return 14.0


def cpu_kernel_time(k: KernelLaunch, cpu: CpuSpec) -> float:
    """Modeled execution time of ``k`` on one CPU core, in seconds."""
    line_elems = cpu.line_elems(k.itemsize)
    # Fraction of accesses that miss cache because the stride skips over
    # most of each line; saturates at 1 (every access a fresh line).
    miss = min(1.0, max(0, k.stride - 1) / line_elems)
    per_element_ns = cpu.element_ns * k.cpu_scale + _CPU_DRAM_LATENCY_NS * miss
    t_compute = k.elements * per_element_ns * 1e-9
    t_stream = k.total_bytes / (cpu.stream_bandwidth_gbps * 1e9)
    return max(t_compute, t_stream)


#: Effective random-access DRAM latency of the baseline CPU cores.
_CPU_DRAM_LATENCY_NS = 85.0
