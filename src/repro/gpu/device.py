"""Hardware specifications for the simulated execution substrate.

The reproduction environment has no CUDA device, so the performance side
of the paper is reproduced on an explicit first-order machine model (see
DESIGN.md §2).  This module holds the static hardware descriptions:

* :class:`DeviceSpec` — a GPU: SM count, warp geometry, DRAM bandwidth,
  shared memory, launch overhead.  Presets for the two GPUs the paper
  evaluates (NVIDIA Tesla V100-SXM2-16GB on Summit, GeForce RTX 2080 Ti
  on the desktop).
* :class:`CpuSpec` — one CPU *core* running the serial MGARD baseline:
  an effective scalar element-processing rate plus a cacheline model for
  strided access.  Presets for the IBM POWER9 core (Summit) and the
  Intel i7-9700K core (desktop).

All constants are first-order calibration values chosen so the modeled
kernel times land near the paper's Table IV breakdown; EXPERIMENTS.md
documents measured-vs-paper numbers.  The *structure* of the model (how
stride, occupancy, divergence, packing, and streams change performance)
is what carries the paper's findings; see :mod:`repro.gpu.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "CpuSpec", "V100", "RTX2080TI", "POWER9_CORE", "I7_9700K_CORE"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU.

    Attributes
    ----------
    name:
        Marketing name, used in reports.
    mem_bandwidth_gbps:
        Peak DRAM bandwidth in GB/s (1 GB = 1e9 bytes).
    sustained_fraction:
        Fraction of peak a well-tuned streaming kernel sustains (STREAM
        efficiency); multiplies the peak for every kernel.
    sm_count:
        Number of streaming multiprocessors.
    warp_size:
        Threads per warp.
    saturating_warps_per_sm:
        Resident warps per SM needed to hide DRAM latency; kernels with
        fewer in-flight warps run at proportionally lower efficiency
        (this is what makes small/coarse grids slow, Fig 7 right side).
    max_threads_per_sm:
        Hardware resident-thread bound; caps concurrent thread blocks.
    shared_mem_per_sm_kb:
        Shared memory per SM; bounds tile sizes of the kernel frameworks.
    launch_overhead_us:
        Host-side cost of one kernel launch.
    sector_bytes:
        DRAM transaction granularity; a stride-``s`` access pattern wastes
        ``1 - min(1, sector_elems / s)`` of each transaction.
    memory_gb:
        Device memory capacity (limits the largest 3D grids, §IV-A).
    pcie_bandwidth_gbps:
        Host↔device transfer bandwidth (showcases; CPU-app offload).
    """

    name: str
    mem_bandwidth_gbps: float
    sustained_fraction: float
    sm_count: int
    warp_size: int = 32
    saturating_warps_per_sm: int = 8
    max_threads_per_sm: int = 2048
    shared_mem_per_sm_kb: int = 96
    launch_overhead_us: float = 4.0
    sector_bytes: int = 32
    memory_gb: float = 16.0
    pcie_bandwidth_gbps: float = 12.0
    #: Hardware/scheduler bound on kernels the device executes
    #: concurrently; caps the benefit of additional CUDA streams (the
    #: paper's Fig. 8 plateaus past 8 streams).
    max_concurrent_kernels: int = 8

    @property
    def effective_bandwidth(self) -> float:
        """Sustained streaming bandwidth in bytes/second."""
        return self.mem_bandwidth_gbps * 1e9 * self.sustained_fraction

    @property
    def saturating_warps(self) -> int:
        """Total in-flight warps needed to saturate DRAM bandwidth."""
        return self.sm_count * self.saturating_warps_per_sm

    def sector_elems(self, itemsize: int = 8) -> float:
        """Elements of the given width per DRAM transaction sector."""
        return max(1.0, self.sector_bytes / itemsize)


@dataclass(frozen=True)
class CpuSpec:
    """One CPU core running the serial (MGARD-style) baseline.

    Attributes
    ----------
    element_ns:
        Effective nanoseconds per processed element for the pointer-rich
        scalar FEM loops of the baseline when data streams from cache
        (calibrated against the paper's Table IV CPU column).
    stream_bandwidth_gbps:
        Single-core streaming bandwidth; bounds large contiguous sweeps.
    cacheline_bytes:
        Cacheline granularity for the strided-access penalty: touching
        elements with stride ``s`` moves ``min(s, line_elems)`` lines'
        worth of data per useful element.
    cores:
        Core count of the full socket/node (used by Table VI where all
        cores work in parallel).
    parallel_efficiency:
        Multi-core scaling efficiency of the baseline when all cores run
        independent refactoring tasks (memory-bandwidth contention).
    """

    name: str
    element_ns: float
    stream_bandwidth_gbps: float
    cacheline_bytes: int = 64
    cores: int = 1
    parallel_efficiency: float = 0.72
    #: Per-invocation setup cost (allocation, argument marshalling) of
    #: the baseline's kernels.  Visible in *kernel-level* benchmarking
    #: (paper Tables II/III, whose minimum speedups at 5x5 grids imply a
    #: large constant CPU cost) but amortized away in the fused
    #: end-to-end pipeline, so ``cpu_kernel_time`` does not charge it —
    #: only the kernel-speedup experiment does.
    kernel_call_overhead_us: float = 0.0

    def line_elems(self, itemsize: int = 8) -> float:
        return max(1.0, self.cacheline_bytes / itemsize)


#: Summit's NVIDIA Tesla V100 (SXM2, 16 GB): 900 GB/s HBM2, 80 SMs.
V100 = DeviceSpec(
    name="NVIDIA Tesla V100 (Summit)",
    mem_bandwidth_gbps=900.0,
    sustained_fraction=0.82,
    sm_count=80,
    memory_gb=16.0,
    pcie_bandwidth_gbps=45.0,  # NVLink2 to POWER9
    # Kernel launches routed through the POWER9 host are noticeably more
    # expensive than on x86 desktops; this is why the paper's Summit
    # numbers trail the desktop on tiny grids (Table V, 33²).
    launch_overhead_us=12.0,
)

#: Desktop GeForce RTX 2080 Ti: 616 GB/s GDDR6, 68 SMs, 11 GB.
RTX2080TI = DeviceSpec(
    name="NVIDIA GeForce RTX 2080 Ti (desktop)",
    mem_bandwidth_gbps=616.0,
    sustained_fraction=0.80,
    sm_count=68,
    memory_gb=11.0,
    pcie_bandwidth_gbps=12.0,  # PCIe 3.0 x16
)

#: One IBM POWER9 core on Summit (21 usable cores/socket, 2 sockets).
#: The serial MGARD baseline achieves low IPC on these loops; the
#: calibrated element cost reproduces the ~15 s 2D-8193² CPU totals of
#: Table IV.
POWER9_CORE = CpuSpec(
    name="IBM POWER9 core (Summit)",
    element_ns=26.0,
    stream_bandwidth_gbps=14.0,
    cores=42,
    kernel_call_overhead_us=500.0,
)

#: One Intel i7-9700K core (8 cores, desktop) — a faster serial core,
#: which is why the paper's desktop speedups are ~3x lower than Summit's.
I7_9700K_CORE = CpuSpec(
    name="Intel i7-9700K core (desktop)",
    element_ns=9.0,
    stream_bandwidth_gbps=20.0,
    cores=8,
    kernel_call_overhead_us=150.0,
)
