"""Canonical Huffman coder for quantized coefficient integers.

MGARD's entropy stage Huffman-codes the quantizer output (most bins are
at or near zero for smooth data, so the distribution is highly skewed
and Huffman does well) before a final lossless pass.  This is a clean,
self-contained canonical-Huffman implementation:

* symbols are the distinct int64 bin values, with a configurable escape
  mechanism for rare outliers (values outside the dense symbol table
  are emitted as an ESCAPE code followed by 64 raw bits);
* code assignment is canonical (sorted by (length, symbol)), so the
  decoder only needs the (symbol, length) pairs;
* bit packing is vectorized through NumPy.

The coder is exact: ``decode(encode(x)) == x`` for any int64 array.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass

import numpy as np

__all__ = ["HuffmanCode", "huffman_encode", "huffman_decode"]

_ESCAPE = object()  # sentinel symbol for out-of-table values


@dataclass
class HuffmanCode:
    """A canonical Huffman code book: symbol -> (code, length)."""

    lengths: dict  # symbol (int or _ESCAPE) -> code length
    codes: dict  # symbol -> code value (int, MSB-first)

    @classmethod
    def from_frequencies(cls, freqs: dict) -> "HuffmanCode":
        """Build a canonical code from symbol frequencies."""
        if not freqs:
            raise ValueError("cannot build a Huffman code from no symbols")
        if len(freqs) == 1:
            sym = next(iter(freqs))
            return cls(lengths={sym: 1}, codes={sym: 0})
        # standard Huffman tree -> code lengths
        heap = [(f, i, sym) for i, (sym, f) in enumerate(freqs.items())]
        heapq.heapify(heap)
        parent: dict[int, int] = {}
        nodes: list = [sym for _, _, sym in sorted(heap, key=lambda t: t[1])]
        # rebuild heap with node ids
        heap = [(f, i) for i, (f, _, _) in enumerate(sorted(heap, key=lambda t: t[1]))]
        heapq.heapify(heap)
        next_id = len(nodes)
        while len(heap) > 1:
            fa, a = heapq.heappop(heap)
            fb, b = heapq.heappop(heap)
            parent[a] = next_id
            parent[b] = next_id
            nodes.append(None)
            heapq.heappush(heap, (fa + fb, next_id))
            next_id += 1
        lengths = {}
        for i, sym in enumerate(nodes):
            if sym is None:
                continue
            depth = 0
            j = i
            while j in parent:
                depth += 1
                j = parent[j]
            lengths[sym] = max(depth, 1)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: dict) -> "HuffmanCode":
        """Assign canonical codes given per-symbol lengths."""
        def keyfn(item):
            sym, ln = item
            # order: length, then escape last, then symbol value
            return (ln, 1 if sym is _ESCAPE else 0, sym if sym is not _ESCAPE else 0)

        code = 0
        prev_len = 0
        codes = {}
        for sym, ln in sorted(lengths.items(), key=keyfn):
            code <<= ln - prev_len
            codes[sym] = code
            code += 1
            prev_len = ln
        return cls(lengths=dict(lengths), codes=codes)

    def decoding_table(self):
        """(sorted list of (code, length, symbol)) for the decoder."""
        return sorted(
            ((self.codes[s], self.lengths[s], s) for s in self.codes),
            key=lambda t: (t[1], t[0]),
        )


def _build_code(values: np.ndarray, max_table: int) -> HuffmanCode:
    counts = Counter(values.tolist())
    if len(counts) > max_table:
        # keep the most frequent symbols; the tail goes through ESCAPE
        kept = dict(counts.most_common(max_table - 1))
        escaped = sum(f for s, f in counts.items() if s not in kept)
        kept[_ESCAPE] = max(escaped, 1)
        counts = kept
    elif len(counts) == 0:
        counts = {0: 1}
    return HuffmanCode.from_frequencies(dict(counts))


def huffman_encode(values: np.ndarray, max_table: int = 4096) -> tuple[bytes, dict]:
    """Encode an int64 array; returns (payload, header).

    The header carries the canonical code book as plain Python data
    (symbol/length pairs) plus the element count; it is what a container
    format would serialize alongside the payload.
    """
    values = np.ascontiguousarray(values, dtype=np.int64).ravel()
    code = _build_code(values, max_table)
    esc_len = code.lengths.get(_ESCAPE)
    # emit (code, length) per element
    bit_chunks: list[tuple[int, int]] = []
    table_codes = code.codes
    table_lengths = code.lengths
    for v in values.tolist():
        if v in table_codes:
            bit_chunks.append((table_codes[v], table_lengths[v]))
        else:
            if esc_len is None:
                raise AssertionError("value outside table but no escape code")
            bit_chunks.append((table_codes[_ESCAPE], esc_len))
            bit_chunks.append((v & ((1 << 64) - 1), 64))
    # pack MSB-first
    total_bits = sum(ln for _, ln in bit_chunks)
    buf = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    pos = 0
    for val, ln in bit_chunks:
        for shift in range(ln - 1, -1, -1):
            if (val >> shift) & 1:
                buf[pos >> 3] |= 0x80 >> (pos & 7)
            pos += 1
    header = {
        "n": int(values.size),
        "bits": int(total_bits),
        "table": [
            ("ESC" if s is _ESCAPE else int(s), int(ln)) for s, ln in code.lengths.items()
        ],
    }
    return buf.tobytes(), header


def huffman_decode(payload: bytes, header: dict) -> np.ndarray:
    """Invert :func:`huffman_encode`."""
    lengths = {
        (_ESCAPE if s == "ESC" else int(s)): int(ln) for s, ln in header["table"]
    }
    code = HuffmanCode.from_lengths(lengths)
    # first-code/first-symbol tables per length for canonical decoding
    by_len: dict[int, dict[int, object]] = {}
    for sym, c in code.codes.items():
        by_len.setdefault(code.lengths[sym], {})[c] = sym
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[: header["bits"]]
    out = np.empty(header["n"], dtype=np.int64)
    pos = 0
    acc = 0
    acc_len = 0
    i = 0
    n_bits = bits.shape[0]
    max_len = max(by_len) if by_len else 1
    while i < header["n"]:
        sym = None
        while sym is None:
            if pos >= n_bits:
                raise ValueError("truncated Huffman payload")
            acc = (acc << 1) | int(bits[pos])
            acc_len += 1
            pos += 1
            if acc_len > max_len and acc_len > 64:
                raise ValueError("corrupt Huffman payload: code too long")
            table = by_len.get(acc_len)
            if table is not None and acc in table:
                sym = table[acc]
        acc = 0
        acc_len = 0
        if sym is _ESCAPE:
            if pos + 64 > n_bits:
                raise ValueError("truncated escape payload")
            raw = 0
            for _ in range(64):
                raw = (raw << 1) | int(bits[pos])
                pos += 1
            # interpret as signed 64-bit
            if raw >= 1 << 63:
                raw -= 1 << 64
            out[i] = raw
        else:
            out[i] = sym
        i += 1
    return out
