"""Canonical Huffman coder for quantized coefficient integers.

MGARD's entropy stage Huffman-codes the quantizer output (most bins are
at or near zero for smooth data, so the distribution is highly skewed
and Huffman does well) before a final lossless pass.  This is a clean,
self-contained canonical-Huffman implementation:

* symbols are the distinct int64 bin values, with a configurable escape
  mechanism for rare outliers (values outside the dense symbol table
  are emitted as an ESCAPE code followed by 64 raw bits);
* code assignment is canonical (sorted by (length, symbol)), so the
  decoder only needs the (symbol, length) pairs;
* the default :func:`huffman_encode` / :func:`huffman_decode` pair is a
  fully vectorized fast path — array-mapped codeword lookup plus bulk
  bit packing on encode, and a per-length first-code canonical decode
  driven by pointer doubling on decode;
* both directions are *block-schedulable*: pass an executor (see
  :mod:`repro.compress.executor`) and the encoder splits the symbol
  stream into sync-aligned blocks whose chunkify/pack phases run as
  independent work units (the MSB-first concatenation is associative,
  so the merged payload is bit-identical to the serial one), while the
  decoder partitions the sync blocks across workers; under the
  ``process`` backend both directions ship their heavy operand through
  shared memory — the decoder its payload words, the encoder its
  symbol ranges, whose returned pack-at-0 word buffers the coordinator
  realigns (:func:`_shift_words`) and OR-merges;
* a code book can be supplied (``code=``) instead of rebuilt from the
  data, which is how slowly-varying streams amortize entropy setup
  across time steps; :func:`table_delta` / :func:`apply_table_delta`
  express one book as a compact edit script against another so reused
  books cost almost no header bytes;
* :func:`huffman_encode_scalar` / :func:`huffman_decode_scalar` retain
  the original per-element/per-bit loops as cross-check references; the
  two encoders share the code-book construction and emit bit-identical
  payloads.

The coder is exact: ``decode(encode(x)) == x`` for any int64 array.
The vectorized decoder allocates a few machine words per *payload bit*
(not per symbol), so its memory footprint is proportional to the
compressed bit count.
"""

from __future__ import annotations

import heapq
import json

import numpy as np

from ..kernels.launcher import maybe_launch

__all__ = [
    "HuffmanCode",
    "huffman_encode",
    "huffman_decode",
    "huffman_encode_scalar",
    "huffman_decode_scalar",
    "build_code",
    "decode_tables",
    "table_from_code",
    "code_from_table",
    "table_delta",
    "apply_table_delta",
]

_ESCAPE = object()  # sentinel symbol for out-of-table values

# Both encoders record the bit offset of every _SYNC_BLOCK-th symbol in
# the header ("sync").  The offsets let the decoder run one cursor per
# block in vectorized lockstep instead of chasing the serial codeword
# chain; real parallel entropy decoders use the same device.
_SYNC_BLOCK = 512

# a parallel decode range below this many sync blocks spends more on
# its (fixed-count) lockstep loop than it gains from concurrency
_MIN_DECODE_BLOCKS_PER_WORKER = 256


class HuffmanCode:
    """A canonical Huffman code book: symbol -> (code, length)."""

    def __init__(self, lengths: dict, codes: dict):
        self.lengths = lengths
        self.codes = codes

    @classmethod
    def from_frequencies(cls, freqs: dict) -> "HuffmanCode":
        """Build a canonical code from symbol frequencies."""
        if not freqs:
            raise ValueError("cannot build a Huffman code from no symbols")
        if len(freqs) == 1:
            sym = next(iter(freqs))
            return cls(lengths={sym: 1}, codes={sym: 0})
        # standard Huffman tree -> code lengths
        heap = [(f, i, sym) for i, (sym, f) in enumerate(freqs.items())]
        heapq.heapify(heap)
        parent: dict[int, int] = {}
        nodes: list = [sym for _, _, sym in sorted(heap, key=lambda t: t[1])]
        # rebuild heap with node ids
        heap = [(f, i) for i, (f, _, _) in enumerate(sorted(heap, key=lambda t: t[1]))]
        heapq.heapify(heap)
        next_id = len(nodes)
        while len(heap) > 1:
            fa, a = heapq.heappop(heap)
            fb, b = heapq.heappop(heap)
            parent[a] = next_id
            parent[b] = next_id
            nodes.append(None)
            heapq.heappush(heap, (fa + fb, next_id))
            next_id += 1
        lengths = {}
        for i, sym in enumerate(nodes):
            if sym is None:
                continue
            depth = 0
            j = i
            while j in parent:
                depth += 1
                j = parent[j]
            lengths[sym] = max(depth, 1)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: dict) -> "HuffmanCode":
        """Assign canonical codes given per-symbol lengths."""
        def keyfn(item):
            sym, ln = item
            # order: length, then escape last, then symbol value
            return (ln, 1 if sym is _ESCAPE else 0, sym if sym is not _ESCAPE else 0)

        code = 0
        prev_len = 0
        codes = {}
        for sym, ln in sorted(lengths.items(), key=keyfn):
            code <<= ln - prev_len
            codes[sym] = code
            code += 1
            prev_len = ln
        return cls(lengths=dict(lengths), codes=codes)

    def decoding_table(self):
        """(sorted list of (code, length, symbol)) for the decoder."""
        return sorted(
            ((self.codes[s], self.lengths[s], s) for s in self.codes),
            key=lambda t: (t[1], t[0]),
        )


# "auto" escape reservation kicks in at this alphabet size: one
# frequency-1 symbol among >= this many is rate noise (it displaces
# only the rarest real symbol by one bit), while for tiny alphabets it
# would visibly lengthen every code — there, rebuilding on the first
# genuinely new symbol is cheaper than carrying the escape
_RESERVE_ESCAPE_MIN_SYMS = 64


def _build_code(
    values: np.ndarray, max_table: int, reserve_escape: bool | str = False
) -> HuffmanCode:
    if max_table < 2:
        raise ValueError(f"max_table must be at least 2, got {max_table}")
    syms, counts = np.unique(values, return_counts=True)
    if reserve_escape == "auto":
        reserve_escape = syms.size >= _RESERVE_ESCAPE_MIN_SYMS
    if syms.size == 0:
        return HuffmanCode.from_frequencies({0: 1})
    if syms.size <= max_table - (1 if reserve_escape else 0):
        freqs = {int(s): int(c) for s, c in zip(syms, counts)}
        # a reserved (never-yet-used) escape lets this book absorb
        # symbols that only appear in *later* data when it is reused
        if reserve_escape:
            freqs[_ESCAPE] = 1
        return HuffmanCode.from_frequencies(freqs)
    # keep the most frequent symbols; the tail goes through ESCAPE
    order = np.argsort(-counts, kind="stable")  # ties: smaller symbol first
    keep = np.sort(order[: max_table - 1])
    escaped = int(counts.sum() - counts[keep].sum())
    freqs = {int(syms[i]): int(counts[i]) for i in keep}
    # every dropped symbol occurred at least once, so `escaped >= 1` here;
    # guard anyway so a zero-frequency ESCAPE can never skew code lengths
    if escaped > 0 or reserve_escape:
        freqs[_ESCAPE] = max(escaped, 1)
    return HuffmanCode.from_frequencies(freqs)


def build_code(
    values: np.ndarray, max_table: int = 4096, reserve_escape: bool | str = False
) -> HuffmanCode:
    """Build a canonical code book from data without encoding it.

    With ``reserve_escape=True`` the book always contains an ESCAPE
    code even when every distinct symbol fits the table, so the book
    can later encode arrays containing symbols it has never seen — the
    property cross-step code-book reuse relies on.  ``"auto"`` reserves
    only for alphabets big enough that the extra symbol is rate noise;
    reusers of escape-less books simply rebuild when a new symbol shows
    up.
    """
    values = np.ascontiguousarray(values, dtype=np.int64).ravel()
    return _build_code(values, max_table, reserve_escape=reserve_escape)


def _header(code: HuffmanCode, n: int, total_bits: int, sync=None) -> dict:
    header = {
        "n": int(n),
        "bits": int(total_bits),
        "table": [
            ("ESC" if s is _ESCAPE else int(s), int(ln))
            for s, ln in code.lengths.items()
        ],
    }
    if sync is not None and len(sync):
        header["sync"] = [int(o) for o in sync]
    return header


def _lengths_from_header(header: dict) -> dict:
    return {
        (_ESCAPE if s == "ESC" else int(s)): int(ln) for s, ln in header["table"]
    }


# ----------------------------------------------------------------------
# code-book (de)serialization and cross-step deltas


def table_from_code(code: HuffmanCode) -> list:
    """The header-form symbol/length table of a code book."""
    return [
        ["ESC" if s is _ESCAPE else int(s), int(ln)]
        for s, ln in code.lengths.items()
    ]


def code_from_table(table: list) -> HuffmanCode:
    """Rebuild the canonical code book from a header-form table."""
    return HuffmanCode.from_lengths(_lengths_from_header({"table": table}))


def _table_dict(table: list) -> dict:
    return {("ESC" if s == "ESC" else int(s)): int(ln) for s, ln in table}


def table_delta(ref_table: list, new_table: list) -> dict:
    """Edit script turning ``ref_table`` into ``new_table``.

    Returns ``{"set": [[sym, len], ...], "drop": [sym, ...]}`` — only
    the symbols whose code length changed, appeared, or vanished.  For
    slowly-varying streams this is a small fraction of the full table,
    so rebuilt books cost few header bytes when expressed as deltas.
    """
    ref = _table_dict(ref_table)
    new = _table_dict(new_table)
    return {
        "set": [[s, ln] for s, ln in new.items() if ref.get(s) != ln],
        "drop": [s for s in ref if s not in new],
    }


def apply_table_delta(ref_table: list, delta: dict) -> list:
    """Invert :func:`table_delta`: apply an edit script to a base table."""
    d = _table_dict(ref_table)
    for s in delta.get("drop", ()):
        d.pop("ESC" if s == "ESC" else int(s), None)
    for s, ln in delta.get("set", ()):
        d[("ESC" if s == "ESC" else int(s))] = int(ln)
    return [[s, ln] for s, ln in d.items()]


# ----------------------------------------------------------------------
# vectorized fast path


def _code_arrays(code: HuffmanCode):
    """Dense sorted symbol -> (code, length) arrays for vectorized lookup.

    Memoized on the code book, so a book reused across stream steps
    pays the table sort exactly once.
    """
    cached = getattr(code, "_arrays", None)
    if cached is not None:
        return cached
    syms = sorted(s for s in code.codes if s is not _ESCAPE)
    sym_arr = np.asarray(syms, dtype=np.int64)
    code_arr = np.asarray([code.codes[s] for s in syms], dtype=np.uint64)
    len_arr = np.asarray([code.lengths[s] for s in syms], dtype=np.int64)
    code._arrays = (sym_arr, code_arr, len_arr)
    return code._arrays


def _chunkify(values: np.ndarray, code: HuffmanCode):
    """Map symbols to (code, length) chunk arrays for packing.

    Returns ``(c_codes, c_lens, elem_chunk, n_escaped)`` where
    ``elem_chunk`` is the chunk index of each element's first chunk
    (``None`` when no element escaped, i.e. chunks == elements).  This
    is the per-block work unit of the parallel encode path.
    """
    sym_arr, code_arr, len_arr = _code_arrays(code)
    idx = np.minimum(np.searchsorted(sym_arr, values), sym_arr.size - 1)
    in_table = sym_arr[idx] == values
    esc_len = code.lengths.get(_ESCAPE)
    n_escaped = int(values.size - np.count_nonzero(in_table))
    if n_escaped == 0:
        return code_arr[idx], len_arr[idx], None, 0
    if esc_len is None:
        raise ValueError(
            "value outside the code book and the book has no escape code; "
            "rebuild the book (or build it with reserve_escape=True)"
        )
    # escapes contribute two chunks: the ESCAPE code + 64 raw bits
    per = np.where(in_table, 1, 2).astype(np.int64)
    starts = np.zeros(values.size, dtype=np.int64)
    np.cumsum(per[:-1], out=starts[1:])
    n_chunks = int(starts[-1] + per[-1])
    c_codes = np.empty(n_chunks, dtype=np.uint64)
    c_lens = np.empty(n_chunks, dtype=np.int64)
    it = starts[in_table]
    c_codes[it] = code_arr[idx[in_table]]
    c_lens[it] = len_arr[idx[in_table]]
    ep = starts[~in_table]
    c_codes[ep] = np.uint64(code.codes[_ESCAPE])
    c_lens[ep] = esc_len
    c_codes[ep + 1] = values[~in_table].astype(np.uint64)  # two's complement
    c_lens[ep + 1] = 64
    return c_codes, c_lens, starts, n_escaped


def _pack_chunks_words(
    c_codes: np.ndarray, c_lens: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """MSB-first pack dispatched through the kernel-launcher seam.

    The compiled backend fuses the pack into one sequential scatter-OR
    loop; the NumPy path below resolves the word-overlap dependence
    with ``bitwise_or.reduceat``.  Both produce the same word buffer
    bit for bit (the pack is pure integer arithmetic).
    """
    if c_codes.size:
        ran, buf = maybe_launch(
            "huff_pack", (int(c_codes.size),), np.uint64, c_codes, c_lens, offsets
        )
        if ran:
            return buf
    return _pack_chunks_words_numpy(c_codes, c_lens, offsets)


def _pack_chunks_words_numpy(
    c_codes: np.ndarray, c_lens: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """MSB-first scatter of (code, length) chunks into 64-bit words.

    Word-aligned: every chunk (≤ 64 bits) lands in at most two
    big-endian 64-bit words, so the whole pack is a handful of vector
    ops over the chunk arrays plus one ``bitwise_or.reduceat`` per
    landing word — no per-bit expansion.  ``offsets`` is the chunk
    bit-position prefix sum (size ``n_chunks + 1``; callers already
    have it); ``offsets[0]`` (< 64) offsets the first chunk inside
    word 0, which is how a block whose global bit position is mid-word
    packs locally and still merges into the stream with a plain OR.
    """
    total_end = int(offsets[-1])
    n_words = (total_end + 63) >> 6
    buf = np.zeros(n_words + 1, dtype=np.uint64)  # +1 spill word

    w0 = offsets[:-1] >> 6
    r = offsets[:-1] & 63
    s = r + c_lens  # end bit of the chunk within its two-word window
    shl = np.clip(64 - s, 0, 63).astype(np.uint64)
    shr = np.clip(s - 64, 0, 63).astype(np.uint64)
    part0 = np.where(s <= 64, c_codes << shl, c_codes >> shr)
    sh1 = np.clip(128 - s, 0, 63).astype(np.uint64)
    part1 = np.where(s > 64, c_codes << sh1, np.uint64(0))

    # offsets are monotone, so chunks hitting the same word are contiguous
    starts = np.flatnonzero(np.r_[True, w0[1:] != w0[:-1]])
    idx = w0[starts]
    buf[idx] |= np.bitwise_or.reduceat(part0, starts)
    buf[idx + 1] |= np.bitwise_or.reduceat(part1, starts)
    return buf


def _pack_chunks(
    c_codes: np.ndarray, c_lens: np.ndarray
) -> tuple[bytes, int, np.ndarray]:
    """Pack chunks into payload bytes; returns (payload, bits, offsets)."""
    offsets = np.zeros(c_codes.size + 1, dtype=np.int64)
    np.cumsum(c_lens, out=offsets[1:])
    total_bits = int(offsets[-1])
    buf = _pack_chunks_words(c_codes, c_lens, offsets)
    n_words = (total_bits + 63) >> 6
    payload = buf[:n_words].astype(">u8").tobytes()[: (total_bits + 7) >> 3]
    return payload, total_bits, offsets[:-1]


# symbols per schedulable encode block (a multiple of _SYNC_BLOCK, so
# block boundaries coincide with sync points and the merged header's
# sync offsets match the serial encoder's exactly)
_BLOCK_SYMBOLS = 64 * _SYNC_BLOCK


def _guard_exceeded(guard: dict, n: int, total_bits: int) -> bool:
    max_bps = guard.get("max_bits_per_symbol")
    return max_bps is not None and total_bits > max_bps * n + 1e-9


def _shift_words(buf: np.ndarray, s: int) -> np.ndarray:
    """Realign a pack-at-bit-0 word buffer to start at bit ``s`` (< 64).

    Packing is a plain OR of chunks at bit positions, so shifting the
    whole buffer right by ``s`` bits is *exactly* the buffer that
    packing at initial offset ``s`` would have produced — the
    realignment that lets a worker pack its symbol range without
    knowing the range's global bit position (which the coordinator only
    learns after every range reports its bit count).
    """
    if s == 0:
        return buf
    sh = np.uint64(s)
    inv = np.uint64(64 - s)
    out = np.zeros(buf.size + 1, dtype=np.uint64)
    out[:-1] = buf >> sh
    out[1:] |= buf << inv
    return out


# worker-resident *encode* code books, keyed by the header-form table
# JSON — the encode-side mirror of _WORKER_TABLE_CACHE: a book reused
# across stream steps (or across the ranges of one payload) rebuilds
# its canonical code and memoized lookup arrays once per worker process
_WORKER_CODE_CACHE: dict[str, "HuffmanCode"] = {}


def _encode_range(values: np.ndarray, code: "HuffmanCode", max_bps=None):
    """Chunkify + pack one symbol range at local bit offset 0.

    Returns ``(words, nbits, sync_local, n_escaped)`` where ``words``
    is the pack-at-0 word buffer (realigned and OR-merged by the
    coordinator), and ``sync_local`` the range-local bit offsets of
    every :data:`_SYNC_BLOCK`-th symbol *including* symbol 0 — ranges
    start on sync boundaries, so the coordinator turns these into the
    stream's global sync table with one add per range.

    ``max_bps`` is the reuse guard's bound applied as a *local hint*:
    when this range alone exceeds it, the (expensive) pack is skipped
    and ``words`` comes back ``None`` — the bit count, sync offsets,
    and escape count are still returned, so the coordinator can make
    the real (global, backend-independent) guard decision and re-pack
    the odd locally-skewed range inline if the stream as a whole
    passes.
    """
    c_codes, c_lens, elem_chunk, n_escaped = _chunkify(values, code)
    offsets = np.zeros(c_codes.size + 1, dtype=np.int64)
    np.cumsum(c_lens, out=offsets[1:])
    nbits = int(offsets[-1])
    elem_bits = offsets[:-1] if elem_chunk is None else offsets[elem_chunk]
    lsync = elem_bits[::_SYNC_BLOCK].copy()
    if max_bps is not None and nbits > max_bps * values.size + 1e-9:
        return None, nbits, lsync, n_escaped
    words = _pack_chunks_words(c_codes, c_lens, offsets)
    return words, nbits, lsync, n_escaped


def _encode_range_worker(ref, start: int, stop: int, table_json: str, max_bps=None):
    """Process-pool work unit: encode one symbol range from shm."""
    code = _WORKER_CODE_CACHE.get(table_json)
    if code is None:
        if len(_WORKER_CODE_CACHE) >= 8:
            _WORKER_CODE_CACHE.clear()
        code = code_from_table(json.loads(table_json))
        _WORKER_CODE_CACHE[table_json] = code
    lease = ref.open()
    try:
        # copy the range out of the segment before touching the code
        # book: _chunkify raises on out-of-book symbols, and an
        # exception's traceback would pin a live slice view past
        # lease.close() (BufferError).  One extra memcpy of the range
        # is noise next to the chunkify/pack passes that follow.
        values = np.array(lease.view[start:stop])
    finally:
        lease.close()
    return _encode_range(values, code, max_bps)


def _encode_blocks_process(values, code, executor, stats=None, guard=None):
    """Sync-aligned block encode fanned out across *processes*.

    The encode-side completion of the shared-memory story: the symbol
    array is staged once in shm, each worker receives only (segment
    ref, its range bounds, the header-form code table) and returns its
    range packed at local bit offset 0; the coordinator prefix-sums the
    per-range bit counts into global positions and OR-merges the
    returned word packs after :func:`_shift_words` realignment, so the
    payload is bit-identical to the serial path.  Returns ``None`` when
    shared memory is unavailable or the fan-out is too narrow, so the
    caller falls back to the in-process block path.

    A reuse ``guard`` keeps its documented before-any-bits-are-packed
    economics: workers skip their pack when their own range exceeds the
    bound (the overwhelmingly common shape of a guard trip — drift is
    stream-wide), while the *decision* itself is made here from the
    summed bit counts, so accept/reject is exactly the serial path's.
    A range skipped locally on a stream that globally passes (escapes
    concentrated in one range) is re-packed inline from the parent's
    own copy of the values.
    """
    from ..parallel import shm as _shm

    n = values.size
    n_blocks = -(-n // _BLOCK_SYMBOLS)
    k = min(getattr(executor, "max_workers", 1), n_blocks)
    if k < 2:
        return None
    try:
        ref, block = _shm.share_array(values)
    except _shm.ShmUnavailable:
        return None
    try:
        # contiguous runs of whole blocks per worker, so every range
        # starts on a sync boundary (_BLOCK_SYMBOLS is a multiple of
        # _SYNC_BLOCK) and the local sync offsets splice exactly
        cuts = (np.linspace(0, n_blocks, k + 1).astype(int) * _BLOCK_SYMBOLS)
        cuts[-1] = n
        table_json = json.dumps(table_from_code(code))
        max_bps = guard.get("max_bits_per_symbol") if guard is not None else None
        rows = [
            (ref, int(a), int(b), table_json, max_bps)
            for a, b in zip(cuts[:-1], cuts[1:])
        ]
        parts = executor.map(_encode_range_worker, *zip(*rows))
    finally:
        block.destroy()

    bits = np.zeros(k + 1, dtype=np.int64)
    for i, (_, nbits, _, _) in enumerate(parts):
        bits[i + 1] = nbits
    starts = np.cumsum(bits)
    total_bits = int(starts[-1])
    if stats is not None:
        stats["n_symbols"] = int(n)
        stats["n_escaped"] = int(sum(p[3] for p in parts))
    if guard is not None and _guard_exceeded(guard, n, total_bits):
        return None, None
    for i, (words, nbits, lsync, nesc) in enumerate(parts):
        if words is None:  # local hint tripped, stream passed: pack now
            a, b = int(cuts[i]), int(cuts[i + 1])
            words = _encode_range(values[a:b], code)[0]
            parts[i] = (words, nbits, lsync, nesc)
    sync = np.concatenate(
        [lsync + start for (_, _, lsync, _), start in zip(parts, starts[:-1])]
    )[1:]  # drop the stream start (bit 0 is not a sync entry)

    n_words = (total_bits + 63) >> 6
    out = np.zeros(n_words + 3, dtype=np.uint64)  # shift + spill slack
    for (words, _, _, _), start in zip(parts, starts[:-1]):
        s = int(start)
        shifted = _shift_words(words, s & 63)
        w0 = s >> 6
        out[w0 : w0 + shifted.size] |= shifted
    payload = out[:n_words].astype(">u8").tobytes()[: (total_bits + 7) >> 3]
    return payload, _header(code, n, total_bits, sync)


def _encode_blocks(values, code, executor, stats=None, guard=None):
    """Block-parallel encode: chunkify and pack sync-aligned blocks.

    Fan-out/merge structure: (1) map ``_chunkify`` over symbol blocks,
    (2) a serial prefix sum turns per-block bit counts into global bit
    positions, (3) map the word-aligned pack over blocks at their
    (mod-64) start shift, (4) OR the word buffers together.  MSB-first
    concatenation is associative, so the result is bit-identical to the
    single-shot path for any executor.  Under the process backend the
    whole structure runs across address spaces instead
    (:func:`_encode_blocks_process`): symbol ranges ship through shared
    memory and the returned pack-at-0 word buffers are realigned with
    :func:`_shift_words` before the OR-merge.
    """
    if getattr(executor, "kind", None) == "process":
        out = _encode_blocks_process(values, code, executor, stats, guard)
        if out is not None:
            return out
    n = values.size
    bounds = list(range(0, n, _BLOCK_SYMBOLS)) + [n]
    blocks = [values[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    chunked = executor.map(lambda v: _chunkify(v, code), blocks)
    if stats is not None:
        stats["n_symbols"] = int(n)
        stats["n_escaped"] = int(sum(c[3] for c in chunked))

    # global bit position of every block and of every element
    block_bits = np.zeros(len(blocks) + 1, dtype=np.int64)
    elem_bits_local = []
    block_offs = []
    for i, (c_codes, c_lens, elem_chunk, _) in enumerate(chunked):
        offs = np.zeros(c_lens.size + 1, dtype=np.int64)
        np.cumsum(c_lens, out=offs[1:])
        elem_bits_local.append(offs[:-1] if elem_chunk is None else offs[elem_chunk])
        block_offs.append(offs)
        block_bits[i + 1] = offs[-1]
    block_start = np.cumsum(block_bits)[:-1]
    total_bits = int(block_start[-1] + block_bits[-1])
    if guard is not None and _guard_exceeded(guard, n, total_bits):
        return None, None
    elem_bits = np.concatenate(
        [loc + start for loc, start in zip(elem_bits_local, block_start)]
    )
    sync = elem_bits[_SYNC_BLOCK::_SYNC_BLOCK]

    def pack_one(i: int):
        c_codes, c_lens, _, _ = chunked[i]
        start = int(block_start[i])
        return start >> 6, _pack_chunks_words(
            c_codes, c_lens, block_offs[i] + (start & 63)
        )

    packed = executor.map(pack_one, range(len(blocks)))
    n_words = (total_bits + 63) >> 6
    out = np.zeros(n_words + 1, dtype=np.uint64)
    for w0, buf in packed:
        out[w0 : w0 + buf.size] |= buf
    payload = out[:n_words].astype(">u8").tobytes()[: (total_bits + 7) >> 3]
    return payload, _header(code, n, total_bits, sync)


def huffman_encode(
    values: np.ndarray,
    max_table: int = 4096,
    *,
    code: HuffmanCode | None = None,
    executor=None,
    stats: dict | None = None,
    guard: dict | None = None,
):
    """Encode an int64 array; returns (payload, header).

    The header carries the canonical code book as plain Python data
    (symbol/length pairs) plus the element count; it is what a container
    format would serialize alongside the payload.  This is the
    vectorized fast path; it emits payloads bit-identical to
    :func:`huffman_encode_scalar`.

    Parameters
    ----------
    code:
        Encode with this (externally built, e.g. cached from a previous
        stream step) code book instead of building one from the data.
        The book needs an escape code to cover symbols it has not seen.
    executor:
        Schedule sync-aligned symbol blocks through this executor (see
        :mod:`repro.compress.executor`); the payload is bit-identical
        to the serial path.
    stats:
        Optional dict that receives ``n_symbols`` / ``n_escaped`` — the
        signal reuse policies watch to decide when a stale book must be
        rebuilt.
    guard:
        Optional reuse guard ``{"max_bits_per_symbol": b}``.  Checked
        right after the (cheap) symbol-mapping phase, *before* any bits
        are packed; when the would-be payload exceeds the bound (or the
        book lacks an escape for a new symbol) the call returns
        ``(None, None)`` so the caller can rebuild the book without
        having paid for a wasted encode.
    """
    values = np.ascontiguousarray(values, dtype=np.int64).ravel()
    if values.size == 0:
        return b"", {"n": 0, "bits": 0, "table": []}
    if code is None:
        code = _build_code(values, max_table)
    try:
        if (
            executor is not None
            and getattr(executor, "max_workers", 1) > 1
            and values.size >= 2 * _BLOCK_SYMBOLS
        ):
            return _encode_blocks(values, code, executor, stats, guard)
        c_codes, c_lens, elem_chunk, n_escaped = _chunkify(values, code)
    except ValueError:
        if guard is not None:
            # out-of-table symbol and the book has no escape: under a
            # reuse guard that simply means "rebuild the book"
            return None, None
        raise
    if stats is not None:
        stats["n_symbols"] = int(values.size)
        stats["n_escaped"] = n_escaped
    if guard is not None and _guard_exceeded(guard, values.size, int(c_lens.sum())):
        return None, None
    payload, total_bits, offsets = _pack_chunks(c_codes, c_lens)
    elem_bits = offsets if elem_chunk is None else offsets[elem_chunk]
    sync = elem_bits[_SYNC_BLOCK::_SYNC_BLOCK]
    return payload, _header(code, values.size, total_bits, sync)


class _DecodeTables:
    """Canonical first-code tables in array form.

    Per length L the codes form the contiguous range
    ``[first[L], first[L] + count[L])``; symbols in canonical order live
    in one flat array indexed by ``base[L] + (code - first[L])``.  In
    the left-justified (Moffat–Turpin) view the per-length ranges tile
    ``[0, limit[-1])`` in ascending-length order, so a single
    ``searchsorted`` against the range limits classifies a 64-bit
    window.  The last limit may be ``2**64`` (Kraft-complete code), so
    it is excluded from the search table and covered by the
    ``rank < count`` check instead.
    """

    def __init__(self, code: HuffmanCode):
        order = sorted(code.codes, key=lambda s: (code.lengths[s], code.codes[s]))
        lens_present = sorted({ln for ln in code.lengths.values()})
        self._code = code
        self._table: list | None = None
        self._table_json: str | None = None
        self.flat_syms = np.empty(len(order), dtype=np.int64)
        first: dict[int, int] = {}
        count: dict[int, int] = {}
        base: dict[int, int] = {}
        self.esc_len = code.lengths.get(_ESCAPE)
        self.esc_flat = -1
        for i, s in enumerate(order):
            ln = code.lengths[s]
            if ln not in first:
                first[ln] = code.codes[s]
                base[ln] = i
                count[ln] = 0
            count[ln] += 1
            if s is _ESCAPE:
                self.esc_flat = i
                self.flat_syms[i] = 0
            else:
                self.flat_syms[i] = s
        self.lens_arr = np.asarray(lens_present, dtype=np.int64)
        self.first_arr = np.asarray([first[L] for L in lens_present], dtype=np.uint64)
        self.count_arr = np.asarray([count[L] for L in lens_present], dtype=np.uint64)
        self.base_arr = np.asarray([base[L] for L in lens_present], dtype=np.int64)
        self.limits = np.asarray(
            [(first[L] + count[L]) << (64 - L) for L in lens_present[:-1]],
            dtype=np.uint64,
        )

    @property
    def table(self) -> list:
        """Header-form table of the source book (lazy: only the
        process fan-out, which must rebuild these tables in another
        address space, ever pays for it)."""
        if self._table is None:
            self._table = table_from_code(self._code)
        return self._table

    @property
    def table_json(self) -> str:
        """JSON form of :attr:`table`, cached so a code book reused
        across stream steps serializes once, not once per decode."""
        if self._table_json is None:
            self._table_json = json.dumps(self.table)
        return self._table_json

    def classify(self, win: np.ndarray):
        """Left-justified windows -> (length, flat symbol rank, valid)."""
        li = np.searchsorted(self.limits, win, side="right")
        L = self.lens_arr[li]
        rank = (win >> (64 - L).astype(np.uint64)) - self.first_arr[li]
        valid = rank < self.count_arr[li]
        return L, self.base_arr[li] + rank.astype(np.int64), valid


def _payload_words(payload: bytes, total: int, spill: int = 2) -> np.ndarray:
    """Payload as big-endian 64-bit words, zero padded with spill words."""
    n_bytes = (total + 7) >> 3
    n_words = (total + 63) >> 6
    byts = np.zeros((n_words + spill) * 8, dtype=np.uint8)
    byts[:n_bytes] = np.frombuffer(payload, dtype=np.uint8, count=n_bytes)
    return byts.view(">u8").astype(np.uint64)


def _windows_at(words: np.ndarray, p: np.ndarray) -> np.ndarray:
    """The 64 stream bits starting at each bit position in ``p``."""
    wi = p >> 6
    r = (p & 63).astype(np.uint64)
    return (words[wi] << r) | ((words[wi + 1] >> (np.uint64(63) - r)) >> np.uint64(1))


def decode_tables(code: HuffmanCode) -> "_DecodeTables":
    """Precompute the canonical decode tables of one code book.

    Pass the result to :func:`huffman_decode` as ``tables=`` to skip
    the per-call table construction — how a stream decoder amortizes a
    code book reused across steps.
    """
    return _DecodeTables(code)


def huffman_decode(
    payload: bytes, header: dict, *, executor=None, tables=None
) -> np.ndarray:
    """Invert :func:`huffman_encode` (vectorized fast path).

    Canonical decoding normally walks the bit stream serially.  When the
    header carries sync offsets (one per :data:`_SYNC_BLOCK` symbols —
    any payload our encoders emit), the fast path runs one cursor per
    block in vectorized lockstep; an ``executor`` partitions the blocks
    into contiguous runs decoded as independent work units (the output
    is identical either way).  Headers without sync fall back to a
    whole-stream classification: "if a codeword started at bit ``p``,
    which (length, symbol) would it be?", with the actual codeword-start
    chain ``p -> p + len(p)`` resolved by pointer doubling — still pure
    NumPy array operations.
    """
    n = int(header["n"])
    if n < 0:
        raise ValueError(f"corrupt Huffman header: negative element count {n}")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    total = int(header["bits"])
    if total < 0:
        raise ValueError(f"corrupt Huffman header: negative bit count {total}")
    if len(payload) < (total + 7) >> 3:
        raise ValueError("truncated Huffman payload")
    if tables is None:
        code = HuffmanCode.from_lengths(_lengths_from_header(header))
        tables = _DecodeTables(code)
    sync = header.get("sync")
    if sync and len(sync) + 1 == -(-n // _SYNC_BLOCK):
        return _decode_sync(payload, n, total, tables, sync, executor)
    return _decode_chain(payload, n, total, tables)


def _decode_sync(
    payload, n, total, tables: _DecodeTables, sync, executor=None
) -> np.ndarray:
    """Lockstep decode: one cursor per sync block, advanced together."""
    n_blocks = len(sync) + 1
    starts = np.empty(n_blocks, dtype=np.int64)
    starts[0] = 0
    starts[1:] = sync
    ends = np.empty(n_blocks, dtype=np.int64)
    ends[:-1] = sync
    ends[-1] = total
    if np.any(starts > total) or np.any(np.diff(starts) < 0):
        raise ValueError("corrupt Huffman payload: bad sync offsets")
    rem = n - (n_blocks - 1) * _SYNC_BLOCK  # symbols in the last block
    workers = getattr(executor, "max_workers", 1) if executor is not None else 1
    # every range pays the full _SYNC_BLOCK-iteration lockstep loop, so
    # splitting only pays off when each worker keeps wide vectors; keep
    # at least _MIN_DECODE_BLOCKS_PER_WORKER blocks per range
    workers = min(workers, n_blocks // _MIN_DECODE_BLOCKS_PER_WORKER)
    words = _payload_words(payload, total)
    if workers > 1:
        # one contiguous sync-block run per worker; the process and
        # thread paths decode exactly these ranges, so the partition
        # rule lives in one place
        cuts = np.linspace(0, n_blocks, workers + 1).astype(int)
        ranges = [
            (starts[a:b], ends[a:b], rem if b == n_blocks else _SYNC_BLOCK)
            for a, b in zip(cuts[:-1], cuts[1:])
        ]
        if getattr(executor, "kind", None) == "process":
            # this loop is the GIL-bound hot spot threads cannot split;
            # ship the payload words through shared memory instead
            out = _decode_sync_process(words, total, tables, ranges, executor)
            if out is not None:
                return out
        parts = executor.map(
            lambda s, e, r: _decode_sync_range(words, s, e, r, total, tables),
            *zip(*ranges),
        )
        return np.concatenate(parts)
    return _decode_sync_range(words, starts, ends, rem, total, tables)


def _decode_sync_process(
    words, total, tables: _DecodeTables, ranges, executor
) -> np.ndarray | None:
    """Sync-range decode fanned out across *processes*.

    The payload words are staged once in shared memory; each worker
    receives only (segment ref, its range bounds, the header-form code
    table) and returns its freshly-decoded symbols.  Returns ``None``
    when shared memory is unavailable so the caller can fall back to
    the in-process path (reusing the same ``words`` and ``ranges``).
    """
    from ..parallel import shm as _shm

    try:
        ref, block = _shm.share_array(words)
    except _shm.ShmUnavailable:
        return None
    try:
        table_key = tables.table_json
        rows = [(ref, s, e, r, total, table_key) for s, e, r in ranges]
        parts = executor.map(_decode_sync_range_worker, *zip(*rows))
        return np.concatenate(parts)
    finally:
        block.destroy()


# worker-resident decode tables, keyed by the header-form table JSON —
# a code book reused across stream steps (or across the ranges of one
# payload) pays its table construction once per worker process
_WORKER_TABLE_CACHE: dict[str, "_DecodeTables"] = {}


def _decode_sync_range_worker(ref, starts, ends, rem, total, table_json):
    """Process-pool work unit: decode one run of sync blocks from shm."""
    tables = _WORKER_TABLE_CACHE.get(table_json)
    if tables is None:
        if len(_WORKER_TABLE_CACHE) >= 8:
            _WORKER_TABLE_CACHE.clear()
        tables = _DecodeTables(code_from_table(json.loads(table_json)))
        _WORKER_TABLE_CACHE[table_json] = tables
    lease = ref.open()
    try:
        # _decode_sync_range only reads the words through fancy indexing
        # (copies), so nothing it returns aliases the shared segment
        return _decode_sync_range(lease.view, starts, ends, rem, total, tables)
    finally:
        lease.close()


def _decode_sync_range(
    words, starts, ends, rem, total, tables: _DecodeTables
) -> np.ndarray:
    """Decode one run of sync blocks, dispatched through the launcher.

    The compiled backend walks each block to completion independently
    (blocks parallelize); the NumPy path advances all block cursors in
    vectorized lockstep.  Same tables, same windows, same outputs —
    and the same ``ValueError`` messages on corrupt payloads.
    """
    ran, out = maybe_launch(
        "huff_decode",
        (int(total),),
        np.int64,
        np.asarray(words, dtype=np.uint64),
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
        int(rem),
        int(total),
        tables.lens_arr,
        tables.first_arr,
        tables.count_arr,
        tables.base_arr,
        tables.limits,
        tables.flat_syms,
        int(tables.esc_flat),
        int(tables.esc_len or 0),
        _SYNC_BLOCK,
    )
    if ran:
        return out
    return _decode_sync_range_numpy(words, starts, ends, rem, total, tables)


def _decode_sync_range_numpy(
    words, starts, ends, rem, total, tables: _DecodeTables
) -> np.ndarray:
    """Lockstep-decode one contiguous run of sync blocks.

    Every block holds :data:`_SYNC_BLOCK` symbols except the last of
    the run, which holds ``rem``.
    """
    n_blocks = len(starts)
    out = np.empty((n_blocks, _SYNC_BLOCK), dtype=np.int64)
    pos = starts.copy()
    esc_flat, esc_len = tables.esc_flat, tables.esc_len
    for t in range(_SYNC_BLOCK):
        m = n_blocks if t < rem else n_blocks - 1
        p = pos[:m]
        win = _windows_at(words, p)
        L, flat, valid = tables.classify(win)
        if not valid.all():
            raise ValueError("corrupt Huffman payload: no codeword matches")
        sym = tables.flat_syms[flat]
        if esc_flat >= 0:
            em = flat == esc_flat
            if em.any():
                raw = _windows_at(words, p[em] + esc_len)
                sym[em] = raw.astype(np.int64)  # two's complement
                L = L + np.where(em, 64, 0)
        out[:m, t] = sym
        p += L
        if p.max(initial=0) > total:
            raise ValueError("truncated Huffman payload")
    if not np.array_equal(pos, ends):
        raise ValueError("corrupt Huffman payload: sync mismatch")
    return np.concatenate([out[:-1].reshape(-1), out[-1, :rem]])


def _decode_chain(payload, n, total, tables: _DecodeTables) -> np.ndarray:
    """Whole-stream classification + pointer-doubling chain resolution."""
    words = _payload_words(payload, total, spill=1)
    win = _windows_at(words, np.arange(total, dtype=np.int64))
    L_at, flat_at, valid = tables.classify(win)
    len_at = np.where(valid, L_at, 0)
    step = len_at.copy()
    esc_flat, esc_len = tables.esc_flat, tables.esc_len
    if esc_flat >= 0:
        step[valid & (flat_at == esc_flat)] += 64

    nxt = np.empty(total + 1, dtype=np.int64)
    np.add(np.arange(total, dtype=np.int64), step, out=nxt[:total])
    nxt[total] = total  # sentinel self-loop at end-of-stream
    nxt[:total][~valid] = total  # no codeword starts here; flagged if visited
    np.minimum(nxt, total, out=nxt)

    # orbit of position 0 under `nxt` by pointer doubling: when `pos`
    # holds the first m codeword starts and J = nxt^m, J[pos] is the
    # next m starts.
    pos = np.zeros(1, dtype=np.int64)
    J = nxt
    while pos.size < n:
        pos = np.concatenate([pos, J[pos]])
        if pos.size < n:
            J = J[J]
    pos = pos[:n]

    overrun = np.flatnonzero(pos >= total)
    if overrun.size:
        k = int(overrun[0])
        if k > 0 and len_at[pos[k - 1]] == 0:
            raise ValueError("corrupt Huffman payload: no codeword matches")
        raise ValueError("truncated Huffman payload")
    if len_at[pos[-1]] == 0:
        raise ValueError("corrupt Huffman payload: no codeword matches")
    if int(pos[-1] + step[pos[-1]]) > total:
        raise ValueError("truncated Huffman payload")

    ranks = flat_at[pos]
    out = tables.flat_syms[ranks]
    if esc_flat >= 0:
        em = ranks == esc_flat
        if np.any(em):
            pe = pos[em] + esc_len  # start of the 64 raw bits
            out[em] = win[pe].astype(np.int64)  # two's complement
    return out


# ----------------------------------------------------------------------
# scalar reference implementations (cross-checks for the fast path)


def huffman_encode_scalar(values: np.ndarray, max_table: int = 4096) -> tuple[bytes, dict]:
    """Per-element/per-bit reference encoder (bit-identical payloads)."""
    values = np.ascontiguousarray(values, dtype=np.int64).ravel()
    if values.size == 0:
        return b"", {"n": 0, "bits": 0, "table": []}
    code = _build_code(values, max_table)
    esc_len = code.lengths.get(_ESCAPE)
    # emit (code, length) per element, tracking sync-block bit offsets
    bit_chunks: list[tuple[int, int]] = []
    sync: list[int] = []
    cum_bits = 0
    table_codes = code.codes
    table_lengths = code.lengths
    for i, v in enumerate(values.tolist()):
        if i and i % _SYNC_BLOCK == 0:
            sync.append(cum_bits)
        if v in table_codes:
            bit_chunks.append((table_codes[v], table_lengths[v]))
            cum_bits += table_lengths[v]
        else:
            if esc_len is None:
                raise AssertionError("value outside table but no escape code")
            bit_chunks.append((table_codes[_ESCAPE], esc_len))
            bit_chunks.append((v & ((1 << 64) - 1), 64))
            cum_bits += esc_len + 64
    # pack MSB-first
    total_bits = sum(ln for _, ln in bit_chunks)
    buf = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    pos = 0
    for val, ln in bit_chunks:
        for shift in range(ln - 1, -1, -1):
            if (val >> shift) & 1:
                buf[pos >> 3] |= 0x80 >> (pos & 7)
            pos += 1
    return buf.tobytes(), _header(code, values.size, total_bits, sync)


def huffman_decode_scalar(payload: bytes, header: dict) -> np.ndarray:
    """Per-bit reference decoder matching :func:`huffman_encode_scalar`."""
    if int(header["n"]) == 0:
        return np.empty(0, dtype=np.int64)
    code = HuffmanCode.from_lengths(_lengths_from_header(header))
    # first-code/first-symbol tables per length for canonical decoding
    by_len: dict[int, dict[int, object]] = {}
    for sym, c in code.codes.items():
        by_len.setdefault(code.lengths[sym], {})[c] = sym
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))[: header["bits"]]
    out = np.empty(header["n"], dtype=np.int64)
    pos = 0
    acc = 0
    acc_len = 0
    i = 0
    n_bits = bits.shape[0]
    max_len = max(by_len) if by_len else 1
    while i < header["n"]:
        sym = None
        while sym is None:
            if pos >= n_bits:
                raise ValueError("truncated Huffman payload")
            acc = (acc << 1) | int(bits[pos])
            acc_len += 1
            pos += 1
            if acc_len > max_len and acc_len > 64:
                raise ValueError("corrupt Huffman payload: code too long")
            table = by_len.get(acc_len)
            if table is not None and acc in table:
                sym = table[acc]
        acc = 0
        acc_len = 0
        if sym is _ESCAPE:
            if pos + 64 > n_bits:
                raise ValueError("truncated escape payload")
            raw = 0
            for _ in range(64):
                raw = (raw << 1) | int(bits[pos])
                pos += 1
            # interpret as signed 64-bit
            if raw >= 1 << 63:
                raw -= 1 << 64
            out[i] = raw
        else:
            out[i] = sym
        i += 1
    return out
