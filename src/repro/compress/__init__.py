"""MGARD-style error-bounded lossy compression (paper Showcase V-B)."""

from .fileio import CompressedFileError, load_compressed, save_compressed
from .huffman import (
    HuffmanCode,
    huffman_decode,
    huffman_decode_scalar,
    huffman_encode,
    huffman_encode_scalar,
)
from .lossless import BACKENDS, decode_bins, decode_classes, encode_bins, encode_classes
from .mgard import CompressedData, MgardCompressor, StageTimes
from .plan import (
    CompressionPlan,
    RefactorPlan,
    clear_plan_cache,
    compression_plan,
    plan_cache_stats,
    refactor_plan,
)
from .quantizer import QuantizedClasses, Quantizer
from .rate import RDPoint, bd_rate_gain, rate_distortion_curve
from .timeseries import CompressedSeries, TimeSeriesCompressor

__all__ = [
    "BACKENDS",
    "CompressedData",
    "CompressedFileError",
    "CompressedSeries",
    "CompressionPlan",
    "HuffmanCode",
    "MgardCompressor",
    "QuantizedClasses",
    "RDPoint",
    "Quantizer",
    "RefactorPlan",
    "StageTimes",
    "TimeSeriesCompressor",
    "bd_rate_gain",
    "clear_plan_cache",
    "compression_plan",
    "decode_bins",
    "decode_classes",
    "encode_bins",
    "encode_classes",
    "huffman_decode",
    "huffman_decode_scalar",
    "huffman_encode",
    "huffman_encode_scalar",
    "load_compressed",
    "plan_cache_stats",
    "rate_distortion_curve",
    "refactor_plan",
    "save_compressed",
]
