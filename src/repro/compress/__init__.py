"""MGARD-style error-bounded lossy compression (paper Showcase V-B)."""

from .fileio import CompressedFileError, load_compressed, save_compressed
from .huffman import HuffmanCode, huffman_decode, huffman_encode
from .lossless import BACKENDS, decode_bins, encode_bins
from .mgard import CompressedData, MgardCompressor, StageTimes
from .quantizer import QuantizedClasses, Quantizer
from .rate import RDPoint, bd_rate_gain, rate_distortion_curve
from .timeseries import CompressedSeries, TimeSeriesCompressor

__all__ = [
    "BACKENDS",
    "CompressedData",
    "CompressedFileError",
    "CompressedSeries",
    "HuffmanCode",
    "MgardCompressor",
    "QuantizedClasses",
    "RDPoint",
    "Quantizer",
    "StageTimes",
    "TimeSeriesCompressor",
    "bd_rate_gain",
    "decode_bins",
    "encode_bins",
    "huffman_decode",
    "huffman_encode",
    "load_compressed",
    "rate_distortion_curve",
    "save_compressed",
]
