"""MGARD-style error-bounded lossy compression (paper Showcase V-B)."""

from .executor import (
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    get_executor,
    set_default_executor,
)
from .fileio import CompressedFileError, load_compressed, save_compressed
from .huffman import (
    HuffmanCode,
    apply_table_delta,
    build_code,
    code_from_table,
    huffman_decode,
    huffman_decode_scalar,
    huffman_encode,
    huffman_encode_scalar,
    table_delta,
    table_from_code,
)
from .lossless import (
    BACKENDS,
    decode_bins,
    decode_classes,
    encode_bins,
    encode_classes,
    materialize_classes_header,
)
from .mgard import CompressedData, MgardCompressor, PreparedFrame, StageTimes
from .plan import (
    CompressionPlan,
    RefactorPlan,
    clear_plan_cache,
    compression_plan,
    plan_cache_stats,
    refactor_plan,
)
from .quantizer import QuantizedClasses, Quantizer
from .rate import RDPoint, bd_rate_gain, rate_distortion_curve
from .timeseries import CompressedSeries, ResidualPlan, TimeSeriesCompressor

__all__ = [
    "BACKENDS",
    "CompressedData",
    "CompressedFileError",
    "CompressedSeries",
    "CompressionPlan",
    "HuffmanCode",
    "MgardCompressor",
    "ParallelExecutor",
    "PreparedFrame",
    "QuantizedClasses",
    "RDPoint",
    "Quantizer",
    "RefactorPlan",
    "ResidualPlan",
    "SerialExecutor",
    "StageTimes",
    "TimeSeriesCompressor",
    "apply_table_delta",
    "available_workers",
    "bd_rate_gain",
    "build_code",
    "clear_plan_cache",
    "code_from_table",
    "compression_plan",
    "decode_bins",
    "decode_classes",
    "encode_bins",
    "encode_classes",
    "get_executor",
    "huffman_decode",
    "huffman_decode_scalar",
    "huffman_encode",
    "huffman_encode_scalar",
    "load_compressed",
    "materialize_classes_header",
    "plan_cache_stats",
    "rate_distortion_curve",
    "refactor_plan",
    "save_compressed",
    "set_default_executor",
    "table_delta",
    "table_from_code",
]
