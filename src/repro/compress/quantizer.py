"""Error-bound-driven quantization of coefficient classes.

MGARD turns the refactored multilevel coefficients into integers with a
uniform scalar quantizer whose bin width is derived from the user's
absolute error tolerance.  Reconstructing from quantized coefficients
perturbs each coefficient by at most half a bin; the perturbation
propagates to the reconstructed field through the recomposition
operator, whose per-level gain is bounded (piecewise multilinear
interpolation has max-norm 1, and the correction is an L2 projection —
a contraction in the relevant norms).  Budgeting the tolerance across
the ``L + 1`` classes therefore bounds the final L∞ error.

Two budgeting modes:

* ``"uniform"`` — every class gets ``tol / (L + 1)``; simple and safe.
* ``"level"`` — finer classes get geometrically larger bins
  (``∝ 2^(L - l)``-normalized), exploiting that fine-level
  perturbations pass through fewer recomposition stages; yields
  noticeably better compression at equal tolerance (this mirrors
  MGARD's s-norm weighting for ``s = 0``/L∞ control).

Property tests verify the achieved error honours ``tol`` on assorted
fields; :class:`Quantizer` is exactly invertible metadata-wise
(dequantize(quantize(x)) lands within half a bin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classes import CoefficientClasses
from ..kernels.launcher import maybe_launch

__all__ = ["QuantizedClasses", "Quantizer"]


@dataclass
class QuantizedClasses:
    """Integer coefficient classes plus the metadata to invert them."""

    bins: list[np.ndarray]  # int64 per class
    steps: list[float]  # quantization step per class
    tol: float
    mode: str

    @property
    def n_classes(self) -> int:
        return len(self.bins)

    def nbytes_raw(self) -> int:
        """Size of the raw (unencoded) integer payload."""
        return sum(b.nbytes for b in self.bins)


class Quantizer:
    """Uniform scalar quantizer with per-class error budgeting.

    Parameters
    ----------
    tol:
        Absolute L∞ error tolerance for the reconstructed field.
    mode:
        ``"uniform"`` or ``"level"`` budgeting (see module docstring).
    safety:
        Multiplicative safety factor < 1 applied to the budget to absorb
        the (bounded) cross-level amplification of the recomposition.
    """

    def __init__(self, tol: float, mode: str = "level", safety: float = 0.5):
        if tol <= 0:
            raise ValueError("tolerance must be positive")
        if mode not in ("uniform", "level"):
            raise ValueError(f"unknown budgeting mode {mode!r}")
        if not 0 < safety <= 1:
            raise ValueError("safety factor must be in (0, 1]")
        self.tol = float(tol)
        self.mode = mode
        self.safety = float(safety)
        self._steps_cache: dict[int, list[float]] = {}

    # ------------------------------------------------------------------
    def seed_steps(self, n_classes: int, steps) -> None:
        """Pre-populate the per-class step budget (from a cached plan)."""
        if len(steps) != n_classes:
            raise ValueError(f"expected {n_classes} steps, got {len(steps)}")
        self._steps_cache[int(n_classes)] = [float(s) for s in steps]

    def steps_for(self, n_classes: int) -> list[float]:
        """Quantization step (bin width) per class, coarse-to-fine.

        The budget depends only on the class count, so it is resolved
        once per count and memoized on the quantizer.
        """
        cached = self._steps_cache.get(n_classes)
        if cached is not None:
            return list(cached)
        budget = self.tol * self.safety
        if self.mode == "uniform":
            per = budget / n_classes
            steps = [2.0 * per] * n_classes
        else:
            # "level": allocate a geometric series of the budget, smallest
            # share to the coarsest class (whose perturbations traverse the
            # most recomposition stages).
            weights = np.asarray([2.0 ** (l - n_classes + 1) for l in range(n_classes)])
            weights /= weights.sum()
            steps = [2.0 * budget * float(w) for w in weights]
        self._steps_cache[n_classes] = steps
        return list(steps)

    def quantize(self, cc: CoefficientClasses) -> QuantizedClasses:
        """Quantize every class to integer bins."""
        steps = self.steps_for(cc.n_classes)
        bins = []
        for values, step in zip(cc.classes, steps):
            q = np.round(values / step).astype(np.int64)
            bins.append(q)
        return QuantizedClasses(bins=bins, steps=steps, tol=self.tol, mode=self.mode)

    def quantize_flat(
        self, cc: CoefficientClasses
    ) -> tuple[np.ndarray, list[int], list[float]]:
        """Quantize all classes in one fused pass.

        Returns ``(bins, sizes, steps)`` where ``bins`` is the int64
        concatenation of every class (coarse-to-fine) — the batched
        layout the single-header entropy stage consumes.
        """
        steps = self.steps_for(cc.n_classes)
        sizes = [int(c.size) for c in cc.classes]
        flat = np.concatenate([np.ravel(c) for c in cc.classes])
        inv = np.repeat(1.0 / np.asarray(steps, dtype=np.float64), sizes)
        # np.rint on the compiled path == np.round here (decimals=0,
        # both round half to even), so the backends stay bit-identical
        ran, bins = maybe_launch("quantize", flat.shape, flat.dtype, flat, inv)
        if not ran:
            bins = np.round(flat * inv).astype(np.int64)
        return bins, sizes, steps

    @staticmethod
    def dequantize_flat(
        bins: np.ndarray, sizes: list[int], steps: list[float]
    ) -> list[np.ndarray]:
        """Invert :meth:`quantize_flat` back to per-class float arrays."""
        if bins.size != sum(sizes):
            raise ValueError(
                f"flat payload has {bins.size} values, expected {sum(sizes)}"
            )
        scale = np.repeat(np.asarray(steps, dtype=np.float64), sizes)
        ran, flat = maybe_launch("dequantize", bins.shape, bins.dtype, bins, scale)
        if not ran:
            flat = bins.astype(np.float64) * scale
        return np.split(flat, np.cumsum(sizes)[:-1])

    def dequantize(self, qc: QuantizedClasses, cc_template: CoefficientClasses) -> CoefficientClasses:
        """Rebuild (perturbed) coefficient classes from integer bins."""
        if qc.n_classes != cc_template.n_classes:
            raise ValueError("class count mismatch between payload and template hierarchy")
        classes = []
        for b, step, ref in zip(qc.bins, qc.steps, cc_template.classes):
            if b.size != ref.size:
                raise ValueError("class size mismatch between payload and template hierarchy")
            classes.append(b.astype(np.float64) * step)
        return CoefficientClasses(cc_template.hier, classes)
