"""On-disk format for compressed data (the ``.mgz`` files of repro-tool).

Layout: magic, little-endian u64 header length, JSON header (shape,
tolerance, quantizer metadata, per-class payload extents + CRC32s),
then the class payloads back to back.  Self-contained: decompression
needs nothing but the file (the hierarchy is rebuilt from the shape;
non-uniform coordinates, when used, are embedded in the header).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from .. import faults
from ..core.grid import TensorHierarchy, hierarchy_for
from ..errors import ContainerError
from .mgard import CompressedData

__all__ = ["save_compressed", "load_compressed", "CompressedFileError"]

_MAGIC = b"RPMG\x01\x00"


class CompressedFileError(ContainerError):
    """Malformed compressed file.

    A :class:`~repro.errors.ContainerError`, so stream-level recovery
    (step quarantine, partial-shard region reads, the scrub CLI)
    handles corrupt ``.mgz`` steps and corrupt refactored containers
    through one ``except`` clause.
    """


def save_compressed(
    path: str | Path,
    blob: CompressedData,
    coords: tuple[np.ndarray, ...] | None = None,
    scratch: dict | None = None,
    materialize: bool = True,
) -> int:
    """Write a :class:`CompressedData` to disk; returns bytes written.

    Blobs from a code-book-reusing stream reference tables shipped by
    earlier steps; by default those references are *materialized*
    (resolved against ``scratch`` — the stream's decode-side chain —
    and inlined) so the file stays self-contained.  Stream containers
    that keep their own chain on disk pass ``materialize=False``.

    ``path`` may also be an open binary stream (e.g. ``io.BytesIO``),
    which is how a pipeline's encode stage serializes in memory while a
    later stage owns the disk write.
    """
    from .lossless import materialize_classes_header

    headers = blob.headers
    if materialize:
        headers = [materialize_classes_header(h, scratch) for h in headers]
    extents = []
    offset = 0
    for p in blob.payloads:
        extents.append({"offset": offset, "nbytes": len(p), "crc32": zlib.crc32(p)})
        offset += len(p)
    header = {
        "shape": list(blob.shape),
        "tol": blob.tol,
        "mode": blob.mode,
        "steps": blob.steps,
        "headers": headers,
        "extents": extents,
        "coords": None if coords is None else [c.tolist() for c in coords],
    }
    hbytes = json.dumps(header).encode()

    def _emit(f) -> None:
        f.write(_MAGIC)
        f.write(struct.pack("<Q", len(hbytes)))
        f.write(hbytes)
        for p in blob.payloads:
            f.write(p)

    if hasattr(path, "write"):
        _emit(path)
    else:
        with open(Path(path), "wb") as f:
            _emit(f)
    return len(_MAGIC) + 8 + len(hbytes) + offset


def load_compressed(source) -> tuple[CompressedData, TensorHierarchy]:
    """Read a compressed container back into (blob, matching hierarchy).

    ``source`` may be a path, an open binary stream, or a bytes-like
    payload — the latter two are how shard segments embedded in a
    sharded step container decode without touching the filesystem.
    """
    import io as _io

    if isinstance(source, (bytes, bytearray, memoryview)):
        f, close, name = _io.BytesIO(source), True, "<bytes>"
    elif hasattr(source, "read"):
        f, close, name = source, False, getattr(source, "name", "<stream>")
    else:
        f, close, name = open(Path(source), "rb"), True, str(source)
    try:
        magic = f.read(len(_MAGIC))
        if magic != _MAGIC:
            raise CompressedFileError(f"bad magic in {name}")
        raw = f.read(8)
        if len(raw) != 8:
            raise CompressedFileError(
                f"truncated header length in {name} "
                f"(offset {len(_MAGIC)}: got {len(raw)} of 8 bytes)"
            )
        (hlen,) = struct.unpack("<Q", raw)
        raw = f.read(hlen)
        if len(raw) != hlen:
            raise CompressedFileError(
                f"truncated header in {name} "
                f"(offset {len(_MAGIC) + 8}: got {len(raw)} of {hlen} bytes)"
            )
        try:
            header = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise CompressedFileError(f"corrupt header in {name}") from e
        if not isinstance(header, dict) or not isinstance(header.get("extents"), list):
            raise CompressedFileError(f"header in {name} missing its payload extents")
        payloads = []
        offset = len(_MAGIC) + 8 + hlen
        for i, ext in enumerate(header["extents"]):
            try:
                nbytes, crc = int(ext["nbytes"]), ext["crc32"]
            except (KeyError, TypeError) as e:
                raise CompressedFileError(
                    f"malformed extent {i} in header of {name}"
                ) from e
            raw = f.read(nbytes)
            faults.delay_point("fileio.read.payload")
            raw = faults.corrupt_bytes("fileio.read.payload", raw)
            if len(raw) != nbytes:
                raise CompressedFileError(
                    f"truncated payload {i} in {name} "
                    f"(offset {offset}: got {len(raw)} of {nbytes} bytes)"
                )
            if zlib.crc32(raw) != crc:
                raise CompressedFileError(
                    f"checksum mismatch for payload {i} in {name} "
                    f"(offset {offset}, {nbytes} bytes)"
                )
            payloads.append(raw)
            offset += nbytes
    finally:
        if close:
            f.close()
    try:
        shape = tuple(header["shape"])
        coords = header.get("coords")
        hier = hierarchy_for(
            shape,
            None if coords is None else tuple(np.asarray(c) for c in coords),
        )
        blob = CompressedData(
            payloads=payloads,
            headers=header["headers"],
            steps=list(header["steps"]),
            shape=shape,
            tol=float(header["tol"]),
            mode=str(header["mode"]),
        )
    except (KeyError, TypeError, ValueError) as e:
        # valid JSON, wrong schema: an overwritten or bit-flipped header
        raise CompressedFileError(f"malformed header in {name}: {e}") from e
    return blob, hier
