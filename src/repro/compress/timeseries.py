"""Time-series compression: refactoring + temporal prediction.

The paper's introduction motivates refactoring with simulations that
"decimate in time ... based on some arbitrary factor" because they
cannot afford to store every step.  Refactoring changes that trade-off:
store every step, but spend bits where the data changes.  This module
composes the spatial compressor with a temporal predictor:

* frame 0 is compressed directly (a *key frame*);
* each subsequent frame is predicted by the previous *reconstructed*
  frame (closed-loop prediction, so the error bound never drifts) and
  only the residual is refactored/quantized/encoded.

For slowly-varying fields the residuals are small and quantize to
near-zero bins, so the stream compresses far better than independent
frames at the same L∞ bound — which tests assert.  Key frames can be
re-inserted periodically to bound random-access cost.

Entropy setup is amortized the same way the signal is: with the
``huffman`` backend the compressor keeps each class's code book in a
:meth:`~repro.compress.plan.CompressionPlan.scratch_area` and *reuses*
it across steps (non-key steps ship a one-integer ``table_ref`` — or a
compact ``table_delta`` when the stream drifts — instead of a full
table), with a full-table refresh keyed to key frames.  The decoder
replays the chain, so frames decode in stream order from any key frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import TensorHierarchy
from .mgard import CompressedData, MgardCompressor, PreparedFrame

__all__ = ["CompressedSeries", "ResidualPlan", "TimeSeriesCompressor"]


@dataclass
class ResidualPlan:
    """One predicted step, ready for (deferred) entropy coding.

    Produced by :meth:`TimeSeriesCompressor.predict_residual` — the
    in-order half of :meth:`TimeSeriesCompressor.append` that owns the
    closed prediction loop — and consumed by
    :meth:`TimeSeriesCompressor.encode_residual`.  Everything the
    entropy stage needs travels in the plan (quantized bins, key/delta
    decision, code-book context and refresh flag), so the encode may
    run outside the prediction loop: the decoded-feedback dependency
    lives entirely in ``predict_residual``.
    """

    index: int
    is_key: bool
    context: str
    refresh: bool
    prepared: PreparedFrame


@dataclass
class CompressedSeries:
    """A compressed sequence of frames."""

    frames: list[CompressedData]
    is_key: list[bool]
    shape: tuple[int, ...]
    tol: float

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.frames)

    def compression_ratio(self, itemsize: int = 8) -> float:
        n = itemsize * self.n_frames
        for s in self.shape:
            n *= s
        return n / self.nbytes


class TimeSeriesCompressor:
    """Error-bounded compressor for snapshot sequences.

    Parameters
    ----------
    hier:
        Spatial hierarchy shared by every frame.
    tol:
        Per-frame absolute L∞ error bound (holds for every frame, not
        just key frames, thanks to closed-loop prediction).
    key_interval:
        A key frame every this many frames (1 = all independent).
    mode / backend:
        Passed through to the spatial :class:`MgardCompressor`.
    executor:
        Executor (spec string or instance) for the entropy stage's
        per-class/per-block fan-out.
    reuse_codebooks:
        Reuse Huffman code books across steps (ignored for zlib, which
        has no per-stream setup to amortize).
    stream_tag:
        Key of this stream's :meth:`CompressionPlan.scratch_area`
        inside the (globally cached) plan — a writer that tags the
        area with its output path can resume its code-book chain after
        being reopened in the same process.  Untagged compressors keep
        a private per-instance scratch instead, so anonymous streams
        neither accumulate in the plan cache nor alias each other.
    """

    def __init__(
        self,
        hier: TensorHierarchy,
        tol: float,
        key_interval: int = 16,
        mode: str = "level",
        backend: str = "zlib",
        executor=None,
        reuse_codebooks: bool = True,
        stream_tag: str | None = None,
    ):
        if key_interval < 1:
            raise ValueError("key_interval must be >= 1")
        self.hier = hier
        self.tol = float(tol)
        self.key_interval = key_interval
        self._spatial = MgardCompressor(
            hier, tol, mode=mode, backend=backend, executor=executor
        )
        self.reuse_codebooks = bool(reuse_codebooks) and backend == "huffman"
        if not self.reuse_codebooks:
            self._scratch = None
        elif stream_tag is not None:
            from .plan import compression_plan

            plan = compression_plan(hier.shape, tol, mode=mode, backend=backend)
            self._scratch = plan.scratch_area(stream_tag)
        else:
            self._scratch = {}
        self._prev_recon: np.ndarray | None = None
        self._t = 0
        self._rebase_delta = False

    # ------------------------------------------------------------------
    @property
    def n_appended(self) -> int:
        """Steps appended since construction / the last :meth:`reset`."""
        return self._t

    def reset(self) -> None:
        """Restart the prediction loop (the next frame is a key frame)."""
        self._prev_recon = None
        self._t = 0
        self._rebase_delta = False

    def append(self, frame: np.ndarray) -> tuple[CompressedData, bool]:
        """Compress one more step of the stream; returns (blob, is_key).

        This is the producer-side incremental API: a running simulation
        appends steps as they are computed, and the compressor keeps the
        closed prediction loop and the code-book chain across calls.
        Equivalent to ``encode_residual(predict_residual(frame))`` —
        the fused form of the split a pipeline overlaps.
        """
        return self.encode_residual(self.predict_residual(frame))

    def predict_residual(self, frame: np.ndarray) -> ResidualPlan:
        """Predict + refactor + quantize one step; advance the loop.

        The in-order half of :meth:`append`: computes the temporal
        target (the frame itself at key frames, the residual against
        the previous *reconstruction* otherwise), refactors and
        quantizes it, and — because entropy coding is lossless — closes
        the prediction loop from the quantized bins alone
        (:meth:`MgardCompressor.reconstruct_prepared`), without waiting
        for any bytes.  Calls must arrive in stream order; the returned
        plan may be entropy-coded later (and overlapped with the next
        frame's prediction) via :meth:`encode_residual`.
        """
        if frame.shape != self.hier.shape:
            raise ValueError(
                f"frame {self._t} has shape {frame.shape}, expected {self.hier.shape}"
            )
        is_key = self._prev_recon is None or self._t % self.key_interval == 0
        target = frame if is_key else frame - self._prev_recon
        # key frames and temporal residuals have very different bin
        # statistics, so each keeps its own code-book chain; both chains
        # re-base (full tables) once per key interval, which also keeps
        # every table_ref resolvable from the nearest key frame — the
        # random-access granularity closed-loop prediction has anyway
        if is_key:
            context, refresh = "key", True
            self._rebase_delta = True
        else:
            context, refresh = "delta", self._rebase_delta
            self._rebase_delta = False
        prepared = self._spatial.prepare(np.ascontiguousarray(target))
        recon_target = self._spatial.reconstruct_prepared(prepared)
        self._prev_recon = (
            recon_target if is_key else self._prev_recon + recon_target
        )
        plan = ResidualPlan(
            index=self._t,
            is_key=is_key,
            context=context,
            refresh=refresh,
            prepared=prepared,
        )
        self._t += 1
        return plan

    def encode_residual(self, plan: ResidualPlan) -> tuple[CompressedData, bool]:
        """Entropy-code a :class:`ResidualPlan`; returns (blob, is_key).

        Stateless with respect to the prediction loop: the plan carries
        everything the entropy stage needs.  Plans that share this
        compressor's code-book chain (``reuse_codebooks``) must still be
        encoded in stream order — an in-order pipeline stage gate
        provides exactly that — but the *prediction* of later frames
        never waits on this call, which is what lets all three Fig. 10
        stages overlap for compressed streams.
        """
        blob = self._spatial.encode_prepared(
            plan.prepared,
            scratch=self._scratch,
            refresh_codebooks=plan.refresh,
            codebook_context=plan.context,
        )
        return blob, plan.is_key

    def compress(self, frames: list[np.ndarray]) -> CompressedSeries:
        """Compress a frame sequence with closed-loop temporal prediction."""
        if not frames:
            raise ValueError("need at least one frame")
        self.reset()
        blobs: list[CompressedData] = []
        keys: list[bool] = []
        for frame in frames:
            blob, is_key = self.append(frame)
            blobs.append(blob)
            keys.append(is_key)
        return CompressedSeries(
            frames=blobs, is_key=keys, shape=self.hier.shape, tol=self.tol
        )

    def decompress(self, series: CompressedSeries) -> list[np.ndarray]:
        """Reconstruct every frame (each within ``tol`` of the original)."""
        if series.shape != self.hier.shape:
            raise ValueError("series was compressed for a different grid")
        out: list[np.ndarray] = []
        prev: np.ndarray | None = None
        scratch: dict = {}  # rebuilt code-book chain, local to this pass
        for blob, is_key in zip(series.frames, series.is_key):
            delta = self._spatial.decompress(blob, scratch=scratch)
            frame = delta if is_key else prev + delta
            out.append(frame)
            prev = frame
        return out
