"""Time-series compression: refactoring + temporal prediction.

The paper's introduction motivates refactoring with simulations that
"decimate in time ... based on some arbitrary factor" because they
cannot afford to store every step.  Refactoring changes that trade-off:
store every step, but spend bits where the data changes.  This module
composes the spatial compressor with a temporal predictor:

* frame 0 is compressed directly (a *key frame*);
* each subsequent frame is predicted by the previous *reconstructed*
  frame (closed-loop prediction, so the error bound never drifts) and
  only the residual is refactored/quantized/encoded.

For slowly-varying fields the residuals are small and quantize to
near-zero bins, so the stream compresses far better than independent
frames at the same L∞ bound — which tests assert.  Key frames can be
re-inserted periodically to bound random-access cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import TensorHierarchy
from .mgard import CompressedData, MgardCompressor

__all__ = ["CompressedSeries", "TimeSeriesCompressor"]


@dataclass
class CompressedSeries:
    """A compressed sequence of frames."""

    frames: list[CompressedData]
    is_key: list[bool]
    shape: tuple[int, ...]
    tol: float

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.frames)

    def compression_ratio(self, itemsize: int = 8) -> float:
        n = itemsize * self.n_frames
        for s in self.shape:
            n *= s
        return n / self.nbytes


class TimeSeriesCompressor:
    """Error-bounded compressor for snapshot sequences.

    Parameters
    ----------
    hier:
        Spatial hierarchy shared by every frame.
    tol:
        Per-frame absolute L∞ error bound (holds for every frame, not
        just key frames, thanks to closed-loop prediction).
    key_interval:
        A key frame every this many frames (1 = all independent).
    mode / backend:
        Passed through to the spatial :class:`MgardCompressor`.
    """

    def __init__(
        self,
        hier: TensorHierarchy,
        tol: float,
        key_interval: int = 16,
        mode: str = "level",
        backend: str = "zlib",
    ):
        if key_interval < 1:
            raise ValueError("key_interval must be >= 1")
        self.hier = hier
        self.tol = float(tol)
        self.key_interval = key_interval
        self._spatial = MgardCompressor(hier, tol, mode=mode, backend=backend)

    # ------------------------------------------------------------------
    def compress(self, frames: list[np.ndarray]) -> CompressedSeries:
        """Compress a frame sequence with closed-loop temporal prediction."""
        if not frames:
            raise ValueError("need at least one frame")
        blobs: list[CompressedData] = []
        keys: list[bool] = []
        prev_recon: np.ndarray | None = None
        for t, frame in enumerate(frames):
            if frame.shape != self.hier.shape:
                raise ValueError(
                    f"frame {t} has shape {frame.shape}, expected {self.hier.shape}"
                )
            is_key = prev_recon is None or t % self.key_interval == 0
            target = frame if is_key else frame - prev_recon
            blob = self._spatial.compress(np.ascontiguousarray(target))
            recon_target = self._spatial.decompress(blob)
            prev_recon = recon_target if is_key else prev_recon + recon_target
            blobs.append(blob)
            keys.append(is_key)
        return CompressedSeries(
            frames=blobs, is_key=keys, shape=self.hier.shape, tol=self.tol
        )

    def decompress(self, series: CompressedSeries) -> list[np.ndarray]:
        """Reconstruct every frame (each within ``tol`` of the original)."""
        if series.shape != self.hier.shape:
            raise ValueError("series was compressed for a different grid")
        out: list[np.ndarray] = []
        prev: np.ndarray | None = None
        for blob, is_key in zip(series.frames, series.is_key):
            delta = self._spatial.decompress(blob)
            frame = delta if is_key else prev + delta
            out.append(frame)
            prev = frame
        return out
