"""Rate–distortion evaluation for the compressor.

The standard way MGARD-class compressors are judged: sweep the error
tolerance, record (bitrate, distortion) pairs, and compare curves
between configurations.  ``rate_distortion_curve`` produces the points;
``bd_rate_gain`` summarizes the average log-bitrate advantage of one
curve over another at equal quality (a simplified Bjøntegaard metric).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import psnr
from ..core.grid import TensorHierarchy
from .mgard import MgardCompressor

__all__ = ["RDPoint", "rate_distortion_curve", "bd_rate_gain"]


@dataclass
class RDPoint:
    """One point of a rate–distortion curve."""

    tol: float
    bits_per_value: float
    psnr_db: float
    max_error: float
    compression_ratio: float


def rate_distortion_curve(
    data: np.ndarray,
    tolerances: tuple[float, ...],
    hier: TensorHierarchy | None = None,
    mode: str = "level",
    backend: str = "zlib",
) -> list[RDPoint]:
    """Compress/decompress at each tolerance, recording rate and quality."""
    if hier is None:
        hier = TensorHierarchy.from_shape(data.shape)
    out = []
    for tol in tolerances:
        comp = MgardCompressor(hier, tol, mode=mode, backend=backend)
        blob = comp.compress(data)
        back = comp.decompress(blob)
        out.append(
            RDPoint(
                tol=tol,
                bits_per_value=8.0 * blob.nbytes / data.size,
                psnr_db=psnr(back, data),
                max_error=float(np.max(np.abs(back - data))),
                compression_ratio=blob.compression_ratio(),
            )
        )
    return out


def bd_rate_gain(curve_a: list[RDPoint], curve_b: list[RDPoint]) -> float:
    """Average log2 bitrate saving of curve A over curve B at equal PSNR.

    Positive values mean A needs fewer bits for the same quality.
    Computed by integrating the horizontal gap between the two
    (PSNR, log2 rate) curves over their common PSNR range.
    """
    def as_xy(curve):
        pts = sorted((p.psnr_db, np.log2(max(p.bits_per_value, 1e-12))) for p in curve)
        return np.array([p[0] for p in pts]), np.array([p[1] for p in pts])

    xa, ya = as_xy(curve_a)
    xb, yb = as_xy(curve_b)
    lo = max(xa.min(), xb.min())
    hi = min(xa.max(), xb.max())
    if hi <= lo:
        raise ValueError("curves share no PSNR range")
    grid = np.linspace(lo, hi, 64)
    ra = np.interp(grid, xa, ya)
    rb = np.interp(grid, xb, yb)
    return float(np.mean(rb - ra))
