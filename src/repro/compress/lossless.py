"""Lossless entropy backends for the compression pipeline.

The paper's MGARD workflow keeps its entropy stage ("ZLib lossless
compression") on the CPU; this module wraps :mod:`zlib` with integer
narrowing (quantized bins are overwhelmingly tiny integers, so packing
them into the narrowest dtype before deflate roughly halves the output)
and exposes the pure-Python canonical Huffman coder as an alternative
reference backend.

Batched class payloads use a *segmented* container (``format: 2``): one
payload, one header, but the header records per-segment offsets so the
per-class segments are independent, schedulable work units — encoded
and decoded through an executor (see :mod:`repro.compress.executor`)
with byte-identical output to the serial path.  Segments whose class
dominates the payload additionally parallelize *inside* the segment:
the Huffman backend via its sync-aligned block encoder, the zlib
backend by deflating fixed-size sub-blocks independently (the header's
per-segment ``blocks`` list records their compressed extents).  Headers
without ``segments`` are the pre-segmentation layout, and zlib segments
without ``blocks`` are single-unit deflate streams; both still decode
(backward compatibility).

For slowly-varying streams, pass a ``scratch`` dict (conventionally
``CompressionPlan.scratch``) and the Huffman backend reuses each
class's code book across calls: exact reuse costs a single integer
header field (``table_ref``), drift beyond an escape-rate threshold
triggers a rebuild shipped as a compact ``table_delta``, and
``refresh=True`` (key frames) forces a full-table rebuild that re-bases
the chain.  The decoder replays the same chain from its own scratch.
"""

from __future__ import annotations

import json
import threading
import zlib

import numpy as np

from .huffman import (
    _MIN_DECODE_BLOCKS_PER_WORKER,
    _SYNC_BLOCK,
    _build_code,
    apply_table_delta,
    code_from_table,
    decode_tables,
    huffman_decode,
    huffman_encode,
    table_delta,
)

__all__ = [
    "encode_bins",
    "decode_bins",
    "encode_classes",
    "decode_classes",
    "materialize_classes_header",
    "BACKENDS",
]

BACKENDS = ("zlib", "huffman")

# an encode segment at least this many elements long parallelizes
# internally (Huffman block encode) instead of riding the across-segment
# fan-out — the two levels are never nested, so thread pools cannot
# deadlock on their own subtasks
_BIG_SEGMENT = 1 << 16

# the decode-side equivalent: the sync-partitioned Huffman decode only
# engages once at least two workers get _MIN_DECODE_BLOCKS_PER_WORKER
# sync blocks each; anything smaller (and every single-unit zlib
# segment — one-shot decompress, no internal parallelism) decodes
# faster on the across-segment fan-out
_BIG_DECODE_SEGMENT = 2 * _MIN_DECODE_BLOCKS_PER_WORKER * _SYNC_BLOCK

# zlib sub-block size (bytes of the narrowed raw stream, a multiple of
# 8 so int64 element boundaries align).  A class whose raw bytes reach
# two blocks deflates as independently-schedulable sub-blocks — the
# zlib mirror of the Huffman sync-block design, so both entropy
# backends parallelize inside a dominant class.  Deflate's 32 KiB
# window is tiny against this, so the ratio cost of restarting the
# dictionary per block is noise.
_ZLIB_BLOCK_BYTES = 1 << 18

# rebuild a reused code book when the achieved bits/symbol degrade past
# this factor of the rate the book delivered on the data it was built
# from; escapes inflate the bit count directly (64 raw bits each), so
# this single signal covers both frequency drift and out-of-table churn
_REBUILD_BPS_RATIO = 1.15


def _narrow_dtype(values: np.ndarray) -> np.dtype:
    """Smallest signed integer dtype that holds every value."""
    if values.size == 0:
        return np.dtype(np.int8)
    lo, hi = int(values.min()), int(values.max())
    for dt in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dt)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dt)
    raise AssertionError("int64 always fits")  # pragma: no cover


def encode_bins(values: np.ndarray, backend: str = "zlib", level: int = 6) -> tuple[bytes, dict]:
    """Losslessly encode an int64 bin array; returns (payload, header)."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if backend == "zlib":
        dt = _narrow_dtype(values)
        raw = values.astype(dt).tobytes()
        payload = zlib.compress(raw, level)
        header = {"backend": "zlib", "dtype": dt.str, "n": int(values.size)}
        return payload, header
    if backend == "huffman":
        payload, hh = huffman_encode(values)
        hh["backend"] = "huffman"
        return payload, hh
    raise ValueError(f"unknown lossless backend {backend!r}; choose from {BACKENDS}")


# ----------------------------------------------------------------------
# zlib sub-blocks (the deflate mirror of the Huffman sync blocks)


def _zlib_chunks(raw: bytes) -> list[bytes]:
    """Deterministic sub-block split of one narrowed raw stream.

    Purely a function of the raw length, never of the executor, so the
    emitted container bytes are identical for every backend.
    """
    if len(raw) < 2 * _ZLIB_BLOCK_BYTES:
        return [raw]
    return [
        raw[a : a + _ZLIB_BLOCK_BYTES]
        for a in range(0, len(raw), _ZLIB_BLOCK_BYTES)
    ]


def _deflate_chunks(chunks: list[bytes], level: int, executor) -> list[bytes]:
    """Deflate a flat chunk list through the executor (order-preserving)."""
    if executor is not None and len(chunks) > 1:
        if getattr(executor, "kind", None) == "process":
            out = _deflate_chunks_process(chunks, level, executor)
            if out is not None:
                return out
        return executor.map(lambda c: zlib.compress(c, level), chunks)
    return [zlib.compress(c, level) for c in chunks]


def _deflate_chunks_process(chunks, level, executor) -> list[bytes] | None:
    """Deflate fan-out across processes: raws staged once in shm."""
    from ..parallel import shm as _shm

    try:
        ref, block, offsets = _shm.share_chunks(chunks)
    except _shm.ShmUnavailable:
        return None
    try:
        n = len(chunks)
        return executor.map(
            _deflate_worker,
            [ref] * n,
            offsets,
            [len(c) for c in chunks],
            [level] * n,
        )
    finally:
        block.destroy()


def _deflate_worker(ref, offset: int, length: int, level: int) -> bytes:
    """Process-pool work unit: deflate one raw sub-block from shm."""
    lease = ref.open()
    try:
        return zlib.compress(lease.view[offset : offset + length], level)
    finally:
        lease.close()


def _inflate_chunks(parts: list[bytes], executor) -> list[bytes]:
    """Inflate the sub-blocks of one segment through the executor."""
    if executor is not None and len(parts) > 1:
        if getattr(executor, "kind", None) == "process":
            out = _inflate_chunks_process(parts, executor)
            if out is not None:
                return out
        return executor.map(zlib.decompress, parts)
    return [zlib.decompress(p) for p in parts]


def _inflate_chunks_process(parts, executor) -> list[bytes] | None:
    """Inflate fan-out across processes: deflated bytes staged in shm."""
    from ..parallel import shm as _shm

    try:
        ref, block, offsets = _shm.share_chunks(parts)
    except _shm.ShmUnavailable:
        return None
    try:
        n = len(parts)
        return executor.map(
            _inflate_worker, [ref] * n, offsets, [len(p) for p in parts]
        )
    finally:
        block.destroy()


def _inflate_worker(ref, offset: int, length: int) -> bytes:
    """Process-pool work unit: inflate one deflated sub-block from shm."""
    lease = ref.open()
    try:
        return zlib.decompress(lease.view[offset : offset + length])
    finally:
        lease.close()


# ----------------------------------------------------------------------
# segmented batched container (format 2)


def _books(scratch: dict) -> dict:
    return scratch.setdefault("encode_books", {})


def _scratch_lock(scratch: dict) -> threading.Lock:
    """One lock per scratch, guarding its dict *structures*.

    Concurrent segment tasks touch disjoint per-class entries, but
    inserting into a dict while a sibling thread iterates it (the
    prune scans) is still a structural race — serialized here.  The
    lock lives in the dict and is never serialized with it.
    """
    lock = scratch.get("_lock")
    if lock is None:
        lock = scratch.setdefault("_lock", threading.Lock())
    return lock


def _next_table_id(scratch: dict, class_idx: int) -> int:
    """Per-class monotone table ids, unique across reuse contexts."""
    ids = scratch.setdefault("next_table_id", {})
    new_id = ids.get(class_idx, 0)
    ids[class_idx] = new_id + 1
    return new_id


def _encode_segment_huffman(
    seg: np.ndarray,
    class_idx: int,
    executor,
    scratch: dict | None,
    refresh: bool,
    context: str = "default",
) -> tuple[bytes, dict]:
    """One class segment through the Huffman backend.

    With ``scratch``, maintains a per-(context, class) code-book chain:
    reuse → ``table_ref``, drift rebuild → ``table_ref`` +
    ``table_delta``, refresh → full ``table``; every rebuilt book
    carries a ``table_id`` the decoder caches under.  ``context``
    separates chains whose statistics differ by construction (a
    time-series compressor keeps key frames and temporal residuals
    apart); table ids stay unique per class across contexts, so the
    decoder needs no context at all.
    """
    if scratch is None or seg.size == 0:
        return huffman_encode(seg, executor=executor)
    books = _books(scratch)
    key = (context, class_idx)
    entry = books.get(key)
    if entry is not None and not refresh:
        payload, hh = huffman_encode(
            seg,
            code=entry["code"],
            executor=executor,
            guard={"max_bits_per_symbol": _REBUILD_BPS_RATIO * entry["bps"]},
        )
        if payload is not None:
            hh = {k: v for k, v in hh.items() if k != "table"}
            hh["table_ref"] = entry["id"]
            return payload, hh
        # the stream drifted away from the cached book: fall through and
        # rebuild (only the cheap symbol-mapping probe was wasted)
    code = _build_code(seg, 4096, reserve_escape="auto")
    payload, hh = huffman_encode(seg, code=code, executor=executor)
    table = hh["table"]
    if entry is not None and not refresh:
        delta = table_delta(entry["table"], table)
        if len(json.dumps(delta)) < len(json.dumps(table)):
            hh = {k: v for k, v in hh.items() if k != "table"}
            hh["table_ref"] = entry["id"]
            hh["table_delta"] = delta
    with _scratch_lock(scratch):
        new_id = _next_table_id(scratch, class_idx)
        hh["table_id"] = new_id
        books[key] = {
            "id": new_id,
            "table": table,
            "code": code,
            "bps": hh["bits"] / max(seg.size, 1),
        }
        archive = scratch.setdefault("encode_tables_by_id", {})
        archive[(class_idx, new_id)] = table
        _prune_chain(archive, class_idx, new_id)
    return payload, hh


def encode_classes(
    bins: np.ndarray,
    sizes: list[int],
    backend: str = "zlib",
    level: int = 6,
    executor=None,
    scratch: dict | None = None,
    refresh: bool = False,
    context: str = "default",
) -> tuple[bytes, dict]:
    """Encode all coefficient classes as one segmented payload + header.

    ``bins`` is the int64 concatenation of every class (coarse-to-fine)
    and ``sizes`` the per-class element counts.  Each class becomes an
    independent segment — narrowed to its own smallest dtype and
    deflated (zlib) or Huffman-coded with its own code book — and the
    header records per-segment offsets, so encode and decode fan out
    over an ``executor`` and large single-class payloads additionally
    parallelize block-wise.  The emitted bytes do not depend on the
    executor.  ``scratch``/``refresh`` drive cross-call code-book reuse
    (Huffman only; see module docstring).
    """
    bins = np.ascontiguousarray(bins, dtype=np.int64).ravel()
    sizes = [int(s) for s in sizes]
    if bins.size != sum(sizes):
        raise ValueError(f"flat payload has {bins.size} values, expected {sum(sizes)}")
    if backend not in BACKENDS:
        raise ValueError(f"unknown lossless backend {backend!r}; choose from {BACKENDS}")
    bounds = np.cumsum([0] + sizes)
    segments = [bins[a:b] for a, b in zip(bounds[:-1], bounds[1:])]

    if backend == "zlib":
        # every class narrows to its own dtype; large classes split into
        # fixed-size sub-blocks so the deflate work units of a dominant
        # class parallelize just like Huffman sync blocks do.  The chunk
        # boundaries depend only on the data, so all executors emit the
        # same bytes.
        dtypes = []
        chunk_lists: list[list[bytes]] = []
        for seg in segments:
            dt = _narrow_dtype(seg)
            dtypes.append(dt.str)
            chunk_lists.append(_zlib_chunks(seg.astype(dt).tobytes()))
        deflated = _deflate_chunks(
            [c for chunks in chunk_lists for c in chunks], level, executor
        )
        payloads = []
        seg_headers = []
        pos = 0
        for dt, chunks in zip(dtypes, chunk_lists):
            parts = deflated[pos : pos + len(chunks)]
            pos += len(chunks)
            payloads.append(b"".join(parts))
            sh: dict = {"dtype": dt}
            if len(parts) > 1:
                sh["blocks"] = [len(p) for p in parts]
            seg_headers.append(sh)
    else:
        results: dict[int, tuple[bytes, dict]] = {}
        small = []
        for i, seg in enumerate(segments):
            if seg.size >= _BIG_SEGMENT:
                # dominant class: parallelize inside the segment
                results[i] = _encode_segment_huffman(
                    seg, i, executor, scratch, refresh, context
                )
            else:
                small.append(i)
        if executor is not None and len(small) > 1:
            encoded = executor.map(
                lambda i: _encode_segment_huffman(
                    segments[i], i, None, scratch, refresh, context
                ),
                small,
            )
            results.update(zip(small, encoded))
        else:
            for i in small:
                results[i] = _encode_segment_huffman(
                    segments[i], i, None, scratch, refresh, context
                )
        payloads = [results[i][0] for i in range(len(segments))]
        seg_headers = [results[i][1] for i in range(len(segments))]

    seg_meta = []
    offset = 0
    for p, sh in zip(payloads, seg_headers):
        seg_meta.append({"offset": offset, "nbytes": len(p), **sh})
        offset += len(p)
    header = {
        "backend": backend,
        "format": 2,
        "n": int(bins.size),
        "class_sizes": sizes,
        "segments": seg_meta,
    }
    return b"".join(payloads), header


def _tables(scratch: dict) -> dict:
    return scratch.setdefault("decode_tables", {})


# cached decode tables older than this many ids behind a class's newest
# can never be referenced again (the encoder re-bases every key
# interval), so they are pruned to bound a long-lived stream's memory
_TABLE_CHAIN_WINDOW = 8


def _prune_chain(cache: dict, class_idx: int, new_id: int) -> None:
    for k in [
        k
        for k in cache
        if k[0] == class_idx and k[1] <= new_id - _TABLE_CHAIN_WINDOW
    ]:
        del cache[k]


def _encoder_table(scratch: dict, class_idx: int, ref: int):
    """Look a reference up in the *encoder's* table archive, if present.

    Lets the scratch that produced a blob also materialize it: every
    book the encoder ships is archived under its id (windowed like the
    decode chain), so even a drift-rebuild header — whose ``table_ref``
    points at the *previous* book — resolves without the caller ever
    having decoded the stream.
    """
    return scratch.get("encode_tables_by_id", {}).get((class_idx, int(ref)))


def _resolve_table(seg_header: dict, class_idx: int, scratch: dict | None) -> list:
    """The effective code-book table of one Huffman segment.

    Full tables are cached (under their ``table_id``) for later
    reference; ``table_ref`` headers look the base table up and apply
    the delta, extending the chain.  A missing reference means the
    caller skipped the steps that shipped the book — decode the stream
    from its last key frame instead.
    """
    table = seg_header.get("table")
    if table is None:
        ref = seg_header.get("table_ref")
        if ref is None:
            raise ValueError("segment header carries neither table nor table_ref")
        if scratch is None:
            raise ValueError(
                "segment references a cached code book but no scratch was "
                "given; decode the stream in order from its last key frame"
            )
        base = _tables(scratch).get((class_idx, int(ref)))
        if base is None:
            base = _encoder_table(scratch, class_idx, ref)
        if base is None:
            raise ValueError(
                f"unknown code-book reference {ref} for class {class_idx}; "
                "decode the stream in order from its last key frame"
            )
        delta = seg_header.get("table_delta")
        table = apply_table_delta(base, delta) if delta is not None else base
    if scratch is not None and "table_id" in seg_header:
        cache = _tables(scratch)
        tid = int(seg_header["table_id"])
        prev = cache.get((class_idx, tid))
        cache[(class_idx, tid)] = table
        if prev is not None and prev != table:
            # id collision: a restarted producer re-numbers its chain
            # from 0, so any decode tables cached under the old book
            # with this id are stale and must not be used again
            scratch.get("decode_table_objs", {}).pop((class_idx, tid), None)
        _prune_chain(cache, class_idx, tid)
    return table


def materialize_classes_header(header: dict, scratch: dict | None = None) -> dict:
    """A self-contained copy of a segmented header.

    Resolves every ``table_ref``/``table_delta`` segment against the
    (decode-side) ``scratch`` chain and inlines the full table, so the
    result decodes without any stream context — what a standalone file
    format wants to persist.  Headers that are already self-contained
    are returned unchanged.
    """
    if "segments" not in header or header.get("backend") != "huffman":
        return header
    segs = []
    changed = False
    for i, sh in enumerate(header["segments"]):
        if int(sh.get("n", 0)) > 0 and "table" not in sh:
            table = _resolve_table(sh, i, scratch)
            sh = {
                k: v
                for k, v in sh.items()
                if k not in ("table_ref", "table_delta")
            }
            sh["table"] = table
            changed = True
        segs.append(sh)
    if not changed:
        return header
    return {**header, "segments": segs}


def _decode_segmented(
    payload: bytes, header: dict, executor=None, scratch: dict | None = None
) -> tuple[np.ndarray, list[int]]:
    sizes = [int(s) for s in header["class_sizes"]]
    segs = header["segments"]
    if len(segs) != len(sizes):
        raise ValueError(
            f"header has {len(segs)} segments for {len(sizes)} classes"
        )
    backend = header.get("backend")
    end = segs[-1]["offset"] + segs[-1]["nbytes"] if segs else 0
    if end > len(payload):
        raise ValueError("truncated segmented payload")
    # resolve code-book references serially (cheap, order-dependent) so
    # the parallel phase below is embarrassingly independent; decode
    # tables of chained books are cached so a reused book pays its
    # table construction once per stream, not once per step
    effective: list[dict] = []
    dtabs: list = []
    for i, sh in enumerate(segs):
        if backend == "huffman" and int(sh["n"]) > 0:
            table = _resolve_table(sh, i, scratch)
            effective.append({**sh, "table": table})
            tid = sh.get("table_id", sh.get("table_ref"))
            if scratch is not None and tid is not None:
                cache = scratch.setdefault("decode_table_objs", {})
                obj = cache.get((i, int(tid)))
                if obj is None:
                    obj = decode_tables(code_from_table(table))
                    cache[(i, int(tid))] = obj
                    _prune_chain(cache, i, int(tid))
                dtabs.append(obj)
            else:
                dtabs.append(None)
        else:
            effective.append(sh)
            dtabs.append(None)

    out = np.empty(sum(sizes), dtype=np.int64)
    starts = np.cumsum([0] + sizes)

    def decode_one(i: int, inner=None) -> None:
        sh = effective[i]
        sub = payload[sh["offset"] : sh["offset"] + sh["nbytes"]]
        if backend == "zlib":
            blocks = sh.get("blocks")
            if blocks:
                if sum(blocks) != sh["nbytes"]:
                    raise ValueError(
                        f"segment {i}: sub-blocks do not sum to its extent"
                    )
                bounds = np.cumsum([0] + list(blocks))
                parts = [sub[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
                raw = b"".join(_inflate_chunks(parts, inner))
            else:
                raw = zlib.decompress(sub)
            vals = np.frombuffer(raw, dtype=np.dtype(sh["dtype"])).astype(np.int64)
        else:
            vals = huffman_decode(sub, sh, executor=inner, tables=dtabs[i])
        if vals.size != sizes[i]:
            raise ValueError(f"segment {i} decoded {vals.size} values, expected {sizes[i]}")
        out[starts[i] : starts[i + 1]] = vals

    def big_enough(i: int) -> bool:
        # a segment with internal parallelism decodes through the inner
        # executor; everything else rides the across-segment fan-out
        if backend == "huffman":
            return sizes[i] >= _BIG_DECODE_SEGMENT
        return "blocks" in segs[i]

    big = [i for i in range(len(segs)) if big_enough(i)]
    small = [i for i in range(len(segs)) if not big_enough(i)]
    for i in big:
        decode_one(i, inner=executor)
    if executor is not None and len(small) > 1:
        executor.map(decode_one, small)
    else:
        for i in small:
            decode_one(i)
    return out, sizes


def decode_classes(
    payload: bytes, header: dict, executor=None, scratch: dict | None = None
) -> tuple[np.ndarray, list[int]]:
    """Invert :func:`encode_classes`; returns (flat int64 bins, sizes).

    Accepts both the segmented layout (``format: 2``) and the original
    single-stream layout, so blobs written before the segmentation
    refactor still decode.
    """
    sizes = header.get("class_sizes")
    if sizes is None:
        raise ValueError("header carries no class_sizes; not a batched payload")
    if "segments" in header:
        return _decode_segmented(payload, header, executor=executor, scratch=scratch)
    sizes = [int(s) for s in sizes]
    backend = header.get("backend")
    if backend == "zlib":
        raw = zlib.decompress(payload)
        out = np.empty(sum(sizes), dtype=np.int64)
        offset = 0
        pos = 0
        for size, dt in zip(sizes, header["dtypes"]):
            dt = np.dtype(dt)
            nbytes = size * dt.itemsize
            seg = np.frombuffer(raw[offset : offset + nbytes], dtype=dt)
            if seg.size != size:
                raise ValueError(f"decoded {seg.size} values, expected {size}")
            out[pos : pos + size] = seg
            offset += nbytes
            pos += size
        if offset != len(raw):
            raise ValueError(f"batched payload has {len(raw) - offset} trailing bytes")
        return out, sizes
    if backend == "huffman":
        out = huffman_decode(payload, header, executor=executor)
        if out.size != sum(sizes):
            raise ValueError(f"decoded {out.size} values, expected {sum(sizes)}")
        return out, sizes
    raise ValueError(f"unknown lossless backend {backend!r}")


def decode_bins(payload: bytes, header: dict) -> np.ndarray:
    """Invert :func:`encode_bins`."""
    backend = header.get("backend")
    if backend == "zlib":
        raw = zlib.decompress(payload)
        values = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
        if values.size != header["n"]:
            raise ValueError(
                f"decoded {values.size} values, expected {header['n']}"
            )
        return values.astype(np.int64)
    if backend == "huffman":
        return huffman_decode(payload, header)
    raise ValueError(f"unknown lossless backend {backend!r}")
