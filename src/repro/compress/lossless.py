"""Lossless entropy backends for the compression pipeline.

The paper's MGARD workflow keeps its entropy stage ("ZLib lossless
compression") on the CPU; this module wraps :mod:`zlib` with integer
narrowing (quantized bins are overwhelmingly tiny integers, so packing
them into the narrowest dtype before deflate roughly halves the output)
and exposes the pure-Python canonical Huffman coder as an alternative
reference backend.
"""

from __future__ import annotations

import zlib

import numpy as np

from .huffman import huffman_decode, huffman_encode

__all__ = ["encode_bins", "decode_bins", "BACKENDS"]

BACKENDS = ("zlib", "huffman")


def _narrow_dtype(values: np.ndarray) -> np.dtype:
    """Smallest signed integer dtype that holds every value."""
    if values.size == 0:
        return np.dtype(np.int8)
    lo, hi = int(values.min()), int(values.max())
    for dt in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dt)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dt)
    raise AssertionError("int64 always fits")  # pragma: no cover


def encode_bins(values: np.ndarray, backend: str = "zlib", level: int = 6) -> tuple[bytes, dict]:
    """Losslessly encode an int64 bin array; returns (payload, header)."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if backend == "zlib":
        dt = _narrow_dtype(values)
        raw = values.astype(dt).tobytes()
        payload = zlib.compress(raw, level)
        header = {"backend": "zlib", "dtype": dt.str, "n": int(values.size)}
        return payload, header
    if backend == "huffman":
        payload, hh = huffman_encode(values)
        hh["backend"] = "huffman"
        return payload, hh
    raise ValueError(f"unknown lossless backend {backend!r}; choose from {BACKENDS}")


def decode_bins(payload: bytes, header: dict) -> np.ndarray:
    """Invert :func:`encode_bins`."""
    backend = header.get("backend")
    if backend == "zlib":
        raw = zlib.decompress(payload)
        values = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
        if values.size != header["n"]:
            raise ValueError(
                f"decoded {values.size} values, expected {header['n']}"
            )
        return values.astype(np.int64)
    if backend == "huffman":
        return huffman_decode(payload, header)
    raise ValueError(f"unknown lossless backend {backend!r}")
