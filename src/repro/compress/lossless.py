"""Lossless entropy backends for the compression pipeline.

The paper's MGARD workflow keeps its entropy stage ("ZLib lossless
compression") on the CPU; this module wraps :mod:`zlib` with integer
narrowing (quantized bins are overwhelmingly tiny integers, so packing
them into the narrowest dtype before deflate roughly halves the output)
and exposes the pure-Python canonical Huffman coder as an alternative
reference backend.
"""

from __future__ import annotations

import zlib

import numpy as np

from .huffman import huffman_decode, huffman_encode

__all__ = ["encode_bins", "decode_bins", "encode_classes", "decode_classes", "BACKENDS"]

BACKENDS = ("zlib", "huffman")


def _narrow_dtype(values: np.ndarray) -> np.dtype:
    """Smallest signed integer dtype that holds every value."""
    if values.size == 0:
        return np.dtype(np.int8)
    lo, hi = int(values.min()), int(values.max())
    for dt in (np.int8, np.int16, np.int32, np.int64):
        info = np.iinfo(dt)
        if info.min <= lo and hi <= info.max:
            return np.dtype(dt)
    raise AssertionError("int64 always fits")  # pragma: no cover


def encode_bins(values: np.ndarray, backend: str = "zlib", level: int = 6) -> tuple[bytes, dict]:
    """Losslessly encode an int64 bin array; returns (payload, header)."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if backend == "zlib":
        dt = _narrow_dtype(values)
        raw = values.astype(dt).tobytes()
        payload = zlib.compress(raw, level)
        header = {"backend": "zlib", "dtype": dt.str, "n": int(values.size)}
        return payload, header
    if backend == "huffman":
        payload, hh = huffman_encode(values)
        hh["backend"] = "huffman"
        return payload, hh
    raise ValueError(f"unknown lossless backend {backend!r}; choose from {BACKENDS}")


def encode_classes(
    bins: np.ndarray,
    sizes: list[int],
    backend: str = "zlib",
    level: int = 6,
) -> tuple[bytes, dict]:
    """Encode all coefficient classes as one payload with one header.

    ``bins`` is the int64 concatenation of every class (coarse-to-fine)
    and ``sizes`` the per-class element counts.  For zlib, each class is
    still narrowed to its own smallest dtype (fine classes are near-zero
    and pack much tighter than the coarse class) before a single deflate
    pass; for huffman, one shared code book covers all classes, with
    coarse-class outliers riding the escape channel.
    """
    bins = np.ascontiguousarray(bins, dtype=np.int64).ravel()
    sizes = [int(s) for s in sizes]
    if bins.size != sum(sizes):
        raise ValueError(f"flat payload has {bins.size} values, expected {sum(sizes)}")
    if backend == "zlib":
        bounds = np.cumsum([0] + sizes)
        parts, dtypes = [], []
        for a, b in zip(bounds[:-1], bounds[1:]):
            seg = bins[a:b]
            dt = _narrow_dtype(seg)
            parts.append(seg.astype(dt).tobytes())
            dtypes.append(dt.str)
        payload = zlib.compress(b"".join(parts), level)
        header = {
            "backend": "zlib",
            "dtypes": dtypes,
            "n": int(bins.size),
            "class_sizes": sizes,
        }
        return payload, header
    if backend == "huffman":
        payload, header = huffman_encode(bins)
        header["backend"] = "huffman"
        header["class_sizes"] = sizes
        return payload, header
    raise ValueError(f"unknown lossless backend {backend!r}; choose from {BACKENDS}")


def decode_classes(payload: bytes, header: dict) -> tuple[np.ndarray, list[int]]:
    """Invert :func:`encode_classes`; returns (flat int64 bins, sizes)."""
    sizes = header.get("class_sizes")
    if sizes is None:
        raise ValueError("header carries no class_sizes; not a batched payload")
    sizes = [int(s) for s in sizes]
    backend = header.get("backend")
    if backend == "zlib":
        raw = zlib.decompress(payload)
        out = np.empty(sum(sizes), dtype=np.int64)
        offset = 0
        pos = 0
        for size, dt in zip(sizes, header["dtypes"]):
            dt = np.dtype(dt)
            nbytes = size * dt.itemsize
            seg = np.frombuffer(raw[offset : offset + nbytes], dtype=dt)
            if seg.size != size:
                raise ValueError(f"decoded {seg.size} values, expected {size}")
            out[pos : pos + size] = seg
            offset += nbytes
            pos += size
        if offset != len(raw):
            raise ValueError(f"batched payload has {len(raw) - offset} trailing bytes")
        return out, sizes
    if backend == "huffman":
        out = huffman_decode(payload, header)
        if out.size != sum(sizes):
            raise ValueError(f"decoded {out.size} values, expected {sum(sizes)}")
        return out, sizes
    raise ValueError(f"unknown lossless backend {backend!r}")


def decode_bins(payload: bytes, header: dict) -> np.ndarray:
    """Invert :func:`encode_bins`."""
    backend = header.get("backend")
    if backend == "zlib":
        raw = zlib.decompress(payload)
        values = np.frombuffer(raw, dtype=np.dtype(header["dtype"]))
        if values.size != header["n"]:
            raise ValueError(
                f"decoded {values.size} values, expected {header['n']}"
            )
        return values.astype(np.int64)
    if backend == "huffman":
        return huffman_decode(payload, header)
    raise ValueError(f"unknown lossless backend {backend!r}")
