"""Execution layer for the compression pipeline's schedulable work units.

The paper hides the refactoring cost behind concurrency (CUDA streams on
the device, pipelined I/O across time steps); the host-side encode path
deserves the same treatment.  Every stage that fans out over independent
work units — per-class entropy segments, the sync blocks inside one
Huffman segment, the stages of a streaming write pipeline — takes an
*executor* and schedules through it instead of looping inline:

``SerialExecutor``
    Runs work inline on the calling thread.  The default, and the
    reference the parallel path must match byte-for-byte.

``ParallelExecutor``
    A :class:`concurrent.futures.ThreadPoolExecutor`-backed pool.
    Threads suit this workload: the heavy kernels (``zlib.compress``,
    NumPy array ops) release the GIL, so class segments genuinely
    overlap on multi-core hosts while results keep their submission
    order — parallel encode emits the same bytes as serial encode.

Selection is explicit (pass an executor), planned (the
``CompressionPlan.executor`` spec), or ambient: :func:`get_executor`
resolves ``None`` through :func:`set_default_executor` and the
``REPRO_EXECUTOR`` environment variable (``serial``, ``parallel``,
``parallel:N``, or ``auto``).
"""

from __future__ import annotations

import concurrent.futures
import os
import threading

__all__ = [
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "set_default_executor",
    "default_spec",
    "available_workers",
]

_ENV_KNOB = "REPRO_EXECUTOR"


def available_workers() -> int:
    """Worker count ``auto`` resolves to (the cores *this process* may
    use — CPU affinity / cgroup pinning respected where the platform
    exposes it, so containers don't oversubscribe)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # platforms without sched_getaffinity
        return max(os.cpu_count() or 1, 1)


class SerialExecutor:
    """Inline executor: ``map`` runs on the calling thread, in order."""

    max_workers = 1

    def map(self, fn, *iterables) -> list:
        return [fn(*args) for args in zip(*iterables)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class ParallelExecutor:
    """Thread-pool executor for GIL-releasing encode/decode work units.

    The pool is created lazily on first use and shared by every call;
    ``map`` preserves submission order, so any fan-out scheduled through
    it reassembles deterministically regardless of completion order.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or available_workers()
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            with self._lock:
                if self._pool is None:
                    self._pool = concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-encode",
                    )
        return self._pool

    def map(self, fn, *iterables) -> list:
        return list(self._ensure_pool().map(fn, *iterables))

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(max_workers={self.max_workers})"


_default_spec: str | None = None
_instances: dict[str, SerialExecutor | ParallelExecutor] = {}
_instances_lock = threading.Lock()


def set_default_executor(spec: str | None) -> None:
    """Set the ambient executor spec (overrides ``REPRO_EXECUTOR``).

    Pass ``None`` to fall back to the environment variable again.
    """
    global _default_spec
    if spec is not None:
        _parse_spec(spec)  # validate eagerly
    _default_spec = spec


def _parse_spec(spec: str) -> tuple[str, int | None]:
    spec = spec.strip().lower()
    if spec in ("", "serial"):
        return "serial", None
    if spec == "auto":
        return ("parallel", None) if available_workers() > 1 else ("serial", None)
    if spec == "parallel":
        return "parallel", None
    if spec.startswith("parallel:"):
        try:
            n = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad executor spec {spec!r}: worker count not an int")
        if n < 1:
            raise ValueError(f"bad executor spec {spec!r}: need >= 1 worker")
        return "parallel", n
    raise ValueError(
        f"unknown executor spec {spec!r}; use 'serial', 'parallel', "
        "'parallel:N', or 'auto'"
    )


def default_spec() -> str:
    """The ambient executor spec a ``None`` request resolves to."""
    if _default_spec is not None:
        return _default_spec
    return os.environ.get(_ENV_KNOB, "serial")


def get_executor(spec: str | None = None):
    """Resolve an executor spec to a (shared) executor instance.

    ``None`` falls through :func:`set_default_executor`, then the
    ``REPRO_EXECUTOR`` environment variable, then ``serial``.  Instances
    are cached per normalized spec, so repeated resolution reuses one
    thread pool.
    """
    if spec is None:
        spec = default_spec()
    kind, workers = _parse_spec(spec)
    key = "serial" if kind == "serial" else f"parallel:{workers or 0}"
    with _instances_lock:
        inst = _instances.get(key)
        if inst is None:
            inst = SerialExecutor() if kind == "serial" else ParallelExecutor(workers)
            _instances[key] = inst
        return inst
