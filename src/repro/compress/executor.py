"""Back-compat shim: the executor layer moved to :mod:`repro.parallel`.

The compression pipeline's schedulable-work-unit interface outgrew
``compress/`` once the streaming pipeline and the process backend
joined the thread pool; the implementation now lives in
:mod:`repro.parallel.executors` (with the shared-memory transport in
:mod:`repro.parallel.shm`).  Everything historically importable from
here keeps working — ``ParallelExecutor`` is the thread backend's
pre-refactor name.
"""

from __future__ import annotations

from ..parallel.executors import (
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    default_spec,
    get_executor,
    set_default_executor,
)

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "get_executor",
    "set_default_executor",
    "default_spec",
    "available_workers",
]
