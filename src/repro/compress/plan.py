"""Cached refactor/compression plans: build once, launch many times.

The paper's GPU designs split every operation into a *compiled kernel*
(shape-dependent setup: packed layouts, operator data, launch geometry)
and a *launch* (the per-array work).  This module applies the same idiom
to the compression pipeline: a :class:`RefactorPlan` pins the shared
:class:`~repro.core.grid.TensorHierarchy` (interpolation weights, banded
mass matrices, Cholesky factors) for one grid geometry, and a
:class:`CompressionPlan` additionally pins the quantizer budgets and the
entropy-stage configuration for one (geometry, tolerance, mode, backend)
tuple.  Both are memoized, so streaming and multi-field workloads that
compress thousands of same-shape arrays pay the setup cost exactly once.

>>> from repro.compress.plan import compression_plan
>>> plan = compression_plan((65, 65), tol=1e-3)
>>> plan is compression_plan((65, 65), tol=1e-3)   # cached
True
>>> comp = plan.compressor()                       # ready-to-launch
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.classes import class_sizes, num_classes
from ..core.grid import TensorHierarchy, _coords_key, _LruCache, hierarchy_for

__all__ = [
    "RefactorPlan",
    "CompressionPlan",
    "refactor_plan",
    "compression_plan",
    "clear_plan_cache",
    "plan_cache_stats",
]


@dataclass(frozen=True)
class RefactorPlan:
    """Per-geometry setup shared by every refactor of one grid shape.

    Wraps the cached hierarchy together with the derived class layout
    (class count and sizes) that the quantize/entropy stages and the
    container formats need on every call.
    """

    hier: TensorHierarchy
    n_classes: int
    class_sizes: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return self.hier.shape

    @classmethod
    def for_hierarchy(cls, hier: TensorHierarchy) -> "RefactorPlan":
        return cls(
            hier=hier,
            n_classes=num_classes(hier),
            class_sizes=tuple(class_sizes(hier)),
        )


@dataclass(frozen=True)
class CompressionPlan:
    """Everything shape/tolerance-dependent in one compress call.

    Holds the refactor plan plus the quantizer (with its per-class step
    budget resolved once), the entropy backend, and the executor spec
    that schedules the encode stage's work units, so
    :meth:`compressor` instances share all setup.  ``scratch`` is a
    plan-lifetime dictionary the pipeline stages may use for reusable
    buffers (e.g. Huffman code books for slowly-varying streams);
    consumers carve private namespaces out of it with
    :meth:`scratch_area` so same-geometry streams never collide.
    """

    refactor: RefactorPlan
    tol: float
    mode: str
    backend: str
    steps: tuple[float, ...]
    executor: str = "serial"
    scratch: dict = field(default_factory=dict, compare=False, repr=False)

    @property
    def hier(self) -> TensorHierarchy:
        return self.refactor.hier

    @property
    def shape(self) -> tuple[int, ...]:
        return self.refactor.shape

    def quantizer(self):
        """A quantizer whose step budget is resolved from this plan."""
        from .quantizer import Quantizer

        q = Quantizer(self.tol, mode=self.mode)
        q.seed_steps(self.refactor.n_classes, self.steps)
        return q

    def get_executor(self):
        """The (shared) executor instance this plan's spec resolves to."""
        from .executor import get_executor

        return get_executor(self.executor)

    def scratch_area(self, tag: str) -> dict:
        """A private sub-dictionary of ``scratch`` for one consumer.

        ``scratch`` is shared by every plan of one (geometry, tol,
        mode, backend) — the executor spec deliberately plays no part,
        since scheduling never changes emitted bytes — and outlives any
        one compressor: a stream writer that tags its area with its
        output path can resume its code-book chain after being
        reopened, while two concurrent same-geometry streams
        (different tags) stay isolated.
        """
        return self.scratch.setdefault(tag, {})

    def compressor(self, engine=None, **kwargs):
        """A ready-to-launch :class:`~repro.compress.mgard.MgardCompressor`."""
        from .mgard import MgardCompressor

        return MgardCompressor(
            self.hier,
            self.tol,
            mode=self.mode,
            backend=self.backend,
            engine=engine,
            plan=self,
            **kwargs,
        )


_PLAN_CACHE = _LruCache(max_entries=128)

# scratch dictionaries are keyed by everything in the plan identity
# EXCEPT the executor spec: the executor is pure runtime scheduling
# (emitted bytes never depend on it), so a stream's code-book chain
# must survive the ambient executor changing between reopens
_SCRATCH_CACHE = _LruCache(max_entries=128)


def refactor_plan(
    shape: tuple[int, ...],
    coords: tuple[np.ndarray | None, ...] | None = None,
) -> RefactorPlan:
    """Cached :class:`RefactorPlan` for one grid geometry."""
    key = ("refactor", tuple(int(s) for s in shape), _coords_key(coords))
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = RefactorPlan.for_hierarchy(hierarchy_for(shape, coords))
        _PLAN_CACHE.put(key, plan)
    return plan


def compression_plan(
    shape: tuple[int, ...],
    tol: float,
    mode: str = "level",
    backend: str = "zlib",
    coords: tuple[np.ndarray | None, ...] | None = None,
    executor: str | None = None,
) -> CompressionPlan:
    """Cached :class:`CompressionPlan` for one (geometry, tol, mode, backend).

    ``executor`` is the codec executor spec (``"serial"``,
    ``"thread[:N]"`` — alias ``"parallel"`` —, ``"process[:N]"``,
    ``"auto"``; see :mod:`repro.parallel`); ``None`` resolves the
    ambient default (``REPRO_EXECUTOR`` /
    :func:`repro.parallel.set_default_executor`) at plan-build time.
    """
    if executor is None:
        from .executor import default_spec

        executor = default_spec()
    base_key = (
        "compress",
        tuple(int(s) for s in shape),
        _coords_key(coords),
        float(tol),
        str(mode),
        str(backend),
    )
    key = base_key + (str(executor),)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        from .quantizer import Quantizer

        scratch = _SCRATCH_CACHE.get(base_key)
        if scratch is None:
            scratch = {}
            _SCRATCH_CACHE.put(base_key, scratch)
        rplan = refactor_plan(shape, coords)
        steps = tuple(Quantizer(tol, mode=mode).steps_for(rplan.n_classes))
        plan = CompressionPlan(
            refactor=rplan, tol=float(tol), mode=str(mode), backend=str(backend),
            steps=steps, executor=str(executor), scratch=scratch,
        )
        _PLAN_CACHE.put(key, plan)
    return plan


def clear_plan_cache() -> None:
    """Drop all cached plans and scratch (and reset the counters)."""
    _PLAN_CACHE.clear()
    _SCRATCH_CACHE.clear()


def plan_cache_stats() -> dict:
    """Snapshot of the plan cache: entries, hits, misses."""
    return _PLAN_CACHE.stats()
