"""MGARD-style error-bounded lossy compressor (paper Showcase V-B).

Pipeline (matching the MGARD software the paper accelerates):

1. **data refactoring** — multigrid decomposition into coefficient
   classes (the stage the paper offloads to the GPU);
2. **quantization** — error-budgeted uniform scalar quantization of the
   classes (also offloaded in the paper, to avoid an extra host
   round-trip);
3. **entropy encoding** — lossless coding of the integer bins (zlib in
   the paper; kept on the CPU).

:class:`MgardCompressor` is functional end to end (compress →
decompress honours the L∞ error bound) and, when built with a metered
engine, reports the per-stage *modeled* times that reproduce the
paper's Fig. 11 breakdown, plus real wall-clock times of every stage.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.classes import CoefficientClasses, class_sizes, extract_classes
from ..core.decompose import decompose, recompose
from ..core.classes import assemble_from_classes
from ..core.engine import Engine, NumpyEngine
from ..core.grid import TensorHierarchy
from .lossless import decode_bins, decode_classes, encode_bins, encode_classes
from .quantizer import Quantizer

__all__ = ["CompressedData", "MgardCompressor", "PreparedFrame", "StageTimes"]


@dataclass
class StageTimes:
    """Per-stage timings of one compress/decompress call (seconds)."""

    refactor_wall: float = 0.0
    quantize_wall: float = 0.0
    entropy_wall: float = 0.0
    refactor_modeled: float | None = None
    quantize_modeled: float | None = None
    transfer_modeled: float | None = None

    @property
    def total_wall(self) -> float:
        return self.refactor_wall + self.quantize_wall + self.entropy_wall


@dataclass
class PreparedFrame:
    """Refactored + quantized (but not yet entropy-coded) data.

    The output of :meth:`MgardCompressor.prepare` and the input of
    :meth:`MgardCompressor.encode_prepared` — the seam that splits one
    ``compress`` call into its in-order half (refactor + quantize,
    which closed-loop temporal prediction must run serially because
    the *reconstruction* feeds the next frame's residual) and its
    stateless half (entropy coding, which a pipeline overlaps across
    steps).  Entropy coding is lossless, so the reconstruction is
    already fully determined here: :meth:`MgardCompressor.\
reconstruct_prepared` inverts the quantization without ever touching
    the encoder.
    """

    bins: np.ndarray = field(repr=False)  # int64 concatenation of classes
    sizes: list[int]
    steps: list[float]
    shape: tuple[int, ...]
    tol: float
    mode: str
    nbytes_in: int
    times: StageTimes = field(default_factory=StageTimes)


@dataclass
class CompressedData:
    """Self-contained compressed representation of one array."""

    payloads: list[bytes]
    headers: list[dict]
    steps: list[float]
    shape: tuple[int, ...]
    tol: float
    mode: str
    times: StageTimes = field(default_factory=StageTimes)

    @property
    def nbytes(self) -> int:
        meta = len(json.dumps(self.headers).encode())
        return sum(len(p) for p in self.payloads) + meta

    def compression_ratio(self, itemsize: int = 8) -> float:
        n = 1
        for s in self.shape:
            n *= s
        return n * itemsize / self.nbytes


class MgardCompressor:
    """Error-bounded lossy compressor built on multigrid refactoring.

    Parameters
    ----------
    hier:
        The grid hierarchy (shape + optional non-uniform coordinates).
    tol:
        Absolute L∞ error bound for round-tripped data.
    mode:
        Quantizer budgeting mode (``"level"`` or ``"uniform"``).
    backend:
        Lossless backend (``"zlib"`` — the paper's choice — or
        ``"huffman"``).
    engine:
        Refactoring engine; pass a metered engine to obtain modeled
        GPU/CPU stage times (Fig. 11).
    quantize_on_gpu:
        Whether the quantization stage runs on the device in the modeled
        breakdown (the paper offloads it together with refactoring).
    batch_classes:
        Encode all coefficient classes into one payload with a single
        shared header (the batched fast path) instead of one
        payload/header per class.  Decompression auto-detects either
        layout.
    plan:
        Optional :class:`~repro.compress.plan.CompressionPlan`; when
        given, the quantizer step budget comes pre-resolved from the
        plan cache.  Prefer :meth:`for_shape` which wires this up.
    executor:
        Executor (instance or spec string — ``serial``, ``thread[:N]``,
        ``process[:N]``, ``auto``; see :mod:`repro.parallel`) scheduling
        the entropy stage's per-class segments, Huffman sync blocks,
        and zlib sub-blocks; defaults to the plan's executor, else the
        ambient default.  The emitted bytes do not depend on this
        choice.
    """

    def __init__(
        self,
        hier: TensorHierarchy,
        tol: float,
        mode: str = "level",
        backend: str = "zlib",
        engine: Engine | None = None,
        quantize_on_gpu: bool = True,
        batch_classes: bool = True,
        plan=None,
        executor=None,
    ):
        from .executor import get_executor

        self.hier = hier
        self.plan = plan
        if plan is not None:
            self.quantizer = plan.quantizer()
            self.backend = plan.backend
        else:
            self.quantizer = Quantizer(tol, mode=mode)
            self.backend = backend
        if executor is None:
            self.executor = plan.get_executor() if plan is not None else get_executor()
        elif isinstance(executor, str):
            self.executor = get_executor(executor)
        else:
            self.executor = executor
        self.engine = engine if engine is not None else NumpyEngine()
        self.quantize_on_gpu = quantize_on_gpu
        self.batch_classes = batch_classes

    @classmethod
    def for_shape(
        cls,
        shape: tuple[int, ...],
        tol: float,
        mode: str = "level",
        backend: str = "zlib",
        coords=None,
        executor: str | None = None,
        **kwargs,
    ) -> "MgardCompressor":
        """A compressor built from the shared plan cache.

        Repeated calls with the same (shape, coords, tol, mode, backend)
        reuse the cached hierarchy (Cholesky factors and all) and the
        cached quantizer budget, so per-call setup is O(1).  ``executor``
        is the plan's executor spec (``"serial"``, ``"thread"``,
        ``"process"``, …).
        """
        from .plan import compression_plan

        plan = compression_plan(
            shape, tol, mode=mode, backend=backend, coords=coords, executor=executor
        )
        return cls(
            plan.hier, tol, mode=mode, backend=backend, plan=plan, **kwargs
        )

    # ------------------------------------------------------------------
    def compress(
        self,
        data: np.ndarray,
        *,
        scratch: dict | None = None,
        refresh_codebooks: bool = False,
        codebook_context: str = "default",
    ) -> CompressedData:
        """Compress ``data`` with the configured error bound.

        ``scratch`` (conventionally a
        :meth:`CompressionPlan.scratch_area`) enables cross-call
        Huffman code-book reuse in the entropy stage;
        ``refresh_codebooks=True`` forces a full-table rebuild (key
        frames), and ``codebook_context`` separates reuse chains whose
        statistics differ by construction (key frames vs temporal
        residuals).  All three require ``batch_classes``.
        """
        if self.batch_classes:
            return self.encode_prepared(
                self.prepare(data),
                scratch=scratch,
                refresh_codebooks=refresh_codebooks,
                codebook_context=codebook_context,
            )

        times = StageTimes()
        t0 = time.perf_counter()
        refactored = decompose(data, self.hier, self.engine)
        cc = CoefficientClasses(self.hier, extract_classes(refactored, self.hier))
        times.refactor_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        qc = self.quantizer.quantize(cc)
        steps = qc.steps
        times.quantize_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        payloads, headers = [], []
        for b in qc.bins:
            p, h = encode_bins(b, backend=self.backend)
            payloads.append(p)
            headers.append(h)
        times.entropy_wall = time.perf_counter() - t0

        self._attach_modeled_times(times, data.nbytes)
        return CompressedData(
            payloads=payloads,
            headers=headers,
            steps=list(steps),
            shape=self.hier.shape,
            tol=self.quantizer.tol,
            mode=self.quantizer.mode,
            times=times,
        )

    def prepare(self, data: np.ndarray) -> PreparedFrame:
        """Refactor and quantize ``data`` without entropy-coding it.

        The in-order half of :meth:`compress` (batched layout): multigrid
        decomposition into coefficient classes plus the fused flat
        quantization.  The returned :class:`PreparedFrame` fully
        determines both the final container
        (:meth:`encode_prepared`) and the decoded reconstruction
        (:meth:`reconstruct_prepared`), so closed-loop prediction can
        advance to the next frame while the entropy stage still runs.
        """
        times = StageTimes()
        t0 = time.perf_counter()
        refactored = decompose(data, self.hier, self.engine)
        cc = CoefficientClasses(self.hier, extract_classes(refactored, self.hier))
        times.refactor_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        bins, sizes, steps = self.quantizer.quantize_flat(cc)
        times.quantize_wall = time.perf_counter() - t0
        return PreparedFrame(
            bins=bins,
            sizes=sizes,
            steps=list(steps),
            shape=self.hier.shape,
            tol=self.quantizer.tol,
            mode=self.quantizer.mode,
            nbytes_in=int(data.nbytes),
            times=times,
        )

    def reconstruct_prepared(self, prep: PreparedFrame) -> np.ndarray:
        """The decoded field a :class:`PreparedFrame` will round-trip to.

        Entropy coding is lossless, so this equals
        ``decompress(encode_prepared(prep))`` bit for bit — without
        running the encoder.  It is the closed-loop feedback path of
        the pipelined time-series compressor: the prediction loop needs
        each frame's *reconstruction*, not its bytes.
        """
        classes = Quantizer.dequantize_flat(prep.bins, prep.sizes, prep.steps)
        refactored = assemble_from_classes(classes, self.hier)
        return recompose(refactored, self.hier, self.engine)

    def encode_prepared(
        self,
        prep: PreparedFrame,
        *,
        scratch: dict | None = None,
        refresh_codebooks: bool = False,
        codebook_context: str = "default",
    ) -> CompressedData:
        """Entropy-code a :class:`PreparedFrame` into a container.

        The stateless half of :meth:`compress`: given the quantized
        bins, the emitted bytes depend only on (``scratch`` chain
        position, ``refresh_codebooks``, ``codebook_context``) — not on
        any compressor state — so a pipeline may run it outside the
        prediction loop.  Calls that share a ``scratch`` (a code-book
        chain) must still arrive in stream order; an in-order pipeline
        stage gate provides exactly that.
        """
        if prep.shape != self.hier.shape:
            raise ValueError(
                f"prepared frame has shape {prep.shape}, not {self.hier.shape}"
            )
        if prep.tol != self.quantizer.tol or prep.mode != self.quantizer.mode:
            # the bins were quantized under *that* budget; encoding them
            # here would stamp the container with this compressor's
            # tol/mode and claim an error bound the payload cannot honour
            raise ValueError(
                f"prepared frame was quantized for tol={prep.tol}, "
                f"mode={prep.mode!r}; this compressor is "
                f"tol={self.quantizer.tol}, mode={self.quantizer.mode!r}"
            )
        times = StageTimes(
            refactor_wall=prep.times.refactor_wall,
            quantize_wall=prep.times.quantize_wall,
        )
        t0 = time.perf_counter()
        payload, header = encode_classes(
            prep.bins,
            prep.sizes,
            backend=self.backend,
            executor=self.executor,
            scratch=scratch,
            refresh=refresh_codebooks,
            context=codebook_context,
        )
        times.entropy_wall = time.perf_counter() - t0

        self._attach_modeled_times(times, prep.nbytes_in)
        return CompressedData(
            payloads=[payload],
            headers=[header],
            steps=list(prep.steps),
            shape=self.hier.shape,
            tol=self.quantizer.tol,
            mode=self.quantizer.mode,
            times=times,
        )

    def decompress(
        self, blob: CompressedData, *, scratch: dict | None = None
    ) -> np.ndarray:
        """Invert :meth:`compress` (up to the error bound).

        Accepts both payload layouts: one payload per class, or the
        batched single payload whose header carries ``class_sizes``
        (segmented or pre-segmentation).  ``scratch`` resolves code-book
        references of blobs encoded with cross-call reuse; such blobs
        must be decoded in stream order from their last key frame.
        """
        if blob.shape != self.hier.shape:
            raise ValueError(
                f"blob was compressed for shape {blob.shape}, not {self.hier.shape}"
            )
        sizes = class_sizes(self.hier)
        batched = len(blob.payloads) == 1 and "class_sizes" in blob.headers[0]
        times = StageTimes()
        if batched:
            t0 = time.perf_counter()
            flat, got_sizes = decode_classes(
                blob.payloads[0],
                blob.headers[0],
                executor=self.executor,
                scratch=scratch,
            )
            times.entropy_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            if got_sizes != sizes:
                raise ValueError("decoded class sizes do not match the hierarchy")
            classes = Quantizer.dequantize_flat(flat, sizes, blob.steps)
            times.quantize_wall = time.perf_counter() - t0  # de-quantization
        else:
            t0 = time.perf_counter()
            bins = [decode_bins(p, h) for p, h in zip(blob.payloads, blob.headers)]
            times.entropy_wall = time.perf_counter() - t0

            t0 = time.perf_counter()
            if [b.size for b in bins] != sizes:
                raise ValueError("decoded class sizes do not match the hierarchy")
            classes = [
                b.astype(np.float64) * step for b, step in zip(bins, blob.steps)
            ]
            times.quantize_wall = time.perf_counter() - t0  # de-quantization

        t0 = time.perf_counter()
        refactored = assemble_from_classes(classes, self.hier)
        out = recompose(refactored, self.hier, self.engine)
        times.refactor_wall = time.perf_counter() - t0

        self._attach_modeled_times(times, out.nbytes)
        blob.times = times
        return out

    # ------------------------------------------------------------------
    def _attach_modeled_times(self, times: StageTimes, nbytes: int) -> None:
        """Pull modeled stage times off a metered engine, if present."""
        clock = getattr(self.engine, "clock", None)
        if clock is None:
            return
        times.refactor_modeled = clock
        device = getattr(self.engine, "device", None)
        if device is not None:
            # quantization offloaded to the device: one streaming pass
            # (read doubles, write ints) at sustained bandwidth
            if self.quantize_on_gpu:
                times.quantize_modeled = 1.5 * nbytes / device.effective_bandwidth
                # ship the (narrowed) bins to the host for entropy coding
                times.transfer_modeled = 0.5 * nbytes / (device.pcie_bandwidth_gbps * 1e9)
            else:
                times.transfer_modeled = nbytes / (device.pcie_bandwidth_gbps * 1e9)
        cpu = getattr(self.engine, "cpu", None)
        if cpu is not None:
            # host-side scalar quantization loop
            times.quantize_modeled = (nbytes / 8) * cpu.element_ns * 0.5e-9
        # fresh clock per call
        reset = getattr(self.engine, "reset", None)
        if reset is not None:
            reset()
