"""MGARD-style error-bounded lossy compressor (paper Showcase V-B).

Pipeline (matching the MGARD software the paper accelerates):

1. **data refactoring** — multigrid decomposition into coefficient
   classes (the stage the paper offloads to the GPU);
2. **quantization** — error-budgeted uniform scalar quantization of the
   classes (also offloaded in the paper, to avoid an extra host
   round-trip);
3. **entropy encoding** — lossless coding of the integer bins (zlib in
   the paper; kept on the CPU).

:class:`MgardCompressor` is functional end to end (compress →
decompress honours the L∞ error bound) and, when built with a metered
engine, reports the per-stage *modeled* times that reproduce the
paper's Fig. 11 breakdown, plus real wall-clock times of every stage.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.classes import CoefficientClasses, class_sizes, extract_classes
from ..core.decompose import decompose, recompose
from ..core.classes import assemble_from_classes
from ..core.engine import Engine, NumpyEngine
from ..core.grid import TensorHierarchy
from .lossless import decode_bins, encode_bins
from .quantizer import Quantizer

__all__ = ["CompressedData", "MgardCompressor", "StageTimes"]


@dataclass
class StageTimes:
    """Per-stage timings of one compress/decompress call (seconds)."""

    refactor_wall: float = 0.0
    quantize_wall: float = 0.0
    entropy_wall: float = 0.0
    refactor_modeled: float | None = None
    quantize_modeled: float | None = None
    transfer_modeled: float | None = None

    @property
    def total_wall(self) -> float:
        return self.refactor_wall + self.quantize_wall + self.entropy_wall


@dataclass
class CompressedData:
    """Self-contained compressed representation of one array."""

    payloads: list[bytes]
    headers: list[dict]
    steps: list[float]
    shape: tuple[int, ...]
    tol: float
    mode: str
    times: StageTimes = field(default_factory=StageTimes)

    @property
    def nbytes(self) -> int:
        meta = len(json.dumps(self.headers).encode())
        return sum(len(p) for p in self.payloads) + meta

    def compression_ratio(self, itemsize: int = 8) -> float:
        n = 1
        for s in self.shape:
            n *= s
        return n * itemsize / self.nbytes


class MgardCompressor:
    """Error-bounded lossy compressor built on multigrid refactoring.

    Parameters
    ----------
    hier:
        The grid hierarchy (shape + optional non-uniform coordinates).
    tol:
        Absolute L∞ error bound for round-tripped data.
    mode:
        Quantizer budgeting mode (``"level"`` or ``"uniform"``).
    backend:
        Lossless backend (``"zlib"`` — the paper's choice — or
        ``"huffman"``).
    engine:
        Refactoring engine; pass a metered engine to obtain modeled
        GPU/CPU stage times (Fig. 11).
    quantize_on_gpu:
        Whether the quantization stage runs on the device in the modeled
        breakdown (the paper offloads it together with refactoring).
    """

    def __init__(
        self,
        hier: TensorHierarchy,
        tol: float,
        mode: str = "level",
        backend: str = "zlib",
        engine: Engine | None = None,
        quantize_on_gpu: bool = True,
    ):
        self.hier = hier
        self.quantizer = Quantizer(tol, mode=mode)
        self.backend = backend
        self.engine = engine if engine is not None else NumpyEngine()
        self.quantize_on_gpu = quantize_on_gpu

    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedData:
        """Compress ``data`` with the configured error bound."""
        times = StageTimes()
        t0 = time.perf_counter()
        refactored = decompose(data, self.hier, self.engine)
        cc = CoefficientClasses(self.hier, extract_classes(refactored, self.hier))
        times.refactor_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        qc = self.quantizer.quantize(cc)
        times.quantize_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        payloads, headers = [], []
        for b in qc.bins:
            p, h = encode_bins(b, backend=self.backend)
            payloads.append(p)
            headers.append(h)
        times.entropy_wall = time.perf_counter() - t0

        self._attach_modeled_times(times, data.nbytes)
        return CompressedData(
            payloads=payloads,
            headers=headers,
            steps=qc.steps,
            shape=self.hier.shape,
            tol=self.quantizer.tol,
            mode=self.quantizer.mode,
            times=times,
        )

    def decompress(self, blob: CompressedData) -> np.ndarray:
        """Invert :meth:`compress` (up to the error bound)."""
        if blob.shape != self.hier.shape:
            raise ValueError(
                f"blob was compressed for shape {blob.shape}, not {self.hier.shape}"
            )
        times = StageTimes()
        t0 = time.perf_counter()
        bins = [decode_bins(p, h) for p, h in zip(blob.payloads, blob.headers)]
        times.entropy_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        sizes = class_sizes(self.hier)
        if [b.size for b in bins] != sizes:
            raise ValueError("decoded class sizes do not match the hierarchy")
        classes = [
            b.astype(np.float64) * step for b, step in zip(bins, blob.steps)
        ]
        times.quantize_wall = time.perf_counter() - t0  # de-quantization

        t0 = time.perf_counter()
        refactored = assemble_from_classes(classes, self.hier)
        out = recompose(refactored, self.hier, self.engine)
        times.refactor_wall = time.perf_counter() - t0

        self._attach_modeled_times(times, out.nbytes)
        blob.times = times
        return out

    # ------------------------------------------------------------------
    def _attach_modeled_times(self, times: StageTimes, nbytes: int) -> None:
        """Pull modeled stage times off a metered engine, if present."""
        clock = getattr(self.engine, "clock", None)
        if clock is None:
            return
        times.refactor_modeled = clock
        device = getattr(self.engine, "device", None)
        if device is not None:
            # quantization offloaded to the device: one streaming pass
            # (read doubles, write ints) at sustained bandwidth
            if self.quantize_on_gpu:
                times.quantize_modeled = 1.5 * nbytes / device.effective_bandwidth
                # ship the (narrowed) bins to the host for entropy coding
                times.transfer_modeled = 0.5 * nbytes / (device.pcie_bandwidth_gbps * 1e9)
            else:
                times.transfer_modeled = nbytes / (device.pcie_bandwidth_gbps * 1e9)
        cpu = getattr(self.engine, "cpu", None)
        if cpu is not None:
            # host-side scalar quantization loop
            times.quantize_modeled = (nbytes / 8) * cpu.element_ns * 0.5e-9
        # fresh clock per call
        reset = getattr(self.engine, "reset", None)
        if reset is not None:
            reset()
