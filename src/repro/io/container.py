"""Self-describing container for refactored data (the ADIOS stand-in).

The paper stores refactored data through ADIOS so consumers can read a
*prefix* of coefficient classes.  This module provides an equivalent
single-file container:

* a JSON header (shape, coordinates digest, dtype, per-class offsets);
* one binary extent per coefficient class, laid out coarse-to-fine so a
  prefix read is a single contiguous range.

``read_classes(k)`` reads only the first ``k`` classes — the partial-
read capability the whole showcase is about.  Integrity is protected by
per-class CRC32 checksums.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.classes import CoefficientClasses, class_sizes
from ..core.grid import TensorHierarchy, hierarchy_for

__all__ = [
    "RefactoredFileWriter",
    "RefactoredFileReader",
    "write_refactored",
    "write_refactored_stream",
    "ContainerError",
]

_MAGIC = b"RPRC\x01\x00"


class ContainerError(RuntimeError):
    """Malformed or inconsistent container file."""


@dataclass
class _ClassExtent:
    offset: int
    nbytes: int
    crc32: int
    count: int


class RefactoredFileWriter:
    """Write coefficient classes into a self-describing container file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def write(self, cc: CoefficientClasses, attrs: dict | None = None) -> int:
        """Write all classes; returns total bytes written."""
        with open(self.path, "wb") as f:
            return write_refactored_stream(f, cc, attrs=attrs)


def write_refactored_stream(f, cc: CoefficientClasses, attrs: dict | None = None) -> int:
    """Serialize a container into an open binary stream; returns bytes.

    The streaming form lets a pipeline *encode* a step into memory
    (``io.BytesIO``) while a later stage owns the actual disk write.
    """
    extents = []
    blobs = []
    offset = 0
    for values in cc.classes:
        raw = np.ascontiguousarray(values, dtype=np.float64).tobytes()
        extents.append(
            _ClassExtent(
                offset=offset, nbytes=len(raw),
                crc32=zlib.crc32(raw), count=int(values.size),
            )
        )
        blobs.append(raw)
        offset += len(raw)
    header = {
        "shape": list(cc.hier.shape),
        "dtype": "<f8",
        "n_classes": cc.n_classes,
        "classes": [
            {"offset": e.offset, "nbytes": e.nbytes, "crc32": e.crc32, "count": e.count}
            for e in extents
        ],
        "attrs": attrs or {},
    }
    hbytes = json.dumps(header).encode()
    f.write(_MAGIC)
    f.write(struct.pack("<Q", len(hbytes)))
    f.write(hbytes)
    for raw in blobs:
        f.write(raw)
    return len(_MAGIC) + 8 + len(hbytes) + offset


class RefactoredFileReader:
    """Read class prefixes (or single classes) out of a container file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        with open(self.path, "rb") as f:
            magic = f.read(len(_MAGIC))
            if magic != _MAGIC:
                raise ContainerError(f"bad magic in {self.path}")
            (hlen,) = struct.unpack("<Q", f.read(8))
            try:
                self.header = json.loads(f.read(hlen).decode())
            except (UnicodeDecodeError, json.JSONDecodeError) as e:
                raise ContainerError(f"corrupt header in {self.path}") from e
            self._payload_start = len(_MAGIC) + 8 + hlen

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.header["shape"])

    @property
    def n_classes(self) -> int:
        return int(self.header["n_classes"])

    @property
    def attrs(self) -> dict:
        return dict(self.header["attrs"])

    def class_nbytes(self) -> list[int]:
        return [int(c["nbytes"]) for c in self.header["classes"]]

    def read_class(self, l: int, verify: bool = True) -> np.ndarray:
        """Read a single coefficient class."""
        if not 0 <= l < self.n_classes:
            raise ContainerError(f"class {l} out of range [0, {self.n_classes})")
        meta = self.header["classes"][l]
        with open(self.path, "rb") as f:
            f.seek(self._payload_start + meta["offset"])
            raw = f.read(meta["nbytes"])
        if len(raw) != meta["nbytes"]:
            raise ContainerError(f"truncated class {l} in {self.path}")
        if verify and zlib.crc32(raw) != meta["crc32"]:
            raise ContainerError(f"checksum mismatch for class {l} in {self.path}")
        return np.frombuffer(raw, dtype=np.float64).copy()

    def read_classes(self, k: int | None = None, verify: bool = True) -> list[np.ndarray]:
        """Read the first ``k`` classes (all when ``None``) — a prefix read."""
        k = self.n_classes if k is None else k
        if not 1 <= k <= self.n_classes:
            raise ContainerError(f"k must be in [1, {self.n_classes}], got {k}")
        return [self.read_class(l, verify=verify) for l in range(k)]

    def to_coefficient_classes(
        self, hier: TensorHierarchy | None = None
    ) -> CoefficientClasses:
        """Reassemble a full :class:`CoefficientClasses` (all classes)."""
        hier = hier if hier is not None else hierarchy_for(self.shape)
        if hier.shape != self.shape:
            raise ContainerError(
                f"hierarchy shape {hier.shape} does not match file {self.shape}"
            )
        classes = self.read_classes()
        expected = class_sizes(hier)
        if [c.size for c in classes] != expected:
            raise ContainerError("class sizes in file do not match the hierarchy")
        return CoefficientClasses(hier, classes)


def write_refactored(path: str | Path, cc: CoefficientClasses, attrs: dict | None = None) -> int:
    """Convenience wrapper around :class:`RefactoredFileWriter`."""
    return RefactoredFileWriter(path).write(cc, attrs=attrs)
