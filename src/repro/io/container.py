"""Self-describing container for refactored data (the ADIOS stand-in).

The paper stores refactored data through ADIOS so consumers can read a
*prefix* of coefficient classes.  This module provides an equivalent
single-file container:

* a JSON header (shape, coordinates digest, dtype, per-class offsets);
* one binary extent per coefficient class, laid out coarse-to-fine so a
  prefix read is a single contiguous range.

``read_classes(k)`` reads only the first ``k`` classes — the partial-
read capability the whole showcase is about.  Integrity is protected by
per-class CRC32 checksums.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import faults
from ..core.classes import CoefficientClasses, class_sizes
from ..core.grid import TensorHierarchy, hierarchy_for
from ..errors import ContainerError
from .publish import atomic_publish

__all__ = [
    "RefactoredFileWriter",
    "RefactoredFileReader",
    "ShardedFileReader",
    "container_extents",
    "write_refactored",
    "write_refactored_stream",
    "read_refactored_stream",
    "write_sharded_stream",
    "ContainerError",
]

_MAGIC = b"RPRC\x01\x00"
_SHARD_MAGIC = b"RPSH\x01\x00"

# ContainerError itself lives in repro.errors (re-exported here) so
# repro.compress.fileio can subclass it without an import cycle.


def _read_header(path: Path, magic: bytes) -> tuple[dict, int]:
    """Parse a container file's (JSON header, payload offset).

    Every way a truncated or overwritten file can fail here — short
    magic, short length word, short or unparseable JSON — maps to
    :class:`ContainerError` with path + offset context; raw
    ``struct``/``json`` internals never escape.
    """
    with open(path, "rb") as f:
        if f.read(len(magic)) != magic:
            raise ContainerError(f"bad magic in {path}")
        raw = f.read(8)
        if len(raw) != 8:
            raise ContainerError(
                f"truncated header length in {path} "
                f"(offset {len(magic)}: got {len(raw)} of 8 bytes)"
            )
        (hlen,) = struct.unpack("<Q", raw)
        raw = f.read(hlen)
        if len(raw) != hlen:
            raise ContainerError(
                f"truncated header in {path} "
                f"(offset {len(magic) + 8}: got {len(raw)} of {hlen} bytes)"
            )
        try:
            header = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise ContainerError(f"corrupt header in {path}") from e
        if not isinstance(header, dict):
            raise ContainerError(f"corrupt header in {path}: not a JSON object")
    return header, len(magic) + 8 + hlen


def _ranged_read(path: Path, offset: int, nbytes: int, crc32: int | None, what: str) -> bytes:
    """One extent of a container file, length- and checksum-verified.

    ``container.read.<what>`` is a fault-injection site: armed
    ``truncate``/``bitflip`` faults corrupt the bytes *after* the read
    (corruption on the wire / in the page cache), which the length and
    CRC checks then catch; ``delay`` faults model a slow device.
    """
    with open(path, "rb") as f:
        f.seek(offset)
        raw = f.read(nbytes)
    site = f"container.read.{what}"
    faults.delay_point(site)  # reprolint: site container.read.*
    raw = faults.corrupt_bytes(site, raw)  # reprolint: site container.read.*
    if len(raw) != nbytes:
        raise ContainerError(
            f"truncated {what} in {path} "
            f"(offset {offset}: got {len(raw)} of {nbytes} bytes)"
        )
    if crc32 is not None and zlib.crc32(raw) != crc32:
        raise ContainerError(
            f"checksum mismatch for {what} in {path} (offset {offset}, {nbytes} bytes)"
        )
    return raw


@dataclass
class _ClassExtent:
    offset: int
    nbytes: int
    crc32: int
    count: int


class RefactoredFileWriter:
    """Write coefficient classes into a self-describing container file.

    ``durability="fsync"`` additionally fsyncs the published file and
    its directory, matching the stream layer's levels.
    """

    def __init__(self, path: str | Path, durability: str = "rename"):
        self.path = Path(path)
        self.durability = durability

    def write(self, cc: CoefficientClasses, attrs: dict | None = None) -> int:
        """Write all classes; returns total bytes written.

        Encodes into memory, then publishes atomically (unique temp +
        ``os.replace``) so a reader racing the write — or a crash
        mid-write — never sees a torn container under the final name.
        Fault sites: ``container.write.{pre_tmp,post_tmp,file}``.
        """
        buf = io.BytesIO()
        nbytes = write_refactored_stream(buf, cc, attrs=attrs)
        atomic_publish(self.path, buf.getvalue(), self.durability, "container.write")
        return nbytes


def write_refactored_stream(f, cc: CoefficientClasses, attrs: dict | None = None) -> int:
    """Serialize a container into an open binary stream; returns bytes.

    The streaming form lets a pipeline *encode* a step into memory
    (``io.BytesIO``) while a later stage owns the actual disk write.
    """
    extents = []
    blobs = []
    offset = 0
    for values in cc.classes:
        raw = np.ascontiguousarray(values, dtype=np.float64).tobytes()
        extents.append(
            _ClassExtent(
                offset=offset, nbytes=len(raw),
                crc32=zlib.crc32(raw), count=int(values.size),
            )
        )
        blobs.append(raw)
        offset += len(raw)
    header = {
        "shape": list(cc.hier.shape),
        "dtype": "<f8",
        "n_classes": cc.n_classes,
        "classes": [
            {"offset": e.offset, "nbytes": e.nbytes, "crc32": e.crc32, "count": e.count}
            for e in extents
        ],
        "attrs": attrs or {},
    }
    hbytes = json.dumps(header).encode()
    f.write(_MAGIC)
    f.write(struct.pack("<Q", len(hbytes)))
    f.write(hbytes)
    for raw in blobs:
        f.write(raw)
    return len(_MAGIC) + 8 + len(hbytes) + offset


class RefactoredFileReader:
    """Read class prefixes (or single classes) out of a container file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header, self._payload_start = _read_header(self.path, _MAGIC)
        if not isinstance(self.header.get("classes"), list):
            raise ContainerError(f"header in {self.path} missing its class table")

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.header["shape"])

    @property
    def n_classes(self) -> int:
        return int(self.header["n_classes"])

    @property
    def attrs(self) -> dict:
        return dict(self.header["attrs"])

    def class_nbytes(self) -> list[int]:
        return [int(c["nbytes"]) for c in self.header["classes"]]

    def read_class(self, l: int, verify: bool = True) -> np.ndarray:
        """Read a single coefficient class."""
        if not 0 <= l < self.n_classes:
            raise ContainerError(f"class {l} out of range [0, {self.n_classes})")
        meta = self.header["classes"][l]
        raw = _ranged_read(
            self.path,
            self._payload_start + meta["offset"],
            meta["nbytes"],
            meta["crc32"] if verify else None,
            f"class {l}",
        )
        return np.frombuffer(raw, dtype=np.float64).copy()

    def read_classes(self, k: int | None = None, verify: bool = True) -> list[np.ndarray]:
        """Read the first ``k`` classes (all when ``None``) — a prefix read."""
        k = self.n_classes if k is None else k
        if not 1 <= k <= self.n_classes:
            raise ContainerError(f"k must be in [1, {self.n_classes}], got {k}")
        return [self.read_class(l, verify=verify) for l in range(k)]

    def to_coefficient_classes(
        self, hier: TensorHierarchy | None = None
    ) -> CoefficientClasses:
        """Reassemble a full :class:`CoefficientClasses` (all classes)."""
        hier = hier if hier is not None else hierarchy_for(self.shape)
        if hier.shape != self.shape:
            raise ContainerError(
                f"hierarchy shape {hier.shape} does not match file {self.shape}"
            )
        classes = self.read_classes()
        expected = class_sizes(hier)
        if [c.size for c in classes] != expected:
            raise ContainerError("class sizes in file do not match the hierarchy")
        return CoefficientClasses(hier, classes)


def write_refactored(path: str | Path, cc: CoefficientClasses, attrs: dict | None = None) -> int:
    """Convenience wrapper around :class:`RefactoredFileWriter`."""
    return RefactoredFileWriter(path).write(cc, attrs=attrs)


def read_refactored_stream(data, verify: bool = True) -> tuple[dict, list[np.ndarray]]:
    """Parse an in-memory refactored container; returns (header, classes).

    The bytes-level counterpart of :class:`RefactoredFileReader` for
    containers that live inside another file — a sharded step's shard
    segments above all — where re-opening a path per class makes no
    sense.  All classes are materialized (a shard is the granularity of
    a region read; prefix reads stay a whole-file concern).
    """
    view = memoryview(data)
    start = len(_MAGIC) + 8
    if len(view) < start:
        raise ContainerError(
            f"truncated refactored payload ({len(view)} bytes, "
            f"header length needs {start})"
        )
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ContainerError("bad magic in refactored payload")
    (hlen,) = struct.unpack_from("<Q", view, len(_MAGIC))
    if len(view) < start + hlen:
        raise ContainerError(
            f"truncated header in refactored payload "
            f"(offset {start}: got {len(view) - start} of {hlen} bytes)"
        )
    try:
        header = json.loads(bytes(view[start : start + hlen]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ContainerError("corrupt header in refactored payload") from e
    if not isinstance(header, dict) or not isinstance(header.get("classes"), list):
        raise ContainerError("refactored payload header missing class table")
    payload_start = start + hlen
    classes = []
    for l, meta in enumerate(header["classes"]):
        try:
            m_offset, m_nbytes, m_crc = meta["offset"], meta["nbytes"], meta["crc32"]
        except (KeyError, TypeError) as e:
            raise ContainerError(
                f"malformed class-table entry {l} in refactored payload"
            ) from e
        lo = payload_start + m_offset
        raw = view[lo : lo + m_nbytes]
        if raw.nbytes != m_nbytes:
            raise ContainerError(
                f"truncated class {l} in refactored payload "
                f"(offset {lo}: got {raw.nbytes} of {m_nbytes} bytes)"
            )
        if verify and zlib.crc32(raw) != m_crc:
            raise ContainerError(
                f"checksum mismatch for class {l} (offset {lo}, {m_nbytes} bytes)"
            )
        classes.append(np.frombuffer(raw, dtype=np.float64).copy())
    return header, classes


def container_extents(payload) -> tuple[int, list[dict]]:
    """Dissect container bytes into (payload offset, extent table).

    The seam tiered placement splits a serialized step along: a sharded
    ``RPSH`` container yields one extent per shard segment, a
    refactored ``RPRC`` container one per coefficient class, and any
    other payload (e.g. an ``.mgz`` compressed blob) a single opaque
    extent.  Extent offsets are relative to the payload start, cover it
    exactly and in order, so prepending ``payload[:payload_start]`` to
    the concatenated extents reproduces the container byte-for-byte.

    Each row is ``{"name", "offset", "nbytes"}``; names follow the
    header's table (``shard 0`` … / ``class 0`` …, ``payload`` for
    opaque blobs).
    """
    view = memoryview(payload)
    for magic, table, label in (
        (_SHARD_MAGIC, "shards", "shard"),
        (_MAGIC, "classes", "class"),
    ):
        start = len(magic) + 8
        if len(view) < start or bytes(view[: len(magic)]) != magic:
            continue
        (hlen,) = struct.unpack_from("<Q", view, len(magic))
        if len(view) < start + hlen:
            raise ContainerError(
                f"truncated header in container payload "
                f"(offset {start}: got {len(view) - start} of {hlen} bytes)"
            )
        try:
            header = json.loads(bytes(view[start : start + hlen]).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise ContainerError("corrupt header in container payload") from e
        if not isinstance(header, dict) or not isinstance(header.get(table), list):
            raise ContainerError(f"container header missing its {label} table")
        payload_start = start + hlen
        extents = []
        for i, meta in enumerate(header[table]):
            try:
                offset, nbytes = int(meta["offset"]), int(meta["nbytes"])
            except (KeyError, TypeError) as e:
                raise ContainerError(f"malformed {label}-table entry {i}") from e
            extents.append({"name": f"{label} {i}", "offset": offset, "nbytes": nbytes})
        covered = sum(e["nbytes"] for e in extents)
        if payload_start + covered != len(view):
            raise ContainerError(
                f"container extents cover {covered} payload bytes, "
                f"file has {len(view) - payload_start}"
            )
        return payload_start, extents
    return 0, [{"name": "payload", "offset": 0, "nbytes": len(view)}]


# ----------------------------------------------------------------------
# sharded step containers: one step = a table of shard segments


def write_sharded_stream(
    f,
    shape: tuple[int, ...],
    payload_mode: str,
    bounds,
    payloads,
    attrs: dict | None = None,
) -> int:
    """Serialize shard segments into one sharded step container.

    ``bounds`` is the per-shard ``(start, stop)`` row range along axis
    0 and ``payloads`` the matching self-contained shard containers
    (``.rprc`` bytes for ``payload_mode="refactored"``, ``.mgz`` bytes
    for ``"compressed"``).  The header's shard table records offsets,
    sizes, row ranges, and CRC32s, so a region read seeks straight to
    the shards covering a sub-volume and never touches the rest.
    """
    if len(bounds) != len(payloads):
        raise ValueError("one payload per shard bound required")
    shards = []
    offset = 0
    for (start, stop), payload in zip(bounds, payloads):
        shards.append(
            {
                "start": int(start),
                "stop": int(stop),
                "offset": offset,
                "nbytes": len(payload),
                "crc32": zlib.crc32(payload),
            }
        )
        offset += len(payload)
    header = {
        "shape": list(shape),
        "axis": 0,
        "mode": payload_mode,
        "shards": shards,
        "attrs": attrs or {},
    }
    hbytes = json.dumps(header).encode()
    f.write(_SHARD_MAGIC)
    f.write(struct.pack("<Q", len(hbytes)))
    f.write(hbytes)
    for payload in payloads:
        f.write(payload)
    return len(_SHARD_MAGIC) + 8 + len(hbytes) + offset


class ShardedFileReader:
    """Read shard segments (or the subset covering a region) of a step."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header, self._payload_start = _read_header(self.path, _SHARD_MAGIC)
        if not isinstance(self.header.get("shards"), list):
            raise ContainerError(f"header in {self.path} missing its shard table")

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.header["shape"])

    @property
    def payload_mode(self) -> str:
        return str(self.header["mode"])

    @property
    def n_shards(self) -> int:
        return len(self.header["shards"])

    @property
    def attrs(self) -> dict:
        return dict(self.header["attrs"])

    def shard_bounds(self) -> list[tuple[int, int]]:
        """Per-shard ``(start, stop)`` row ranges along axis 0."""
        return [(int(s["start"]), int(s["stop"])) for s in self.header["shards"]]

    def shards_covering(self, row_start: int, row_stop: int) -> list[int]:
        """Indices of the shards intersecting rows ``[row_start, row_stop)``."""
        return [
            i
            for i, (a, b) in enumerate(self.shard_bounds())
            if a < row_stop and b > row_start
        ]

    def read_shard(self, i: int, verify: bool = True) -> bytes:
        """One shard's self-contained container bytes (a ranged read)."""
        if not 0 <= i < self.n_shards:
            raise ContainerError(f"shard {i} out of range [0, {self.n_shards})")
        meta = self.header["shards"][i]
        return _ranged_read(
            self.path,
            self._payload_start + meta["offset"],
            meta["nbytes"],
            meta["crc32"] if verify else None,
            f"shard {i}",
        )
