"""Multi-tier storage: performance model + an executed local-disk backend.

Stands in for Summit's Alpine parallel file system (and slower archive
tiers) in the visualization-workflow showcase.  Each
:class:`StorageTier` has aggregate bandwidth, per-operation latency,
and a per-process bandwidth cap; :class:`TieredStorage` routes
coefficient classes to tiers by a placement policy, which is how the
paper's Figure 1 "intelligently moves each coefficient class across
multi-tiered-storage systems".

Two halves share the one placement policy:

* the **analytic** half (:meth:`TieredStorage.write_seconds` /
  ``read_seconds``) models Summit-scale tiers for the Fig. 1 path —
  nothing moves;
* the **executed** half (:class:`LocalTierStore`) is a
  directory-per-tier local-disk object store that moves real bytes:
  per-tier byte budgets, atomic CRC-verified puts with spill-to-next-
  tier on a full budget, a crash-safe JSON index, and container-aware
  placement (:meth:`LocalTierStore.place_container` splits an ``RPSH``
  / ``RPRC`` container into its shard/class extents, places each per
  the policy, and :meth:`LocalTierStore.read_container` reassembles the
  original bytes exactly).
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path

from .. import faults

__all__ = [
    "StorageTier",
    "TieredStorage",
    "LocalTierStore",
    "StorageError",
    "ALPINE_PFS",
    "NVME_TIER",
    "ARCHIVE_TIER",
]


class StorageError(RuntimeError):
    """A tier-backend operation failed (budget, missing key, corruption)."""


@dataclass(frozen=True)
class StorageTier:
    """One storage tier's performance envelope.

    Attributes
    ----------
    write_gbps / read_gbps:
        Aggregate bandwidth across all writers/readers, GB/s.
    per_process_gbps:
        Bandwidth ceiling of one process (client-side limit).
    latency_s:
        Fixed per-operation cost (open/close, metadata).
    capacity_tb:
        Usable capacity; placement fails beyond it.
    """

    name: str
    write_gbps: float
    read_gbps: float
    per_process_gbps: float
    latency_s: float
    capacity_tb: float

    def write_seconds(self, nbytes: int, n_processes: int = 1) -> float:
        """Modeled time for ``n_processes`` to collectively write ``nbytes``."""
        bw = min(self.write_gbps, self.per_process_gbps * n_processes) * 1e9
        return self.latency_s + nbytes / bw

    def read_seconds(self, nbytes: int, n_processes: int = 1) -> float:
        bw = min(self.read_gbps, self.per_process_gbps * n_processes) * 1e9
        return self.latency_s + nbytes / bw


#: Summit's Alpine GPFS: ~2.5 TB/s peak, ~250 PB.
ALPINE_PFS = StorageTier(
    name="Alpine PFS",
    write_gbps=2500.0,
    read_gbps=2500.0,
    per_process_gbps=2.0,
    latency_s=0.5,
    capacity_tb=250_000.0,
)

#: Node-local burst buffer (NVMe).
NVME_TIER = StorageTier(
    name="node-local NVMe",
    write_gbps=9600.0,  # 2.1 GB/s x ~4600 nodes usable share
    read_gbps=26000.0,
    per_process_gbps=2.0,
    latency_s=0.01,
    capacity_tb=7_400.0,
)

#: HPSS-like archive: high latency, tape-limited bandwidth.
ARCHIVE_TIER = StorageTier(
    name="archive (HPSS)",
    write_gbps=200.0,
    read_gbps=60.0,
    per_process_gbps=0.4,
    latency_s=30.0,
    capacity_tb=1_000_000.0,
)


class TieredStorage:
    """A stack of tiers plus a coefficient-class placement policy."""

    def __init__(self, tiers: list[StorageTier]):
        if not tiers:
            raise ValueError("need at least one tier")
        self.tiers = list(tiers)

    def place_classes(self, class_bytes: list[int], fast_budget_bytes: int) -> list[int]:
        """Assign each class (coarse-to-fine) a tier index.

        Greedy policy mirroring the paper's Figure 1: the most important
        (coarsest) classes go to the fastest tier until its budget is
        exhausted; the remainder spills to the next tier(s).
        """
        placement = []
        tier = 0
        used = 0
        for nbytes in class_bytes:
            while tier < len(self.tiers) - 1 and used + nbytes > fast_budget_bytes:
                tier += 1
                used = 0
                fast_budget_bytes = int(self.tiers[tier].capacity_tb * 1e12)
            placement.append(tier)
            used += nbytes
        return placement

    def write_seconds(
        self, class_bytes: list[int], placement: list[int], n_processes: int
    ) -> float:
        """Modeled time to write all classes per the placement (tiers overlap)."""
        per_tier: dict[int, int] = {}
        for nbytes, t in zip(class_bytes, placement):
            per_tier[t] = per_tier.get(t, 0) + nbytes
        return max(
            self.tiers[t].write_seconds(nb, n_processes) for t, nb in per_tier.items()
        )

    def read_seconds(
        self, class_bytes: list[int], placement: list[int], n_processes: int, k: int
    ) -> float:
        """Modeled time to read the first ``k`` classes."""
        per_tier: dict[int, int] = {}
        for nbytes, t in zip(class_bytes[:k], placement[:k]):
            per_tier[t] = per_tier.get(t, 0) + nbytes
        if not per_tier:
            return 0.0
        return max(
            self.tiers[t].read_seconds(nb, n_processes) for t, nb in per_tier.items()
        )


# ----------------------------------------------------------------------
# executed backend: directory-per-tier on local disk


def _slug(name: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")


class LocalTierStore:
    """Directory-per-tier object store executing the placement policy.

    Layout under ``root``::

        tier0_<slug>/...   one directory per tier, objects under their keys
        index.json         crash-safe object index (atomically replaced)

    ``tier_budget_bytes[i]`` caps tier ``i``'s stored bytes; a put that
    would exceed it spills to the next tier (mirroring how
    :meth:`TieredStorage.place_classes` spills by capacity), and only a
    full *last* tier raises :class:`StorageError`.  Every object is
    written to a unique temp file and published with ``os.replace``,
    its CRC32 recorded in the index and verified on :meth:`get` — an
    interrupted put is invisible, never a torn object.

    ``storage.tier.put`` is a fault-injection site (``error`` fails a
    put, ``delay`` models a slow device).
    """

    _INDEX = "index.json"

    def __init__(
        self,
        root: str | Path,
        tiers: list[StorageTier] | None = None,
        tier_budget_bytes: list[int | None] | None = None,
    ):
        tiers = list(tiers) if tiers is not None else [NVME_TIER, ALPINE_PFS, ARCHIVE_TIER]
        self.policy = TieredStorage(tiers)
        if tier_budget_bytes is None:
            tier_budget_bytes = [None] * len(tiers)
        if len(tier_budget_bytes) != len(tiers):
            raise ValueError("one budget (or None) per tier required")
        self.tier_budget_bytes = list(tier_budget_bytes)
        self.root = Path(root)
        self._dirs = [
            self.root / f"tier{i}_{_slug(t.name)}" for i, t in enumerate(tiers)
        ]
        for d in self._dirs:
            d.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / self._INDEX
        if self._index_path.exists():
            try:
                doc = json.loads(self._index_path.read_text())
            except (OSError, json.JSONDecodeError) as e:
                raise StorageError(f"corrupt tier-store index at {self._index_path}") from e
            self._objects: dict[str, dict] = doc.get("objects", {})
            self._containers: dict[str, dict] = doc.get("containers", {})
        else:
            self._objects = {}
            self._containers = {}
            self._flush_index()

    @property
    def tiers(self) -> list[StorageTier]:
        return self.policy.tiers

    def _flush_index(self) -> None:
        doc = {"objects": self._objects, "containers": self._containers}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(doc, indent=1))
            os.replace(tmp, self._index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _object_path(self, key: str, tier: int) -> Path:
        p = (self._dirs[tier] / key).resolve()
        if self._dirs[tier].resolve() not in p.parents:
            raise StorageError(f"key {key!r} escapes its tier directory")
        return p

    def used_bytes(self, tier: int | None = None) -> int:
        """Stored bytes in one tier (or across all tiers)."""
        return sum(
            meta["nbytes"]
            for meta in self._objects.values()
            if tier is None or meta["tier"] == tier
        )

    def keys(self) -> list[str]:
        return sorted(self._objects)

    def tier_of(self, key: str) -> int:
        """Which tier holds ``key``."""
        try:
            return int(self._objects[key]["tier"])
        except KeyError:
            raise StorageError(f"no object {key!r} in the store") from None

    def put(self, key: str, data, tier: int = 0, spill: bool = True) -> int:
        """Store one object on ``tier`` (or the first tier with room).

        Returns the tier the bytes actually landed on.  ``spill=False``
        turns a full budget into an immediate :class:`StorageError`.
        """
        data = bytes(data)
        faults.delay_point("storage.tier.put")
        faults.error_point("storage.tier.put")
        if not 0 <= tier < len(self.tiers):
            raise StorageError(f"tier {tier} out of range [0, {len(self.tiers)})")
        if key in self._objects:
            self.delete(key)
        placed = tier
        while True:
            budget = self.tier_budget_bytes[placed]
            if budget is None or self.used_bytes(placed) + len(data) <= budget:
                break
            if not spill or placed + 1 >= len(self.tiers):
                raise StorageError(
                    f"tier {placed} ({self.tiers[placed].name}) budget "
                    f"{budget} B cannot fit {len(data)} B for {key!r}"
                )
            placed += 1
        path = self._object_path(key, placed)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._objects[key] = {
            "tier": placed,
            "nbytes": len(data),
            "crc32": zlib.crc32(data),
        }
        self._flush_index()
        return placed

    def get(self, key: str) -> bytes:
        """One object's bytes, CRC-verified against the index."""
        meta = self._objects.get(key)
        if meta is None:
            raise StorageError(f"no object {key!r} in the store")
        path = self._object_path(key, meta["tier"])
        try:
            data = path.read_bytes()
        except OSError as e:
            raise StorageError(f"object {key!r} unreadable at {path}") from e
        if len(data) != meta["nbytes"] or zlib.crc32(data) != meta["crc32"]:
            raise StorageError(
                f"object {key!r} corrupt at {path} "
                f"({len(data)} of {meta['nbytes']} bytes)"
            )
        return data

    def delete(self, key: str) -> None:
        meta = self._objects.pop(key, None)
        if meta is None:
            return
        try:
            self._object_path(key, meta["tier"]).unlink()
        except OSError:  # pragma: no cover - already gone
            pass
        self._flush_index()

    # -- executed container placement -------------------------------------
    def place_container(
        self, key: str, payload, fast_budget_bytes: int | None = None
    ) -> dict:
        """Split a container across tiers per the placement policy.

        The payload's header plus each shard/class extent (see
        :func:`repro.io.container.container_extents`) become separate
        objects; extents are assigned tiers by
        :meth:`TieredStorage.place_classes` over ``fast_budget_bytes``
        (default: what remains of tier 0's budget), then written with
        budget-full spill.  Returns the placement record (also kept in
        the index so :meth:`read_container` needs only the key)::

            {"key", "payload_start", "extents": [{"name", "tier", "nbytes"}]}
        """
        from .container import container_extents

        payload = bytes(payload)
        payload_start, extents = container_extents(payload)
        header_tier = self.put(f"{key}/header", payload[:payload_start], tier=0)
        if fast_budget_bytes is None:
            budget0 = self.tier_budget_bytes[0]
            fast_budget_bytes = (
                max(budget0 - self.used_bytes(0), 0)
                if budget0 is not None
                else len(payload) + 1
            )
        placement = self.policy.place_classes(
            [e["nbytes"] for e in extents], int(fast_budget_bytes)
        )
        rows = []
        for e, tier in zip(extents, placement):
            lo = payload_start + e["offset"]
            placed = self.put(
                f"{key}/{_slug(e['name'])}", payload[lo : lo + e["nbytes"]], tier=tier
            )
            rows.append({"name": e["name"], "tier": placed, "nbytes": e["nbytes"]})
        record = {
            "key": key,
            "payload_start": payload_start,
            "header_tier": header_tier,
            "extents": rows,
        }
        self._containers[key] = record
        self._flush_index()
        return record

    def read_container(self, key: str) -> bytes:
        """Reassemble a placed container byte-for-byte (header + extents)."""
        record = self._containers.get(key)
        if record is None:
            raise StorageError(f"no placed container {key!r} in the store")
        parts = [self.get(f"{key}/header")]
        parts.extend(self.get(f"{key}/{_slug(e['name'])}") for e in record["extents"])
        return b"".join(parts)

    def container_record(self, key: str) -> dict | None:
        """The placement record of one placed container (or None)."""
        rec = self._containers.get(key)
        return None if rec is None else json.loads(json.dumps(rec))
