"""Multi-tier storage performance model (paper Fig. 1 / Showcase V-A).

Stands in for Summit's Alpine parallel file system (and slower archive
tiers) in the visualization-workflow showcase.  Each
:class:`StorageTier` has aggregate bandwidth, per-operation latency,
and a per-process bandwidth cap; :class:`TieredStorage` routes
coefficient classes to tiers by a placement policy, which is how the
paper's Figure 1 "intelligently moves each coefficient class across
multi-tiered-storage systems".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StorageTier", "TieredStorage", "ALPINE_PFS", "NVME_TIER", "ARCHIVE_TIER"]


@dataclass(frozen=True)
class StorageTier:
    """One storage tier's performance envelope.

    Attributes
    ----------
    write_gbps / read_gbps:
        Aggregate bandwidth across all writers/readers, GB/s.
    per_process_gbps:
        Bandwidth ceiling of one process (client-side limit).
    latency_s:
        Fixed per-operation cost (open/close, metadata).
    capacity_tb:
        Usable capacity; placement fails beyond it.
    """

    name: str
    write_gbps: float
    read_gbps: float
    per_process_gbps: float
    latency_s: float
    capacity_tb: float

    def write_seconds(self, nbytes: int, n_processes: int = 1) -> float:
        """Modeled time for ``n_processes`` to collectively write ``nbytes``."""
        bw = min(self.write_gbps, self.per_process_gbps * n_processes) * 1e9
        return self.latency_s + nbytes / bw

    def read_seconds(self, nbytes: int, n_processes: int = 1) -> float:
        bw = min(self.read_gbps, self.per_process_gbps * n_processes) * 1e9
        return self.latency_s + nbytes / bw


#: Summit's Alpine GPFS: ~2.5 TB/s peak, ~250 PB.
ALPINE_PFS = StorageTier(
    name="Alpine PFS",
    write_gbps=2500.0,
    read_gbps=2500.0,
    per_process_gbps=2.0,
    latency_s=0.5,
    capacity_tb=250_000.0,
)

#: Node-local burst buffer (NVMe).
NVME_TIER = StorageTier(
    name="node-local NVMe",
    write_gbps=9600.0,  # 2.1 GB/s x ~4600 nodes usable share
    read_gbps=26000.0,
    per_process_gbps=2.0,
    latency_s=0.01,
    capacity_tb=7_400.0,
)

#: HPSS-like archive: high latency, tape-limited bandwidth.
ARCHIVE_TIER = StorageTier(
    name="archive (HPSS)",
    write_gbps=200.0,
    read_gbps=60.0,
    per_process_gbps=0.4,
    latency_s=30.0,
    capacity_tb=1_000_000.0,
)


class TieredStorage:
    """A stack of tiers plus a coefficient-class placement policy."""

    def __init__(self, tiers: list[StorageTier]):
        if not tiers:
            raise ValueError("need at least one tier")
        self.tiers = list(tiers)

    def place_classes(self, class_bytes: list[int], fast_budget_bytes: int) -> list[int]:
        """Assign each class (coarse-to-fine) a tier index.

        Greedy policy mirroring the paper's Figure 1: the most important
        (coarsest) classes go to the fastest tier until its budget is
        exhausted; the remainder spills to the next tier(s).
        """
        placement = []
        tier = 0
        used = 0
        for nbytes in class_bytes:
            while tier < len(self.tiers) - 1 and used + nbytes > fast_budget_bytes:
                tier += 1
                used = 0
                fast_budget_bytes = int(self.tiers[tier].capacity_tb * 1e12)
            placement.append(tier)
            used += nbytes
        return placement

    def write_seconds(
        self, class_bytes: list[int], placement: list[int], n_processes: int
    ) -> float:
        """Modeled time to write all classes per the placement (tiers overlap)."""
        per_tier: dict[int, int] = {}
        for nbytes, t in zip(class_bytes, placement):
            per_tier[t] = per_tier.get(t, 0) + nbytes
        return max(
            self.tiers[t].write_seconds(nb, n_processes) for t, nb in per_tier.items()
        )

    def read_seconds(
        self, class_bytes: list[int], placement: list[int], n_processes: int, k: int
    ) -> float:
        """Modeled time to read the first ``k`` classes."""
        per_tier: dict[int, int] = {}
        for nbytes, t in zip(class_bytes[:k], placement[:k]):
            per_tier[t] = per_tier.get(t, 0) + nbytes
        if not per_tier:
            return 0.0
        return max(
            self.tiers[t].read_seconds(nb, n_processes) for t, nb in per_tier.items()
        )
