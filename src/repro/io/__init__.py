"""I/O substrate: tiered-storage model, refactored-data container, workflows."""

from .container import (
    ContainerError,
    RefactoredFileReader,
    RefactoredFileWriter,
    ShardedFileReader,
    container_extents,
    read_refactored_stream,
    write_refactored,
    write_sharded_stream,
)
from .lifecycle import AnalysisRequest, LifecycleOutcome, simulate_lifecycle, typical_request_trace
from .stream import (
    PredictedStep,
    PreparedStep,
    RecoveryReport,
    ShardedStep,
    StepStreamReader,
    StepStreamWriter,
    StreamError,
)
from .storage import (
    ALPINE_PFS,
    ARCHIVE_TIER,
    NVME_TIER,
    LocalTierStore,
    StorageError,
    StorageTier,
    TieredStorage,
)
from .workflow import (
    DemoResult,
    MeasuredPipeline,
    WorkflowPoint,
    model_workflow,
    run_streaming_pipeline,
    run_workflow_demo,
)

__all__ = [
    "ALPINE_PFS",
    "AnalysisRequest",
    "ARCHIVE_TIER",
    "ContainerError",
    "LifecycleOutcome",
    "LocalTierStore",
    "DemoResult",
    "MeasuredPipeline",
    "NVME_TIER",
    "PredictedStep",
    "PreparedStep",
    "RecoveryReport",
    "RefactoredFileReader",
    "RefactoredFileWriter",
    "ShardedFileReader",
    "ShardedStep",
    "StepStreamReader",
    "StepStreamWriter",
    "StorageError",
    "StorageTier",
    "StreamError",
    "TieredStorage",
    "WorkflowPoint",
    "container_extents",
    "model_workflow",
    "read_refactored_stream",
    "run_streaming_pipeline",
    "run_workflow_demo",
    "simulate_lifecycle",
    "typical_request_trace",
    "write_refactored",
    "write_sharded_stream",
]
