"""I/O substrate: tiered-storage model, refactored-data container, workflows."""

from .container import (
    ContainerError,
    RefactoredFileReader,
    RefactoredFileWriter,
    write_refactored,
)
from .lifecycle import AnalysisRequest, LifecycleOutcome, simulate_lifecycle, typical_request_trace
from .stream import StepStreamReader, StepStreamWriter, StreamError
from .storage import ALPINE_PFS, ARCHIVE_TIER, NVME_TIER, StorageTier, TieredStorage
from .workflow import DemoResult, WorkflowPoint, model_workflow, run_workflow_demo

__all__ = [
    "ALPINE_PFS",
    "AnalysisRequest",
    "ARCHIVE_TIER",
    "ContainerError",
    "LifecycleOutcome",
    "DemoResult",
    "NVME_TIER",
    "RefactoredFileReader",
    "RefactoredFileWriter",
    "StepStreamReader",
    "StepStreamWriter",
    "StorageTier",
    "StreamError",
    "TieredStorage",
    "WorkflowPoint",
    "model_workflow",
    "run_workflow_demo",
    "simulate_lifecycle",
    "typical_request_trace",
    "write_refactored",
]
