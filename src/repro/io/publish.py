"""The one durable-commit primitive of the I/O layer.

Every file this package publishes — stream step containers, the stream
manifest, standalone refactored containers — lands through
:func:`atomic_publish`: a collision-free temp write followed by an
atomic ``os.replace``, so a concurrent reader (or a crash at any
instruction) never observes a half-written file under the final name.
The ``atomic-publish`` repro-lint rule enforces that no other code in
``repro/io`` opens a destination path for writing directly.

Extracted from ``repro.io.stream`` (which re-exports it) so
``repro.io.container`` can use the same primitive without importing the
stream layer — stream already imports container, and a cycle here would
be exactly the kind of edge the ``import-boundary`` rule exists to
keep out.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

from .. import faults

__all__ = ["atomic_publish", "fsync_dir", "unique_tmp"]

#: process-unique suffix counter for temp names (see :func:`unique_tmp`)
_TMP_COUNTER = itertools.count()


def unique_tmp(dst: Path) -> Path:
    """A collision-free temp path next to ``dst``.

    ``<name>.<pid>.<seq>.tmp``: unique across writer processes sharing
    a root (pid) and across commits within one process (seq), so a
    crashed predecessor's stale ``.tmp`` can never be half-overwritten
    by — or renamed under — a live commit.  Stale temps are swept on
    writer open.
    """
    return dst.parent / f"{dst.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"


def fsync_dir(path: Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_publish(dst: Path, payload: bytes, durability: str, site: str) -> None:
    """Publish ``payload`` at ``dst`` via unique-temp write + atomic rename.

    The one commit primitive of the I/O layer (stream step files, the
    manifest, and standalone containers all go through it).
    ``durability="fsync"`` fsyncs the temp file before the rename and
    the parent directory after it, so a completed publish survives
    power loss; ``"rename"`` (the default) guarantees only atomicity —
    a crashed *machine* may lose or truncate the file, which is exactly
    what the ``{site}.file`` corruption fault simulates.  Crash points:
    ``{site}.pre_tmp`` (nothing on disk yet), ``{site}.post_tmp``
    (stale temp left behind).  A fault-injected crash leaves the same
    artifacts a real ``kill -9`` would.
    """
    # reprolint: site stream.step.pre_tmp stream.manifest.pre_tmp container.write.pre_tmp
    faults.crash_point(f"{site}.pre_tmp")
    tmp = unique_tmp(dst)
    with open(tmp, "wb") as f:
        f.write(payload)
        if durability == "fsync":
            f.flush()
            os.fsync(f.fileno())
    # reprolint: site stream.step.post_tmp stream.manifest.post_tmp container.write.post_tmp
    faults.crash_point(f"{site}.post_tmp")
    os.replace(tmp, dst)  # atomic on POSIX
    if durability == "fsync":
        fsync_dir(dst.parent)
    # reprolint: site stream.step.file stream.manifest.file container.write.file
    faults.corrupt_file(f"{site}.file", dst)
