"""Producer→storage→consumer visualization workflow (paper Showcase V-A).

The paper's first showcase writes a 4 TB simulation file with 4096
processes and reads it back with 512 processes for in-situ-style
visualization, both through refactoring: writers store only the first
``k`` coefficient classes, readers fetch a (possibly smaller) prefix
and recompose before extracting iso-surfaces.  Two views:

* :func:`model_workflow` — the Fig. 10 cost model at paper scale:
  refactor time (GPU-accelerated or CPU), bytes of the class prefix,
  and PFS write/read time, versus the no-refactoring baseline.
* :func:`run_workflow_demo` — a fully functional small-scale run:
  Gray–Scott data, container write, prefix reads, recomposition, and
  the iso-surface-area accuracy the paper quotes (~95 % with 3/10
  classes).
* :func:`run_streaming_pipeline` — the *measured* counterpart of the
  Fig. 10 overlap story: the refactor→encode→write chain executed for
  real over a live :class:`~repro.io.stream.StepStreamWriter` through
  :func:`repro.cluster.pipeline.run_pipeline`, with the measured stage
  overlap compared against :meth:`PipelineModel.makespan
  <repro.cluster.pipeline.PipelineModel.makespan>`.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..analysis.isosurface import contour_length, feature_accuracy, isosurface_area
from ..core.classes import class_sizes
from ..core.grid import hierarchy_for
from ..core.refactor import Refactorer
from ..gpu.analytic import model_pass
from ..gpu.device import CpuSpec, DeviceSpec, POWER9_CORE, V100
from .container import RefactoredFileReader, write_refactored
from .storage import ALPINE_PFS, StorageTier
from .stream import StepStreamReader, StepStreamWriter

__all__ = [
    "WorkflowPoint",
    "model_workflow",
    "run_workflow_demo",
    "DemoResult",
    "MeasuredPipeline",
    "run_streaming_pipeline",
    "follow_stream",
]


def follow_stream(
    root: str | Path,
    *,
    start: int = 0,
    stop: int | None = None,
    timeout: float | None = 30.0,
    poll_interval: float = 0.005,
    max_interval: float = 0.25,
):
    """Tail a live stream, yielding ``(step, field)`` as steps commit.

    The consumer half of the streaming workflow: a producer appends
    through :class:`~repro.io.stream.StepStreamWriter` (or
    :func:`run_streaming_pipeline`, or the service's ``put_step``)
    while any number of followers iterate this generator — in-situ
    visualization's read side as a three-line loop.  Waiting uses
    :meth:`StepStreamReader.wait_for_step`'s exponential backoff
    (``poll_interval`` → ``max_interval``), not a busy ``refresh()``
    loop, so an idle follower costs microseconds of CPU per second.

    Iteration ends at ``stop`` (exclusive; ``None`` follows forever)
    or when no new step appears within ``timeout`` seconds.
    """
    reader = StepStreamReader(root)
    step = start
    while stop is None or step < stop:
        if not reader.wait_for_step(
            step,
            timeout=timeout,
            poll_interval=poll_interval,
            max_interval=max_interval,
        ):
            return
        yield step, reader.read_region(step)
        step += 1


@dataclass
class WorkflowPoint:
    """Modeled cost of one (k classes, GPU on/off) configuration."""

    k_classes: int
    bytes_stored: int
    refactor_seconds: float
    io_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.refactor_seconds + self.io_seconds


def model_workflow(
    per_process_shape: tuple[int, ...] = (513, 513, 513),
    n_processes: int = 4096,
    operation: str = "write",
    use_gpu: bool = True,
    device: DeviceSpec = V100,
    cpu: CpuSpec = POWER9_CORE,
    storage: StorageTier = ALPINE_PFS,
    ks: tuple[int, ...] | None = None,
) -> list[WorkflowPoint]:
    """Model Fig. 10: end-to-end write (or read) cost versus classes kept.

    ``operation="write"`` models decompose + write of the class prefix;
    ``"read"`` models read of the prefix + recompose.  The paper's
    configuration is the default: 4 TB split across 4096 writers
    (1 GB ≈ 513³ doubles each) and 512 readers.
    """
    from ..kernels.launches import EngineOptions
    from ..kernels.metered import CPU_BASELINE_OPTIONS

    if operation not in ("write", "read"):
        raise ValueError("operation must be 'write' or 'read'")
    hier = hierarchy_for(per_process_shape)
    sizes = [s * 8 for s in class_sizes(hier)]
    n_classes = len(sizes)
    if ks is None:
        ks = tuple(range(1, n_classes + 1))
    pass_op = "decompose" if operation == "write" else "recompose"
    if use_gpu:
        opts = EngineOptions(n_streams=8 if len(per_process_shape) >= 3 else 1)
        t_refactor = model_pass(hier, device, opts, pass_op).total_seconds
    else:
        t_refactor = model_pass(hier, cpu, CPU_BASELINE_OPTIONS, pass_op).total_seconds
    out = []
    for k in ks:
        if not 1 <= k <= n_classes:
            raise ValueError(f"k must be in [1, {n_classes}]")
        prefix = sum(sizes[:k]) * n_processes
        io = (
            storage.write_seconds(prefix, n_processes)
            if operation == "write"
            else storage.read_seconds(prefix, n_processes)
        )
        out.append(
            WorkflowPoint(
                k_classes=k,
                bytes_stored=prefix,
                refactor_seconds=t_refactor,
                io_seconds=io,
            )
        )
    return out


@dataclass
class DemoResult:
    """Functional small-scale workflow outcome for one class prefix."""

    k_classes: int
    bytes_read: int
    feature_value: float
    accuracy: float
    reconstruction: np.ndarray = field(repr=False, default=None)


def run_workflow_demo(
    data: np.ndarray,
    iso: float,
    ks: tuple[int, ...] | None = None,
    workdir: str | Path | None = None,
    keep_reconstructions: bool = False,
) -> list[DemoResult]:
    """Run the producer→file→consumer loop for real on a small grid.

    Refactors ``data``, writes the container, then for each ``k`` reads
    only the first ``k`` classes, recomposes, extracts the iso-feature
    (surface area in 3D, contour length in 2D), and scores it against
    the full-data feature.
    """
    if data.ndim not in (2, 3):
        raise ValueError("demo supports 2D and 3D data")
    refactorer = Refactorer(data.shape)
    cc = refactorer.refactor(data)
    tmp_ctx = None
    if workdir is None:
        tmp_ctx = tempfile.TemporaryDirectory()
        workdir = tmp_ctx.name
    path = Path(workdir) / "refactored.rprc"
    try:
        write_refactored(path, cc, attrs={"iso": iso})
        reader = RefactoredFileReader(path)
        feature = isosurface_area if data.ndim == 3 else contour_length
        exact = feature(data, iso)
        if ks is None:
            ks = tuple(range(1, reader.n_classes + 1))
        nbytes = reader.class_nbytes()
        out = []
        for k in ks:
            classes = reader.read_classes(k)
            from ..core.classes import reconstruct_from_classes

            approx = reconstruct_from_classes(classes, refactorer.hier)
            value = feature(approx, iso)
            out.append(
                DemoResult(
                    k_classes=k,
                    bytes_read=sum(nbytes[:k]),
                    feature_value=value,
                    accuracy=feature_accuracy(value, exact),
                    reconstruction=approx if keep_reconstructions else None,
                )
            )
        return out
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()


# ----------------------------------------------------------------------
# measured streaming pipeline (Fig. 10 overlap, executed for real)


@dataclass
class MeasuredPipeline:
    """Measured vs modeled outcome of one streaming-write pipeline.

    ``stage_seconds`` are the per-step stage durations calibrated from
    a serial (no-overlap) run; they feed the analytic
    :class:`~repro.cluster.pipeline.PipelineModel` whose makespan is
    compared against the wall time of the actually-overlapped run.
    ``mode`` records which stream mode ran (``refactored`` or
    ``compressed``) and ``backend`` the compressed mode's entropy
    backend (``None`` for refactored streams, which do not encode);
    ``shards`` is the per-step shard count of a sharded run (``None``
    for monolithic steps).
    """

    n_steps: int
    stage_names: tuple[str, ...]
    stage_seconds: tuple[float, ...]
    serial_wall: float
    pipelined_wall: float
    pipelined_busy: tuple[float, ...]
    bytes_written: int
    executor: str
    mode: str
    backend: str | None
    shards: int | None
    model: "PipelineModel" = field(repr=False)  # noqa: F821 - lazy import

    @property
    def measured_overlap_gain(self) -> float:
        """Speedup of the overlapped run over the serial run."""
        return self.serial_wall / max(self.pipelined_wall, 1e-12)

    @property
    def modeled_makespan(self) -> float:
        return self.model.makespan(self.n_steps)

    @property
    def modeled_sequential(self) -> float:
        return self.model.sequential_time(self.n_steps)

    @property
    def modeled_overlap_gain(self) -> float:
        return self.model.overlap_gain(self.n_steps)

    @property
    def bottleneck(self) -> str:
        return self.model.bottleneck

    def record(self) -> dict:
        """JSON-ready record of this run (the ``BENCH_pipeline`` row).

        Carries everything needed to interpret the numbers later:
        stream mode, entropy backend, both executors' context
        (pipeline stage pool spec and the host's usable core count),
        the calibrated per-stage seconds, and measured-vs-modeled
        walls/gains.
        """
        from ..compress.executor import available_workers

        return {
            "mode": self.mode,
            "backend": self.backend,
            "shards": self.shards,
            "executor": self.executor,
            "cpu_count": available_workers(),
            "n_steps": self.n_steps,
            "stage_names": list(self.stage_names),
            "stage_seconds": [float(s) for s in self.stage_seconds],
            "serial_wall_s": float(self.serial_wall),
            "pipelined_wall_s": float(self.pipelined_wall),
            "pipelined_busy_s": [float(s) for s in self.pipelined_busy],
            "bytes_written": int(self.bytes_written),
            "measured_overlap_gain": float(self.measured_overlap_gain),
            "modeled_makespan_s": float(self.modeled_makespan),
            "modeled_sequential_s": float(self.modeled_sequential),
            "modeled_overlap_gain": float(self.modeled_overlap_gain),
            "bottleneck": self.bottleneck,
        }


def _refactored_stages(writer: StepStreamWriter):
    """refactor → encode → write over a raw refactored stream."""

    def refactor(frame):
        return writer.refactorer.refactor(frame)

    def encode(cc):
        return writer.encode_refactored(cc)

    def write(prep):
        writer.commit_step(prep)
        return prep.nbytes

    return [refactor, encode, write]


def _compressed_stages(writer: StepStreamWriter):
    """predict → encode → write over a compressed (error-bounded) stream.

    The predict stage owns the closed prediction loop (temporal
    residual, refactor, quantize); encode is the entropy stage plus
    container serialization.  Both are stateful across steps (the
    prediction feedback and the code-book chain), which the pipeline's
    per-stage in-order gates make safe.
    """

    def predict(frame):
        return writer.predict_step(frame)

    def encode(pred):
        return writer.encode_predicted(pred)

    def write(prep):
        writer.commit_step(prep)
        return prep.nbytes

    return [predict, encode, write]


def _sharded_stages(writer: StepStreamWriter):
    """shard → encode → write over a sharded stream (either payload mode).

    The shard stage owns only the in-order step-index claim (cheap by
    design); encode runs the per-shard refactor/compress fan-out
    through the writer's executor and is stateless across steps —
    sharded steps are independent partitions — so it overlaps freely.
    """

    def shard(frame):
        return writer.shard_step(frame)

    def encode(ss):
        return writer.encode_sharded(ss)

    def write(prep):
        writer.commit_step(prep)
        return prep.nbytes

    return [shard, encode, write]


#: The stream modes as configurations of one pipeline spine:
#: (stage names, stage builder).  All chains are three one-argument
#: callables over a live writer — the spine below neither knows nor
#: cares which mode it is running.  ``shards > 1`` swaps in the sharded
#: chain for either payload mode.
_PIPELINE_MODES = {
    "refactored": (("refactor", "encode", "write"), _refactored_stages),
    "compressed": (("predict", "encode", "write"), _compressed_stages),
}

_SHARDED_STAGES = (("shard", "encode", "write"), _sharded_stages)


def run_streaming_pipeline(
    frames,
    workdir: str | Path | None = None,
    executor: str = "thread:4",
    keep_stream: bool = False,
    mode: str = "refactored",
    tol: float | None = None,
    backend: str = "huffman",
    key_interval: int = 16,
    codec_executor=None,
    shards: int | None = None,
    tier_store=None,
) -> MeasuredPipeline:
    """Execute the Fig. 10 streaming write as a real overlapped pipeline.

    One mode-agnostic spine over
    :func:`repro.cluster.pipeline.run_pipeline`: each frame flows
    through a three-stage chain over a live
    :class:`~repro.io.stream.StepStreamWriter`, so while step ``t``
    writes, step ``t+1`` encodes and step ``t+2`` refactors — exactly
    the overlap the paper's workflow showcase models.  The chain runs
    twice: once serially (the no-overlap baseline, which also
    calibrates per-stage durations for the analytic model) and once
    under ``executor``; the result pairs the measured walls with
    :meth:`PipelineModel.makespan` of the calibrated model.

    ``mode`` selects the chain — two configurations of the same spine:

    ``refactored`` (default)
        refactor → encode (container serialization + truncation hints)
        → write (file + atomic manifest publish).

    ``compressed``
        predict (closed-loop temporal prediction + refactor + quantize,
        the in-order half) → encode (entropy coding + container
        serialization, overlappable since PR 4's prediction split) →
        write.  ``tol`` is the per-step L∞ bound (default: ``1e-3`` of
        frame 0's value range); ``backend``/``key_interval`` configure
        the :class:`~repro.compress.timeseries.TimeSeriesCompressor`,
        and ``codec_executor`` schedules the entropy stage's *internal*
        fan-out (per-class segments, Huffman blocks) independently of
        the pipeline's stage concurrency.

    ``shards > 1`` swaps in the sharded chain for either mode: shard
    (the in-order step-index claim) → encode (the per-shard
    refactor/compress fan-out, scheduled through ``codec_executor``) →
    write.  Sharded compressed steps are spatially compressed per step
    (independent partitions, no temporal chain), so ``key_interval`` is
    not used.

    With an explicit ``workdir``, ``keep_stream=True`` leaves the
    pipelined run's stream directory (``workdir/pipelined``, readable
    with :class:`~repro.io.stream.StepStreamReader`) in place; the
    serial calibration stream is always scratch.

    ``tier_store`` (a :class:`~repro.io.storage.LocalTierStore`) makes
    the *pipelined* run's writer execute tiered placement on every
    commit — real bytes through the store's directory tiers; the
    warm-up and serial calibration streams never touch it.
    """
    # imported here: cluster.pipeline pulls io.storage, so a module-level
    # import would re-enter this package mid-initialization
    from ..cluster.pipeline import PipelineModel, run_pipeline

    if mode not in _PIPELINE_MODES:
        raise ValueError(
            f"unknown pipeline mode {mode!r}; choose from {sorted(_PIPELINE_MODES)}"
        )
    frames = list(frames)
    if not frames:
        raise ValueError("need at least one frame")
    shape = frames[0].shape
    sharded = shards is not None and int(shards) > 1
    stage_names, make_stages = (
        _SHARDED_STAGES if sharded else _PIPELINE_MODES[mode]
    )
    writer_kwargs: dict = {}
    if mode == "compressed":
        if tol is None:
            span = float(np.max(frames[0]) - np.min(frames[0])) or 1.0
            tol = 1e-3 * span
        writer_kwargs.update(tol=float(tol), backend=backend)
        if not sharded:
            writer_kwargs["key_interval"] = int(key_interval)
    if sharded:
        writer_kwargs["shards"] = int(shards)
    if sharded or mode == "compressed":
        writer_kwargs["executor"] = codec_executor
        # fork the codec's process pool (if any) while this process is
        # still single-threaded — under the pipeline's thread pool a
        # lazy first fork would degrade to forkserver/spawn inside the
        # timed run.  codec_executor=None resolves the ambient spec
        # (REPRO_EXECUTOR), which is exactly the executor the writer
        # will use, so it needs priming just the same.
        from ..compress.executor import get_executor

        ce = (
            codec_executor
            if codec_executor is not None and not isinstance(codec_executor, str)
            else get_executor(codec_executor)
        )
        prime = getattr(ce, "prime", None)
        if prime is not None:
            prime()
    tmp_ctx = None
    if workdir is None:
        tmp_ctx = tempfile.TemporaryDirectory()
        workdir = tmp_ctx.name
    workdir = Path(workdir)

    def new_writer(name: str) -> StepStreamWriter:
        kwargs = dict(writer_kwargs)
        if name == "pipelined" and tier_store is not None:
            kwargs["tier_store"] = tier_store
        return StepStreamWriter(workdir / name, shape, **kwargs)

    try:
        # untimed warm-up: one full step through a throwaway stream, so
        # process-wide one-time costs (the cached hierarchy's Cholesky
        # factors, NumPy init) land in neither timed run — the serial
        # run is a *calibration*, not a cache-warming lap for the
        # pipelined one
        warmup = new_writer("warmup")
        warmup.commit_step(warmup.encode_step(frames[0]))
        serial_run = run_pipeline(
            make_stages(new_writer("serial")),
            frames,
            executor="serial",
            stage_names=stage_names,
        )
        pipelined_run = run_pipeline(
            make_stages(new_writer("pipelined")),
            frames,
            executor=executor,
            stage_names=stage_names,
        )
    finally:
        import shutil

        if tmp_ctx is not None:
            tmp_ctx.cleanup()
        else:
            shutil.rmtree(workdir / "warmup", ignore_errors=True)
            shutil.rmtree(workdir / "serial", ignore_errors=True)
            if not keep_stream:
                shutil.rmtree(workdir / "pipelined", ignore_errors=True)
    model = PipelineModel(
        stage_names=stage_names,
        stage_seconds=tuple(
            b / len(frames) for b in serial_run.stage_busy_seconds
        ),
    )
    return MeasuredPipeline(
        n_steps=len(frames),
        stage_names=stage_names,
        stage_seconds=model.stage_seconds,
        serial_wall=serial_run.wall_seconds,
        pipelined_wall=pipelined_run.wall_seconds,
        pipelined_busy=pipelined_run.stage_busy_seconds,
        bytes_written=int(sum(pipelined_run.results)),
        executor=str(executor),
        mode=mode,
        backend=backend if mode == "compressed" else None,
        shards=int(shards) if sharded else None,
        model=model,
    )
