"""Streaming producer→consumer coupling over refactored time steps.

The paper's Figure 1 shows a *running* simulation sharing data with
analysis routines; in practice that means appending one refactored time
step after another while consumers read — possibly behind the producer,
possibly at reduced accuracy.  This module provides that coupling on a
directory:

* :class:`StepStreamWriter` — appends steps; each step is one
  refactored-data container plus a manifest entry (atomic rename, so a
  concurrent reader never sees a half-written step);
* :class:`StepStreamReader` — lists/loads steps, reading only the class
  prefix a consumer's accuracy needs (via the s-norm hint recorded by
  the producer).

The manifest stores per-step metadata (shape, class byte sizes, s-norm
truncation estimates) so a consumer can choose its prefix *before*
touching the heavy payload — the Figure-1 "hint" across time.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..core.classes import CoefficientClasses, reconstruct_from_classes
from ..core.grid import TensorHierarchy, hierarchy_for
from ..core.refactor import Refactorer
from ..core.snorm import truncation_estimate
from .container import RefactoredFileReader, write_refactored

__all__ = ["StepStreamWriter", "StepStreamReader", "StreamError"]

_MANIFEST = "manifest.json"


class StreamError(RuntimeError):
    """Malformed or inconsistent stream directory."""


class StepStreamWriter:
    """Producer side: append refactored time steps to a directory."""

    def __init__(self, root: str | Path, shape: tuple[int, ...]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.refactorer = Refactorer(tuple(shape))
        self._manifest_path = self.root / _MANIFEST
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text())
            if tuple(manifest["shape"]) != tuple(shape):
                raise StreamError(
                    f"stream at {root} has shape {manifest['shape']}, not {shape}"
                )
            self._steps = manifest["steps"]
        else:
            self._steps = []
            self._flush_manifest(shape)

    def _flush_manifest(self, shape) -> None:
        payload = json.dumps(
            {"shape": list(shape), "steps": self._steps}, indent=1
        )
        tmp = self._manifest_path.with_suffix(".tmp")
        tmp.write_text(payload)
        os.replace(tmp, self._manifest_path)  # atomic on POSIX

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def append(self, field: np.ndarray, time: float | None = None) -> int:
        """Refactor and persist one step; returns its index."""
        cc = self.refactorer.refactor(field)
        idx = len(self._steps)
        name = f"step_{idx:06d}.rprc"
        tmp = self.root / (name + ".tmp")
        write_refactored(tmp, cc, attrs={"step": idx, "time": time})
        os.replace(tmp, self.root / name)
        hints = [
            truncation_estimate(cc, k) for k in range(1, cc.n_classes + 1)
        ]
        self._steps.append(
            {
                "file": name,
                "time": time,
                "class_bytes": [int(c.nbytes) for c in cc.classes],
                "truncation_estimates": hints,
            }
        )
        self._flush_manifest(self.refactorer.shape)
        return idx


class StepStreamReader:
    """Consumer side: read steps (or prefixes of them) from a stream."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        path = self.root / _MANIFEST
        if not path.exists():
            raise StreamError(f"no stream manifest at {self.root}")
        manifest = json.loads(path.read_text())
        self.shape = tuple(manifest["shape"])
        self.steps = manifest["steps"]
        self.hier = hierarchy_for(self.shape)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def classes_needed(self, step: int, tol: float) -> int:
        """Prefix length meeting ``tol`` — decided from the manifest only."""
        meta = self._meta(step)
        for k, est in enumerate(meta["truncation_estimates"], start=1):
            if est <= tol:
                return k
        return len(meta["truncation_estimates"])

    def read(self, step: int, k: int | None = None, tol: float | None = None):
        """Reconstruct a step from its first ``k`` classes.

        Pass ``tol`` instead of ``k`` to let the manifest hint choose.
        Returns ``(field, bytes_read)``.
        """
        if (k is None) == (tol is None):
            raise ValueError("pass exactly one of k or tol")
        meta = self._meta(step)
        if tol is not None:
            k = self.classes_needed(step, tol)
        reader = RefactoredFileReader(self.root / meta["file"])
        classes = reader.read_classes(k)
        field = reconstruct_from_classes(classes, self.hier)
        return field, sum(meta["class_bytes"][:k])

    def read_full(self, step: int) -> CoefficientClasses:
        """All classes of a step, as a :class:`CoefficientClasses`."""
        meta = self._meta(step)
        return RefactoredFileReader(self.root / meta["file"]).to_coefficient_classes(
            self.hier
        )

    def _meta(self, step: int) -> dict:
        if not 0 <= step < len(self.steps):
            raise StreamError(f"step {step} out of range [0, {len(self.steps)})")
        return self.steps[step]
