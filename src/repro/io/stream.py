"""Streaming producer→consumer coupling over refactored time steps.

The paper's Figure 1 shows a *running* simulation sharing data with
analysis routines; in practice that means appending one refactored time
step after another while consumers read — possibly behind the producer,
possibly at reduced accuracy.  This module provides that coupling on a
directory:

* :class:`StepStreamWriter` — appends steps; each step is one
  refactored-data container plus a manifest entry (atomic rename, so a
  concurrent reader never sees a half-written step).  ``append`` splits
  into :meth:`StepStreamWriter.encode_step` (refactor/compress into
  memory) and :meth:`StepStreamWriter.commit_step` (file + manifest
  publish), the seam the pipelined Fig. 10 workflow overlaps stages
  along;
* :class:`StepStreamReader` — lists/loads steps, reading only the class
  prefix a consumer's accuracy needs (via the s-norm hint recorded by
  the producer), and :meth:`StepStreamReader.refresh`-ing its manifest
  to follow a producer that is still appending (a torn manifest read —
  non-atomic filesystems — is ignored, keeping the last good snapshot).

The manifest stores per-step metadata (shape, class byte sizes, s-norm
truncation estimates) so a consumer can choose its prefix *before*
touching the heavy payload — the Figure-1 "hint" across time.

Two stream modes share the directory layout:

``refactored`` (default)
    Steps are stored as raw refactored-class containers supporting
    partial (class-prefix) reads.

``compressed`` (pass ``tol=``)
    Steps go through the error-bounded time-series compressor:
    closed-loop temporal prediction, key frames every ``key_interval``
    steps, and — with the ``huffman`` backend — cross-step code-book
    reuse through the shared compression plan's scratch (non-key steps
    reference the books shipped at the last key frame instead of
    re-serializing them).  Step files keep those references *on disk*;
    the reader replays the chain from the nearest key frame, which is
    exactly the random-access granularity closed-loop prediction has
    anyway.

Either mode may additionally be **sharded** (pass ``shards=``): every
step splits along axis 0 into independent shard segments — the paper's
equal-partition-per-GPU model — encoded in parallel through the
executor backends and stored in one sharded container per step, so
:meth:`StepStreamReader.read_region` decodes only the shards covering a
requested sub-volume.  Sharded compressed steps are spatially
compressed per step (independent partitions carry no temporal chain),
keeping every step — and every shard — self-contained.
"""

from __future__ import annotations

import io
import json
import threading
import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

import numpy as np

from .. import faults
from ..compress.fileio import load_compressed, save_compressed
from ..errors import ContainerError
from ..compress.timeseries import TimeSeriesCompressor
from ..core.classes import CoefficientClasses, reconstruct_from_classes
from ..core.grid import TensorHierarchy, hierarchy_for
from ..core.refactor import Refactorer
from ..core.snorm import truncation_estimate
from ..service.cache import LRUCache
from .container import (
    RefactoredFileReader,
    ShardedFileReader,
    write_refactored_stream,
    write_sharded_stream,
)
# _unique_tmp keeps its old home importable (tests patch/use it here)
from .publish import atomic_publish as _atomic_publish, unique_tmp as _unique_tmp

__all__ = [
    "StepStreamWriter",
    "StepStreamReader",
    "StreamError",
    "PreparedStep",
    "PredictedStep",
    "RecoveryReport",
    "ShardedStep",
]

_MANIFEST = "manifest.json"

# a torn manifest read heals on the next poll; one that stays broken
# this many consecutive refreshes is a dead stream, not a race
_MAX_TORN_REFRESHES = 10

_DURABILITY_LEVELS = ("rename", "fsync")

class StreamError(RuntimeError):
    """Malformed or inconsistent stream directory."""


# what a per-step decode may legitimately raise on a corrupt/vanished
# step file: container parse errors (the unified ContainerError family
# covers compressed .mgz files too), missing/unreadable files, and
# headers that parse but describe the wrong stream (surfaced as
# StreamError by the shape checks).  Anything else is a bug, not
# corruption.
_DECODE_ERRORS = (ContainerError, StreamError, OSError, KeyError, ValueError)


@dataclass
class PreparedStep:
    """One fully-encoded step awaiting its directory commit.

    Produced by :meth:`StepStreamWriter.encode_step` (or
    :meth:`StepStreamWriter.encode_refactored`) and consumed by
    :meth:`StepStreamWriter.commit_step` — the split that lets a
    pipeline's *write* stage overlap the next step's refactor/encode
    while steps still land on disk strictly in order.
    """

    index: int
    name: str
    payload: bytes = dataclass_field(repr=False)
    entry: dict

    @property
    def nbytes(self) -> int:
        return len(self.payload)


@dataclass
class PredictedStep:
    """One compressed-mode step through the prediction loop, unencoded.

    Produced by :meth:`StepStreamWriter.predict_step` (the in-order
    stage that owns closed-loop prediction and the step-index claim)
    and consumed by :meth:`StepStreamWriter.encode_predicted` (entropy
    coding + container serialization).  The split mirrors the
    refactored mode's ``refactor → encode_refactored`` seam, so a
    pipeline overlaps all three compressed-mode stages: while step
    ``t`` writes, step ``t+1`` entropy-codes and step ``t+2`` runs the
    prediction loop.
    """

    index: int
    time: float | None
    plan: object = dataclass_field(repr=False)  # compress.timeseries.ResidualPlan


@dataclass
class RecoveryReport:
    """How a degraded read was served (see ``StepStreamReader``).

    Produced whenever :meth:`StepStreamReader.read_step` or
    :meth:`StepStreamReader.read_region` recovers from corruption
    instead of raising; exposed as ``reader.last_recovery`` (``None``
    after a clean, exact read).
    """

    requested: int
    #: the step whose state the returned field actually represents —
    #: earlier than ``requested`` when the chain rolled back
    served: int | None
    #: all steps this reader has quarantined so far (sorted)
    quarantined: list[int]
    degraded: bool
    #: axis-0 row ranges of a region read that no surviving shard
    #: covered (NaN-filled in the returned array)
    failed_extents: list[tuple[int, int]] = dataclass_field(default_factory=list)


@dataclass
class ShardedStep:
    """One sharded-stream step awaiting its shard-parallel encode.

    Produced by :meth:`StepStreamWriter.shard_step` (the in-order stage
    that owns the step-index claim — deliberately cheap, it only holds
    a reference to the frame) and consumed by
    :meth:`StepStreamWriter.encode_sharded` (the per-shard
    refactor/compress fan-out plus container serialization).  Sharded
    steps carry no cross-step state — every step is self-contained, the
    paper's independent-partition model — so the encode stage overlaps
    freely across steps.
    """

    index: int
    time: float | None
    field: np.ndarray = dataclass_field(repr=False)


class StepStreamWriter:
    """Producer side: append time steps to a directory.

    Parameters
    ----------
    root / shape:
        Stream directory and the per-step grid shape.
    tol:
        Selects the ``compressed`` mode: per-step absolute L∞ error
        bound.  ``None`` (default) keeps the raw ``refactored`` mode.
    backend / key_interval / mode:
        Compressed-mode settings, passed to
        :class:`~repro.compress.timeseries.TimeSeriesCompressor`.
    executor:
        Executor spec or instance scheduling the encode fan-out (the
        shard fan-out, for sharded streams).
    durability:
        What :meth:`commit_step` guarantees once it returns.
        ``"rename"`` (default): the step file and manifest were
        published by atomic rename — a concurrent reader never sees a
        partial step, and a killed *process* loses nothing committed,
        but a crashed machine may lose or truncate files still in the
        page cache.  ``"fsync"``: additionally fsync every published
        file and its directory entry, so committed steps survive power
        loss (measurably slower per commit; ``repro-bench chaos``
        quantifies the cost).
    shards:
        Split every step along axis 0 into this many shard segments
        (``None``/``1`` keeps steps monolithic).  Sharded steps are
        encoded shard-by-shard through the executor backends and stored
        as sharded containers, so
        :meth:`StepStreamReader.read_region` decodes only the shards a
        sub-volume needs.  Sharded *compressed* steps follow the
        paper's independent-partition model: each step is spatially
        compressed on its own (no temporal prediction, no cross-step
        code-book chain — every shard container is self-contained), so
        the per-step L∞ bound still holds and any step decodes without
        replaying a chain.
    tier_store / tier_fast_budget:
        A :class:`~repro.io.storage.LocalTierStore` makes every commit
        *also* place the step's container across the store's directory
        tiers — shard/class extents routed by the placement policy over
        ``tier_fast_budget`` bytes of fast tier (``None``: whatever
        remains of tier 0's budget) — and records the landed tiers in
        the manifest entry's ``tiers`` field.  The stream directory
        stays the canonical copy; the tier store is the executed
        Fig. 1 placement, byte-identical on reassembly.
    """

    def __init__(
        self,
        root: str | Path,
        shape: tuple[int, ...],
        *,
        tol: float | None = None,
        backend: str = "huffman",
        key_interval: int = 16,
        mode: str = "level",
        executor=None,
        reuse_codebooks: bool = True,
        shards: int | None = None,
        durability: str = "rename",
        tier_store=None,
        tier_fast_budget: int | None = None,
    ):
        if durability not in _DURABILITY_LEVELS:
            raise ValueError(
                f"unknown durability {durability!r}; choose from {_DURABILITY_LEVELS}"
            )
        self.durability = durability
        self._tier_store = tier_store
        self._tier_fast_budget = tier_fast_budget
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # sweep a crashed predecessor's half-written temp files: no
        # manifest ever references a .tmp, and live commits use unique
        # names, so anything matching here is dead weight
        for stale in self.root.glob("*.tmp"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing sweeper
                pass
        self.refactorer = Refactorer(tuple(shape))
        self.stream_mode = "refactored" if tol is None else "compressed"
        self._backend = backend
        self._tol = None if tol is None else float(tol)
        self._key_interval = int(key_interval)
        self._executor = executor
        self._shard_plan = None
        self._shard_codec = None
        if shards is not None and shards > 1:
            from ..cluster.sharded import ShardCodec, plan_shards, shard_tolerance

            self._shard_plan = plan_shards(tuple(shape), int(shards))
            self._shard_codec = ShardCodec(
                tol=None
                if tol is None
                else shard_tolerance(tol, self._shard_plan.n_blocks),
                mode=mode,
                backend=backend,
            )
        self._compressor: TimeSeriesCompressor | None = None
        if tol is not None and self._shard_plan is None:
            self._compressor = TimeSeriesCompressor(
                hierarchy_for(tuple(shape)),
                tol,
                key_interval=key_interval,
                mode=mode,
                backend=backend,
                executor=executor,
                reuse_codebooks=reuse_codebooks,
                stream_tag=str(self.root.resolve()),
            )
        self._manifest_path = self.root / _MANIFEST
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text())
            if tuple(manifest["shape"]) != tuple(shape):
                raise StreamError(
                    f"stream at {root} has shape {manifest['shape']}, not {shape}"
                )
            existing_mode = manifest.get("mode", "refactored")
            if existing_mode != self.stream_mode:
                raise StreamError(
                    f"stream at {root} is {existing_mode!r}, writer asked for "
                    f"{self.stream_mode!r}"
                )
            existing_shards = manifest.get("shards")
            want_shards = (
                None
                if self._shard_plan is None
                else [[int(a), int(b)] for a, b in
                      zip(self._shard_plan.starts, self._shard_plan.stops)]
            )
            if existing_shards != want_shards:
                raise StreamError(
                    f"stream at {root} was written with shards={existing_shards!r}, "
                    f"writer asked for {want_shards!r}"
                )
            if self.stream_mode == "compressed":
                # steps already on disk were encoded under these
                # settings; silently rewriting them in the manifest
                # would misdescribe every earlier step
                checks = [("tol", self._tol), ("backend", backend)]
                if self._compressor is not None:
                    checks.append(("key_interval", self._compressor.key_interval))
                for key, got in checks:
                    want = manifest.get(key)
                    if want is not None and want != got:
                        raise StreamError(
                            f"stream at {root} was written with {key}={want!r}, "
                            f"writer asked for {got!r}"
                        )
            self._steps = manifest["steps"]
        else:
            self._steps = []
            self._flush_manifest(shape)
        self._next_index = len(self._steps)

    def _flush_manifest(self, shape) -> None:
        faults.crash_point("stream.manifest.pre_flush")
        doc = {"shape": list(shape), "mode": self.stream_mode, "steps": self._steps}
        if self._shard_plan is not None:
            doc["shards"] = [
                [int(a), int(b)]
                for a, b in zip(self._shard_plan.starts, self._shard_plan.stops)
            ]
        if self.stream_mode == "compressed":
            doc["tol"] = self._tol
            doc["backend"] = self._backend
            if self._compressor is not None:
                doc["key_interval"] = self._compressor.key_interval
        payload = json.dumps(doc, indent=1)
        _atomic_publish(
            self._manifest_path, payload.encode(), self.durability, "stream.manifest"
        )

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def append(self, field: np.ndarray, time: float | None = None) -> int:
        """Persist one step (refactor or compress); returns its index."""
        return self.commit_step(self.encode_step(field, time=time))

    def encode_step(self, field: np.ndarray, time: float | None = None) -> PreparedStep:
        """Refactor/compress one step into memory, without committing.

        Steps must be encoded in stream order (the compressed mode's
        closed prediction loop and code-book chain are stateful); a
        pipeline's per-stage gate provides exactly that.  The returned
        :class:`PreparedStep` carries the serialized container bytes
        plus its manifest entry; hand it to :meth:`commit_step`.  The
        fused form of the two-stage compressed-mode split
        (:meth:`predict_step` then :meth:`encode_predicted`), or of the
        sharded split (:meth:`shard_step` then :meth:`encode_sharded`).
        """
        if self._shard_plan is not None:
            return self.encode_sharded(self.shard_step(field, time=time))
        if self._compressor is not None:
            return self.encode_predicted(self.predict_step(field, time=time))
        return self.encode_refactored(self.refactorer.refactor(field), time=time)

    def shard_step(self, field: np.ndarray, time: float | None = None) -> ShardedStep:
        """Claim the next step index for a sharded stream, unencoded.

        Sharded streams only.  The in-order stage of the pipelined
        sharded write — deliberately cheap (the index claim plus a
        shape check; the frame travels by reference), because sharded
        steps carry no cross-step state and the heavy per-shard encode
        (:meth:`encode_sharded`) may overlap across steps.
        """
        if self._shard_plan is None:
            raise StreamError(
                "shard_step needs a sharded stream; this writer is "
                "unsharded (use encode_step)"
            )
        if tuple(field.shape) != self._shard_plan.shape:
            raise ValueError(
                f"frame has shape {field.shape}, expected {self._shard_plan.shape}"
            )
        return ShardedStep(index=self._claim_index(), time=time, field=field)

    def encode_sharded(self, ss: ShardedStep) -> PreparedStep:
        """Encode a sharded step's shards and serialize its container.

        The per-shard refactor/compress fan-out runs through the
        writer's executor (:func:`repro.cluster.sharded.encode_shards`
        — shared-memory staging for process workers); the shard
        containers are byte-identical across serial/thread/process.
        Stateless across steps, so a pipeline overlaps it freely.
        """
        if self._shard_plan is None:
            raise StreamError(
                "encode_sharded needs a sharded stream; this writer is "
                "unsharded (use encode_step)"
            )
        from ..cluster.sharded import encode_shards

        plan = self._shard_plan
        payloads = encode_shards(
            np.ascontiguousarray(ss.field), plan, self._shard_codec, self._executor
        )
        bounds = list(zip(plan.starts, plan.stops))
        buf = io.BytesIO()
        nbytes = write_sharded_stream(
            buf,
            plan.shape,
            self._shard_codec.payload_mode,
            bounds,
            payloads,
            attrs={"step": ss.index, "time": ss.time},
        )
        return PreparedStep(
            index=ss.index,
            name=f"step_{ss.index:06d}.rpsh",
            payload=buf.getvalue(),
            entry={
                "time": ss.time,
                "nbytes": int(nbytes),
                "shards": [
                    {"start": int(a), "stop": int(b), "nbytes": len(p)}
                    for (a, b), p in zip(bounds, payloads)
                ],
            },
        )

    def predict_step(self, field: np.ndarray, time: float | None = None) -> PredictedStep:
        """Run one step through the closed prediction loop, unencoded.

        Compressed streams only.  The in-order stage of the pipelined
        compressed write: temporal prediction, refactor, quantization,
        and the step-index claim all happen here (they are the stateful
        parts), while the entropy coding of the returned
        :class:`PredictedStep` — :meth:`encode_predicted` — may overlap
        the *next* step's prediction.
        """
        if self._compressor is None:
            raise StreamError(
                "predict_step needs an unsharded 'compressed' stream; use "
                "shard_step/encode_sharded on sharded streams, or "
                "refactorer.refactor + encode_refactored on 'refactored' ones"
            )
        plan = self._compressor.predict_residual(field)
        return PredictedStep(index=self._claim_index(), time=time, plan=plan)

    def encode_predicted(self, pred: PredictedStep) -> PreparedStep:
        """Entropy-code a predicted step and serialize its container.

        Steps sharing the writer's code-book chain must be encoded in
        stream order (a pipeline's per-stage gate guarantees it); the
        prediction of later steps never waits on this call.
        """
        if self._compressor is None:
            raise StreamError(
                "encode_predicted needs an unsharded 'compressed' stream; "
                "use encode_sharded on sharded streams, or encode_refactored "
                "on 'refactored' ones"
            )
        blob, is_key = self._compressor.encode_residual(pred.plan)
        buf = io.BytesIO()
        # keep code-book references as written: the stream directory
        # is the unit of self-containment, not the individual step
        nbytes = save_compressed(buf, blob, materialize=False)
        return PreparedStep(
            index=pred.index,
            name=f"step_{pred.index:06d}.mgz",
            payload=buf.getvalue(),
            entry={
                "time": pred.time,
                "is_key": bool(is_key),
                "nbytes": int(nbytes),
            },
        )

    def encode_refactored(
        self, cc: CoefficientClasses, time: float | None = None
    ) -> PreparedStep:
        """Serialize already-refactored classes into a prepared step.

        The refactored-mode counterpart of :meth:`encode_step` whose
        input is the *refactor* stage's output — the seam the pipelined
        workflow showcase splits its refactor→encode→write chain along.
        """
        if self._compressor is not None or self._shard_plan is not None:
            raise StreamError(
                "encode_refactored needs an unsharded 'refactored' stream; "
                "this writer is sharded or 'compressed' (use encode_step)"
            )
        idx = self._claim_index()
        buf = io.BytesIO()
        write_refactored_stream(buf, cc, attrs={"step": idx, "time": time})
        hints = [truncation_estimate(cc, k) for k in range(1, cc.n_classes + 1)]
        return PreparedStep(
            index=idx,
            name=f"step_{idx:06d}.rprc",
            payload=buf.getvalue(),
            entry={
                "time": time,
                "class_bytes": [int(c.nbytes) for c in cc.classes],
                "truncation_estimates": hints,
            },
        )

    def _claim_index(self) -> int:
        idx = self._next_index
        self._next_index += 1
        return idx

    def abandon_pending(self) -> int:
        """Forget predicted/encoded-but-uncommitted steps; returns how many.

        An aborted pipeline can leave steps that were predicted or
        encoded (their indices claimed) but whose commits were cancelled.  The next
        encode would claim a yet-higher index and every commit would
        fail the in-order check, wedging the writer — this resets the
        claim counter to the committed prefix so appending can resume.
        Outstanding :class:`PreparedStep` objects from before the reset
        are invalid and must be dropped.  Compressed-mode writers note:
        the prediction loop and code-book chain already advanced past
        the abandoned steps, so the stream resumes from re-encoded
        data, not from the abandoned frames.
        """
        pending = self._next_index - len(self._steps)
        self._next_index = len(self._steps)
        if self._compressor is not None and pending:
            # re-base the temporal chain: the next append is a key frame
            # and rebuilds its code books, so nothing references state
            # shipped only by the abandoned steps
            self._compressor.reset()
        return pending

    def commit_step(self, prep: PreparedStep) -> int:
        """Write a prepared step's file and publish its manifest entry.

        Commits must arrive in encode order — the manifest records a
        contiguous prefix, and a concurrent reader may only ever see
        fully-written steps (unique temp file + atomic rename).  A
        writer killed anywhere inside this call leaves the stream
        reopenable: either the step is fully in the manifest, or it is
        invisible (at worst a swept-on-open temp file or an orphan step
        file the resumed writer republishes under the same name).
        """
        if prep.index != len(self._steps):
            raise StreamError(
                f"step {prep.index} committed out of order; the manifest "
                f"has {len(self._steps)} steps (after an aborted pipeline, "
                "call abandon_pending() and re-encode)"
            )
        _atomic_publish(
            self.root / prep.name, prep.payload, self.durability, "stream.step"
        )
        faults.crash_point("stream.commit.post_rename")
        entry = {"file": prep.name, **prep.entry}
        if self._tier_store is not None:
            # executed tiered placement: the step's shard/class extents
            # move through the store's directory tiers per the policy;
            # the manifest records where each extent landed
            record = self._tier_store.place_container(
                f"steps/{prep.name}", prep.payload,
                fast_budget_bytes=self._tier_fast_budget,
            )
            entry["tiers"] = {
                "header": record["header_tier"],
                "extents": [[e["name"], e["tier"]] for e in record["extents"]],
            }
        self._steps.append(entry)
        self._flush_manifest(self.refactorer.shape)
        return prep.index


class StepStreamReader:
    """Consumer side: read steps (or prefixes of them) from a stream.

    ``cache_steps`` bounds a decoded-step LRU cache (entries; ``0``
    disables it): repeated random access into a compressed stream no
    longer re-rolls the key-frame chain for steps decoded recently.
    Entries are keyed by ``(step, generation)`` where :attr:`generation`
    bumps — invalidating every cached decode — whenever
    :meth:`refresh` adopts a manifest whose already-known entries
    *changed* (a rewritten stream).  Plain appends from a live producer
    keep the generation: committed steps are immutable, so their cached
    decodes stay valid while a follower polls.  Only clean, exact reads
    are cached (never degraded/recovered ones, so a repaired file still
    heals on retry).

    The reader is **thread-safe**: :meth:`read_step`,
    :meth:`read_region`, :meth:`read`, :meth:`read_full`, and
    :meth:`refresh` serialize on an internal lock (the compressed-mode
    chain replay is stateful), so concurrent callers — a server's
    decode pool, follower threads — compose without torn chain state.
    """

    def __init__(self, root: str | Path, *, cache_steps: int = 4):
        self.root = Path(root)
        path = self.root / _MANIFEST
        if not path.exists():
            raise StreamError(f"no stream manifest at {self.root}")
        manifest = json.loads(path.read_text())
        self.shape = tuple(manifest["shape"])
        self.stream_mode = manifest.get("mode", "refactored")
        self.tol = manifest.get("tol")
        shards = manifest.get("shards")
        self.shard_bounds = (
            None
            if shards is None
            else [(int(a), int(b)) for a, b in shards]
        )
        self.steps = manifest["steps"]
        self.hier = hierarchy_for(self.shape)
        # compressed-mode incremental decode state
        self._spatial = None
        self._pos: int | None = None
        self._prev: np.ndarray | None = None
        self._scratch: dict = {}
        self._refresh_failures = 0
        self._lock = threading.RLock()
        #: bumped when refresh() adopts a manifest whose known entries
        #: changed; part of every step-cache key
        self.generation = 0
        if cache_steps < 0:
            raise ValueError(f"cache_steps must be >= 0, got {cache_steps}")
        self._step_cache = LRUCache(
            max_bytes=(1 << 62) if cache_steps else 0, max_entries=cache_steps
        )
        #: steps whose files failed CRC/parse checks, step -> reason.
        #: Quarantined steps are skipped by chain recovery (a delta
        #: chain cannot cross them) but retried on direct access, so a
        #: repaired file heals without reopening the reader.
        self.quarantined: dict[int, str] = {}
        #: recovery report of the most recent read (None = clean/exact)
        self.last_recovery: RecoveryReport | None = None

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def refresh(self) -> int:
        """Re-read the manifest to pick up steps appended since open.

        Thread-safe; see :meth:`_refresh_impl` for the full contract.
        """
        with self._lock:
            return self._refresh_impl()

    def wait_for_step(
        self,
        step: int,
        *,
        timeout: float | None = None,
        poll_interval: float = 0.005,
        max_interval: float = 0.25,
        backoff: float = 2.0,
    ) -> bool:
        """Block until the stream lists a step ``> step``-indexed (i.e.
        ``n_steps > step``), refreshing with exponential backoff.

        The follower primitive: instead of busy-polling ``refresh()`` in
        a tight loop, the poll interval starts at ``poll_interval`` and
        doubles (``backoff``) up to ``max_interval`` while the producer
        is quiet, so an idle follower costs microseconds of CPU per
        second instead of a core.  Returns ``True`` as soon as the step
        is visible, ``False`` on ``timeout`` (``None`` waits forever).
        A dead stream still surfaces as :class:`StreamError` through
        ``refresh``'s torn-manifest cap.
        """
        if poll_interval <= 0 or max_interval <= 0 or backoff < 1:
            raise ValueError(
                "need poll_interval > 0, max_interval > 0, backoff >= 1"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        interval = poll_interval
        while True:
            if self.n_steps > step:
                return True
            self.refresh()
            if self.n_steps > step:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            pause = interval
            if deadline is not None:
                pause = min(pause, max(deadline - time.monotonic(), 0.0))
            time.sleep(pause)
            interval = min(interval * backoff, max_interval)

    def cache_info(self) -> dict:
        """Decoded-step cache counters (hits/misses/evictions/bytes)."""
        return self._step_cache.stats()

    def _refresh_impl(self) -> int:
        """Re-read the manifest to pick up steps appended since open.

        The producer replaces the manifest atomically, so on POSIX a
        reader polling behind a live simulation always sees a
        consistent prefix.  Filesystems without atomic replace (network
        mounts, some object-store shims) can expose a *torn* manifest —
        half-written JSON, or a file that is momentarily absent mid
        replace.  A torn read is not an error, just a poll that landed
        inside the producer's write: the reader keeps its last good
        snapshot and picks the new steps up on the next call (after
        :data:`_MAX_TORN_REFRESHES` consecutive failures the stream is
        considered dead and :class:`StreamError` is raised).  A
        snapshot that parses but lists *fewer* steps than this reader
        already holds is treated the same way: steps are append-only,
        so a shrunken manifest is a stale read mid-replace, and
        adopting it would make :meth:`read_step` reject — instead of
        rolling forward from the nearest key frame — steps it served a
        poll ago.  Returns the current step count.  Already-decoded
        state is kept — existing steps are immutable.
        """
        path = self.root / _MANIFEST
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            # torn read from a live producer; keep the previous
            # snapshot.  A *persistently* unreadable manifest (stream
            # directory deleted, mount gone) is not a torn read — after
            # enough consecutive failures, surface it instead of
            # letting a polling consumer spin on stale data forever.
            self._refresh_failures += 1
            if self._refresh_failures >= _MAX_TORN_REFRESHES:
                raise StreamError(
                    f"manifest at {self.root} unreadable for "
                    f"{self._refresh_failures} consecutive refreshes"
                ) from e
            return len(self.steps)
        try:
            steps = manifest["steps"]
            shape = tuple(manifest["shape"])
        except (KeyError, TypeError) as e:
            # parsed cleanly but wrong schema: that is corruption (or
            # the wrong file), not a torn read — stalling silently here
            # would poll forever
            raise StreamError(
                f"malformed stream manifest at {self.root}"
            ) from e
        if shape != self.shape:
            raise StreamError(f"stream at {self.root} changed shape underneath us")
        if len(steps) < len(self.steps):
            # a manifest can never lose steps (the producer only appends
            # and replaces atomically), so a shorter snapshot is another
            # face of the torn read: a non-atomic filesystem exposing a
            # half-propagated replace.  Adopting it would invalidate
            # step indices this reader already served — random access
            # via read_step would suddenly reject steps it decoded a
            # poll ago — so keep the longer snapshot and let the next
            # poll catch up (counted like any other torn read, so a
            # stream that *stays* shrunken still surfaces as dead).
            self._refresh_failures += 1
            if self._refresh_failures >= _MAX_TORN_REFRESHES:
                raise StreamError(
                    f"manifest at {self.root} stuck {len(steps)} steps behind "
                    f"this reader's snapshot of {len(self.steps)} (torn or "
                    "rewritten stream?)"
                )
            return len(self.steps)
        self._refresh_failures = 0
        if steps[: len(self.steps)] != self.steps:
            # an entry this reader already described changed — the
            # stream was rewritten underneath us, so every cached
            # decode (keyed by the old generation) is now unreachable,
            # and the chain-replay state (_pos/_prev) describes fields
            # that no longer exist.  Plain appends keep the generation:
            # committed steps are immutable, and nuking the cache on
            # every follower poll would defeat its purpose.
            self.generation += 1
            self._step_cache.clear()
            self._reset_chain()
        self.steps = steps
        return len(self.steps)

    def classes_needed(self, step: int, tol: float) -> int:
        """Prefix length meeting ``tol`` — decided from the manifest only."""
        if self.stream_mode != "refactored" or self.shard_bounds is not None:
            raise StreamError(
                "class-prefix hints need an unsharded 'refactored' stream; "
                f"this one is {self.stream_mode!r}"
                f"{' (sharded — use read_region)' if self.shard_bounds else ''}"
            )
        with self._lock:
            meta = self._meta(step)
        for k, est in enumerate(meta["truncation_estimates"], start=1):
            if est <= tol:
                return k
        return len(meta["truncation_estimates"])

    def read(self, step: int, k: int | None = None, tol: float | None = None):
        """Reconstruct a step from its first ``k`` classes.

        Pass ``tol`` instead of ``k`` to let the manifest hint choose.
        Returns ``(field, bytes_read)``.  Refactored-mode streams only;
        compressed streams decode whole steps via :meth:`read_step`.
        """
        if self.stream_mode != "refactored" or self.shard_bounds is not None:
            raise StreamError(
                "partial class reads need an unsharded 'refactored' stream; "
                f"this one is {self.stream_mode!r}"
                f"{' (sharded — use read_region)' if self.shard_bounds else ''}"
            )
        if (k is None) == (tol is None):
            raise ValueError("pass exactly one of k or tol")
        with self._lock:
            meta = self._meta(step)
        if tol is not None:
            k = self.classes_needed(step, tol)
        reader = RefactoredFileReader(self.root / meta["file"])
        classes = reader.read_classes(k)
        field = reconstruct_from_classes(classes, self.hier)
        return field, sum(meta["class_bytes"][:k])

    def read_full(self, step: int) -> CoefficientClasses:
        """All classes of a step, as a :class:`CoefficientClasses`."""
        if self.stream_mode != "refactored" or self.shard_bounds is not None:
            raise StreamError(
                f"read_full needs an unsharded 'refactored' stream; this one "
                f"is {self.stream_mode!r}"
                f"{' (sharded — use read_region)' if self.shard_bounds else ''}"
            )
        with self._lock:
            meta = self._meta(step)
        return RefactoredFileReader(self.root / meta["file"]).to_coefficient_classes(
            self.hier
        )

    # ------------------------------------------------------------------
    # sharded-mode region decode

    def read_region(self, step: int, region=None, on_error: str = "recover") -> np.ndarray:
        """Reconstruct a sub-volume of one step (thread-safe wrapper)."""
        with self._lock:
            return self._read_region_impl(step, region, on_error)

    def _read_region_impl(self, step: int, region=None, on_error: str = "recover") -> np.ndarray:
        """Reconstruct a sub-volume of one step, decoding only its shards.

        ``region`` is a tuple of slices into the full step grid (fewer
        slices than dimensions are padded with ``slice(None)``; steps
        other than 1 are not supported); ``None`` reads the whole step.
        On a sharded stream only the shard segments whose axis-0 row
        ranges intersect ``region`` are read and decoded — the partial-
        read capability along *space*, complementing the class-prefix
        partial read along *accuracy*.  Works for both payload modes
        (refactored shards reconstruct losslessly; compressed shards
        honour the stream's L∞ bound).  Unsharded streams fall back to
        a whole-step decode and slice.

        Shards are independent failure domains, and ``on_error``
        (default ``"recover"``) exploits that: a shard whose bytes fail
        their CRC or parse is *skipped* — its rows come back NaN-filled
        and ``self.last_recovery`` records the lost axis-0 extents —
        while every surviving shard is served exactly.  Only when **no**
        covering shard decodes (or the step's shard table itself is
        unreadable) does the read raise :class:`StreamError`.
        ``on_error="raise"`` restores fail-stop behaviour.
        """
        if on_error not in ("recover", "raise"):
            raise ValueError(f"on_error must be 'recover' or 'raise', got {on_error!r}")
        meta = self._meta(step)
        region = self._normalize_region(region)
        if self.shard_bounds is None:
            if self.stream_mode == "compressed":
                return self.read_step(step, on_error=on_error)[region].copy()
            field, _ = self.read(step, k=len(meta["class_bytes"]))
            return field[region].copy()
        lo, hi, _ = region[0].indices(self.shape[0])
        self.last_recovery = None
        try:
            reader = ShardedFileReader(self.root / meta["file"])
            covering = reader.shards_covering(lo, hi)
            bounds = reader.shard_bounds()
        except _DECODE_ERRORS as e:
            if on_error == "raise":
                raise
            self.quarantined.setdefault(step, str(e))
            raise StreamError(
                f"step {step}: sharded container unreadable ({e})"
            ) from e
        out = np.empty(
            (hi - lo,) + tuple(
                len(range(*sl.indices(n)))
                for sl, n in zip(region[1:], self.shape[1:])
            ),
            dtype=np.float64,
        )
        rest = tuple(region[1:])
        failed: list[tuple[int, int]] = []
        for i in covering:
            a, b = bounds[i]
            cut_lo, cut_hi = max(lo, a), min(hi, b)
            try:
                block = self._decode_shard(reader, i)
            except _DECODE_ERRORS as e:
                if on_error == "raise":
                    raise
                out[cut_lo - lo : cut_hi - lo] = np.nan
                failed.append((cut_lo, cut_hi))
                continue
            out[cut_lo - lo : cut_hi - lo] = block[
                (slice(cut_lo - a, cut_hi - a),) + rest
            ]
        if failed:
            if len(failed) == len(covering):
                self.quarantined.setdefault(step, "every covering shard corrupt")
                raise StreamError(
                    f"step {step}: all {len(covering)} shards covering rows "
                    f"[{lo}, {hi}) failed to decode"
                )
            self.last_recovery = RecoveryReport(
                requested=step,
                served=step,
                quarantined=sorted(self.quarantined),
                degraded=True,
                failed_extents=failed,
            )
        return out

    def _decode_shard(self, reader: ShardedFileReader, i: int) -> np.ndarray:
        """Decode one shard segment to its field block (the region-read
        work unit — tests spy on it to assert read selectivity)."""
        from ..cluster.sharded import decode_shard

        return decode_shard(reader.read_shard(i), reader.payload_mode)

    def _normalize_region(self, region) -> tuple[slice, ...]:
        if region is None:
            region = ()
        if not isinstance(region, tuple):
            region = (region,)
        if len(region) > len(self.shape):
            raise ValueError(
                f"region has {len(region)} slices for a {len(self.shape)}-d grid"
            )
        region = tuple(region) + tuple(
            slice(None) for _ in range(len(self.shape) - len(region))
        )
        out = []
        for sl, n in zip(region, self.shape):
            if not isinstance(sl, slice):
                raise ValueError("region entries must be slices")
            lo, hi, stride = sl.indices(n)
            if stride != 1:
                raise ValueError("region slices must have step 1")
            if hi <= lo:
                raise ValueError(f"empty region slice {sl} on an axis of {n}")
            out.append(slice(lo, hi))
        return tuple(out)

    # ------------------------------------------------------------------
    # compressed-mode decode

    def read_step(self, step: int, on_error: str = "recover") -> np.ndarray:
        """Reconstruct one full step (cached; see :meth:`_read_step_impl`).

        Clean decodes land in the reader's decoded-step LRU keyed by
        ``(step, generation)``, so repeated random access stops
        re-rolling the key-frame chain; a hit costs one ``memcpy``.
        Degraded (recovered) reads are never cached — a repaired file
        heals on the next direct access, exactly as without the cache.
        """
        if on_error not in ("recover", "raise"):
            raise ValueError(f"on_error must be 'recover' or 'raise', got {on_error!r}")
        with self._lock:
            key = (step, self.generation)
            cached = self._step_cache.get(key)
            if cached is not None:
                self.last_recovery = None
                return cached.copy()
            out = self._read_step_impl(step, on_error)
            if self.last_recovery is None:
                snap = out.copy()
                snap.setflags(write=False)
                self._step_cache.put(key, snap)
            return out

    def _read_step_impl(self, step: int, on_error: str = "recover") -> np.ndarray:
        """Reconstruct one full step of a compressed or sharded stream.

        Compressed streams honour ``tol``; sequential reads cost one
        blob decode each and random access rolls forward from the
        nearest key frame at or before ``step``, replaying the
        code-book chain along the way.  Sharded streams (either payload
        mode) decode all shards of ``step`` directly — independent
        partitions need no chain replay.

        With ``on_error="recover"`` (the default) a step whose file
        fails its CRC or parse is **quarantined** instead of poisoning
        the stream: the read serves the nearest decodable state at or
        before ``step`` — rolling the delta chain back to the last good
        step, or to an earlier key-frame chain when the corruption sits
        at a chain head — and ``self.last_recovery`` reports which step
        was actually served.  Only when no decodable key-frame chain
        exists at all does the read raise :class:`StreamError`.
        ``on_error="raise"`` restores fail-stop behaviour (the first
        corrupt file in the replay chain raises).
        """
        if on_error not in ("recover", "raise"):
            raise ValueError(f"on_error must be 'recover' or 'raise', got {on_error!r}")
        if self.shard_bounds is not None:
            # sharded steps are independent (no temporal chain) in both
            # payload modes: a full read is the all-shards region read
            return self.read_region(step, on_error=on_error)
        if self.stream_mode != "compressed":
            raise StreamError(
                f"read_step needs a 'compressed' stream; this one is "
                f"{self.stream_mode!r} (use read/read_full)"
            )
        self._meta(step)  # range check
        self.last_recovery = None
        if self._pos is not None and step == self._pos:
            return self._prev.copy()
        if self._pos is not None and step == self._pos + 1:
            start = step
        else:
            start = self._latest_key_at_or_before(step)
            self._reset_chain()
        for s in range(start, step + 1):
            try:
                self._decode_forward(s)
            except _DECODE_ERRORS as e:
                if on_error == "raise":
                    raise
                self.quarantined.setdefault(s, str(e))
                return self._recover_read(step)
        return self._prev.copy()

    def _reset_chain(self) -> None:
        self._pos, self._prev = None, None
        self._scratch = {}

    def _recover_read(self, step: int) -> np.ndarray:
        """Serve the nearest decodable state at or before ``step``.

        Called after a chain decode hit a quarantined step.  If the
        chain had already produced state (the corrupt step was
        mid-chain), that pre-failure state *is* the nearest decodable
        one.  Otherwise the chain head itself was undecodable: walk
        earlier key frames, replaying each candidate chain up to the
        first corrupt step, until one yields any state.  Raises
        :class:`StreamError` when no chain does — a stream with every
        key frame poisoned has nothing safe to serve.
        """
        if self._pos is None:
            for k in range(step - 1, -1, -1):
                if not self.steps[k].get("is_key") or k in self.quarantined:
                    continue
                self._reset_chain()
                try:
                    for s in range(k, step + 1):
                        if s in self.quarantined:
                            break  # a delta chain cannot cross a hole
                        self._decode_forward(s)
                except _DECODE_ERRORS as e:
                    self.quarantined.setdefault(s, str(e))
                if self._pos is not None:
                    break
        if self._pos is None:
            raise StreamError(
                f"step {step}: no decodable key-frame chain at or before it "
                f"(quarantined steps: {sorted(self.quarantined)})"
            )
        self.last_recovery = RecoveryReport(
            requested=step,
            served=self._pos,
            quarantined=sorted(self.quarantined),
            degraded=self._pos != step,
        )
        return self._prev.copy()

    def _latest_key_at_or_before(self, step: int) -> int:
        for s in range(step, -1, -1):
            if self.steps[s].get("is_key"):
                return s
        raise StreamError(f"no key frame at or before step {step}")

    def _decode_forward(self, s: int) -> None:
        meta = self.steps[s]
        blob, hier = load_compressed(self.root / meta["file"])
        if hier.shape != self.shape:
            raise StreamError(f"step {s} was compressed for shape {hier.shape}")
        if self._spatial is None:
            from ..compress.mgard import MgardCompressor

            self._spatial = MgardCompressor.for_shape(
                self.shape, float(blob.tol), mode=blob.mode
            )
        delta = self._spatial.decompress(blob, scratch=self._scratch)
        self._prev = delta if meta.get("is_key") else self._prev + delta
        self._pos = s

    def _meta(self, step: int) -> dict:
        if not 0 <= step < len(self.steps):
            raise StreamError(f"step {step} out of range [0, {len(self.steps)})")
        return self.steps[step]
