"""Streaming producer→consumer coupling over refactored time steps.

The paper's Figure 1 shows a *running* simulation sharing data with
analysis routines; in practice that means appending one refactored time
step after another while consumers read — possibly behind the producer,
possibly at reduced accuracy.  This module provides that coupling on a
directory:

* :class:`StepStreamWriter` — appends steps; each step is one
  refactored-data container plus a manifest entry (atomic rename, so a
  concurrent reader never sees a half-written step);
* :class:`StepStreamReader` — lists/loads steps, reading only the class
  prefix a consumer's accuracy needs (via the s-norm hint recorded by
  the producer), and :meth:`StepStreamReader.refresh`-ing its manifest
  to follow a producer that is still appending.

The manifest stores per-step metadata (shape, class byte sizes, s-norm
truncation estimates) so a consumer can choose its prefix *before*
touching the heavy payload — the Figure-1 "hint" across time.

Two stream modes share the directory layout:

``refactored`` (default)
    Steps are stored as raw refactored-class containers supporting
    partial (class-prefix) reads.

``compressed`` (pass ``tol=``)
    Steps go through the error-bounded time-series compressor:
    closed-loop temporal prediction, key frames every ``key_interval``
    steps, and — with the ``huffman`` backend — cross-step code-book
    reuse through the shared compression plan's scratch (non-key steps
    reference the books shipped at the last key frame instead of
    re-serializing them).  Step files keep those references *on disk*;
    the reader replays the chain from the nearest key frame, which is
    exactly the random-access granularity closed-loop prediction has
    anyway.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..compress.fileio import load_compressed, save_compressed
from ..compress.timeseries import TimeSeriesCompressor
from ..core.classes import CoefficientClasses, reconstruct_from_classes
from ..core.grid import TensorHierarchy, hierarchy_for
from ..core.refactor import Refactorer
from ..core.snorm import truncation_estimate
from .container import RefactoredFileReader, write_refactored

__all__ = ["StepStreamWriter", "StepStreamReader", "StreamError"]

_MANIFEST = "manifest.json"


class StreamError(RuntimeError):
    """Malformed or inconsistent stream directory."""


class StepStreamWriter:
    """Producer side: append time steps to a directory.

    Parameters
    ----------
    root / shape:
        Stream directory and the per-step grid shape.
    tol:
        Selects the ``compressed`` mode: per-step absolute L∞ error
        bound.  ``None`` (default) keeps the raw ``refactored`` mode.
    backend / key_interval / mode:
        Compressed-mode settings, passed to
        :class:`~repro.compress.timeseries.TimeSeriesCompressor`.
    executor:
        Executor spec or instance scheduling the encode fan-out.
    """

    def __init__(
        self,
        root: str | Path,
        shape: tuple[int, ...],
        *,
        tol: float | None = None,
        backend: str = "huffman",
        key_interval: int = 16,
        mode: str = "level",
        executor=None,
        reuse_codebooks: bool = True,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.refactorer = Refactorer(tuple(shape))
        self.stream_mode = "refactored" if tol is None else "compressed"
        self._backend = backend
        self._compressor: TimeSeriesCompressor | None = None
        if tol is not None:
            self._compressor = TimeSeriesCompressor(
                hierarchy_for(tuple(shape)),
                tol,
                key_interval=key_interval,
                mode=mode,
                backend=backend,
                executor=executor,
                reuse_codebooks=reuse_codebooks,
                stream_tag=str(self.root.resolve()),
            )
        self._manifest_path = self.root / _MANIFEST
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text())
            if tuple(manifest["shape"]) != tuple(shape):
                raise StreamError(
                    f"stream at {root} has shape {manifest['shape']}, not {shape}"
                )
            existing_mode = manifest.get("mode", "refactored")
            if existing_mode != self.stream_mode:
                raise StreamError(
                    f"stream at {root} is {existing_mode!r}, writer asked for "
                    f"{self.stream_mode!r}"
                )
            if self._compressor is not None:
                # steps already on disk were encoded under these
                # settings; silently rewriting them in the manifest
                # would misdescribe every earlier step
                for key, got in (
                    ("tol", self._compressor.tol),
                    ("key_interval", self._compressor.key_interval),
                    ("backend", backend),
                ):
                    want = manifest.get(key)
                    if want is not None and want != got:
                        raise StreamError(
                            f"stream at {root} was written with {key}={want!r}, "
                            f"writer asked for {got!r}"
                        )
            self._steps = manifest["steps"]
        else:
            self._steps = []
            self._flush_manifest(shape)

    def _flush_manifest(self, shape) -> None:
        doc = {"shape": list(shape), "mode": self.stream_mode, "steps": self._steps}
        if self._compressor is not None:
            doc["tol"] = self._compressor.tol
            doc["key_interval"] = self._compressor.key_interval
            doc["backend"] = self._backend
        payload = json.dumps(doc, indent=1)
        tmp = self._manifest_path.with_suffix(".tmp")
        tmp.write_text(payload)
        os.replace(tmp, self._manifest_path)  # atomic on POSIX

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def append(self, field: np.ndarray, time: float | None = None) -> int:
        """Persist one step (refactor or compress); returns its index."""
        if self._compressor is not None:
            return self._append_compressed(field, time)
        cc = self.refactorer.refactor(field)
        idx = len(self._steps)
        name = f"step_{idx:06d}.rprc"
        tmp = self.root / (name + ".tmp")
        write_refactored(tmp, cc, attrs={"step": idx, "time": time})
        os.replace(tmp, self.root / name)
        hints = [
            truncation_estimate(cc, k) for k in range(1, cc.n_classes + 1)
        ]
        self._steps.append(
            {
                "file": name,
                "time": time,
                "class_bytes": [int(c.nbytes) for c in cc.classes],
                "truncation_estimates": hints,
            }
        )
        self._flush_manifest(self.refactorer.shape)
        return idx

    def _append_compressed(self, field: np.ndarray, time: float | None) -> int:
        blob, is_key = self._compressor.append(field)
        idx = len(self._steps)
        name = f"step_{idx:06d}.mgz"
        tmp = self.root / (name + ".tmp")
        # keep code-book references as written: the stream directory is
        # the unit of self-containment, not the individual step file
        nbytes = save_compressed(tmp, blob, materialize=False)
        os.replace(tmp, self.root / name)
        self._steps.append(
            {
                "file": name,
                "time": time,
                "is_key": bool(is_key),
                "nbytes": int(nbytes),
            }
        )
        self._flush_manifest(self.refactorer.shape)
        return idx


class StepStreamReader:
    """Consumer side: read steps (or prefixes of them) from a stream."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        path = self.root / _MANIFEST
        if not path.exists():
            raise StreamError(f"no stream manifest at {self.root}")
        manifest = json.loads(path.read_text())
        self.shape = tuple(manifest["shape"])
        self.stream_mode = manifest.get("mode", "refactored")
        self.tol = manifest.get("tol")
        self.steps = manifest["steps"]
        self.hier = hierarchy_for(self.shape)
        # compressed-mode incremental decode state
        self._spatial = None
        self._pos: int | None = None
        self._prev: np.ndarray | None = None
        self._scratch: dict = {}

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    def refresh(self) -> int:
        """Re-read the manifest to pick up steps appended since open.

        The producer replaces the manifest atomically, so a reader
        polling behind a live simulation always sees a consistent
        prefix.  Returns the new step count.  Already-decoded state is
        kept — existing steps are immutable.
        """
        path = self.root / _MANIFEST
        if not path.exists():
            raise StreamError(f"no stream manifest at {self.root}")
        manifest = json.loads(path.read_text())
        if tuple(manifest["shape"]) != self.shape:
            raise StreamError(f"stream at {self.root} changed shape underneath us")
        self.steps = manifest["steps"]
        return len(self.steps)

    def classes_needed(self, step: int, tol: float) -> int:
        """Prefix length meeting ``tol`` — decided from the manifest only."""
        if self.stream_mode != "refactored":
            raise StreamError(
                "class-prefix hints need a 'refactored' stream; this one is "
                f"{self.stream_mode!r} (use read_step)"
            )
        meta = self._meta(step)
        for k, est in enumerate(meta["truncation_estimates"], start=1):
            if est <= tol:
                return k
        return len(meta["truncation_estimates"])

    def read(self, step: int, k: int | None = None, tol: float | None = None):
        """Reconstruct a step from its first ``k`` classes.

        Pass ``tol`` instead of ``k`` to let the manifest hint choose.
        Returns ``(field, bytes_read)``.  Refactored-mode streams only;
        compressed streams decode whole steps via :meth:`read_step`.
        """
        if self.stream_mode != "refactored":
            raise StreamError(
                "partial class reads need a 'refactored' stream; this one is "
                f"{self.stream_mode!r} (use read_step)"
            )
        if (k is None) == (tol is None):
            raise ValueError("pass exactly one of k or tol")
        meta = self._meta(step)
        if tol is not None:
            k = self.classes_needed(step, tol)
        reader = RefactoredFileReader(self.root / meta["file"])
        classes = reader.read_classes(k)
        field = reconstruct_from_classes(classes, self.hier)
        return field, sum(meta["class_bytes"][:k])

    def read_full(self, step: int) -> CoefficientClasses:
        """All classes of a step, as a :class:`CoefficientClasses`."""
        if self.stream_mode != "refactored":
            raise StreamError(
                f"read_full needs a 'refactored' stream; this one is "
                f"{self.stream_mode!r} (use read_step)"
            )
        meta = self._meta(step)
        return RefactoredFileReader(self.root / meta["file"]).to_coefficient_classes(
            self.hier
        )

    # ------------------------------------------------------------------
    # compressed-mode decode

    def read_step(self, step: int) -> np.ndarray:
        """Reconstruct one step of a compressed stream (within ``tol``).

        Sequential reads cost one blob decode each; random access rolls
        forward from the nearest key frame at or before ``step``,
        replaying the code-book chain along the way.
        """
        if self.stream_mode != "compressed":
            raise StreamError(
                f"read_step needs a 'compressed' stream; this one is "
                f"{self.stream_mode!r} (use read/read_full)"
            )
        self._meta(step)  # range check
        if self._pos is not None and step == self._pos:
            return self._prev.copy()
        if self._pos is not None and step == self._pos + 1:
            start = step
        else:
            start = self._latest_key_at_or_before(step)
            self._pos, self._prev = None, None
            self._scratch = {}
        for s in range(start, step + 1):
            self._decode_forward(s)
        return self._prev.copy()

    def _latest_key_at_or_before(self, step: int) -> int:
        for s in range(step, -1, -1):
            if self.steps[s].get("is_key"):
                return s
        raise StreamError(f"no key frame at or before step {step}")

    def _decode_forward(self, s: int) -> None:
        meta = self.steps[s]
        blob, hier = load_compressed(self.root / meta["file"])
        if hier.shape != self.shape:
            raise StreamError(f"step {s} was compressed for shape {hier.shape}")
        if self._spatial is None:
            from ..compress.mgard import MgardCompressor

            self._spatial = MgardCompressor.for_shape(
                self.shape, float(blob.tol), mode=blob.mode
            )
        delta = self._spatial.decompress(blob, scratch=self._scratch)
        self._prev = delta if meta.get("is_key") else self._prev + delta
        self._pos = s

    def _meta(self, step: int) -> dict:
        if not 0 <= step < len(self.steps):
            raise StreamError(f"step {step} out of range [0, {len(self.steps)})")
        return self.steps[step]
