"""Data-lifecycle simulation: the paper's introduction, quantified.

The introduction motivates refactoring with the storage lifecycle on
leadership systems: "data can only be kept on the parallel file system
for 90 days before it is either moved to archival storage ... or
permanently deleted. Once data is moved to archival storage, it can
take weeks or even months for scientists to retrieve".

This module simulates that lifecycle for a campaign of datasets under
two policies:

* **baseline** — whole files migrate to the archive at purge time;
  any later analysis pays the full archive retrieval;
* **refactoring-aware** — at purge time only the *fine* classes migrate;
  a coarse prefix (a configurable fraction of bytes) stays on the PFS,
  so later analyses that tolerate reduced accuracy are served at PFS
  speed and only full-accuracy requests touch the archive.

``simulate_lifecycle`` replays a request trace against both policies
and reports total retrieval time and the fraction of requests served
without archive access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.classes import class_sizes
from ..core.grid import hierarchy_for
from .storage import ALPINE_PFS, ARCHIVE_TIER, StorageTier

__all__ = ["AnalysisRequest", "LifecycleOutcome", "simulate_lifecycle"]


@dataclass(frozen=True)
class AnalysisRequest:
    """One post-purge analysis: which dataset, at what accuracy.

    ``classes_needed`` is the class-prefix length the analysis requires
    (e.g. from the s-norm hint); full accuracy means all classes.
    """

    dataset: int
    classes_needed: int
    n_processes: int = 64


@dataclass
class LifecycleOutcome:
    """Aggregate retrieval costs of one policy over a request trace."""

    policy: str
    total_seconds: float
    archive_hits: int
    pfs_only_requests: int
    per_request_seconds: list[float] = field(default_factory=list)

    @property
    def pfs_only_fraction(self) -> float:
        n = len(self.per_request_seconds)
        return self.pfs_only_requests / n if n else 0.0


def simulate_lifecycle(
    shape: tuple[int, ...],
    requests: list[AnalysisRequest],
    keep_fraction: float = 0.02,
    pfs: StorageTier = ALPINE_PFS,
    archive: StorageTier = ARCHIVE_TIER,
) -> dict[str, LifecycleOutcome]:
    """Replay a post-purge request trace under both policies.

    ``keep_fraction`` is the PFS budget (as a fraction of each dataset)
    the refactoring-aware policy may retain after the purge; the largest
    class prefix fitting the budget stays hot.
    """
    if not 0 < keep_fraction <= 1:
        raise ValueError("keep_fraction must be in (0, 1]")
    hier = hierarchy_for(shape)
    sizes = [s * 8 for s in class_sizes(hier)]
    total_bytes = sum(sizes)
    n_classes = len(sizes)

    # largest prefix within the hot budget
    budget = keep_fraction * total_bytes
    kept = 0
    acc = 0
    for s in sizes:
        if acc + s > budget:
            break
        acc += s
        kept += 1
    kept = max(kept, 1)  # class 0 is tiny; always keep it

    outcomes = {}
    for policy in ("baseline", "refactoring-aware"):
        total = 0.0
        hits = 0
        served_hot = 0
        per_req = []
        for req in requests:
            if not 1 <= req.classes_needed <= n_classes:
                raise ValueError(
                    f"request needs {req.classes_needed} classes; "
                    f"dataset has {n_classes}"
                )
            if policy == "baseline":
                # whole file in the archive; every request pays retrieval
                t = archive.read_seconds(total_bytes, req.n_processes)
                hits += 1
            else:
                hot_bytes = sum(sizes[: min(req.classes_needed, kept)])
                t = pfs.read_seconds(hot_bytes, req.n_processes)
                if req.classes_needed > kept:
                    cold = sum(sizes[kept : req.classes_needed])
                    t += archive.read_seconds(cold, req.n_processes)
                    hits += 1
                else:
                    served_hot += 1
            total += t
            per_req.append(t)
        outcomes[policy] = LifecycleOutcome(
            policy=policy,
            total_seconds=total,
            archive_hits=hits,
            pfs_only_requests=served_hot,
            per_request_seconds=per_req,
        )
    return outcomes


def typical_request_trace(
    n_datasets: int,
    n_requests: int,
    n_classes: int,
    coarse_bias: float = 2.0,
    seed: int = 90,
) -> list[AnalysisRequest]:
    """A plausible post-purge trace: most analyses need coarse prefixes.

    Class-prefix demand follows a geometric-ish distribution: quick-look
    and feature-tracking analyses dominate, full-accuracy retrievals are
    rare (the paper's premise that "the most valuable scientific insights
    come from a small portion of the original data").
    """
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_requests):
        u = rng.random()
        k = 1 + int((n_classes - 1) * u**coarse_bias)
        out.append(
            AnalysisRequest(
                dataset=int(rng.integers(n_datasets)),
                classes_needed=min(k, n_classes),
            )
        )
    return out
