"""Offline integrity scrub for step-stream directories (``repro-verify``).

A stream directory's durability story (atomic renames, CRC-framed
containers, reader-side quarantine) handles corruption *lazily* — a bad
step is discovered when somebody reads it.  This module is the eager
counterpart: walk a stream once, verify every container end to end
(magic, header schema, every payload CRC, sharded steps' shard tables
*and* each embedded shard container), and report exactly what a reader
would have to recover from — before anyone depends on the data.

Checks per step, by container type:

``.rprc``
    Full :func:`~repro.io.container.read_refactored_stream` parse with
    CRC verification of every class payload.

``.mgz``
    Full :func:`~repro.compress.fileio.load_compressed` parse — header
    schema plus every extent CRC.

``.rpsh``
    Shard-table schema, per-shard CRC
    (:meth:`~repro.io.container.ShardedFileReader.read_shard`), and a
    parse of each *embedded* shard container (their inner CRCs too).

Beyond the steps themselves the scrub flags stale ``*.tmp`` files (a
writer died mid-publish) and orphan step files the manifest never
references (a crash between rename and manifest flush).  With
``quarantine=True`` corrupt step files and crash debris are moved into
``<root>/quarantine/`` so a follower's
:meth:`~repro.io.stream.StepStreamReader.read_step` sees a clean
missing-file condition instead of tripping over poison bytes.

Exposed as the ``repro-verify`` console script and as
``python -m repro.io.scrub``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ContainerError

__all__ = ["ScrubReport", "scrub_stream", "main"]

_MANIFEST = "manifest.json"
_STEP_SUFFIXES = (".rprc", ".mgz", ".rpsh")

#: everything a corrupt container can raise during a full parse
_SCRUB_ERRORS = (ContainerError, OSError, KeyError, TypeError, ValueError)


@dataclass
class ScrubReport:
    """Outcome of one stream scrub.

    ``corrupt`` maps step index → human-readable reason (missing files
    count as corrupt: the manifest promises them).  ``stale_tmps`` and
    ``orphans`` are crash debris — harmless to readers, but evidence of
    an interrupted writer.  ``quarantined`` lists files moved into
    ``<root>/quarantine/`` (empty unless the scrub ran with
    ``quarantine=True``).
    """

    root: str
    manifest_error: str | None = None
    mode: str = "refactored"
    n_steps: int = 0
    ok: list[int] = field(default_factory=list)
    corrupt: dict[int, str] = field(default_factory=dict)
    stale_tmps: list[str] = field(default_factory=list)
    orphans: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every manifest-promised step verified end to end."""
        return self.manifest_error is None and not self.corrupt

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "clean": self.clean,
            "manifest_error": self.manifest_error,
            "mode": self.mode,
            "n_steps": self.n_steps,
            "ok": list(self.ok),
            "corrupt": {str(k): v for k, v in sorted(self.corrupt.items())},
            "stale_tmps": list(self.stale_tmps),
            "orphans": list(self.orphans),
            "quarantined": list(self.quarantined),
        }


def _verify_rprc(path: Path) -> None:
    from .container import read_refactored_stream

    read_refactored_stream(path.read_bytes(), verify=True)


def _verify_mgz(path: Path) -> None:
    from ..compress.fileio import load_compressed

    load_compressed(path)


def _verify_rpsh(path: Path, entry: dict) -> None:
    from ..compress.fileio import load_compressed
    from .container import ShardedFileReader, read_refactored_stream

    reader = ShardedFileReader(path)
    want = entry.get("shards")
    if isinstance(want, list) and len(want) != reader.n_shards:
        raise ContainerError(
            f"shard table lists {reader.n_shards} shards, "
            f"manifest promises {len(want)}"
        )
    for i in range(reader.n_shards):
        payload = reader.read_shard(i, verify=True)
        if reader.payload_mode == "refactored":
            read_refactored_stream(payload, verify=True)
        else:
            load_compressed(payload)


def _verify_step(path: Path, entry: dict) -> None:
    """Fully verify one step file; raises on any defect."""
    nbytes = entry.get("nbytes")
    if isinstance(nbytes, int) and path.stat().st_size != nbytes:
        raise ContainerError(
            f"file is {path.stat().st_size} bytes, manifest recorded {nbytes}"
        )
    if path.suffix == ".rprc":
        _verify_rprc(path)
    elif path.suffix == ".mgz":
        _verify_mgz(path)
    elif path.suffix == ".rpsh":
        _verify_rpsh(path, entry)
    else:
        raise ContainerError(f"unknown step container type {path.suffix!r}")


def scrub_stream(root: str | Path, quarantine: bool = False) -> ScrubReport:
    """Verify every container in the stream at ``root``.

    With ``quarantine=True``, corrupt step files, stale temp files, and
    orphans are *moved* (never deleted) into ``<root>/quarantine/``.
    Scrubbing a live stream is safe: only files the manifest disowns or
    that fail verification are touched, and the producer republishes
    the manifest atomically.
    """
    root = Path(root)
    report = ScrubReport(root=str(root))
    manifest_path = root / _MANIFEST
    try:
        manifest = json.loads(manifest_path.read_text())
        steps = manifest["steps"]
        if not isinstance(steps, list):
            raise TypeError("manifest 'steps' is not a list")
    except _SCRUB_ERRORS + (json.JSONDecodeError,) as e:
        report.manifest_error = f"{type(e).__name__}: {e}"
        return report
    report.mode = manifest.get("mode", "refactored")
    report.n_steps = len(steps)

    referenced = set()
    for idx, entry in enumerate(steps):
        name = entry.get("file") if isinstance(entry, dict) else None
        if not isinstance(name, str):
            report.corrupt[idx] = "manifest entry has no file name"
            continue
        referenced.add(name)
        path = root / name
        if not path.exists():
            report.corrupt[idx] = f"missing file {name}"
            continue
        try:
            _verify_step(path, entry)
        except _SCRUB_ERRORS as e:
            report.corrupt[idx] = f"{name}: {e}"
        else:
            report.ok.append(idx)

    report.stale_tmps = sorted(p.name for p in root.glob("*.tmp"))
    report.orphans = sorted(
        p.name
        for p in root.iterdir()
        if p.suffix in _STEP_SUFFIXES and p.name not in referenced
    )

    if quarantine:
        qdir = root / "quarantine"
        doomed = [
            name
            for idx, reason in sorted(report.corrupt.items())
            for name in [steps[idx].get("file")]
            if isinstance(name, str) and (root / name).exists()
        ]
        doomed += report.stale_tmps + report.orphans
        for name in doomed:
            qdir.mkdir(exist_ok=True)
            (root / name).replace(qdir / name)
            report.quarantined.append(name)
    return report


def _format(report: ScrubReport) -> str:
    lines = [f"stream {report.root} ({report.mode}, {report.n_steps} steps)"]
    if report.manifest_error is not None:
        lines.append(f"  MANIFEST UNREADABLE: {report.manifest_error}")
        return "\n".join(lines)
    lines.append(f"  ok       : {len(report.ok)}/{report.n_steps}")
    for idx, reason in sorted(report.corrupt.items()):
        lines.append(f"  CORRUPT  : step {idx}: {reason}")
    for name in report.stale_tmps:
        lines.append(f"  stale tmp: {name}")
    for name in report.orphans:
        lines.append(f"  orphan   : {name}")
    for name in report.quarantined:
        lines.append(f"  moved to quarantine/: {name}")
    lines.append("clean" if report.clean else "NOT CLEAN")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Scrub a step-stream directory: verify every CRC and "
        "shard table, report crash debris.",
    )
    parser.add_argument("root", help="stream directory (holds manifest.json)")
    parser.add_argument(
        "--quarantine",
        action="store_true",
        help="move corrupt step files and crash debris into <root>/quarantine/",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    report = scrub_stream(args.root, quarantine=args.quarantine)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(_format(report))
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
