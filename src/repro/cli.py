"""Command-line entry point: regenerate any paper table or figure.

Usage::

    repro-bench list                 # available experiments
    repro-bench fig7                 # one experiment
    repro-bench all                  # everything (writes to stdout)

Experiments are modeled (shape-only) unless noted, so even the
paper-scale configurations run in seconds.
"""

from __future__ import annotations

import argparse
import sys

from . import experiments as E

__all__ = ["main"]


def _fig7() -> str:
    return E.format_fig7(E.fig7_mass_throughput(E.bench_scale().fig7_side))


def _table2() -> str:
    s = E.bench_scale()
    return E.format_kernel_table(
        E.kernel_speedup_table("desktop", s.side_2d, s.side_3d), "desktop (Table II)"
    )


def _table3() -> str:
    s = E.bench_scale()
    return E.format_kernel_table(
        E.kernel_speedup_table("summit", s.side_2d, s.side_3d), "Summit (Table III)"
    )


def _table4() -> str:
    return E.format_table4(E.table4_breakdown())


def _table5() -> str:
    s = E.bench_scale()
    return E.format_table5(E.table5_end_to_end(s.sweep_2d, s.sweep_3d))


def _table6() -> str:
    return E.format_table6(E.table6_node_level())


def _fig8() -> str:
    return E.format_fig8(E.fig8_streams())


def _fig9() -> str:
    return E.format_fig9(E.fig9_weak_scaling())


def _fig10() -> str:
    parts = [E.format_fig10(E.fig10_workflow())]
    demo = E.fig10_accuracy_demo(shape=(33, 33, 33), steps=400)
    parts.append("functional accuracy demo (33^3 Gray-Scott, iso-surface area):")
    for r in demo:
        parts.append(
            f"  k={r.k_classes:2d}: bytes={r.bytes_read:8d} accuracy={r.accuracy:.3f}"
        )
    parts.append("")
    parts.append(E.format_fig10_pipeline(E.fig10_measured_pipeline()))
    return "\n".join(parts)


def _pipeline(
    mode: str = "refactored",
    json_out: str | None = None,
    shards: int | None = None,
) -> str:
    """The measured streaming pipeline; optionally emit its JSON record."""
    from repro.compress.executor import default_spec

    sharded = shards is not None and shards > 1
    codec = default_spec() if (mode == "compressed" or sharded) else None
    m = E.fig10_measured_pipeline(mode=mode, codec_executor=codec, shards=shards)
    text = E.format_fig10_pipeline(m)
    if json_out:
        import json
        from pathlib import Path

        record = {"benchmark": "fig10_pipeline", **m.record()}
        record["codec_executor"] = codec
        path = Path(json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record, indent=2) + "\n")
        text += f"\n[json record written to {path}]"
    return text


def _shards() -> str:
    """Shard-parallel compression across executor backends (byte-identical)."""
    import os
    import time

    import numpy as np

    from repro.cluster.sharded import ShardedCompressor, encode_shards
    from repro.compress.executor import available_workers
    from repro.workloads.grayscott import simulate

    side = 17 if os.environ.get("REPRO_BENCH_SCALE") == "ci" else 33
    shape = (side, side, side)
    data = simulate(shape, steps=40, params="spots")
    tol = 1e-3 * float(data.max() - data.min())
    n_shards = 4
    sc = ShardedCompressor(shape, tol, n_shards=n_shards, backend="huffman")
    lines = [
        f"shard-parallel compression on {side}^3 ({n_shards} shards along "
        f"axis 0, {available_workers()} workers):"
    ]
    reference = None
    for spec in ("serial", "thread", "process:2"):
        t0 = time.perf_counter()
        payloads = encode_shards(data, sc.plan, sc.codec, spec)
        dt = time.perf_counter() - t0
        if reference is None:
            reference = payloads
        identical = payloads == reference
        lines.append(
            f"  {spec:10s} encode {dt * 1e3:8.1f} ms   "
            f"{sum(len(p) for p in payloads):8d} bytes   "
            f"bit-identical: {identical}"
        )
        assert identical, "shard containers must not depend on the executor"
    frame = sc.compress(data)
    err = float(np.abs(sc.decompress(frame) - data).max())
    lines.append(
        f"  round-trip L-inf error {err:.3e} <= tol {tol:.3e}: {err <= tol}"
    )
    return "\n".join(lines)


def _fig11() -> str:
    return E.format_fig11(E.fig11_mgard(shape=(65, 65, 65)))


def _offload() -> str:
    return E.format_offload(E.offload_experiment())


def _entropy() -> str:
    import os
    import time

    import numpy as np

    from repro.compress.huffman import (
        huffman_decode,
        huffman_decode_scalar,
        huffman_encode,
        huffman_encode_scalar,
    )

    from repro.workloads.synthetic import skewed_bins

    n = 1 << 16 if os.environ.get("REPRO_BENCH_SCALE") == "ci" else 1 << 20
    vals = skewed_bins(n)
    t0 = time.perf_counter()
    payload, header = huffman_encode(vals)
    t1 = time.perf_counter()
    out = huffman_decode(payload, header)
    t2 = time.perf_counter()
    assert np.array_equal(out, vals)
    t3 = time.perf_counter()
    payload_s, header_s = huffman_encode_scalar(vals)
    t4 = time.perf_counter()
    huffman_decode_scalar(payload_s, header_s)
    t5 = time.perf_counter()
    assert payload_s == payload and header_s == header
    enc, dec = t1 - t0, t2 - t1
    enc_s, dec_s = t4 - t3, t5 - t4
    return "\n".join(
        [
            f"entropy stage on {n} skewed int64 symbols ({header['bits']} payload bits):",
            f"  vectorized encode {enc * 1e3:8.1f} ms   decode {dec * 1e3:8.1f} ms",
            f"  scalar     encode {enc_s * 1e3:8.1f} ms   decode {dec_s * 1e3:8.1f} ms",
            f"  speedup    encode {enc_s / enc:8.1f} x    decode {dec_s / dec:8.1f} x"
            f"    combined {(enc_s + dec_s) / (enc + dec):5.1f} x",
        ]
    )


def _parallel() -> str:
    import os
    import time

    import numpy as np

    from repro.compress.executor import available_workers, get_executor
    from repro.compress.lossless import decode_classes, encode_classes
    from repro.compress.mgard import MgardCompressor
    from repro.compress.timeseries import TimeSeriesCompressor
    from repro.core.grid import hierarchy_for
    from repro.core.refactor import Refactorer
    from repro.workloads.grayscott import simulate

    side = 33 if os.environ.get("REPRO_BENCH_SCALE") == "ci" else 65
    shape = (side, side, side)
    data = simulate(shape, steps=40, params="spots")
    tol = 1e-3 * float(data.max() - data.min())
    comp = MgardCompressor.for_shape(shape, tol, backend="huffman")
    cc = Refactorer(shape).refactor(data)
    bins, sizes, _ = comp.quantizer.quantize_flat(cc)
    serial = get_executor("serial")
    par = get_executor("parallel")
    t0 = time.perf_counter()
    p_s, h_s = encode_classes(bins, sizes, backend="huffman", executor=serial)
    t_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    p_p, h_p = encode_classes(bins, sizes, backend="huffman", executor=par)
    t_p = time.perf_counter() - t0
    assert p_s == p_p and h_s == h_p, "parallel encode must be bit-identical"
    flat, _ = decode_classes(p_p, h_p, executor=par)
    assert np.array_equal(flat, bins)

    drift = np.roll(data, 1, axis=0) * 0.01  # slowly-varying additive drift
    frames = [data + t * drift for t in range(8)]
    hier = hierarchy_for(shape)
    t0 = time.perf_counter()
    reused = TimeSeriesCompressor(
        hier, tol, backend="huffman", reuse_codebooks=True
    ).compress(frames)
    t_reuse = time.perf_counter() - t0
    t0 = time.perf_counter()
    rebuilt = TimeSeriesCompressor(
        hier, tol, backend="huffman", reuse_codebooks=False
    ).compress(frames)
    t_cold = time.perf_counter() - t0
    return "\n".join(
        [
            f"parallel encode executor on {side}^3 ({available_workers()} workers, "
            f"{len(sizes)} class segments):",
            f"  serial   encode {t_s * 1e3:8.1f} ms",
            f"  parallel encode {t_p * 1e3:8.1f} ms   ({t_s / t_p:4.2f}x, bit-identical)",
            f"code-book reuse over {len(frames)} slowly-varying steps:",
            f"  per-step rebuild {t_cold * 1e3:8.1f} ms   {rebuilt.nbytes:9d} bytes",
            f"  reused books     {t_reuse * 1e3:8.1f} ms   {reused.nbytes:9d} bytes"
            f"   ({t_cold / t_reuse:4.2f}x faster, "
            f"{(1 - reused.nbytes / rebuilt.nbytes) * 100:4.1f}% smaller)",
        ]
    )


def _lifecycle() -> str:
    from repro.core.classes import num_classes
    from repro.core.grid import hierarchy_for
    from repro.io.lifecycle import simulate_lifecycle, typical_request_trace

    shape = (513, 513, 513)
    nc = num_classes(hierarchy_for(shape))
    trace = typical_request_trace(16, 400, nc)
    lines = ["Post-purge retrieval (intro scenario): 400 analyses over 16 archived 1 GB datasets"]
    for keep in (0.005, 0.02, 0.1):
        out = simulate_lifecycle(shape, trace, keep_fraction=keep)
        base, aware = out["baseline"], out["refactoring-aware"]
        lines.append(
            f"  hot budget {keep:5.1%}: baseline {base.total_seconds:8.1f}s "
            f"vs refactoring-aware {aware.total_seconds:7.1f}s "
            f"({base.total_seconds / aware.total_seconds:5.1f}x faster, "
            f"{aware.pfs_only_fraction:.1%} served without archive)"
        )
    return "\n".join(lines)


def _chaos() -> str:
    """Fault-injection chaos matrix: crash recovery, corrupt reads, kills."""
    return E.format_chaos(E.chaos_experiment())


def _service() -> str:
    """Network-service load: batched vs naive tail latency + kill/reconnect."""
    return E.format_service(E.service_experiment())


def _validate() -> str:
    return E.format_validation(E.validation_report())


def _ablations() -> str:
    return "\n\n".join(
        E.format_ablations(E.ablation_sweep(shape))
        for shape in ((4097, 4097), (257, 257, 257))
    )


EXPERIMENTS = {
    "fig7": (_fig7, "mass-matrix throughput per level (CPU / naive GPU / LPF)"),
    "table2": (_table2, "kernel speedups on the desktop"),
    "table3": (_table3, "kernel speedups on Summit"),
    "table4": (_table4, "end-to-end time breakdown (2D 8193^2, 3D 513^3)"),
    "table5": (_table5, "one GPU vs one CPU core across sizes + extra memory"),
    "table6": (_table6, "all GPUs vs all cores, node level"),
    "fig8": (_fig8, "CUDA-stream speedups on 3D data"),
    "fig9": (_fig9, "weak scaling to 4096 GPUs (TB/s)"),
    "fig10": (_fig10, "visualization-workflow I/O cost + accuracy demo"),
    "pipeline": (
        _pipeline,
        "measured streaming-write pipeline vs modeled makespan "
        "(--mode refactored|compressed, --shards N, --json PATH)",
    ),
    "shards": (
        _shards,
        "shard-parallel compression across executor backends "
        "(byte-identical containers)",
    ),
    "fig11": (_fig11, "MGARD compression stage breakdown"),
    "offload": (_offload, "CPU-app offload break-even analysis (paper §I)"),
    "entropy": (_entropy, "entropy-stage fast path vs scalar reference"),
    "parallel": (_parallel, "parallel class encoding + cross-step code-book reuse"),
    "chaos": (
        _chaos,
        "fault-injection chaos matrix: writer-crash recovery rate, "
        "corrupt-read degradation, worker-kill retry latency",
    ),
    "service": (
        _service,
        "compression-service load generator: batched vs naive p50/p99/p99.9, "
        "coalescing + cache hit rates, kill/reconnect chaos",
    ),
    "validate": (_validate, "machine-checkable residuals vs the paper's numbers"),
    "lifecycle": (_lifecycle, "post-purge retrieval: refactoring-aware archive policy"),
    "ablations": (_ablations, "design-choice ablations"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the tables and figures of Chen et al., IPDPS 2021.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="list",
        help="experiment id (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--executor",
        default=None,
        metavar="SPEC",
        help="codec executor backend: serial (default), thread[:N] "
        "('parallel' is an alias), process[:N], or auto; also settable "
        "via REPRO_EXECUTOR",
    )
    parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=("reference", "numba", "auto"),
        help="kernel backend policy: reference (NumPy), numba (compiled, "
        "falls back with a warning when not installed), or auto "
        "(measured per-shape selection); also settable via "
        "REPRO_KERNEL_BACKEND",
    )
    parser.add_argument(
        "--mode",
        default="refactored",
        choices=("refactored", "compressed"),
        help="stream mode for the 'pipeline' experiment: raw refactored "
        "containers, or error-bounded compression with closed-loop "
        "temporal prediction (default: refactored)",
    )
    parser.add_argument(
        "--shards",
        default=None,
        type=int,
        metavar="N",
        help="for the 'pipeline' experiment: split every step into N "
        "shard segments along axis 0 (shard→encode→write chain; the "
        "per-shard fan-out runs on the codec executor)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="for the 'pipeline' experiment: also write the measured "
        "record (mode, backend, shards, cpu_count, stage seconds, "
        "measured vs modeled walls) as JSON to PATH",
    )
    args = parser.parse_args(argv)
    if args.kernel_backend is not None:
        from repro.kernels.launcher import set_kernel_backend

        set_kernel_backend(args.kernel_backend)
    if args.executor is not None:
        from repro.compress.executor import set_default_executor

        try:
            set_default_executor(args.executor)
        except ValueError as e:
            print(str(e), file=sys.stderr)
            return 2
    if args.experiment == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:10s} {desc}")
        return 0
    if args.experiment == "all":
        for name, (fn, _) in EXPERIMENTS.items():
            print(f"==== {name} " + "=" * (60 - len(name)))
            print(fn())
            print()
        return 0
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    try:
        if args.experiment == "pipeline":
            print(_pipeline(mode=args.mode, json_out=args.json, shards=args.shards))
            return 0
        print(EXPERIMENTS[args.experiment][0]())
    except BrokenPipeError:  # e.g. `repro-bench fig7 | head`
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
