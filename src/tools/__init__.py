"""Developer tooling that ships with the repository (not the library).

``tools.reprolint`` is the project's whole-program invariant checker —
see its package docstring and ``DESIGN.md`` ("Static invariants").
Nothing under ``tools`` may import ``repro``: the checkers analyze the
tree statically so a broken library still lints.
"""
