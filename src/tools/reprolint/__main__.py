"""``python -m tools.reprolint`` — same entry as the console script."""

from .cli import main

raise SystemExit(main())
