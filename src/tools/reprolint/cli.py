"""Command-line front end of ``repro-lint``.

Usage::

    repro-lint [paths...]            # human output, exit 1 on new findings
    repro-lint --json src tests      # machine output (CI)
    repro-lint --list-rules
    repro-lint --write-registry      # regenerate fault_sites.json
    repro-lint --update-baseline     # grandfather current findings

Exit codes: 0 clean, 1 new findings, 2 usage error.  "New" means not
suppressed inline (``# reprolint: ok <rule> - <why>``) and not listed
in the baseline file (``.reprolint-baseline.json`` at the project
root, when present).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core import DEFAULT_PATHS, Report, baseline_doc, run_lint
from .rules import ALL_RULES, make_rules
from .rules.fault_sites import REGISTRY_RELPATH, FaultSiteRule

BASELINE_NAME = ".reprolint-baseline.json"


def _find_root(start: Path) -> Path:
    cur = start.resolve()
    for cand in (cur, *cur.parents):
        if (cand / "pyproject.toml").is_file():
            return cand
    return cur


def _human(report: Report) -> str:
    lines = []
    for f in report.findings:
        tag = ""
        if f.suppressed:
            tag = "  (suppressed)"
        elif f.baselined:
            tag = "  (baselined)"
        lines.append(f"{f}{tag}")
    s = report.to_dict()["summary"]
    lines.append(
        f"repro-lint: {report.files_checked} files, "
        f"{s['total']} findings ({s['new']} new, "
        f"{s['suppressed']} suppressed, {s['baselined']} baselined)"
    )
    return "\n".join(lines)


def _write_registry(root: Path, paths) -> int:
    rule = FaultSiteRule()
    report = run_lint(root, paths=paths, rules=[rule])
    if not rule.enabled:
        print("repro-lint: no fault-site registry (src/repro/faults.py missing?)")
        return 2
    # the doc was computed during finalize; recompute against the tree
    from .core import Project, load_module, _collect_files

    files = _collect_files(root, paths or DEFAULT_PATHS)
    project = Project(root, [load_module(f, root)[0] for f in files])
    doc = rule.registry_doc(project)
    out = root / REGISTRY_RELPATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    n = len(doc["sites"])
    unexercised = [s for s, i in doc["sites"].items() if not i["exercised_by"]]
    print(f"repro-lint: wrote {out} ({n} sites, {len(unexercised)} unexercised)")
    for s in unexercised:
        print(f"  NOT EXERCISED: {s}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="whole-program invariant checker for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/dirs to lint, relative to the project root (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument("--root", type=Path, default=None, help="project root (default: nearest pyproject.toml)")
    parser.add_argument("--json", action="store_true", help="machine-readable report on stdout")
    parser.add_argument("--rules", help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true", help="list rules and exit")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit",
    )
    parser.add_argument(
        "--write-registry",
        action="store_true",
        help=f"regenerate {REGISTRY_RELPATH} from the tree and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.name:17s} {cls.summary}")
        return 0

    root = args.root.resolve() if args.root else _find_root(Path.cwd())
    if args.write_registry:
        return _write_registry(root, args.paths or None)

    try:
        rules = make_rules(args.rules.split(",")) if args.rules else make_rules()
    except KeyError as e:
        print(f"repro-lint: {e.args[0]}", file=sys.stderr)
        return 2

    baseline = args.baseline
    if baseline is None:
        cand = root / BASELINE_NAME
        baseline = cand if cand.is_file() else None

    try:
        report = run_lint(root, paths=args.paths or None, rules=rules, baseline_path=baseline)
    except FileNotFoundError as e:
        print(f"repro-lint: {e}", file=sys.stderr)
        return 2

    if args.update_baseline:
        out = args.baseline or (root / BASELINE_NAME)
        out.write_text(json.dumps(baseline_doc(report), indent=1) + "\n")
        print(f"repro-lint: baselined {len(report.new)} findings into {out}")
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(_human(report))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
