"""``repro-lint``: whole-program static checks for the repo's contracts.

PRs 6–9 built the stack's reliability story on *conventions* — named
fault sites, ``_atomic_publish``-only stream writes, shm ownership
transfer with host-side sweeps, the ``kernels/jit.py`` numba guard,
``InjectedCrash`` escaping ``except Exception``.  This package proves
those conventions statically, on every push: a small AST-based analysis
framework (:mod:`tools.reprolint.core`) plus seven repo-specific rules
(:mod:`tools.reprolint.rules`), wired into CI as the ``lint`` job and
installed as the ``repro-lint`` console script.

The linter never imports ``repro`` (enforced by its own
``import-boundary`` rule): a tree broken at runtime still lints.

Quick start::

    repro-lint                   # lint src/ (human output)
    repro-lint --json src tests  # what CI runs
    repro-lint --list-rules
    repro-lint --write-registry  # refresh the fault-site registry

Suppress a finding only with a justification::

    sock.recv(n)  # reprolint: ok lock-order - per-edge lock serializes one peer by design
"""

from .core import Finding, ModuleInfo, Project, Report, Rule, run_lint
from .rules import ALL_RULES, make_rules, rule_names

__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleInfo",
    "Project",
    "Report",
    "Rule",
    "make_rules",
    "rule_names",
    "run_lint",
]
