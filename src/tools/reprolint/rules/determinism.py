"""``determinism``: byte-identity paths stay byte-deterministic.

The codec's headline contract is that every backend and every executor
emits **byte-identical** containers — asserted all over the test suite
with ``.tobytes()`` comparisons.  That contract dies quietly the moment
an encode path consults a wall clock, an unseeded RNG, or the iteration
order of a ``set``.  This rule bans the syntactic forms inside the
byte-identity packages (``repro/compress/``, ``repro/kernels/``):

* ``time.time()`` / ``time.time_ns()`` and ``datetime.now``/``utcnow``
  — absolute wall-clock values must never feed encoded bytes;
* stdlib ``random.*`` and unseeded NumPy RNGs (``np.random.default_rng``
  with no constant seed, legacy ``np.random.rand``/``seed``/...);
* iteration over a ``set`` literal / ``set()`` / ``frozenset()``
  (``for``-loops and comprehensions) — hash-order-dependent output.

``perf_counter``/``monotonic`` stay legal: *duration* measurement is a
sanctioned idiom throughout (``StageTimes``, autotune, metered
launchers) and the backends it arbitrates between are proven
bit-identical, so elapsed time never reaches encoded bytes.
"""

from __future__ import annotations

import ast

from ..core import Finding, ModuleInfo, Project, Rule

_CLOCK_ATTRS = ("time", "time_ns")
_DATETIME_ATTRS = ("now", "utcnow", "today")
_SET_CALLS = ("set", "frozenset")


def _np_random_chain(func: ast.AST) -> str | None:
    """'default_rng' / 'rand' / ... for np.random.<attr> calls."""
    if not isinstance(func, ast.Attribute):
        return None
    v = func.value
    if (
        isinstance(v, ast.Attribute)
        and v.attr == "random"
        and isinstance(v.value, ast.Name)
        and v.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _is_set_expr(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _SET_CALLS
    return False


class DeterminismRule(Rule):
    name = "determinism"
    summary = (
        "no wall clock, unseeded RNG, or set-iteration in the "
        "byte-identity packages (repro/compress, repro/kernels)"
    )
    paths = ("src/repro/compress/*", "src/repro/kernels/*")

    def check_module(self, mod: ModuleInfo, project: Project):
        random_names: set[str] = set()
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                random_names.update(a.asname or a.name for a in node.names)

        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and isinstance(f.value, ast.Name)
                    and f.value.id == "time"
                    and f.attr in _CLOCK_ATTRS
                ):
                    yield Finding(
                        rule=self.name,
                        relpath=mod.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"time.{f.attr}() in a byte-identity path — "
                            "wall-clock values are nondeterministic input; "
                            "thread timestamps in from the caller if needed"
                        ),
                    )
                elif (
                    isinstance(f, ast.Attribute)
                    and f.attr in _DATETIME_ATTRS
                    and isinstance(f.value, ast.Name)
                    and f.value.id in ("datetime", "date")
                ):
                    yield Finding(
                        rule=self.name,
                        relpath=mod.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"datetime.{f.attr}() in a byte-identity path — "
                            "wall-clock values are nondeterministic input; "
                            "thread timestamps in from the caller if needed"
                        ),
                    )
                elif (
                    isinstance(f, ast.Attribute)
                    and isinstance(f.value, ast.Name)
                    and f.value.id == "random"
                ) or (isinstance(f, ast.Name) and f.id in random_names):
                    what = f.attr if isinstance(f, ast.Attribute) else f.id
                    yield Finding(
                        rule=self.name,
                        relpath=mod.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"stdlib random.{what}() in a byte-identity path — "
                            "draws from ambient process state; use a seeded "
                            "np.random.default_rng passed in by the caller"
                        ),
                    )
                else:
                    nprand = _np_random_chain(f)
                    if nprand == "default_rng":
                        seeded = bool(node.args) and all(
                            isinstance(a, ast.Constant) for a in node.args
                        )
                        if not seeded:
                            yield Finding(
                                rule=self.name,
                                relpath=mod.relpath,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    "np.random.default_rng() without a "
                                    "constant seed in a byte-identity path — "
                                    "output bytes change run to run"
                                ),
                            )
                    elif nprand is not None:
                        yield Finding(
                            rule=self.name,
                            relpath=mod.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"np.random.{nprand}() uses the global NumPy "
                                "RNG state in a byte-identity path — use a "
                                "seeded np.random.default_rng(<const>)"
                            ),
                        )
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield Finding(
                    rule=self.name,
                    relpath=mod.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "iteration over a set in a byte-identity path — "
                        "order is hash-seed dependent; iterate a sorted() "
                        "or a list/tuple instead"
                    ),
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield Finding(
                            rule=self.name,
                            relpath=mod.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                "comprehension over a set in a byte-identity "
                                "path — order is hash-seed dependent; use "
                                "sorted() or a stable sequence"
                            ),
                        )
