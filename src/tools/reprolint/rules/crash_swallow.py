"""``crash-swallow``: broad handlers must not absorb a simulated kill.

:class:`repro.faults.InjectedCrash` derives from ``BaseException``
precisely so that recovery code catching ``Exception`` cannot survive a
simulated ``kill -9``.  That design has exactly one blind spot: an
``except BaseException`` (or bare ``except``) that neither re-raises
nor hands the exception on.  One such handler quietly converts a
simulated death into a success path and the whole crash matrix tests
less than it claims.

A broad handler passes when it provably propagates the exception:

* a ``raise`` anywhere in its body (re-raise or wrap), or
* ``fut.set_exception(...)`` — the executor/service idiom that mirrors
  the exception into a future the caller re-raises from, or
* ``os._exit(...)`` — actually dying is the most faithful handling of
  a simulated kill.

Handlers that intentionally *record* the exception for a supervising
host (SPMD rank runners) must carry a justification suppression.
"""

from __future__ import annotations

import ast

from ..core import Finding, ModuleInfo, Project, Rule

_BROAD = "BaseException"


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True  # bare except
    if isinstance(t, ast.Name):
        return t.id == _BROAD
    if isinstance(t, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id == _BROAD for e in t.elts)
    return False


def _propagates(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Attribute) and f.attr == "set_exception":
                return True
            if isinstance(f, ast.Attribute) and f.attr == "_exit":
                if isinstance(f.value, ast.Name) and f.value.id == "os":
                    return True
    return False


class CrashSwallowRule(Rule):
    name = "crash-swallow"
    summary = (
        "no 'except BaseException'/bare 'except' may absorb InjectedCrash or "
        "SpmdTimeout without re-raising, mirroring to a future, or dying"
    )

    def check_module(self, mod: ModuleInfo, project: Project):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _propagates(node):
                continue
            what = "bare 'except:'" if node.type is None else "'except BaseException'"
            yield Finding(
                rule=self.name,
                relpath=mod.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{what} swallows InjectedCrash (a simulated kill -9 "
                    "survives as a success path): re-raise, narrow to "
                    "Exception, mirror with set_exception(), or justify"
                ),
            )
