"""``shm-lifetime``: every staged shared-memory segment must reach a
release on all paths.

A ``SharedMemory`` segment is a named kernel object: if the staging
process raises between creation and ``close``/``unlink``, the segment
outlives the process and ``/dev/shm`` fills up run over run.  PR 9
closed that leak for the SPMD data plane with an ownership-transfer
protocol plus a host-side sweep; this rule keeps every *other* staging
site honest.

A call to ``share_array``/``share_bytes``/``share_chunks`` (or a raw
``SharedMemory(create=True)``) passes when a ``try``/``finally`` whose
``finally`` block calls one of ``destroy``/``release``/``close``/
``unlink``/``unlink_segment`` covers it — either the call sits inside
the ``try`` body, or the cleanup's ``try`` starts on a later line of
the same function (the ``stage; try: ... finally: block.destroy()``
idiom).  Staging whose ownership deliberately leaves the function
(the fabric's transfer protocol) must carry a justification
suppression naming the sweep that guarantees reclamation.

``repro/parallel/shm.py`` itself (the primitive layer) is exempt.
"""

from __future__ import annotations

import ast

from ..core import Finding, ModuleInfo, Project, Rule, ancestors, enclosing_function

_STAGING = ("share_array", "share_bytes", "share_chunks")
_RELEASERS = ("destroy", "release", "close", "unlink", "unlink_segment", "shutdown")


def _staging_label(call: ast.Call) -> str | None:
    f = call.func
    if isinstance(f, ast.Name) and f.id in _STAGING:
        return f.id
    if isinstance(f, ast.Attribute) and f.attr in _STAGING:
        return f.attr
    name = None
    if isinstance(f, ast.Name):
        name = f.id
    elif isinstance(f, ast.Attribute):
        name = f.attr
    if name == "SharedMemory":
        for kw in call.keywords:
            if (
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return "SharedMemory(create=True)"
    return None


def _finally_releases(try_node: ast.Try) -> bool:
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                f = node.func
                attr = f.attr if isinstance(f, ast.Attribute) else None
                nm = f.id if isinstance(f, ast.Name) else None
                if attr in _RELEASERS or nm in _RELEASERS:
                    return True
    return False


def _covered(call: ast.Call, scope: ast.AST) -> bool:
    # inside the body of a try whose finally releases?
    for anc in ancestors(call):
        if isinstance(anc, ast.Try) and _finally_releases(anc):
            return True
        if anc is scope:
            break
    # the stage-then-try idiom: a releasing try later in the same scope
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Try)
            and node.lineno >= call.lineno
            and _finally_releases(node)
        ):
            return True
    return False


class ShmLifetimeRule(Rule):
    name = "shm-lifetime"
    summary = (
        "every SharedMemory(create=True)/share_* staging reaches a "
        "close/unlink in a finally, or documents its ownership transfer"
    )
    exclude = ("src/repro/parallel/shm.py",)

    def check_module(self, mod: ModuleInfo, project: Project):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            label = _staging_label(node)
            if label is None:
                continue
            scope = enclosing_function(node) or mod.tree
            if _covered(node, scope):
                continue
            yield Finding(
                rule=self.name,
                relpath=mod.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{label} stages a shared-memory segment with no "
                    "covering finally that releases it — an exception here "
                    "leaks the segment (/dev/shm fills up); add "
                    "try/finally destroy()/release(), or justify the "
                    "ownership transfer and its sweep"
                ),
            )
