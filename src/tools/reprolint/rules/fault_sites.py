"""``fault-site``: the fault-site registry and its exercise proof.

The chaos harness (PR 6) addresses faults by *name*: a plan clause like
``crash@stream.step.post_tmp`` only ever fires if some instrumented
call passes exactly that string to :mod:`repro.faults`.  Nothing ties
the two ends together at runtime — a typo on either side silently
no-ops.  This rule closes the loop statically:

1. every site literal passed to ``crash_point``/``error_point``/
   ``delay_point``/``corrupt_bytes``/``corrupt_file``/``kill_indices``
   must appear in the canonical registry ``repro.faults.SITES``
   (a dict literal parsed from the AST — the linter never imports the
   library);
2. a *dynamic* site argument (f-string, variable) must carry a
   ``# reprolint: site <name>...`` annotation naming the registered
   sites it can produce;
3. every registry entry must be instrumented somewhere in ``src/``;
4. every registry entry must be **exercised** by at least one fault
   plan found in ``tests/``, ``benchmarks/`` or
   ``src/repro/experiments/`` — a plan string (including f-string
   templates, whose interpolations widen to ``*``) whose site glob
   covers it, or, for templated plans, a site literal in the same tree;
5. the generated registry snapshot
   (``src/tools/reprolint/fault_sites.json``) must be up to date —
   regenerate with ``repro-lint --write-registry``.

Registry entries may be patterns (``container.read.*``) for site
families whose suffix is data-dependent (per-shard read extents).
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re

from ..core import Finding, ModuleInfo, Project, Rule

FAULTS_RELPATH = "src/repro/faults.py"
REGISTRY_RELPATH = "src/tools/reprolint/fault_sites.json"

#: the site-taking helpers of repro.faults (first argument = site name)
SITE_HELPERS = (
    "crash_point",
    "error_point",
    "delay_point",
    "corrupt_bytes",
    "corrupt_file",
    "kill_indices",
)

#: fallback fault kinds; overridden by faults.py's KINDS when parseable
DEFAULT_KINDS = ("crash", "error", "truncate", "bitflip", "kill", "delay")

_CLAUSE_RE = re.compile(r"^([a-z]+)@([^:]+?)(?::|$)")


def _helper_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id in SITE_HELPERS:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in SITE_HELPERS:
        return func.attr
    return None


def parse_registry(mod: ModuleInfo) -> tuple[dict[str, int], tuple[str, ...]]:
    """(site -> definition line, fault kinds) parsed from faults.py."""
    sites: dict[str, int] = {}
    kinds = DEFAULT_KINDS
    if mod.tree is None:
        return sites, kinds
    for node in mod.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "SITES" and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    sites[key.value] = key.lineno
        elif target.id == "KINDS" and isinstance(node.value, (ast.Tuple, ast.List)):
            vals = [
                e.value
                for e in node.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if vals:
                kinds = tuple(vals)
    return sites, kinds


def _site_registered(site: str, registry: dict[str, int]) -> bool:
    if site in registry:
        return True
    return any(
        "*" in pat and fnmatch.fnmatchcase(site, pat) for pat in registry
    )


def _plan_clauses(text: str, kinds) -> list[str]:
    """Site globs of every well-formed ``kind@site`` clause in ``text``."""
    globs = []
    for clause in text.split(","):
        m = _CLAUSE_RE.match(clause.strip())
        if m and m.group(1) in kinds:
            globs.append(m.group(2).strip())
    return globs


def extract_plans(mod: ModuleInfo, kinds, registry):
    """(site globs, site literals) with locations from one plan source.

    A string constant contributes its clauses' site globs when it
    parses as a fault plan.  An f-string contributes too, with each
    interpolation widened to ``*`` — and because such a template says
    nothing about *which* sites it formats in, plain string constants
    that name a registered site (parametrize lists, site tables) count
    as exercise evidence wherever they appear in the plan sources.
    """
    globs: list[tuple[str, int]] = []
    literals: list[tuple[str, int]] = []
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value
            if "@" in text:
                globs.extend((g, node.lineno) for g in _plan_clauses(text, kinds))
            elif _site_registered(text, registry):
                literals.append((text, node.lineno))
        elif isinstance(node, ast.JoinedStr):
            parts = []
            for v in node.values:
                if isinstance(v, ast.Constant):
                    parts.append(str(v.value))
                else:
                    parts.append("*")
            text = "".join(parts)
            if "@" in text:
                # a clause whose whole site is one interpolation widens
                # to bare '*' — vacuous (it would "exercise" every
                # site); only the concrete literals formatted into such
                # a template carry evidence
                globs.extend(
                    (g, node.lineno)
                    for g in _plan_clauses(text, kinds)
                    if g != "*"
                )
    return globs, literals


def _covers(glob: str, entry: str) -> bool:
    """Does a plan site-glob exercise a registry entry (either may be
    a pattern)?  ``stream.step.*`` covers ``stream.step.pre_tmp``;
    ``container.read.shard 1`` is covered by family ``container.read.*``."""
    return (
        glob == entry
        or fnmatch.fnmatchcase(entry, glob)
        or fnmatch.fnmatchcase(glob, entry)
    )


class FaultSiteRule(Rule):
    name = "fault-site"
    summary = (
        "every faults.* site literal is registered in repro.faults.SITES, "
        "every registered site is instrumented and exercised by a fault plan, "
        "and the generated registry snapshot is fresh"
    )
    exclude = (FAULTS_RELPATH,)

    def __init__(self):
        self.registry: dict[str, int] = {}
        self.kinds = DEFAULT_KINDS
        self.enabled = False
        #: site-or-pattern -> sorted locations ("relpath:line")
        self.uses: dict[str, list[str]] = {}

    def prepare(self, project: Project) -> None:
        faults_mod = project.module(FAULTS_RELPATH)
        if faults_mod is None:
            return  # tree without a fault layer: nothing to check
        self.registry, self.kinds = parse_registry(faults_mod)
        self.enabled = bool(self.registry)

    def _record(self, site: str, mod: ModuleInfo, line: int) -> None:
        self.uses.setdefault(site, []).append(f"{mod.relpath}:{line}")

    def check_module(self, mod: ModuleInfo, project: Project):
        if not self.enabled:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or _helper_name(node) is None:
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                site = arg.value
                self._record(site, mod, node.lineno)
                if not _site_registered(site, self.registry):
                    yield Finding(
                        rule=self.name,
                        relpath=mod.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"fault site {site!r} is not registered in "
                            "repro.faults.SITES — a plan targeting it cannot "
                            "be validated (typos silently no-op)"
                        ),
                    )
            else:
                notes = mod.site_notes.get(node.lineno, ())
                if not notes:
                    yield Finding(
                        rule=self.name,
                        relpath=mod.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "dynamic fault-site name: annotate the call with "
                            "'# reprolint: site <registered-name>...' naming "
                            "every site it can fire"
                        ),
                    )
                    continue
                for site in notes:
                    self._record(site, mod, node.lineno)
                    if not (
                        site in self.registry or _site_registered(site, self.registry)
                    ):
                        yield Finding(
                            rule=self.name,
                            relpath=mod.relpath,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"annotated fault site {site!r} is not "
                                "registered in repro.faults.SITES"
                            ),
                        )

    # ------------------------------------------------------------------
    # whole-program: instrumentation + exercise proof + snapshot freshness

    def registry_doc(self, project: Project) -> dict:
        """The generated registry: sites, instrumentation, exercisers."""
        evidence = self._exercise_evidence(project)
        sites = {}
        for entry in sorted(self.registry):
            sites[entry] = {
                "instrumented": sorted(set(self.uses.get(entry, [])))
                or self._family_uses(entry),
                "exercised_by": evidence.get(entry, []),
            }
        return {"version": 1, "source": FAULTS_RELPATH, "sites": sites}

    def _family_uses(self, entry: str) -> list[str]:
        if "*" not in entry:
            return []
        out = set()
        for site, locs in self.uses.items():
            if site == entry or fnmatch.fnmatchcase(site, entry):
                out.update(locs)
        return sorted(out)

    def _exercise_evidence(self, project: Project) -> dict[str, list[str]]:
        globs: list[tuple[str, str]] = []  # (glob, location)
        literals: list[tuple[str, str]] = []
        for mod in project.plan_modules():
            g, lit = extract_plans(mod, self.kinds, self.registry)
            globs.extend((x, f"{mod.relpath}:{ln}") for x, ln in g)
            literals.extend((x, f"{mod.relpath}:{ln}") for x, ln in lit)
        evidence: dict[str, list[str]] = {}
        for entry in self.registry:
            locs = {loc for g, loc in globs if _covers(g, entry)}
            locs.update(
                loc for s, loc in literals if s == entry or _covers(s, entry)
            )
            evidence[entry] = sorted(locs)
        return evidence

    def finalize(self, project: Project):
        if not self.enabled:
            return
        faults_line = lambda entry: self.registry.get(entry, 1)  # noqa: E731
        doc = self.registry_doc(project)
        for entry, info in doc["sites"].items():
            if not info["instrumented"]:
                yield Finding(
                    rule=self.name,
                    relpath=FAULTS_RELPATH,
                    line=faults_line(entry),
                    col=4,
                    message=(
                        f"registered fault site {entry!r} is never instrumented "
                        "under src/ — dead registry entry (remove it or wire "
                        "the site in)"
                    ),
                )
            if not info["exercised_by"]:
                yield Finding(
                    rule=self.name,
                    relpath=FAULTS_RELPATH,
                    line=faults_line(entry),
                    col=4,
                    message=(
                        f"registered fault site {entry!r} is not exercised by "
                        "any fault plan in tests/, benchmarks/ or experiments/ "
                        "— the chaos suite never proves recovery at this site"
                    ),
                )
        snap_path = project.root / REGISTRY_RELPATH
        stale = True
        if snap_path.is_file():
            try:
                stale = json.loads(snap_path.read_text()) != doc
            except json.JSONDecodeError:
                stale = True
        if stale:
            yield Finding(
                rule=self.name,
                relpath=REGISTRY_RELPATH,
                line=1,
                col=0,
                message=(
                    "generated fault-site registry is missing or out of date — "
                    "run 'repro-lint --write-registry' and commit the result"
                ),
            )
