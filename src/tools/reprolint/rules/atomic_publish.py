"""``atomic-publish``: no torn files in the stream/storage layer.

PR 6 closed the torn-manifest window by funnelling every stream-layer
publish through ``_atomic_publish`` (unique temp + ``os.replace``); the
storage tier writes with the same temp-then-rename idiom.  One raw
``open(path, "wb")`` in ``repro/io/`` reopens that window: a crash mid
``write()`` leaves a half-file under the *final* name, which readers
then have to treat as corruption rather than absence.

Inside ``src/repro/io/`` every file-creating write — ``open`` with a
``w``/``a``/``x``/``+`` mode, ``os.fdopen`` likewise, or
``Path.write_bytes``/``write_text`` — must sit in a function that
either *is* the publish primitive or completes the idiom with an
``os.replace``/``os.rename`` (write-to-temp, rename-to-publish).
Read-only opens are exempt.
"""

from __future__ import annotations

import ast

from ..core import Finding, ModuleInfo, Project, Rule, enclosing_function

_WRITE_CHARS = set("wax+")
_PUBLISH_FUNCS = {"_atomic_publish", "atomic_publish"}


def _write_mode(call: ast.Call, mode_pos: int) -> str | None:
    """The mode string of an ``open``-style call if it writes, else None."""
    mode = None
    if len(call.args) > mode_pos:
        a = call.args[mode_pos]
        if isinstance(a, ast.Constant) and isinstance(a.value, str):
            mode = a.value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                mode = kw.value.value
    if mode is not None and _WRITE_CHARS & set(mode):
        return mode
    return None


def _writing_call(node: ast.Call) -> str | None:
    """A human label when ``node`` creates/overwrites a file."""
    f = node.func
    if isinstance(f, ast.Name) and f.id == "open":
        mode = _write_mode(node, 1)
        if mode is not None:
            return f"open(..., {mode!r})"
    if isinstance(f, ast.Attribute):
        if f.attr == "fdopen" and isinstance(f.value, ast.Name) and f.value.id == "os":
            mode = _write_mode(node, 1)
            if mode is not None:
                return f"os.fdopen(..., {mode!r})"
        if f.attr in ("write_bytes", "write_text"):
            return f".{f.attr}(...)"
    return None


def _has_rename(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("replace", "rename"):
                v = node.func.value
                if isinstance(v, ast.Name) and v.id == "os":
                    return True
    return False


class AtomicPublishRule(Rule):
    name = "atomic-publish"
    summary = (
        "file-creating writes under repro/io/ must go through "
        "_atomic_publish or complete a temp-write + os.replace idiom"
    )
    paths = ("src/repro/io/*",)

    def check_module(self, mod: ModuleInfo, project: Project):
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            label = _writing_call(node)
            if label is None:
                continue
            func = enclosing_function(node)
            if func is not None and func.name in _PUBLISH_FUNCS:
                continue
            if func is not None and _has_rename(func):
                continue
            yield Finding(
                rule=self.name,
                relpath=mod.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{label} publishes under the final name — a crash "
                    "mid-write leaves a torn file; route through "
                    "_atomic_publish or write to a temp and os.replace it"
                ),
            )
