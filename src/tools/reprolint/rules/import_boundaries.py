"""``import-boundary``: the layering contracts of the package graph.

Three boundaries, each introduced by an earlier PR and otherwise
enforced only by convention:

* **numba** is imported exclusively through ``repro/kernels/jit.py``
  (PR 7's guard: no-op ``njit`` fallback, ``REPRO_NO_NUMBA`` masking).
  A stray ``import numba`` anywhere else breaks numba-less installs.
* ``repro.compress`` must not import ``repro.io`` — PR 6 broke the
  io↔compress cycle by hoisting the shared error root to
  ``repro/errors.py``; a new back-edge would silently reintroduce it.
* ``repro.service`` must not import ``repro.experiments`` — the
  service is a library layer, experiments are its consumers.
* ``tools`` must not import ``repro`` — the linter analyzes the tree
  statically and has to keep working when the library is broken.

Relative imports are resolved against the importing module's package
before matching.
"""

from __future__ import annotations

import ast

from ..core import Finding, ModuleInfo, Project, Rule

#: (importer prefix, forbidden import prefix, why)
FORBIDDEN = (
    (
        "repro.compress",
        "repro.io",
        "the io<->compress cycle was broken via repro.errors (PR 6); "
        "share code through repro.errors or a lower layer",
    ),
    (
        "repro.service",
        "repro.experiments",
        "the service layer is imported by experiments, never the reverse",
    ),
    (
        "tools",
        "repro",
        "the linter must analyze the tree without importing it",
    ),
)

_JIT_GUARD = "repro.kernels.jit"


def _under(modname: str, prefix: str) -> bool:
    return modname == prefix or modname.startswith(prefix + ".")


def _resolve(mod: ModuleInfo, node: ast.ImportFrom) -> str:
    """Absolute target of an ImportFrom (handles relative levels)."""
    if node.level == 0:
        return node.module or ""
    parts = mod.modname.split(".")
    # a package's __init__ is the package itself; a module's level-1
    # base is its parent package
    drop = node.level if not mod.is_package_init else node.level - 1
    base = parts[: len(parts) - drop] if drop else parts
    target = ".".join(base)
    if node.module:
        target = f"{target}.{node.module}" if target else node.module
    return target


class ImportBoundaryRule(Rule):
    name = "import-boundary"
    summary = (
        "numba only via repro.kernels.jit; no compress->io or "
        "service->experiments edges; tools never imports repro"
    )
    paths = ("src/*", "src/*/*", "src/*/*/*")

    def check_module(self, mod: ModuleInfo, project: Project):
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                targets = [(a.name, node) for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                targets = [(_resolve(mod, node), node)]
            else:
                continue
            for target, stmt in targets:
                if not target:
                    continue
                if _under(target, "numba") and mod.modname != _JIT_GUARD:
                    yield Finding(
                        rule=self.name,
                        relpath=mod.relpath,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            "numba must be imported only through "
                            "repro.kernels.jit (the no-numba fallback guard); "
                            "import njit/prange from there"
                        ),
                    )
                    continue
                for src_prefix, dst_prefix, why in FORBIDDEN:
                    if _under(mod.modname, src_prefix) and _under(
                        target, dst_prefix
                    ):
                        yield Finding(
                            rule=self.name,
                            relpath=mod.relpath,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"forbidden import edge {mod.modname} -> "
                                f"{target}: {why}"
                            ),
                        )
