"""Rule registry of ``repro-lint``.

Each rule is a :class:`tools.reprolint.core.Rule` subclass enforcing
one correctness contract of the codebase (see ``DESIGN.md``, "Static
invariants", for the contract -> introducing-PR map).  Rules are
instantiated fresh per run — whole-program rules accumulate state
between their module pass and :meth:`finalize`.
"""

from __future__ import annotations

from .atomic_publish import AtomicPublishRule
from .crash_swallow import CrashSwallowRule
from .determinism import DeterminismRule
from .fault_sites import FaultSiteRule
from .import_boundaries import ImportBoundaryRule
from .lock_order import LockOrderRule
from .shm_lifetime import ShmLifetimeRule

__all__ = ["ALL_RULES", "make_rules", "rule_names"]

ALL_RULES = (
    FaultSiteRule,
    CrashSwallowRule,
    AtomicPublishRule,
    ShmLifetimeRule,
    ImportBoundaryRule,
    LockOrderRule,
    DeterminismRule,
)


def rule_names() -> list[str]:
    return [cls.name for cls in ALL_RULES]


def make_rules(names=None) -> list:
    """Fresh rule instances (all of them, or the named subset)."""
    if names is None:
        return [cls() for cls in ALL_RULES]
    by_name = {cls.name: cls for cls in ALL_RULES}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise KeyError(
            f"unknown rule(s) {', '.join(unknown)}; choose from {sorted(by_name)}"
        )
    return [by_name[n]() for n in names]
