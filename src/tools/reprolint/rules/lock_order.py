"""``lock-order``: a static acquisition graph over the stack's locks.

The repo holds ~20 ``threading.Lock``/``RLock`` (plus asyncio lock)
attributes — fabric transports, the service cache, the stream reader,
executor registries.  Deadlock needs only two of them acquired in
opposite orders on two threads, and nothing today would notice the
inversion until a chaos run hangs.

Per module this rule resolves ``with <lock>:`` statements to lock
*identities* (module globals, function locals, ``self.<attr>``
assignments of ``threading.Lock()``/``RLock()``/``asyncio.Lock()``)
and records:

* **nesting edges** — ``with A: ... with B:`` adds the edge A→B; a
  one-hop intra-class call (``with A: self.m()`` where ``m`` takes B)
  adds A→B too;
* **self-edges** on a non-reentrant ``Lock`` (immediate deadlock);
* **blocking calls under a held lock** — ``.recv()``, ``.recv_into()``,
  ``.accept()``, ``.result()``, ``.join()`` executed while holding a
  threading lock stall every sibling of that lock for the full wait.

The whole-program pass then flags every cycle in the union graph as a
lock-order inversion.  Code *defined* inside a ``with`` block (nested
``def``/``lambda``) runs later and is excluded from nesting and
blocking checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..core import Finding, ModuleInfo, Project, Rule, ancestors, enclosing_class, enclosing_function

_BLOCKING = ("recv", "recv_into", "accept", "result", "join")


@dataclass(frozen=True)
class LockDef:
    ident: str  # "module:Class.attr" | "module:func.name" | "module:name"
    kind: str  # "Lock" | "RLock" | "asyncio.Lock"


def _lock_kind(value: ast.AST) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    f = value.func
    if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name):
        if f.value.id == "threading" and f.attr in ("Lock", "RLock"):
            return f.attr
        if f.value.id == "asyncio" and f.attr == "Lock":
            return "asyncio.Lock"
    if isinstance(f, ast.Name) and f.id in ("Lock", "RLock"):
        return f.id
    return None


def _walk_same_frame(node: ast.AST):
    """Walk ``node`` without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        n = stack.pop()
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(n))


class _ModuleLocks:
    """Lock definitions and ``with``-resolution for one module."""

    def __init__(self, mod: ModuleInfo):
        self.mod = mod
        self.module_level: dict[str, LockDef] = {}
        self.class_attrs: dict[tuple[str, str], LockDef] = {}
        self.func_locals: dict[tuple[str, str], LockDef] = {}
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            kind = _lock_kind(node.value)
            if kind is None:
                continue
            target = node.targets[0]
            func = enclosing_function(node)
            cls = enclosing_class(node)
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self" and cls is not None:
                    ident = f"{mod.modname}:{cls.name}.{target.attr}"
                    self.class_attrs[(cls.name, target.attr)] = LockDef(ident, kind)
            elif isinstance(target, ast.Name):
                if func is not None:
                    ident = f"{mod.modname}:{func.name}.{target.id}"
                    self.func_locals[(func.name, target.id)] = LockDef(ident, kind)
                else:
                    ident = f"{mod.modname}:{target.id}"
                    self.module_level[target.id] = LockDef(ident, kind)

    def resolve(self, expr: ast.AST, site: ast.AST) -> LockDef | None:
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                cls = enclosing_class(site)
                if cls is not None:
                    return self.class_attrs.get((cls.name, expr.attr))
            return None
        if isinstance(expr, ast.Name):
            func = enclosing_function(site)
            if func is not None:
                hit = self.func_locals.get((func.name, expr.id))
                if hit is not None:
                    return hit
            return self.module_level.get(expr.id)
        return None

    def held_locks(self, with_node: ast.AST) -> list[LockDef]:
        out = []
        for item in with_node.items:
            lock = self.resolve(item.context_expr, with_node)
            if lock is not None:
                out.append(lock)
        return out

    def method_locks(self, cls_name: str) -> dict[str, list[LockDef]]:
        """method name -> locks it acquires (for the one-hop edges)."""
        out: dict[str, list[LockDef]] = {}
        for node in ast.walk(self.mod.tree):
            if isinstance(node, ast.ClassDef) and node.name == cls_name:
                for meth in node.body:
                    if not isinstance(
                        meth, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    acquired = []
                    for sub in ast.walk(meth):
                        if isinstance(sub, (ast.With, ast.AsyncWith)):
                            acquired.extend(self.held_locks(sub))
                    out[meth.name] = acquired
        return out


class LockOrderRule(Rule):
    name = "lock-order"
    summary = (
        "the static lock-acquisition graph is cycle-free, non-reentrant "
        "locks are never re-taken, and nothing blocks (recv/result/join) "
        "under a held lock"
    )

    def __init__(self):
        #: (outer ident, inner ident) -> (relpath, line) of first sighting
        self.edges: dict[tuple[str, str], tuple[str, int]] = {}

    def check_module(self, mod: ModuleInfo, project: Project):
        locks = _ModuleLocks(mod)
        method_cache: dict[str, dict[str, list[LockDef]]] = {}
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held = locks.held_locks(node)
            if not held:
                continue
            # nesting edges against every ancestor with-lock
            outer: list[LockDef] = []
            for anc in ancestors(node):
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break  # a nested def runs outside the outer critical section
                if isinstance(anc, (ast.With, ast.AsyncWith)):
                    outer.extend(locks.held_locks(anc))
            for o in outer:
                for h in held:
                    if o.ident == h.ident:
                        if o.kind == "Lock":
                            yield Finding(
                                rule=self.name,
                                relpath=mod.relpath,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"non-reentrant Lock {o.ident} re-acquired "
                                    "while already held — immediate deadlock"
                                ),
                            )
                        continue
                    self.edges.setdefault(
                        (o.ident, h.ident), (mod.relpath, node.lineno)
                    )
            # one-hop: with A: self.m() where m takes other locks
            cls = enclosing_class(node)
            if cls is not None:
                methods = method_cache.setdefault(
                    cls.name, locks.method_locks(cls.name)
                )
                for sub in _walk_same_frame(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == "self"
                    ):
                        for h in held:
                            for inner in methods.get(sub.func.attr, ()):
                                if inner.ident == h.ident:
                                    if h.kind == "Lock":
                                        yield Finding(
                                            rule=self.name,
                                            relpath=mod.relpath,
                                            line=sub.lineno,
                                            col=sub.col_offset,
                                            message=(
                                                f"self.{sub.func.attr}() re-takes "
                                                f"non-reentrant Lock {h.ident} "
                                                "already held here — deadlock"
                                            ),
                                        )
                                else:
                                    self.edges.setdefault(
                                        (h.ident, inner.ident),
                                        (mod.relpath, sub.lineno),
                                    )
            # blocking calls while holding a threading lock
            if any(h.kind in ("Lock", "RLock") for h in held):
                for sub in _walk_same_frame(node):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _BLOCKING
                    ):
                        held_names = ", ".join(h.ident for h in held)
                        yield Finding(
                            rule=self.name,
                            relpath=mod.relpath,
                            line=sub.lineno,
                            col=sub.col_offset,
                            message=(
                                f".{sub.func.attr}() can block while holding "
                                f"{held_names} — every thread needing the lock "
                                "stalls for the full wait; move the blocking "
                                "call outside the critical section or justify"
                            ),
                        )

    def finalize(self, project: Project):
        graph: dict[str, set[str]] = {}
        for a, b in self.edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        seen_cycles: set[frozenset[str]] = set()
        state: dict[str, int] = {}
        stack: list[str] = []

        cycles: list[list[str]] = []

        def dfs(v: str) -> None:
            state[v] = 1
            stack.append(v)
            for w in sorted(graph[v]):
                if state.get(w, 0) == 0:
                    dfs(w)
                elif state.get(w) == 1:
                    cyc = stack[stack.index(w):] + [w]
                    key = frozenset(cyc)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(cyc)
            stack.pop()
            state[v] = 2

        for v in sorted(graph):
            if state.get(v, 0) == 0:
                dfs(v)

        for cyc in cycles:
            first_edge = (cyc[0], cyc[1])
            relpath, line = self.edges.get(first_edge, ("<unknown>", 1))
            locs = []
            for a, b in zip(cyc, cyc[1:]):
                ep = self.edges.get((a, b))
                if ep:
                    locs.append(f"{a} -> {b} at {ep[0]}:{ep[1]}")
            yield Finding(
                rule=self.name,
                relpath=relpath,
                line=line,
                col=0,
                message=(
                    "lock-order inversion — the acquisition graph has the "
                    "cycle " + " ; ".join(locs) + "; pick one global order"
                ),
            )
