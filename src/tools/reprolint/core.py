"""Analysis framework of ``repro-lint``: modules, rules, findings.

The linter is a small whole-program static-analysis pass over the
repository's Python tree.  Everything the chaos suite checks
*dynamically* — named fault sites, ``_atomic_publish``-only writes, shm
ownership, ``InjectedCrash`` escaping broad handlers — has a static
counterpart rule here, so a regression is caught at lint time instead
of (or in addition to) at chaos-test time.

Pieces:

* :class:`ModuleInfo` — one parsed file: source, parent-linked AST,
  ``# reprolint:`` comment annotations.
* :class:`Rule` — a named check with a per-module pass
  (:meth:`Rule.check_module`) and an optional whole-program pass
  (:meth:`Rule.finalize`) that sees every module at once (import
  graphs, lock graphs, cross-references into ``tests/``).
* :class:`Project` — the loaded tree plus the *plan sources* (tests,
  benchmarks, experiments) that whole-program rules cross-reference.
* :func:`run_lint` — drive all rules, apply suppressions and the
  baseline, return a :class:`Report`.

Suppression grammar (checked: the rule must exist and a justification
is mandatory, so every accepted finding documents *why* it is fine)::

    # reprolint: ok <rule>[,<rule>...] - <justification>

Fault-site annotation for call sites whose site name is built
dynamically (consumed by the ``fault-site`` rule)::

    # reprolint: site <name-or-pattern> [<name-or-pattern> ...]

Both bind to the line they sit on, or to the following line when the
comment stands alone.

This package must stay importable without the library (no ``repro``,
no third-party imports): a tree broken at runtime still lints.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "ModuleInfo",
    "Project",
    "Report",
    "Rule",
    "load_module",
    "run_lint",
]

#: default lint targets, relative to the project root
DEFAULT_PATHS = ("src",)

#: directories whose fault-plan strings count as "exercising" a site
PLAN_SOURCE_DIRS = ("tests", "benchmarks", "src/repro/experiments")

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*ok\b(?P<rest>.*)")
_SITE_RE = re.compile(r"#\s*reprolint:\s*site\s+(?P<sites>.+)")


@dataclass
class Finding:
    """One rule violation at a source location."""

    rule: str
    relpath: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    baselined: bool = False
    fingerprint: str = ""

    @property
    def is_new(self) -> bool:
        """True when the finding fails the run (not suppressed/baselined)."""
        return not (self.suppressed or self.baselined)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.relpath,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }

    def __str__(self) -> str:
        return f"{self.relpath}:{self.line}:{self.col} [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """One parsed ``# reprolint: ok`` comment."""

    rules: tuple[str, ...]
    justification: str
    line: int  # the line it binds to (its own, or the next for bare comments)
    comment_line: int


@dataclass
class ModuleInfo:
    """One parsed source file with its lint-relevant annotations."""

    path: Path
    relpath: str
    modname: str
    source: str
    lines: list[str]
    tree: ast.Module | None
    parse_error: str | None = None
    #: bound line -> suppression
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: bound line -> declared fault-site names for a dynamic call
    site_notes: dict[int, tuple[str, ...]] = field(default_factory=dict)

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressed_here(self, lineno: int, rule: str) -> bool:
        sup = self.suppressions.get(lineno)
        return sup is not None and (rule in sup.rules or "all" in sup.rules)


def _link_parents(tree: ast.Module) -> None:
    """Attach ``.parent`` to every node (the parent-linked visitor seam)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST):
    """Yield ``node``'s ancestors, innermost first (requires linked tree)."""
    cur = getattr(node, "parent", None)
    while cur is not None:
        yield cur
        cur = getattr(cur, "parent", None)


def enclosing(node: ast.AST, kinds) -> ast.AST | None:
    """The nearest ancestor of one of ``kinds`` (a type or tuple)."""
    for anc in ancestors(node):
        if isinstance(anc, kinds):
            return anc
    return None


def enclosing_function(node: ast.AST):
    return enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    return enclosing(node, ast.ClassDef)  # type: ignore[return-value]


def _modname_for(relpath: str) -> str:
    parts = Path(relpath).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _comment_tokens(mod: ModuleInfo):
    """``(row, col, text)`` of every real comment (docstrings excluded)."""
    try:
        for tok in tokenize.generate_tokens(io.StringIO(mod.source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError):
        return  # unparseable tail: ast.parse reports the syntax error


def _parse_annotations(mod: ModuleInfo) -> list[Finding]:
    """Extract ``# reprolint:`` comments; returns hygiene findings.

    Only the token stream's comments count — the marker quoted inside a
    docstring or string literal is inert documentation, not a directive.
    """
    findings: list[Finding] = []
    for i, col, text in _comment_tokens(mod):
        standalone = not mod.line_text(i)[:col].strip()
        bind = i + 1 if standalone else i
        m = _SITE_RE.search(text)
        if m:
            names = tuple(m.group("sites").split())
            mod.site_notes[bind] = names
            continue
        m = _SUPPRESS_RE.search(text)
        if m:
            rest = m.group("rest").strip()
            head, sep, why = rest.partition(" - ")
            rules = tuple(r for r in re.split(r"[,\s]+", head.strip()) if r)
            why = why.strip()
            if not rules or not sep or not why:
                findings.append(
                    Finding(
                        rule="lint-hygiene",
                        relpath=mod.relpath,
                        line=i,
                        col=col,
                        message=(
                            "malformed suppression: use "
                            "'# reprolint: ok <rule>[,<rule>] - <justification>' "
                            "(the justification is mandatory)"
                        ),
                    )
                )
                continue
            mod.suppressions[bind] = Suppression(
                rules=rules, justification=why, line=bind, comment_line=i
            )
    return findings


def load_module(path: Path, root: Path) -> tuple[ModuleInfo, list[Finding]]:
    """Parse one file into a :class:`ModuleInfo` (+ hygiene findings)."""
    relpath = path.relative_to(root).as_posix()
    source = path.read_text(encoding="utf-8")
    mod = ModuleInfo(
        path=path,
        relpath=relpath,
        modname=_modname_for(relpath),
        source=source,
        lines=source.splitlines(),
        tree=None,
    )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as e:
        mod.parse_error = f"{e.msg} (line {e.lineno})"
        return mod, [
            Finding(
                rule="parse",
                relpath=relpath,
                line=int(e.lineno or 1),
                col=int(e.offset or 0),
                message=f"syntax error: {e.msg}",
            )
        ]
    _link_parents(tree)
    mod.tree = tree
    return mod, _parse_annotations(mod)


class Project:
    """The loaded tree: lint targets plus cross-reference sources."""

    def __init__(self, root: Path, modules: list[ModuleInfo]):
        self.root = Path(root)
        self.modules = modules
        self.by_rel = {m.relpath: m for m in modules}
        self._extra: dict[str, ModuleInfo | None] = {}

    def module(self, relpath: str) -> ModuleInfo | None:
        """A module by root-relative path, loading it on demand.

        Whole-program rules use this to reach files outside the lint
        target set (e.g. ``src/repro/faults.py`` for the site registry
        when only ``tests/`` was passed on the command line).
        """
        if relpath in self.by_rel:
            return self.by_rel[relpath]
        if relpath not in self._extra:
            path = self.root / relpath
            if not path.is_file():
                self._extra[relpath] = None
            else:
                mod, _ = load_module(path, self.root)
                self._extra[relpath] = None if mod.tree is None else mod
        return self._extra[relpath]

    def plan_modules(self) -> list[ModuleInfo]:
        """Every parseable module under the fault-plan source dirs."""
        out: list[ModuleInfo] = []
        seen: set[str] = set()
        for d in PLAN_SOURCE_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                rel = path.relative_to(self.root).as_posix()
                if rel in seen or "__pycache__" in rel:
                    continue
                seen.add(rel)
                mod = self.by_rel.get(rel) or self.module(rel)
                if mod is not None and mod.tree is not None:
                    out.append(mod)
        return out


class Rule:
    """Base class: a named invariant with per-module + program passes."""

    #: unique kebab-case identifier (used in suppressions/baseline/CLI)
    name: str = ""
    #: one-line contract statement for ``--list-rules`` and docs
    summary: str = ""
    #: fnmatch globs over root-relative paths this rule inspects
    paths: tuple[str, ...] = ("src/repro/*", "src/repro/*/*", "src/repro/*/*/*")
    #: root-relative paths the rule never inspects
    exclude: tuple[str, ...] = ()

    def wants(self, mod: ModuleInfo) -> bool:
        if mod.tree is None or mod.relpath in self.exclude:
            return False
        return any(fnmatch.fnmatchcase(mod.relpath, g) for g in self.paths)

    def prepare(self, project: Project) -> None:
        """Called once before any module pass (load shared state)."""

    def check_module(self, mod: ModuleInfo, project: Project):
        """Per-file pass; yield :class:`Finding`."""
        return ()

    def finalize(self, project: Project):
        """Whole-program pass after every module pass; yield findings."""
        return ()


@dataclass
class Report:
    """Outcome of one lint run."""

    root: str
    findings: list[Finding]
    rules: list[str]
    files_checked: int
    baseline_path: str | None = None

    @property
    def new(self) -> list[Finding]:
        return [f for f in self.findings if f.is_new]

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_dict(self) -> dict:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {
            "version": 1,
            "root": self.root,
            "rules": self.rules,
            "files_checked": self.files_checked,
            "baseline": self.baseline_path,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "new": len(self.new),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
                "baselined": sum(1 for f in self.findings if f.baselined),
                "by_rule": dict(sorted(counts.items())),
            },
        }


def _collect_files(root: Path, paths) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        base = (root / p) if not Path(p).is_absolute() else Path(p)
        if base.is_file() and base.suffix == ".py":
            files.append(base)
        elif base.is_dir():
            files.extend(
                f for f in sorted(base.rglob("*.py")) if "__pycache__" not in f.parts
            )
        else:
            raise FileNotFoundError(f"lint path {p!r} not found under {root}")
    # stable order, unique
    seen: set[Path] = set()
    out = []
    for f in files:
        if f not in seen:
            seen.add(f)
            out.append(f)
    return out


def _fingerprint(mod_lines: dict[str, list[str]], f: Finding, counter: dict) -> str:
    lines = mod_lines.get(f.relpath, [])
    text = lines[f.line - 1].strip() if 1 <= f.line <= len(lines) else ""
    key = (f.rule, f.relpath, text)
    occ = counter.get(key, 0)
    counter[key] = occ + 1
    blob = f"{f.rule}|{f.relpath}|{text}|{occ}".encode()
    return hashlib.sha1(blob).hexdigest()[:16]


def load_baseline(path: Path) -> set[str]:
    doc = json.loads(path.read_text())
    entries = doc.get("findings", []) if isinstance(doc, dict) else []
    out = set()
    for e in entries:
        fp = e.get("fingerprint") if isinstance(e, dict) else e
        if isinstance(fp, str):
            out.add(fp)
    return out


def baseline_doc(report: Report) -> dict:
    """A baseline file accepting every current (unsuppressed) finding."""
    return {
        "version": 1,
        "comment": (
            "Grandfathered repro-lint findings; every entry must carry a "
            "justification.  Shrink this file, never grow it."
        ),
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.relpath,
                "line": f.line,
                "message": f.message,
                "justification": "TODO: justify or fix",
            }
            for f in report.findings
            if not f.suppressed
        ],
    }


def run_lint(
    root: Path,
    paths=None,
    rules=None,
    baseline_path: Path | None = None,
) -> Report:
    """Run ``rules`` over ``paths`` (root-relative); returns a report.

    ``rules`` is an iterable of :class:`Rule` *instances* (fresh per
    run — whole-program rules accumulate state).  Findings on a line
    bearing a matching ``# reprolint: ok`` annotation are marked
    suppressed; findings whose fingerprint appears in the baseline are
    marked baselined; everything else is "new" and fails the run.
    """
    root = Path(root).resolve()
    if rules is None:
        from .rules import make_rules

        rules = make_rules()
    rules = list(rules)
    files = _collect_files(root, paths or DEFAULT_PATHS)

    findings: list[Finding] = []
    modules: list[ModuleInfo] = []
    for f in files:
        mod, hygiene = load_module(f, root)
        modules.append(mod)
        findings.extend(hygiene)
    project = Project(root, modules)

    for rule in rules:
        rule.prepare(project)
    for rule in rules:
        for mod in modules:
            if rule.wants(mod):
                findings.extend(rule.check_module(mod, project))
    for rule in rules:
        findings.extend(rule.finalize(project))

    # suppressions (a finding's own line, via the pre-bound map)
    all_mods = dict(project.by_rel)
    all_mods.update({k: v for k, v in project._extra.items() if v is not None})
    for f in findings:
        mod = all_mods.get(f.relpath)
        if mod is not None and mod.suppressed_here(f.line, f.rule):
            f.suppressed = True

    # stable order + fingerprints
    findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.rule, f.message))
    mod_lines = {m.relpath: m.lines for m in all_mods.values()}
    counter: dict = {}
    for f in findings:
        f.fingerprint = _fingerprint(mod_lines, f, counter)

    baseline: set[str] = set()
    if baseline_path is not None and Path(baseline_path).is_file():
        baseline = load_baseline(Path(baseline_path))
    for f in findings:
        if f.fingerprint in baseline and not f.suppressed:
            f.baselined = True

    return Report(
        root=str(root),
        findings=findings,
        rules=[r.name for r in rules],
        files_checked=len(files),
        baseline_path=str(baseline_path) if baseline_path else None,
    )
