#!/usr/bin/env python
"""Streaming producer→consumer coupling over refactored time steps.

The long-running-workflow version of the paper's Figure 1: a simulation
appends refactored snapshots to a stream directory while an analysis
consumer — possibly lagging, possibly coarse — reads only the class
prefixes its accuracy requires, using the s-norm hints the producer
recorded in the manifest (never touching payload it doesn't need).

Also prints the spectral-band view of the classes: each class carries
roughly one octave of frequency content, which is *why* prefixes act as
controlled low-pass approximations.

Run:  python examples/streaming_coupling.py
"""

import tempfile

import numpy as np

from repro.analysis.spectrum import class_band_energy
from repro.core.refactor import Refactorer
from repro.io.stream import StepStreamReader, StepStreamWriter
from repro.workloads.grayscott import simulate


def main() -> None:
    shape = (65, 65)
    snapshots = simulate(shape, steps=1200, snapshot_every=300, params="maze")
    print(f"producer: {len(snapshots)} Gray-Scott snapshots on {shape}")

    with tempfile.TemporaryDirectory() as tmp:
        # -- producer: refactor + append, recording accuracy hints ------
        writer = StepStreamWriter(tmp, shape)
        for t, snap in enumerate(snapshots):
            writer.append(snap, time=300.0 * (t + 1))
        print(f"stream holds {writer.n_steps} steps\n")

        # -- consumers at different accuracy requirements ----------------
        reader = StepStreamReader(tmp)
        step = reader.n_steps - 1
        exact = snapshots[-1]
        print(f"{'consumer tol':>12} {'classes':>8} {'bytes read':>11} {'actual Linf':>12}")
        for tol in (1e-1, 1e-2, 1e-3, 1e-5):
            k = reader.classes_needed(step, tol)
            field, nbytes = reader.read(step, k=k)
            err = float(np.abs(field - exact).max())
            print(f"{tol:>12.0e} {k:>8} {nbytes:>11} {err:>12.3e}")

    # -- why prefixes are low-pass approximations -------------------------
    cc = Refactorer(shape).refactor(snapshots[-1])
    print("\nspectral centroid of each class's contribution (cycles/domain):")
    for band in class_band_energy(cc):
        if band["energy"] > 1e-12:
            print(
                f"  class {band['class']}: centroid {band['centroid']:6.2f}  "
                f"energy {band['energy']:.3e}"
            )


if __name__ == "__main__":
    main()
