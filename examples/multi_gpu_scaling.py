#!/usr/bin/env python
"""Multi-GPU refactoring: the SPMD substrate plus the Fig. 9 scaling model.

Two halves:

1. a *functional* distributed run on the in-process message-passing
   substrate — four "ranks" scatter a dataset, refactor independently
   (the paper's parallelization: equal partitions, no halo exchange),
   verify losslessness locally, and reduce a global error norm;
2. the *modeled* weak-scaling curve to 4096 GPUs at 1 GB per GPU,
   reproducing the aggregate-TB/s series of Fig. 9.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.cluster.scaling import shape_for_bytes_2d, weak_scaling
from repro.cluster.simmpi import run_spmd
from repro.core.refactor import Refactorer
from repro.experiments import fig9_weak_scaling, format_fig9


def distributed_roundtrip(n_ranks: int = 4) -> None:
    data = np.random.default_rng(11).standard_normal((n_ranks * 129, 129))

    def worker(comm):
        chunks = None
        if comm.rank == 0:
            step = data.shape[0] // comm.size
            chunks = [data[i * step : (i + 1) * step] for i in range(comm.size)]
        mine = comm.scatter(chunks)
        r = Refactorer(mine.shape)
        refactored = r.decompose(mine)
        # each rank could now ship only its most important classes ...
        restored = r.recompose(refactored)
        local_err = float(np.abs(restored - mine).max())
        return comm.allreduce(local_err, op=max)

    errors = run_spmd(worker, n_ranks)
    print(
        f"functional SPMD run on {n_ranks} ranks: "
        f"global max round-trip error = {errors[0]:.2e}"
    )


def main() -> None:
    distributed_roundtrip()

    print("\nmodeled weak scaling (paper Fig. 9, 1 GB per GPU):\n")
    print(format_fig9(fig9_weak_scaling()))

    # per-GPU view at the largest scale
    shape = shape_for_bytes_2d(10**9)
    p = weak_scaling(shape, gpu_counts=(4096,))[0]
    print(
        f"\nat 4096 GPUs: {p.aggregate_tbps:.2f} TB/s aggregate "
        f"({p.aggregate_tbps * 1e3 / 4096:.2f} GB/s per GPU, "
        f"{100 * p.efficiency:.1f}% scaling efficiency); "
        f"paper reports 45.42 TB/s for 2D decomposition"
    )


if __name__ == "__main__":
    main()
