#!/usr/bin/env python
"""Showcase V-B: MGARD-style error-bounded lossy compression.

Compresses Gray–Scott data across a sweep of error tolerances, verifies
the L∞ bound on every round trip, compares the two quantizer budgeting
modes, and reprints the paper's Fig. 11 stage breakdown (CPU refactoring
versus GPU offload).

Run:  python examples/lossy_compression.py
"""

import numpy as np

from repro.compress.mgard import MgardCompressor
from repro.core.grid import TensorHierarchy
from repro.experiments import fig11_mgard, format_fig11
from repro.workloads.grayscott import simulate


def main() -> None:
    shape = (65, 65, 65)
    print(f"generating {shape} Gray-Scott field ...")
    data = simulate(shape, steps=600, params="spots")
    value_range = float(data.max() - data.min())
    hier = TensorHierarchy.from_shape(shape)

    print(f"value range: {value_range:.4f}\n")
    print(f"{'rel tol':>9} {'mode':>8} {'ratio':>8} {'achieved rel err':>17} {'bound ok':>8}")
    for rel_tol in (1e-1, 1e-2, 1e-3, 1e-4):
        for mode in ("level", "uniform"):
            tol = rel_tol * value_range
            comp = MgardCompressor(hier, tol, mode=mode)
            blob = comp.compress(data)
            back = comp.decompress(blob)
            err = float(np.abs(back - data).max())
            print(
                f"{rel_tol:>9.0e} {mode:>8} {blob.compression_ratio():>7.1f}x "
                f"{err / value_range:>17.2e} {'yes' if err <= tol else 'NO':>8}"
            )

    print("\npaper Fig. 11 stage breakdown (129^3, modeled refactor/quantize):\n")
    print(format_fig11(fig11_mgard(shape=(129, 129, 129), steps=300)))


if __name__ == "__main__":
    main()
