#!/usr/bin/env python
"""Showcase V-A: refactoring-aware I/O for a visualization workflow.

Recreates the paper's first showcase end to end, at laptop scale:

* a Gray–Scott reaction–diffusion simulation produces a 3D field;
* the producer refactors it (simulated-GPU engine) and writes the
  coefficient classes to a self-describing container file;
* a consumer reads only a *prefix* of classes, recomposes, and extracts
  an iso-surface, reporting the feature accuracy (the paper reaches
  ~95 % with 3 of 10 classes);
* finally the paper-scale cost model reprints Fig. 10: what a 4 TB
  write/read costs with GPU vs CPU refactoring.

Run:  python examples/visualization_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.isosurface import feature_accuracy, isosurface_area
from repro.core.classes import reconstruct_from_classes
from repro.core.refactor import Refactorer
from repro.experiments import fig10_workflow, format_fig10
from repro.io.container import RefactoredFileReader, write_refactored
from repro.kernels.metered import GpuSimEngine
from repro.workloads.grayscott import simulate


def main() -> None:
    # -- producer side -----------------------------------------------------
    shape = (65, 65, 65)
    print(f"running Gray-Scott on {shape} ...")
    field = simulate(shape, steps=800, params="stripes")
    iso = float(0.25 * field.max() + 0.75 * field.min())
    exact_area = isosurface_area(field, iso)
    print(f"reference iso-surface area at iso={iso:.4f}: {exact_area:.2f}")

    engine = GpuSimEngine()
    refactorer = Refactorer(shape, engine=engine)
    cc = refactorer.refactor(field)
    print(
        f"refactored into {cc.n_classes} classes "
        f"(modeled V100 time: {engine.clock * 1e3:.2f} ms)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "grayscott.rprc"
        nbytes = write_refactored(path, cc, attrs={"iso": iso, "source": "gray-scott"})
        print(f"container written: {nbytes / 1e6:.2f} MB\n")

        # -- consumer side -------------------------------------------------
        reader = RefactoredFileReader(path)
        sizes = reader.class_nbytes()
        print(f"{'classes':>8} {'bytes read':>11} {'area':>10} {'accuracy':>9}")
        for k in range(1, reader.n_classes + 1):
            classes = reader.read_classes(k)
            approx = reconstruct_from_classes(classes, refactorer.hier)
            area = isosurface_area(approx, iso)
            acc = feature_accuracy(area, exact_area)
            print(f"{k:>8} {sum(sizes[:k]):>11} {area:>10.2f} {acc:>9.3f}")

    # -- paper-scale cost model (Fig. 10) -----------------------------------
    print("\npaper-scale model (4 TB, 4096 writers / 512 readers):\n")
    print(format_fig10(fig10_workflow()))


if __name__ == "__main__":
    main()
