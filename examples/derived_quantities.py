#!/usr/bin/env python
"""Error control for derived quantities (Ainsworth et al. paper III).

Scientists rarely consume raw fields; they consume *derived quantities*
— averages, fluxes, region integrals.  This example shows the QoI
machinery on a turbulence-like field:

1. build a :class:`QoIAnalyzer` for two functionals (global mean and a
   region average) — one adjoint pass each computes the exact
   sensitivity of the functional to every stored coefficient;
2. evaluate the functionals *directly from class prefixes* (no
   reconstruction) and compare against reconstructed values;
3. choose the minimal class prefix per functional for a target QoI
   accuracy — much smaller than what field-norm control would demand,
   because broad functionals barely see the fine classes.

Run:  python examples/derived_quantities.py
"""

import numpy as np

from repro.core.grid import TensorHierarchy
from repro.core.qoi import QoIAnalyzer, mean_functional, region_average
from repro.core.refactor import Refactorer
from repro.core.snorm import classes_for_tolerance
from repro.workloads.synthetic import turbulence


def main() -> None:
    shape = (129, 129)
    x = np.linspace(0, 1, shape[0])[:, None]
    data = 0.2 * turbulence(shape, seed=42) + 1.0 + 0.5 * x  # mean well off zero
    hier = TensorHierarchy.from_shape(shape)
    r = Refactorer(shape)
    cc = r.refactor(data)

    functionals = {
        "global mean": mean_functional(shape),
        "region avg [32:64, 32:64]": region_average(
            shape, (slice(32, 64), slice(32, 64))
        ),
    }

    for name, weights in functionals.items():
        qa = QoIAnalyzer(hier, weights)  # one adjoint pass
        exact = qa.evaluate(data)
        print(f"\n{name}: exact value {exact:+.6e}")
        print(f"{'classes':>8} {'Q from classes':>15} {'exact |error|':>14}")
        for k in (1, 2, 3, cc.n_classes):
            q_k = qa.evaluate_from_classes(cc, k)
            print(f"{k:>8} {q_k:>+15.6e} {abs(q_k - exact):>14.3e}")

        tol = 1e-4 * abs(exact)
        k_qoi = qa.classes_for_qoi_tolerance(cc, tol)
        k_field = classes_for_tolerance(cc, tol)
        print(
            f"for |error| <= {tol:.1e}: QoI control needs {k_qoi} classes, "
            f"field-norm control would demand {k_field}"
        )

    # verification: the sensitivities satisfy the adjoint identity
    from repro.core.adjoint import recompose_adjoint
    from repro.core.decompose import recompose

    rng = np.random.default_rng(0)
    x = rng.standard_normal(shape)
    w = rng.standard_normal(shape)
    lhs = float(np.sum(w * recompose(x, hier)))
    rhs = float(np.sum(recompose_adjoint(w, hier) * x))
    print(f"\nadjoint identity <w,Rx> vs <R^T w,x>: gap {abs(lhs - rhs):.2e}")


if __name__ == "__main__":
    main()
