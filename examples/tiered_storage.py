#!/usr/bin/env python
"""Figure-1 scenario: placing coefficient classes across storage tiers.

The paper's motivating figure shows refactored data flowing through a
multi-tier storage system: the most important (coarsest) classes live on
the fastest tier, the bulk spills to slower tiers, and consumers with
different accuracy needs read different prefixes.  This example plays
that scenario with the tier models and a real refactored dataset.

Run:  python examples/tiered_storage.py
"""

import numpy as np

from repro.core.refactor import Refactorer
from repro.io.storage import ALPINE_PFS, ARCHIVE_TIER, NVME_TIER, TieredStorage
from repro.workloads.grayscott import simulate


def main() -> None:
    shape = (129, 129)
    field = simulate(shape, steps=1500, params="maze")
    cc = Refactorer(shape).refactor(field)
    sizes = [c.nbytes for c in cc.classes]

    storage = TieredStorage([NVME_TIER, ALPINE_PFS, ARCHIVE_TIER])
    # pretend the fast tier only has room for ~2% of the dataset
    budget = int(0.02 * sum(sizes))
    placement = storage.place_classes(sizes, fast_budget_bytes=budget)

    print(f"dataset: {sum(sizes) / 1e3:.1f} KB in {len(sizes)} classes; "
          f"fast-tier budget {budget / 1e3:.1f} KB\n")
    print(f"{'class':>5} {'bytes':>9} {'tier':<16}")
    for l, (nbytes, tier) in enumerate(zip(sizes, placement)):
        print(f"{l:>5} {nbytes:>9} {storage.tiers[tier].name:<16}")

    # two consumers with different accuracy needs (the paper's routine 1
    # vs routine 2): the coarse consumer never touches slow tiers
    n_readers = 64
    for k, label in ((3, "routine 1 (coarse)"), (len(sizes), "routine 2 (full)")):
        t = storage.read_seconds(sizes, placement, n_processes=n_readers, k=k)
        approx = cc.reconstruct(k)
        err = float(np.abs(approx - field).max())
        print(
            f"\n{label}: reads {k} classes in {t * 1e3:.2f} ms (modeled), "
            f"reconstruction Linf error {err:.3e}"
        )


if __name__ == "__main__":
    main()
