#!/usr/bin/env python
"""Accuracy-driven class retrieval: the Figure-1 "hint" in action.

The paper's Figure 1 shows consumers choosing how many coefficient
classes to fetch "based on accuracy requirements" — *without* trial
reconstruction.  The multilevel s-norm machinery makes that decision
computable from coefficient metadata alone:

1. the producer refactors a field and records per-class s-norms;
2. each consumer states an L2 error tolerance;
3. :func:`repro.core.snorm.classes_for_tolerance` picks the smallest
   prefix whose *estimated* truncation error meets it;
4. we verify the actual reconstruction error is in line with the
   estimate, and show how many bytes each consumer avoided reading.

Also demonstrates the offload analysis of paper §I: when a CPU-resident
producer should bounce refactoring through the GPU.

Run:  python examples/accuracy_driven_retrieval.py
"""

import numpy as np

from repro.core.errors import l2
from repro.core.refactor import Refactorer
from repro.core.snorm import class_snorm, classes_for_tolerance, truncation_estimate
from repro.experiments import format_offload, offload_experiment
from repro.workloads.synthetic import multiscale


def main() -> None:
    shape = (257, 257)
    data = multiscale(shape, octaves=6)
    r = Refactorer(shape)
    cc = r.refactor(data)
    cum = cc.cumulative_bytes()

    print("per-class s-norm contributions (s = 0, L2-equivalent):")
    for lvl in range(1, cc.n_classes):
        print(f"  class {lvl}: {class_snorm(cc, lvl):.3e}")

    print(f"\n{'consumer tol':>12} {'classes':>8} {'bytes read':>11} "
          f"{'estimated':>11} {'actual L2':>11}")
    for tol in (1e-1, 1e-2, 1e-3, 1e-4, 0.0):
        k = classes_for_tolerance(cc, tol)
        est = truncation_estimate(cc, k)
        approx = cc.reconstruct(k)
        actual = l2(approx - data) / np.sqrt(data.size)
        print(f"{tol:>12.0e} {k:>8} {cum[k - 1]:>11} {est:>11.3e} {actual:>11.3e}")

    print(
        "\n(the estimate is computed from coefficients alone — no trial "
        "reconstruction,\n which is what lets the Figure-1 'hint' steer "
        "storage and network traffic)\n"
    )

    print(format_offload(offload_experiment()))


if __name__ == "__main__":
    main()
