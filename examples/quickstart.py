#!/usr/bin/env python
"""Quickstart: refactor a dataset, recover it progressively.

Demonstrates the 60-second tour of the library:

1. decompose a 2D field into the in-place multilevel representation;
2. recompose it losslessly;
3. split into coefficient classes and reconstruct from prefixes,
   watching the error fall as classes are added;
4. inspect the per-class magnitudes (the decay that makes refactoring
   useful for scientific data).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Refactorer
from repro.core.errors import class_decay, rel_linf


def main() -> None:
    # A smooth-but-structured field on a 257x257 grid (any size works;
    # the paper's benchmarks use 2^L + 1).
    n = 257
    x = np.linspace(0.0, 1.0, n)
    data = np.sin(6 * np.pi * np.add.outer(x, 0.5 * x)) * np.exp(
        -3 * np.subtract.outer(x, x) ** 2
    )

    r = Refactorer(data.shape)
    print(f"grid {data.shape}, {r.levels} levels, {r.n_classes} coefficient classes")

    # -- lossless round trip ------------------------------------------------
    refactored = r.decompose(data)
    roundtrip = r.recompose(refactored)
    print(f"lossless round trip: max |err| = {np.abs(roundtrip - data).max():.2e}")

    # -- progressive recovery -------------------------------------------------
    cc = r.refactor(data)
    cumulative = cc.cumulative_bytes()
    total = cc.nbytes()
    print("\nprogressive reconstruction:")
    print(f"{'classes':>8} {'bytes':>10} {'% of full':>9} {'rel Linf error':>15}")
    for k in range(1, cc.n_classes + 1):
        approx = cc.reconstruct(k)
        print(
            f"{k:>8} {cumulative[k - 1]:>10} {100 * cumulative[k - 1] / total:>8.2f}% "
            f"{rel_linf(approx, data):>15.3e}"
        )

    # -- why it works: coefficient classes decay -------------------------------
    decay = class_decay(cc)
    print("\nper-class max |coefficient| (detail classes):")
    for l, mag in enumerate(decay.max_abs[1:], start=1):
        print(f"  class {l}: {mag:.3e}")
    ratios = decay.decay_ratios()
    print(f"median decay ratio between classes: {np.median(ratios):.2f} (theory ~0.25)")


if __name__ == "__main__":
    main()
