"""Setup shim.

All metadata lives in pyproject.toml.  This file exists only so that
``pip install -e . --no-use-pep517`` works on environments whose
setuptools predates native bdist_wheel support (no ``wheel`` package and
no network to fetch one).
"""

from setuptools import setup

setup()
