"""Tests for the GPU/CPU cost model: the monotonicities that carry the paper."""

import dataclasses

import pytest

from repro.gpu.cost import KernelLaunch, cpu_kernel_time, gpu_kernel_time
from repro.gpu.device import I7_9700K_CORE, POWER9_CORE, RTX2080TI, V100


def _rec(**kw) -> KernelLaunch:
    base = dict(
        name="mass",
        kind="linear",
        elements=1 << 20,
        bytes_read=8 << 20,
        bytes_written=8 << 20,
        threads=1 << 20,
    )
    base.update(kw)
    return KernelLaunch(**base)


class TestGpuModel:
    def test_stride_collapses_throughput(self):
        times = [gpu_kernel_time(_rec(stride=s), V100) for s in (1, 4, 32, 256)]
        assert times[0] == times[1] <= times[2] < times[3]
        # beyond the 32-byte sector, each doubling of stride doubles time
        t32 = gpu_kernel_time(_rec(stride=32), V100)
        t64 = gpu_kernel_time(_rec(stride=64), V100)
        assert t64 / t32 == pytest.approx(2.0, rel=0.05)

    def test_occupancy_penalizes_small_kernels(self):
        rich = gpu_kernel_time(_rec(threads=1 << 20), V100)
        poor = gpu_kernel_time(_rec(threads=256), V100)
        assert poor > rich

    def test_divergence_multiplier(self):
        t1 = gpu_kernel_time(_rec(divergence=1.0), V100)
        t3 = gpu_kernel_time(_rec(divergence=3.0), V100)
        assert t3 > 2.0 * t1 * 0.9

    def test_streams_amortize_launches(self):
        many = _rec(n_launches=64, n_streams=1)
        overlapped = _rec(n_launches=64, n_streams=8)
        assert gpu_kernel_time(overlapped, V100) < gpu_kernel_time(many, V100)

    def test_stream_cap(self):
        a = _rec(n_launches=64, n_streams=8)
        b = _rec(n_launches=64, n_streams=64)
        # V100 model caps concurrency at 8 kernels
        assert gpu_kernel_time(a, V100) == gpu_kernel_time(b, V100)

    def test_chain_latency_floor(self):
        short = gpu_kernel_time(_rec(threads=64, bytes_read=8, bytes_written=8), V100)
        chained = gpu_kernel_time(
            _rec(threads=64, bytes_read=8, bytes_written=8, chain_length=100000), V100
        )
        assert chained > short

    def test_faster_device_is_faster(self):
        r = _rec()
        assert gpu_kernel_time(r, V100) < gpu_kernel_time(r, RTX2080TI)

    def test_launch_overhead_floor(self):
        tiny = _rec(elements=1, bytes_read=8, bytes_written=8, threads=1)
        assert gpu_kernel_time(tiny, V100) >= V100.launch_overhead_us * 1e-6

    def test_occupancy_cap_binds(self):
        free = gpu_kernel_time(_rec(occupancy_cap=1.0), V100)
        capped = gpu_kernel_time(_rec(occupancy_cap=0.2), V100)
        assert capped > free


class TestCpuModel:
    def test_stride_latency_penalty(self):
        fast = cpu_kernel_time(_rec(stride=1), POWER9_CORE)
        slow = cpu_kernel_time(_rec(stride=64), POWER9_CORE)
        assert slow > 2 * fast

    def test_stride_penalty_saturates_at_cacheline(self):
        a = cpu_kernel_time(_rec(stride=16), POWER9_CORE)
        b = cpu_kernel_time(_rec(stride=4096), POWER9_CORE)
        assert a == b  # every access already misses

    def test_element_cost_scales(self):
        a = cpu_kernel_time(_rec(cpu_scale=1.0), POWER9_CORE)
        b = cpu_kernel_time(_rec(cpu_scale=2.0), POWER9_CORE)
        assert b == pytest.approx(2 * a)

    def test_desktop_core_faster_than_power9(self):
        r = _rec()
        assert cpu_kernel_time(r, I7_9700K_CORE) < cpu_kernel_time(r, POWER9_CORE)

    def test_stream_bandwidth_floor(self):
        # huge bytes with trivial element count: bandwidth-bound branch
        r = _rec(elements=1, bytes_read=1 << 30, bytes_written=0)
        t = cpu_kernel_time(r, POWER9_CORE)
        expect = (1 << 30) / (POWER9_CORE.stream_bandwidth_gbps * 1e9)
        assert t == pytest.approx(expect)


class TestDeviceSpecs:
    def test_effective_bandwidth(self):
        assert V100.effective_bandwidth == pytest.approx(900e9 * 0.82)

    def test_sector_elems(self):
        assert V100.sector_elems(8) == 4.0
        assert V100.sector_elems(64) == 1.0  # floors at one element

    def test_saturating_warps(self):
        assert V100.saturating_warps == 80 * 8

    def test_specs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            V100.sm_count = 1

    def test_paper_speedup_ordering_reproduced(self):
        """Summit pairing (slow CPU core + fast GPU) must out-speedup desktop."""
        r = _rec()
        summit = cpu_kernel_time(r, POWER9_CORE) / gpu_kernel_time(r, V100)
        desktop = cpu_kernel_time(r, I7_9700K_CORE) / gpu_kernel_time(r, RTX2080TI)
        assert summit > desktop > 1
