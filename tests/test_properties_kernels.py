"""Property-based tests of the kernel frameworks and engine options.

Hypothesis drives random shapes/levels through the literal tiled
implementations and the full engine-option matrix, asserting functional
equivalence with the reference paths everywhere — the "tiled equals
vectorized bit-for-bit" invariant of DESIGN.md §6 under much broader
sampling than the example-based tests.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import compute_coefficients
from repro.core.decompose import decompose, recompose, restrict_all
from repro.core.grid import TensorHierarchy
from repro.core.mass import mass_apply
from repro.core.solver import thomas_solve
from repro.core.transfer import transfer_apply
from repro.kernels.grid_processing import GridProcessingKernel
from repro.kernels.launches import EngineOptions
from repro.kernels.linear_processing import LinearProcessingKernel
from repro.kernels.metered import GpuSimEngine


@st.composite
def hier_and_level(draw, max_side=24, ndim_max=3):
    ndim = draw(st.integers(1, ndim_max))
    shape = tuple(draw(st.integers(3, max_side)) for _ in range(ndim))
    h = TensorHierarchy.from_shape(shape)
    l = draw(st.integers(1, h.L))
    return h, l


@settings(max_examples=40, deadline=None)
@given(hier_and_level(), st.integers(1, 3), st.integers(0, 2**31 - 1))
def test_tiled_grid_kernel_equals_vectorized(hl, b, seed):
    h, l = hl
    if not h.coarsening_dims(l):
        return
    k = GridProcessingKernel(h, l, b=b)
    v = np.random.default_rng(seed).standard_normal(h.level_shape(l))
    np.testing.assert_array_equal(k.compute(v), compute_coefficients(v, h, l))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(4, 120),
    st.integers(2, 40),
    st.integers(1, 8),
    st.integers(0, 2**31 - 1),
)
def test_segmented_kernels_equal_vectorized(n, segment, batch, seed):
    h = TensorHierarchy.from_shape((n,))
    ops = h.level_ops(h.L, 0)
    k = LinearProcessingKernel(ops, segment=segment)
    rng = np.random.default_rng(seed)
    v = rng.standard_normal((batch, n))
    np.testing.assert_array_equal(k.mass_multiply(v), mass_apply(v, ops.h_fine))
    np.testing.assert_array_equal(k.transfer_multiply(v), transfer_apply(v, ops))
    g = rng.standard_normal((batch, ops.m_coarse))
    np.testing.assert_array_equal(k.solve(g), thomas_solve(g, ops))


#: every EngineOptions combination exercised functionally
_OPTION_MATRIX = [
    EngineOptions(),
    EngineOptions(pack_nodes=False),
    EngineOptions(divergence_free=False),
    EngineOptions(framework="naive", pack_nodes=False),
    EngineOptions(framework="elementwise"),
    EngineOptions(n_streams=8),
    EngineOptions(framework="naive", pack_nodes=False, divergence_free=False, n_streams=4),
]


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, len(_OPTION_MATRIX) - 1),
    st.tuples(st.integers(3, 20), st.integers(3, 20)),
    st.integers(0, 2**31 - 1),
)
def test_engine_options_never_change_results(opt_idx, shape, seed):
    """Options tune the *model*, never the arithmetic: every metered
    configuration round-trips bit-identically to the reference engine."""
    data = np.random.default_rng(seed).standard_normal(shape)
    h = TensorHierarchy.from_shape(shape)
    ref = decompose(data, h)
    eng = GpuSimEngine(opts=_OPTION_MATRIX[opt_idx])
    np.testing.assert_array_equal(decompose(data, h, eng), ref)
    np.testing.assert_array_equal(recompose(ref, h, eng), recompose(ref, h))
    assert eng.clock > 0


@settings(max_examples=30, deadline=None)
@given(hier_and_level(max_side=20), st.integers(0, 2**31 - 1))
def test_restrict_then_interpolate_projects(hl, seed):
    """Interpolating the restriction reproduces coarse nodes exactly and
    the residual (the coefficients) restricts to zero — for any level."""
    h, l = hl
    if not h.coarsening_dims(l):
        return
    v = np.random.default_rng(seed).standard_normal(h.level_shape(l))
    c = compute_coefficients(v, h, l)
    np.testing.assert_array_equal(
        restrict_all(c, h, l), np.zeros(h.level_shape(l - 1))
    )
