"""Fault injection, crash consistency, and recovery across the stack.

The PR 6 robustness surface: the :mod:`repro.faults` seam itself (spec
grammar, deterministic firing), the writer crash matrix (killed at
every commit-path crash site, for every stream mode, the stream must
reopen with zero corrupt visible steps), reader quarantine and
delta-chain roll-back, partial-shard region recovery, process-pool
rebuild under worker kills, durable commits, the hardened
:class:`~repro.errors.ContainerError` mapping, and the scrub CLI.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.compress.fileio import CompressedFileError, load_compressed
from repro.errors import ContainerError
from repro.io.container import RefactoredFileReader
from repro.io.scrub import main as scrub_main, scrub_stream
from repro.io.stream import StepStreamReader, StepStreamWriter, StreamError
from repro.parallel.executors import ProcessExecutor

SHAPE = (9, 8)


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with fault injection off."""
    faults.clear()
    yield
    faults.clear()


def _frames(n, shape=SHAPE, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape)
    drift = rng.normal(size=shape) * 0.05
    return [base + t * drift for t in range(n)]


# ----------------------------------------------------------------------
# spec grammar + deterministic firing


class TestFaultSpec:
    def test_parse_clause(self):
        spec = faults.FaultSpec.parse("truncate@stream.step.file:p=0.5:count=2:frac=0.25")
        assert spec.kind == "truncate"
        assert spec.site == "stream.step.file"
        assert spec.p == 0.5
        assert spec.count == 2
        assert spec.argument() == 0.25

    def test_defaults(self):
        spec = faults.FaultSpec.parse("crash@stream.manifest.pre_flush")
        assert spec.p == 1.0 and spec.count is None and spec.after == 0
        assert faults.FaultSpec.parse("bitflip@x").argument() == 1
        assert faults.FaultSpec.parse("delay@x").argument() == 0.01

    @pytest.mark.parametrize(
        "clause",
        [
            "crash",  # no site
            "@site",  # no kind
            "flood@site",  # unknown kind
            "crash@site:frac=1",  # option of the wrong kind
            "crash@site:p",  # option without '='
            "crash@site:p=2.0",  # probability out of range
            "kill@site:count=0",
        ],
    )
    def test_bad_clauses(self, clause):
        with pytest.raises(ValueError):
            faults.FaultSpec.parse(clause)

    def test_parse_plan(self):
        plan = faults.parse_plan(
            "kill@executor.process.map:count=1, bitflip@container.read.*:flips=3"
        )
        assert [s.kind for s in plan] == ["kill", "bitflip"]
        with pytest.raises(ValueError):
            faults.parse_plan("  ,  ")


class TestInjector:
    def test_count_budget_and_glob(self):
        inj = faults.FaultInjector("error@stream.step.*:count=2")
        assert inj.fire("stream.step.pre_tmp", ("error",)) is not None
        assert inj.fire("stream.step.post_tmp", ("error",)) is not None
        assert inj.fire("stream.step.pre_tmp", ("error",)) is None  # budget spent
        assert inj.fire("stream.manifest.pre_flush", ("error",)) is None  # no match
        assert inj.fired("error") == 2

    def test_after_skips_leading_hits(self):
        inj = faults.FaultInjector("crash@site:after=2:count=1")
        assert inj.fire("site", ("crash",)) is None
        assert inj.fire("site", ("crash",)) is None
        assert inj.fire("site", ("crash",)) is not None

    def test_kind_filter(self):
        inj = faults.FaultInjector("truncate@site")
        assert inj.fire("site", ("crash",)) is None
        assert inj.fire("site", ("truncate", "bitflip")) is not None

    def test_probabilistic_firing_is_seed_deterministic(self):
        def sequence(seed):
            inj = faults.FaultInjector("error@site:p=0.3", seed=seed)
            return [inj.fire("site", ("error",)) is not None for _ in range(64)]

        a, b = sequence(7), sequence(7)
        assert a == b
        assert 0 < sum(a) < 64  # actually probabilistic
        assert sequence(8) != a  # a different seed reorders firings


class TestAmbientInjector:
    def test_disarmed_sites_are_noops(self):
        faults.crash_point("anywhere")
        faults.error_point("anywhere")
        faults.delay_point("anywhere")
        data = b"payload"
        assert faults.corrupt_bytes("anywhere", data) is data
        assert faults.kill_indices("anywhere", 8) == frozenset()

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@boom:count=1")
        faults.clear()  # forces a re-read of the environment
        with pytest.raises(faults.InjectedCrash):
            faults.crash_point("boom")
        faults.crash_point("boom")  # budget spent

    def test_inject_restores_previous(self):
        outer = faults.install("error@outer")
        with faults.inject("error@inner"):
            assert faults.active() is not outer
            with pytest.raises(faults.InjectedFault):
                faults.error_point("inner")
        assert faults.active() is outer

    def test_injected_crash_not_an_exception(self):
        assert not issubclass(faults.InjectedCrash, Exception)


class TestPlanValidation:
    """install()/REPRO_FAULTS check plan site-globs against faults.SITES."""

    def test_unknown_site_warns_on_install(self):
        with pytest.warns(faults.UnknownFaultSiteWarning, match="no.such.site"):
            faults.install("crash@no.such.site:count=1")

    def test_env_plan_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@totally.wrong")
        faults.clear()  # forces a re-read of the environment
        with pytest.warns(faults.UnknownFaultSiteWarning, match="totally.wrong"):
            faults.error_point("stream.step.pre_tmp")

    def test_registered_sites_and_globs_accepted(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", faults.UnknownFaultSiteWarning)
            faults.install("crash@stream.step.*:count=1")
            faults.install("bitflip@container.read.shard 0:flips=1")  # family match
            faults.install("kill@executor.process.map:count=1")

    def test_validate_plan_reports_only_unmatched(self):
        plan = faults.parse_plan("crash@stream.step.pre_tmp, error@typo.site")
        assert faults.validate_plan(plan) == ["typo.site"]
        assert faults.site_registered("container.read.anything")
        assert not faults.site_registered("container.anything")


class TestCorruptionHelpers:
    def test_corrupt_bytes_truncate(self):
        with faults.inject("truncate@site:frac=0.25"):
            out = faults.corrupt_bytes("site", bytes(100))
        assert len(out) == 25

    def test_corrupt_bytes_bitflip(self):
        data = bytes(64)
        with faults.inject("bitflip@site:flips=1"):
            out = faults.corrupt_bytes("site", data)
        diff = [a ^ b for a, b in zip(data, out)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(100))
        with faults.inject("truncate@site:frac=0.5"):
            assert faults.corrupt_file("site", path)
        assert path.stat().st_size == 50

    def test_kill_indices_deterministic(self):
        with faults.inject("kill@pool:p=0.5", seed=3):
            first = faults.kill_indices("pool", 16)
        with faults.inject("kill@pool:p=0.5", seed=3):
            again = faults.kill_indices("pool", 16)
        assert first == again
        assert 0 < len(first) < 16


# ----------------------------------------------------------------------
# the writer crash matrix

MODES = {
    "refactored": {},
    "compressed": {"tol": 1e-3, "key_interval": 4},
    "sharded": {"tol": 1e-3, "shards": 2},
}

CRASH_SITES = (
    "stream.step.pre_tmp",
    "stream.step.post_tmp",
    "stream.commit.post_rename",
    "stream.manifest.pre_flush",
    "stream.manifest.pre_tmp",
    "stream.manifest.post_tmp",
)


@pytest.mark.parametrize("site", CRASH_SITES)
@pytest.mark.parametrize("mode", sorted(MODES))
def test_crash_matrix(tmp_path, mode, site):
    """Kill the writer at every crash point: reopen + follower converge,
    every visible step is intact, and no temp debris survives reopen."""
    kwargs = MODES[mode]
    tol = kwargs.get("tol")
    frames = _frames(4)
    root = tmp_path / "stream"

    writer = StepStreamWriter(root, SHAPE, **kwargs)
    writer.append(frames[0])
    writer.append(frames[1])
    follower = StepStreamReader(root)  # live follower, opened pre-crash

    with faults.inject(f"crash@{site}:count=1"):
        with pytest.raises(faults.InjectedCrash):
            writer.append(frames[2])
    del writer  # the dead producer

    # reopen: sweeps temp debris, resumes from the committed prefix
    writer = StepStreamWriter(root, SHAPE, **kwargs)
    assert not list(root.glob("*.tmp"))
    visible = writer.n_steps
    assert visible in (2, 3)  # the crashed commit either published or not

    reader = StepStreamReader(root)
    assert len(reader.steps) == visible
    for s in range(visible):
        got = reader.read_region(s)
        err = float(np.abs(got - frames[s]).max())
        assert err <= (tol if tol is not None else 1e-8)
    assert not reader.quarantined

    # the resumed producer appends; the pre-crash follower converges
    next_frame = frames[visible] if visible < 4 else frames[3] + 1.0
    writer.append(next_frame)
    follower.refresh()
    assert len(follower.steps) == visible + 1
    got = follower.read_region(visible)
    err = float(np.abs(got - next_frame).max())
    assert err <= (tol if tol is not None else 1e-8)

    assert scrub_stream(root).clean


def test_unique_tmp_names_and_sweep(tmp_path):
    """Concurrent publishes never collide on temp names, and a crashed
    predecessor's temp files are swept on writer open."""
    from repro.io.stream import _unique_tmp

    dst = tmp_path / "step_000000.rprc"
    names = {_unique_tmp(dst).name for _ in range(32)}
    assert len(names) == 32
    assert all(n.endswith(".tmp") and n.startswith(dst.name) for n in names)

    root = tmp_path / "stream"
    root.mkdir()
    (root / "step_000007.rprc.123.4.tmp").write_bytes(b"debris")
    StepStreamWriter(root, SHAPE)
    assert not list(root.glob("*.tmp"))


def test_durability_fsync_roundtrip(tmp_path):
    frames = _frames(3)
    writer = StepStreamWriter(tmp_path / "s", SHAPE, tol=1e-3, durability="fsync")
    for f in frames:
        writer.append(f)
    reader = StepStreamReader(tmp_path / "s")
    for s, f in enumerate(frames):
        assert float(np.abs(reader.read_step(s) - f).max()) <= 1e-3


def test_durability_validated(tmp_path):
    with pytest.raises(ValueError, match="durability"):
        StepStreamWriter(tmp_path / "s", SHAPE, durability="eventually")


# ----------------------------------------------------------------------
# reader quarantine + delta-chain roll-back (compressed streams)


def _compressed_stream(root, n_steps=10):
    frames = _frames(n_steps)
    writer = StepStreamWriter(root, SHAPE, tol=1e-3, key_interval=4)
    for f in frames:
        writer.append(f)
    return frames


def _flip_byte(path: Path, offset: int = -20):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestQuarantineRollback:
    def test_mid_chain_corruption_degrades(self, tmp_path):
        frames = _compressed_stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000005.mgz")
        reader = StepStreamReader(tmp_path / "s")
        got = reader.read_step(5)
        rep = reader.last_recovery
        assert rep is not None and rep.degraded
        assert rep.requested == 5 and rep.served == 4
        assert rep.quarantined == [5]
        assert 5 in reader.quarantined
        # the served state is the last good chain step
        assert float(np.abs(got - frames[4]).max()) <= 1e-3

    def test_chain_cannot_cross_a_hole(self, tmp_path):
        _compressed_stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000005.mgz")
        reader = StepStreamReader(tmp_path / "s")
        reader.read_step(6)  # deltas at 6 depend on the quarantined 5
        rep = reader.last_recovery
        assert rep.degraded and rep.served == 4

    def test_corrupt_key_frame_rolls_to_earlier_chain(self, tmp_path):
        frames = _compressed_stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000004.mgz")  # a key frame
        reader = StepStreamReader(tmp_path / "s")
        got = reader.read_step(5)
        rep = reader.last_recovery
        assert rep.degraded and rep.served == 3  # key 0's chain, replayed
        assert float(np.abs(got - frames[3]).max()) <= 1e-3

    def test_clean_steps_stay_exact(self, tmp_path):
        frames = _compressed_stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000005.mgz")
        reader = StepStreamReader(tmp_path / "s")
        for s in (0, 3, 4, 8, 9):  # never touch the 4..7 chain
            got = reader.read_step(s)
            assert reader.last_recovery is None
            assert float(np.abs(got - frames[s]).max()) <= 1e-3

    def test_on_error_raise_is_fail_stop(self, tmp_path):
        _compressed_stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000005.mgz")
        reader = StepStreamReader(tmp_path / "s")
        with pytest.raises(ContainerError, match="checksum|truncated|corrupt"):
            reader.read_step(5, on_error="raise")
        with pytest.raises(ValueError, match="on_error"):
            reader.read_step(5, on_error="ignore")

    def test_every_key_frame_poisoned_raises(self, tmp_path):
        _compressed_stream(tmp_path / "s")
        for s in (0, 4, 8):
            _flip_byte(tmp_path / "s" / f"step_{s:06d}.mgz")
        reader = StepStreamReader(tmp_path / "s")
        with pytest.raises(StreamError, match="no decodable key-frame chain"):
            reader.read_step(2)

    def test_repaired_file_heals_on_fresh_reader(self, tmp_path):
        frames = _compressed_stream(tmp_path / "s")
        path = tmp_path / "s" / "step_000005.mgz"
        good = path.read_bytes()
        _flip_byte(path)
        reader = StepStreamReader(tmp_path / "s")
        reader.read_step(5)
        assert 5 in reader.quarantined
        path.write_bytes(good)  # operator restores the file
        healed = StepStreamReader(tmp_path / "s")
        got = healed.read_step(5)
        assert healed.last_recovery is None and not healed.quarantined
        assert float(np.abs(got - frames[5]).max()) <= 1e-3


# ----------------------------------------------------------------------
# partial-shard region recovery


class TestRegionRecovery:
    def _sharded_stream(self, root, n_shards=3):
        frames = _frames(1)
        writer = StepStreamWriter(root, SHAPE, tol=1e-3, shards=n_shards)
        writer.append(frames[0])
        return frames[0]

    def test_surviving_shards_served_failed_extent_nan(self, tmp_path):
        data = self._sharded_stream(tmp_path / "s")
        reader = StepStreamReader(tmp_path / "s")
        with faults.inject("bitflip@container.read.shard 1:flips=8"):
            got = reader.read_region(0)
        rep = reader.last_recovery
        assert rep is not None and rep.degraded
        lo, hi = reader.shard_bounds[1]
        assert rep.failed_extents == [(lo, hi)]
        assert np.isnan(got[lo:hi]).all()
        mask = np.ones(SHAPE[0], dtype=bool)
        mask[lo:hi] = False
        assert float(np.abs(got[mask] - data[mask]).max()) <= 1e-3

    def test_region_avoiding_bad_shard_is_exact(self, tmp_path):
        data = self._sharded_stream(tmp_path / "s")
        reader = StepStreamReader(tmp_path / "s")
        lo, hi = reader.shard_bounds[0]
        with faults.inject("bitflip@container.read.shard 1:flips=8"):
            got = reader.read_region(0, (slice(lo, hi),))
        assert reader.last_recovery is None  # shard 1 never read
        assert float(np.abs(got - data[lo:hi]).max()) <= 1e-3

    def test_all_shards_failing_raises(self, tmp_path):
        self._sharded_stream(tmp_path / "s")
        reader = StepStreamReader(tmp_path / "s")
        with faults.inject("bitflip@container.read.shard*:flips=8"):
            with pytest.raises(StreamError, match="shards covering"):
                reader.read_region(0)
        assert 0 in reader.quarantined

    def test_on_error_raise(self, tmp_path):
        self._sharded_stream(tmp_path / "s")
        reader = StepStreamReader(tmp_path / "s")
        with faults.inject("bitflip@container.read.shard 1:flips=8"):
            with pytest.raises(ContainerError):
                reader.read_region(0, on_error="raise")


# ----------------------------------------------------------------------
# process-pool recovery under worker kills


def _square(x):
    return x * x


class TestProcessPoolRecovery:
    def test_kill_then_rebuild_retries_to_success(self):
        ex = ProcessExecutor(max_workers=2, backoff_s=0.01)
        try:
            with faults.inject("kill@executor.process.map:count=1"):
                out = ex.map(_square, list(range(6)))
            assert out == [x * x for x in range(6)]
            assert ex.stats["broken_pools"] >= 1
            assert ex.stats["rebuilds"] >= 1
            assert ex.stats["inline_fallbacks"] == 0
        finally:
            ex.shutdown()

    def test_persistent_kills_degrade_inline(self):
        ex = ProcessExecutor(max_workers=2, max_retries=1, backoff_s=0.01)
        try:
            with faults.inject("kill@executor.process.map:p=1.0"):
                out = ex.map(_square, list(range(6)))
            assert out == [x * x for x in range(6)]
            assert ex.stats["inline_fallbacks"] == 1
            assert ex.stats["broken_pools"] == 2  # initial try + 1 retry
        finally:
            ex.shutdown()

    def test_retry_knobs_validated(self):
        with pytest.raises(ValueError, match="max_retries"):
            ProcessExecutor(max_retries=-1)


# ----------------------------------------------------------------------
# hardened error mapping: corruption -> ContainerError with context


class TestErrorMapping:
    def _container(self, tmp_path):
        from repro.core.refactor import Refactorer
        from repro.io.container import write_refactored

        cc = Refactorer(SHAPE).refactor(_frames(1)[0])
        path = tmp_path / "c.rprc"
        write_refactored(path, cc)
        return path

    def test_truncated_header_has_offset_context(self, tmp_path):
        path = self._container(tmp_path)
        path.write_bytes(path.read_bytes()[:9])  # magic + 3 length bytes
        with pytest.raises(ContainerError, match=r"truncated header length.*offset"):
            RefactoredFileReader(path)

    def test_garbage_header_is_container_error(self, tmp_path):
        path = self._container(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[6 + 8] ^= 0xFF  # first JSON byte
        path.write_bytes(bytes(blob))
        with pytest.raises(ContainerError, match="corrupt header"):
            RefactoredFileReader(path)

    def test_wrong_schema_header_is_container_error(self, tmp_path):
        path = tmp_path / "c.rprc"
        hbytes = json.dumps({"not": "a container"}).encode()
        path.write_bytes(b"RPRC\x01\x00" + struct.pack("<Q", len(hbytes)) + hbytes)
        with pytest.raises(ContainerError, match="class table"):
            RefactoredFileReader(path)

    def test_truncated_payload_has_offset_context(self, tmp_path):
        path = self._container(tmp_path)
        path.write_bytes(path.read_bytes()[:-10])
        reader = RefactoredFileReader(path)
        with pytest.raises(ContainerError, match=r"truncated.*offset"):
            reader.read_classes()

    def test_compressed_file_error_is_container_error(self):
        assert issubclass(CompressedFileError, ContainerError)
        with pytest.raises(ContainerError):
            load_compressed(b"RPMG\x01\x00" + struct.pack("<Q", 4) + b"nul")

    def test_decode_shard_schema_junk(self):
        from repro.cluster.sharded import decode_shard

        hbytes = json.dumps({"shape": [4, 4]}).encode()
        payload = b"RPRC\x01\x00" + struct.pack("<Q", len(hbytes)) + hbytes
        with pytest.raises(ContainerError):
            decode_shard(payload, "refactored")
        with pytest.raises(ValueError, match="payload mode"):
            decode_shard(payload, "postcard")


# ----------------------------------------------------------------------
# the scrub CLI


class TestScrub:
    def _stream(self, root, n=3):
        writer = StepStreamWriter(root, SHAPE, tol=1e-3, key_interval=2)
        for f in _frames(n):
            writer.append(f)

    def test_clean_stream(self, tmp_path):
        self._stream(tmp_path / "s")
        report = scrub_stream(tmp_path / "s")
        assert report.clean
        assert report.ok == [0, 1, 2]
        assert not report.corrupt and not report.orphans and not report.stale_tmps

    def test_corruption_and_debris_reported(self, tmp_path):
        self._stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000001.mgz")
        (tmp_path / "s" / "old.tmp").write_bytes(b"x")
        (tmp_path / "s" / "step_000099.mgz").write_bytes(b"orphan")
        report = scrub_stream(tmp_path / "s")
        assert not report.clean
        assert list(report.corrupt) == [1] and "step_000001" in report.corrupt[1]
        assert report.stale_tmps == ["old.tmp"]
        assert report.orphans == ["step_000099.mgz"]

    def test_missing_step_file(self, tmp_path):
        self._stream(tmp_path / "s")
        (tmp_path / "s" / "step_000002.mgz").unlink()
        report = scrub_stream(tmp_path / "s")
        assert report.corrupt == {2: "missing file step_000002.mgz"}

    def test_size_mismatch_detected(self, tmp_path):
        self._stream(tmp_path / "s")
        path = tmp_path / "s" / "step_000000.mgz"
        path.write_bytes(path.read_bytes() + b"trailing garbage")
        report = scrub_stream(tmp_path / "s")
        assert 0 in report.corrupt and "manifest recorded" in report.corrupt[0]

    def test_quarantine_moves_files(self, tmp_path):
        self._stream(tmp_path / "s")
        _flip_byte(tmp_path / "s" / "step_000001.mgz")
        (tmp_path / "s" / "old.tmp").write_bytes(b"x")
        report = scrub_stream(tmp_path / "s", quarantine=True)
        assert sorted(report.quarantined) == ["old.tmp", "step_000001.mgz"]
        assert (tmp_path / "s" / "quarantine" / "step_000001.mgz").exists()
        assert not (tmp_path / "s" / "step_000001.mgz").exists()
        # a follower now sees a clean missing-file degradation
        reader = StepStreamReader(tmp_path / "s")
        reader.read_step(1)
        assert reader.last_recovery is not None and reader.last_recovery.degraded

    def test_sharded_stream_shard_table_checked(self, tmp_path):
        writer = StepStreamWriter(tmp_path / "s", SHAPE, tol=1e-3, shards=3)
        writer.append(_frames(1)[0])
        assert scrub_stream(tmp_path / "s").clean
        _flip_byte(tmp_path / "s" / "step_000000.rpsh", offset=-5)
        report = scrub_stream(tmp_path / "s")
        assert 0 in report.corrupt

    def test_unreadable_manifest(self, tmp_path):
        self._stream(tmp_path / "s")
        (tmp_path / "s" / "manifest.json").write_text("{ torn")
        report = scrub_stream(tmp_path / "s")
        assert not report.clean and report.manifest_error is not None

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        self._stream(tmp_path / "s")
        assert scrub_main([str(tmp_path / "s"), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] and doc["n_steps"] == 3
        _flip_byte(tmp_path / "s" / "step_000001.mgz")
        assert scrub_main([str(tmp_path / "s")]) == 1
        assert "NOT CLEAN" in capsys.readouterr().out


# ----------------------------------------------------------------------
# injected read-side faults flow through the recovery policy end to end


class TestContainerWriteCrash:
    """Standalone container publishes share the stream's crash contract
    (``container.write.{pre_tmp,post_tmp,file}`` through atomic_publish)."""

    def _cc(self):
        from repro.core.refactor import Refactorer

        return Refactorer(SHAPE).refactor(_frames(1)[0])

    def test_crash_pre_tmp_leaves_nothing(self, tmp_path):
        from repro.io.container import write_refactored

        path = tmp_path / "c.rprc"
        with faults.inject("crash@container.write.pre_tmp:count=1"):
            with pytest.raises(faults.InjectedCrash):
                write_refactored(path, self._cc())
        assert list(tmp_path.iterdir()) == []
        write_refactored(path, self._cc())  # clean retry succeeds
        RefactoredFileReader(path).read_classes()

    def test_crash_post_tmp_never_publishes_torn(self, tmp_path):
        from repro.io.container import write_refactored

        path = tmp_path / "c.rprc"
        with faults.inject("crash@container.write.post_tmp:count=1"):
            with pytest.raises(faults.InjectedCrash):
                write_refactored(path, self._cc())
        assert not path.exists()  # temp debris at worst, never the final name
        assert len(list(tmp_path.glob("*.tmp"))) == 1
        write_refactored(path, self._cc())
        RefactoredFileReader(path).read_classes()

    def test_corrupt_committed_file_detected(self, tmp_path):
        from repro.io.container import write_refactored

        path = tmp_path / "c.rprc"
        with faults.inject("truncate@container.write.file:frac=0.5:count=1"):
            write_refactored(path, self._cc())
        with pytest.raises(ContainerError):
            RefactoredFileReader(path).read_classes()


def test_corrupt_manifest_follower_keeps_snapshot(tmp_path):
    """A manifest that commits corrupt (``stream.manifest.file``) is a
    torn read to a follower — it keeps its last good snapshot — and the
    scrub reports the unreadable manifest."""
    frames = _frames(2)
    root = tmp_path / "s"
    writer = StepStreamWriter(root, SHAPE)
    writer.append(frames[0])
    follower = StepStreamReader(root)
    assert len(follower.steps) == 1
    with faults.inject("truncate@stream.manifest.file:frac=0.3:count=1"):
        writer.append(frames[1])
    follower.refresh()
    assert len(follower.steps) == 1
    report = scrub_stream(root)
    assert not report.clean and report.manifest_error is not None


def test_payload_read_bitflip_detected(tmp_path):
    """A flipped compressed-payload read (``fileio.read.payload``) fails
    the per-payload CRC and surfaces as ContainerError, not junk data."""
    root = tmp_path / "s"
    writer = StepStreamWriter(root, SHAPE, tol=1e-3, key_interval=2)
    for f in _frames(2):
        writer.append(f)
    reader = StepStreamReader(root)
    with faults.inject("bitflip@fileio.read.payload:flips=8"):
        with pytest.raises(ContainerError):
            reader.read_step(1, on_error="raise")
    assert float(np.abs(reader.read_step(1) - _frames(2)[1]).max()) <= 1e-3


def test_shard_encode_error_surfaces_and_writer_recovers(tmp_path):
    """A sick shard encode (``sharded.encode.shard``) fails the append
    without committing anything; the disarmed retry commits cleanly."""
    root = tmp_path / "s"
    frame = _frames(1)[0]
    writer = StepStreamWriter(root, SHAPE, tol=1e-3, shards=2)
    with faults.inject("error@sharded.encode.shard:count=1"):
        with pytest.raises(faults.InjectedFault):
            writer.append(frame)
    assert writer.n_steps == 0
    writer.abandon_pending()  # the documented aborted-encode recovery
    writer.append(frame)
    reader = StepStreamReader(root)
    assert float(np.abs(reader.read_region(0) - frame).max()) <= 1e-3
    assert scrub_stream(root).clean


def test_env_spec_drives_reader_recovery(tmp_path, monkeypatch):
    """The REPRO_FAULTS seam reaches the reader: an ambient bitflip on
    container reads degrades a region read instead of crashing it."""
    writer = StepStreamWriter(tmp_path / "s", SHAPE, tol=1e-3, shards=3)
    writer.append(_frames(1)[0])
    monkeypatch.setenv("REPRO_FAULTS", "bitflip@container.read.shard 0:flips=8")
    faults.clear()
    reader = StepStreamReader(tmp_path / "s")
    got = reader.read_region(0)
    assert reader.last_recovery is not None
    lo, hi = reader.shard_bounds[0]
    assert np.isnan(got[lo:hi]).all()
