"""Fabric parity: the process SPMD fabric against the thread reference.

Every collective must produce identical results on both fabrics, large
ndarrays must ride the shared-memory data plane (with a pickle fallback
for everything else), rank failures must surface as ``SpmdError`` with
per-rank tracebacks, abnormal rank death must not leak shared-memory
segments, and the sharded compress fan-out must emit byte-identical
``RPSH`` containers regardless of fabric.
"""

import glob

import numpy as np
import pytest

from repro import faults
from repro.cluster import (
    RemoteRankError,
    ShardCodec,
    SimComm,
    SpmdError,
    SpmdTimeout,
    ThreadComm,
    encode_shards,
    encode_shards_spmd,
    last_run_report,
    plan_shards,
    run_spmd,
)

FABRICS = ["thread", "process"]


def _no_leftover_segments():
    return not glob.glob("/dev/shm/rspmd*")


# ----------------------------------------------------------------------
# collective parity


def _all_collectives(comm):
    arr = np.arange(1000, dtype=np.float64) * (comm.rank + 1)
    out = {}
    out["bcast"] = comm.bcast(arr if comm.rank == 0 else None, root=0)
    chunks = [np.full(300, float(r)) for r in range(comm.size)] if comm.rank == 0 else None
    out["scatter"] = comm.scatter(chunks, root=0)
    gathered = comm.gather(arr, root=0)
    out["gather"] = None if gathered is None else np.concatenate(gathered)
    out["allgather"] = np.concatenate(comm.allgather(arr))
    red = comm.reduce(arr, root=0)
    out["reduce"] = red
    out["allreduce"] = comm.allreduce(arr)
    out["reduce_min"] = comm.allreduce(float(comm.rank), op=min)
    comm.barrier()
    return out


@pytest.mark.parametrize("n_ranks", [2, 4])
def test_collectives_identical_across_fabrics(n_ranks):
    by_fabric = {f: run_spmd(_all_collectives, n_ranks, fabric=f) for f in FABRICS}
    for rank in range(n_ranks):
        t, p = by_fabric["thread"][rank], by_fabric["process"][rank]
        assert set(t) == set(p)
        for key in t:
            if t[key] is None:
                assert p[key] is None
            elif isinstance(t[key], float):
                assert t[key] == p[key]
            else:
                # bit-identical, not merely close: reduce folds in rank
                # order on both fabrics
                assert np.array_equal(t[key], p[key]), (key, rank)
    assert _no_leftover_segments()


def test_barrier_orders_sends_across_it():
    def fn(comm):
        if comm.rank == 0:
            comm.send("pre", 1, tag=1)
        comm.barrier()
        if comm.rank == 1:
            return comm.recv(0, tag=1)
        return None

    for fabric in FABRICS:
        assert run_spmd(fn, 2, fabric=fabric)[1] == "pre"


# ----------------------------------------------------------------------
# data plane: shm engagement and pickle fallback


def _ship_large(comm):
    big = np.full((400, 400), float(comm.rank))  # 1.28 MB >= threshold
    if comm.rank == 0:
        got = comm.recv(1, tag=2)
        return float(got[0, 0]), comm.transport_stats()
    if comm.rank == 1:
        comm.send(big, 0, tag=2)
    return None, comm.transport_stats()


def test_large_arrays_ride_the_shm_plane():
    results = run_spmd(_ship_large, 2, fabric="process")
    assert results[0][0] == 1.0
    stats = [s for _, s in results]
    assert stats[1]["shm_sends"] == 1  # sender staged, never pickled
    assert stats[0]["shm_recvs"] == 1  # receiver attached + unlinked
    assert _no_leftover_segments()


def test_shm_threshold_gates_the_data_plane():
    def fn(comm):
        arr = np.arange(64, dtype=np.float64)  # 512 B: below any threshold
        if comm.rank == 0:
            comm.send(arr, 1, tag=3)
            comm.send({"not": "an array"}, 1, tag=4)
            comm.send(np.array(["a", "b"], dtype=object), 1, tag=5)
        else:
            assert np.array_equal(comm.recv(0, tag=3), arr)
            assert comm.recv(0, tag=4) == {"not": "an array"}
            assert list(comm.recv(0, tag=5)) == ["a", "b"]
        return comm.transport_stats()

    stats = run_spmd(fn, 2, fabric="process", shm_threshold=1 << 20)
    assert stats[0]["shm_sends"] == 0
    assert stats[0]["pickle_sends"] >= 3  # small array, dict, object dtype
    assert stats[1]["shm_recvs"] == 0


def test_sent_arrays_are_copies_on_both_fabrics():
    def fn(comm):
        arr = np.zeros(8)
        if comm.rank == 0:
            comm.send(arr, 1, tag=1)
            arr[:] = 99.0  # mutate after send: receiver must not see it
            comm.barrier()
        else:
            comm.barrier()
            return comm.recv(0, tag=1).sum()
        return None

    for fabric in FABRICS:
        assert run_spmd(fn, 2, fabric=fabric)[1] == 0.0


# ----------------------------------------------------------------------
# failure semantics


def test_rank_failure_surfaces_with_traceback():
    def fn(comm):
        if comm.rank == 1:
            raise ValueError("rank 1 is sick")
        return comm.rank

    for fabric in FABRICS:
        with pytest.raises(SpmdError) as e:
            run_spmd(fn, 2, fabric=fabric, recv_timeout=5.0)
        assert 1 in e.value.failures
        assert "rank 1 is sick" in e.value.tracebacks[1]


def test_recv_timeout_names_src_dst_tag_wait():
    def fn(comm):
        if comm.rank == 1:
            comm.recv(0, tag=9, timeout=0.2)
        return True

    # thread fabric: the live SpmdTimeout object reaches the host
    with pytest.raises(SpmdError) as e:
        run_spmd(fn, 2, fabric="thread")
    err = e.value.failures[1]
    assert isinstance(err, SpmdTimeout)
    assert (err.src, err.dst, err.tag, err.waited_s) == (0, 1, 9, 0.2)

    # process fabric: the timeout crosses as a RemoteRankError carrying
    # the remote traceback, which names the same context
    with pytest.raises(SpmdError) as e:
        run_spmd(fn, 2, fabric="process")
    err = e.value.failures[1]
    assert isinstance(err, RemoteRankError)
    assert "SpmdTimeout" in e.value.tracebacks[1]
    assert "rank 1 timed out receiving from rank 0 (tag 9) after 0.20s" in str(err)


def test_run_spmd_recv_timeout_knob_sets_the_default():
    def fn(comm):
        if comm.rank == 1:
            comm.recv(0, tag=9)  # no per-call timeout: the knob applies
        return True

    with pytest.raises(SpmdError) as e:
        run_spmd(fn, 2, fabric="thread", recv_timeout=0.25)
    err = e.value.failures[1]
    assert isinstance(err, SpmdTimeout) and err.waited_s == 0.25


def test_error_fault_site_fires_on_both_fabrics():
    for fabric in FABRICS:
        with faults.inject("error@spmd.rank.run:count=1", seed=2):
            with pytest.raises(SpmdError) as e:
                run_spmd(lambda comm: comm.rank, 2, fabric=fabric, recv_timeout=3.0)
        assert len(e.value.failures) >= 1


# ----------------------------------------------------------------------
# segment-leak sweep on abnormal rank death


def test_killed_rank_segments_are_swept():
    def fn(comm):
        arr = np.full((400, 400), float(comm.rank))
        comm.send(arr, (comm.rank + 1) % comm.size, tag=6)
        return comm.recv((comm.rank - 1) % comm.size, tag=6)[0, 0]

    # the kill mark fires inside _stage_shm, after the segment exists
    # and before the descriptor is sent — the exact leak window
    with faults.inject("kill@spmd.rank.shm:count=1", seed=3):
        with pytest.raises(SpmdError) as e:
            run_spmd(fn, 3, fabric="process", recv_timeout=2.0)
    assert any(isinstance(err, RemoteRankError) for err in e.value.failures.values())
    report = last_run_report()
    assert report.fabric == "process" and report.n_failures >= 1
    # the host finalizer found and unlinked the orphaned segment(s)
    assert report.swept_segments
    assert _no_leftover_segments()


def test_clean_runs_sweep_nothing():
    run_spmd(_ship_large, 2, fabric="process")
    assert last_run_report().swept_segments == ()
    assert _no_leftover_segments()


# ----------------------------------------------------------------------
# sharded compress fan-out parity


@pytest.mark.parametrize("tol", [None, 1e-3])
def test_sharded_fanout_byte_identical_across_fabrics(tol):
    rng = np.random.default_rng(7)
    field = rng.random((48, 33))
    plan = plan_shards(field.shape, 3)
    codec = ShardCodec(tol=tol, mode="level", backend="huffman")
    reference = encode_shards(field, plan, codec, executor="serial")
    for fabric in FABRICS:
        payloads = encode_shards_spmd(
            field, plan, codec, fabric=fabric, n_ranks=3, shm_threshold=4096
        )
        assert [bytes(p) for p in payloads] == [bytes(p) for p in reference], fabric
    assert _no_leftover_segments()


# ----------------------------------------------------------------------
# surface compatibility


def test_simmpi_shim_still_exports_the_thread_surface():
    from repro.cluster.simmpi import SimComm as ShimComm
    from repro.cluster.simmpi import SpmdError as ShimError
    from repro.cluster.simmpi import run_spmd as shim_run

    assert ShimComm is SimComm is ThreadComm
    assert ShimError is SpmdError
    results = shim_run(lambda comm: comm.allreduce(1), 3)
    assert results == [3, 3, 3]


def test_spmd_error_accepts_plain_message():
    e = SpmdError("no fork on this platform")
    assert e.failures == {} and e.tracebacks == {}
    assert "no fork" in str(e)


def test_unknown_fabric_rejected():
    with pytest.raises(ValueError):
        run_spmd(lambda comm: None, 1, fabric="carrier-pigeon")
