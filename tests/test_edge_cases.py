"""Numerical and structural edge cases across the pipeline."""

import numpy as np
import pytest

from repro.core.decompose import decompose, recompose
from repro.core.grid import Hierarchy1D, TensorHierarchy
from repro.core.refactor import Refactorer
from repro.compress.mgard import MgardCompressor


class TestNumericalExtremes:
    def test_constant_field_refactors_to_nodal_values_only(self):
        h = TensorHierarchy.from_shape((17, 17))
        data = np.full((17, 17), 3.25)
        ref = decompose(data, h)
        # constants are multilinear: every detail coefficient is zero
        detail_positions = np.ones((17, 17), dtype=bool)
        detail_positions[np.ix_(*h.level_indices(0))] = False
        assert np.abs(ref[detail_positions]).max() < 1e-12
        np.testing.assert_allclose(recompose(ref, h), data, atol=1e-12)

    def test_zero_field(self):
        h = TensorHierarchy.from_shape((33,))
        ref = decompose(np.zeros(33), h)
        np.testing.assert_array_equal(ref, np.zeros(33))

    @pytest.mark.parametrize("scale", [1e-300, 1e-150, 1e150, 1e300])
    def test_extreme_magnitudes_roundtrip(self, scale, rng):
        h = TensorHierarchy.from_shape((17, 17))
        data = rng.standard_normal((17, 17)) * scale
        rt = recompose(decompose(data, h), h)
        np.testing.assert_allclose(rt, data, rtol=1e-9)

    def test_mixed_magnitudes(self, rng):
        # 12 orders of magnitude within one grid: errors stay small
        # relative to the data *scale* (per-element cancellation next to
        # the spikes is inherent to any linear multilevel transform)
        h = TensorHierarchy.from_shape((33,))
        data = rng.standard_normal(33)
        data[::4] *= 1e12
        rt = recompose(decompose(data, h), h)
        assert np.abs(rt - data).max() < 1e-3  # ~1e-15 of the 1e12 scale

    def test_nan_rejected_loudly(self):
        # the banded Cholesky solver refuses NaNs: corrupt input fails
        # fast instead of silently producing a poisoned refactoring
        h = TensorHierarchy.from_shape((9,))
        data = np.zeros(9)
        data[4] = np.nan
        with pytest.raises(ValueError, match="infs or NaNs"):
            decompose(data, h)

    def test_negative_everything(self, rng):
        h = TensorHierarchy.from_shape((17, 9))
        data = -np.abs(rng.standard_normal((17, 9))) - 10
        np.testing.assert_allclose(recompose(decompose(data, h), h), data, atol=1e-9)


class TestExtremeGeometries:
    def test_highly_anisotropic_shape(self, rng):
        h = TensorHierarchy.from_shape((257, 3))
        data = rng.standard_normal((257, 3))
        np.testing.assert_allclose(recompose(decompose(data, h), h), data, atol=1e-9)

    def test_pencil_3d(self, rng):
        shape = (65, 2, 3)
        h = TensorHierarchy.from_shape(shape)
        data = rng.standard_normal(shape)
        np.testing.assert_allclose(recompose(decompose(data, h), h), data, atol=1e-9)

    def test_all_singleton_but_one(self, rng):
        shape = (1, 33, 1)
        h = TensorHierarchy.from_shape(shape)
        data = rng.standard_normal(shape)
        np.testing.assert_allclose(recompose(decompose(data, h), h), data, atol=1e-9)

    def test_extremely_clustered_coordinates(self, rng):
        # spacings spanning 12 orders of magnitude
        x = np.concatenate([[0.0], np.cumsum(np.logspace(-12, 0, 32))])
        h = TensorHierarchy.from_shape((33,), coords=(x,))
        data = rng.standard_normal(33)
        rt = recompose(decompose(data, h), h)
        np.testing.assert_allclose(rt, data, atol=1e-6 * np.abs(data).max())

    def test_prime_sizes(self, rng):
        for n in (7, 11, 13, 31, 97):
            h = TensorHierarchy.from_shape((n,))
            data = rng.standard_normal(n)
            np.testing.assert_allclose(
                recompose(decompose(data, h), h), data, atol=1e-9
            )

    def test_deep_hierarchy(self, rng):
        # 2^14 + 1 in 1D: 14 levels
        n = (1 << 14) + 1
        h = TensorHierarchy.from_shape((n,))
        assert h.L == 14
        data = rng.standard_normal(n)
        np.testing.assert_allclose(recompose(decompose(data, h), h), data, atol=1e-8)


class TestDtypeHandling:
    def test_integer_input_promoted(self):
        h = TensorHierarchy.from_shape((9, 9))
        data = np.arange(81).reshape(9, 9)
        out = decompose(data, h)
        assert np.issubdtype(out.dtype, np.floating)
        np.testing.assert_allclose(recompose(out, h), data, atol=1e-10)

    def test_float32_stays_reasonable(self, rng):
        h = TensorHierarchy.from_shape((65, 65))
        data = rng.standard_normal((65, 65)).astype(np.float32)
        rt = recompose(decompose(data, h), h)
        assert np.abs(rt - data).max() < 1e-3

    def test_fortran_ordered_input(self, rng):
        h = TensorHierarchy.from_shape((17, 33))
        data = np.asfortranarray(rng.standard_normal((17, 33)))
        np.testing.assert_allclose(recompose(decompose(data, h), h), data, atol=1e-9)

    def test_non_contiguous_view(self, rng):
        big = rng.standard_normal((34, 66))
        view = big[::2, ::2]  # (17, 33) strided view
        h = TensorHierarchy.from_shape(view.shape)
        np.testing.assert_allclose(recompose(decompose(view, h), h), view, atol=1e-9)


class TestCompressorEdges:
    def test_constant_field_compresses_tiny(self):
        hier = TensorHierarchy.from_shape((65, 65))
        blob = MgardCompressor(hier, 1e-6).compress(np.full((65, 65), 7.0))
        assert blob.compression_ratio() > 50

    def test_single_spike(self):
        hier = TensorHierarchy.from_shape((65, 65))
        data = np.zeros((65, 65))
        data[40, 23] = 5.0
        comp = MgardCompressor(hier, 1e-4)
        back = comp.decompress(comp.compress(data))
        assert np.abs(back - data).max() <= 1e-4

    def test_tiny_grid_compression(self, rng):
        hier = TensorHierarchy.from_shape((3, 3))
        data = rng.standard_normal((3, 3))
        comp = MgardCompressor(hier, 1e-5)
        back = comp.decompress(comp.compress(data))
        assert np.abs(back - data).max() <= 1e-5

    def test_refactorer_accepts_list_shape(self):
        r = Refactorer([9, 9])  # list, not tuple
        assert r.shape == (9, 9)


class TestHierarchyDegenerates:
    def test_size_one_dimension_everywhere(self):
        h = TensorHierarchy.from_shape((1, 1, 1))
        assert h.L == 0
        data = np.ones((1, 1, 1))
        np.testing.assert_array_equal(decompose(data, h), data)

    def test_single_node_hierarchy(self):
        h = Hierarchy1D(size=1)
        assert h.L == 0
        assert h.index(0).tolist() == [0]
